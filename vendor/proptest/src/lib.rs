//! Offline stand-in for the `proptest` crate.
//!
//! Provides the subset of the proptest surface this workspace uses —
//! `proptest!`, `prop_assert!`, `prop_assert_eq!`, range/tuple/vec/option
//! strategies and `.prop_map` — implemented as plain deterministic seeded
//! sampling. Unlike real proptest there is **no shrinking** and no failure
//! persistence: each test runs `Config::cases` deterministic cases derived
//! from the test's name, so failures reproduce bit-identically on every
//! run, which is what this repo's determinism policy wants anyway.

/// Test-runner configuration and the deterministic RNG.
pub mod test_runner {
    /// Subset of proptest's `Config`: only the case count.
    #[derive(Debug, Clone, Copy)]
    pub struct Config {
        /// Number of random cases each `proptest!` test executes.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 48 }
        }
    }

    /// Deterministic RNG (splitmix64 core) seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds deterministically from an arbitrary string (the test name).
        pub fn for_test(name: &str) -> Self {
            // FNV-1a over the name gives a stable per-test stream.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next raw 64-bit value (splitmix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, 1)`.
        pub fn uniform01(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }
    }
}

/// The `Strategy` trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        // Full-width inclusive range.
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                    (self.start as i64).wrapping_add(rng.below(span) as i64) as $t
                }
            }
        )*};
    }
    signed_range_strategy!(i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (self.end - self.start) * rng.uniform01() as $t
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec<T>` with a length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// Generates vectors whose length is uniform in `size`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing both booleans with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniformly random `bool`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = core::primitive::bool;
        fn sample(&self, rng: &mut TestRng) -> core::primitive::bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Option strategies (`proptest::option::of`).
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option<T>`; `None` with probability 1/4.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S>(S);

    /// Wraps a strategy to also produce `None` sometimes.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            if rng.next_u64() & 3 == 0 {
                None
            } else {
                Some(self.0.sample(rng))
            }
        }
    }
}

/// Everything tests import: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports the real macro's shape for an optional leading
/// `#![proptest_config(...)]` and any number of test functions.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            (<$crate::test_runner::Config as ::core::default::Default>::default())
            $($rest)*
        }
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $(#[test] fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            #[test]
            fn $name() {
                let __config: $crate::test_runner::Config = $cfg;
                let mut __rng = $crate::test_runner::TestRng::for_test(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for __case in 0..__config.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                    $body
                }
            }
        )+
    };
}

/// Asserts a condition inside a `proptest!` body (plain `assert!` here —
/// no shrinking machinery to feed).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_test("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_respect_bounds(x in 3u32..17, f in -1.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-1.0..2.0).contains(&f));
        }

        #[test]
        fn vec_and_tuple_compose(v in crate::collection::vec((0usize..4, 0.0f64..1.0), 1..20)) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            for (i, f) in v {
                prop_assert!(i < 4 && (0.0..1.0).contains(&f));
            }
        }

        #[test]
        fn map_and_option_work(
            o in crate::option::of(1u8..5),
            m in (0u8..3).prop_map(|x| x * 10),
            b in crate::bool::ANY,
        ) {
            prop_assert!(o.is_none() || (1..5).contains(&o.unwrap()));
            prop_assert!(m % 10 == 0 && m < 30);
            prop_assert!(u8::from(b) <= 1);
        }
    }
}
