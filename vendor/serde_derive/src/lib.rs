//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! vendored `serde` crate by hand-parsing the item's token stream (the real
//! `syn`/`quote` stack is unavailable offline) and emitting impls of the
//! simplified `ser_value` / `deser_value` traits.
//!
//! Supported shapes — exactly what the workspace uses:
//! * structs with named fields (honoring `#[serde(default)]` and
//!   `#[serde(default = "path")]`),
//! * tuple structs (newtypes serialize transparently, wider tuples as
//!   arrays),
//! * enums with unit, tuple and struct variants (externally tagged, like
//!   real serde: `"Variant"` or `{"Variant": payload}`).
//!
//! Generic types are not supported and produce a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// How a missing field is handled during deserialization.
#[derive(Clone, Debug)]
enum FieldDefault {
    /// Error out (serde's default behavior).
    Required,
    /// `Default::default()` — from `#[serde(default)]`.
    Std,
    /// A named function — from `#[serde(default = "path")]`.
    Path(String),
}

#[derive(Debug)]
struct NamedField {
    name: String,
    default: FieldDefault,
}

#[derive(Debug)]
enum Fields {
    Named(Vec<NamedField>),
    Tuple(usize),
    Unit,
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item).parse().unwrap(),
        Err(e) => compile_error(&e),
    }
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item).parse().unwrap(),
        Err(e) => compile_error(&e),
    }
}

// ---- parsing ---------------------------------------------------------------

type Iter = std::iter::Peekable<proc_macro::token_stream::IntoIter>;

/// Consumes one `#[...]` attribute if present; returns its bracket-group
/// tokens.
fn take_attr(it: &mut Iter) -> Option<TokenStream> {
    match it.peek() {
        Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
            it.next();
            match it.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    Some(g.stream())
                }
                _ => None, // malformed; the compiler already rejected it
            }
        }
        _ => None,
    }
}

/// Extracts a `FieldDefault` from an attribute stream if it is
/// `serde(default)` / `serde(default = "path")`.
fn parse_serde_attr(attr: TokenStream) -> Option<FieldDefault> {
    let mut it = attr.into_iter();
    match it.next() {
        Some(TokenTree::Ident(i)) if i.to_string() == "serde" => {}
        _ => return None,
    }
    let inner = match it.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
        _ => return None,
    };
    let mut toks = inner.into_iter();
    match toks.next() {
        Some(TokenTree::Ident(i)) if i.to_string() == "default" => {}
        _ => return None,
    }
    match toks.next() {
        None => Some(FieldDefault::Std),
        Some(TokenTree::Punct(p)) if p.as_char() == '=' => match toks.next() {
            Some(TokenTree::Literal(l)) => {
                let s = l.to_string();
                Some(FieldDefault::Path(s.trim_matches('"').to_string()))
            }
            _ => None,
        },
        _ => None,
    }
}

/// Skips a visibility qualifier (`pub`, `pub(crate)`, ...).
fn skip_vis(it: &mut Iter) {
    if let Some(TokenTree::Ident(i)) = it.peek() {
        if i.to_string() == "pub" {
            it.next();
            if let Some(TokenTree::Group(g)) = it.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    it.next();
                }
            }
        }
    }
}

/// Skips tokens up to (and including) the next comma at angle-bracket depth
/// zero. Returns false when the stream ended instead.
fn skip_type_until_comma(it: &mut Iter) -> bool {
    let mut angle_depth: i32 = 0;
    for tok in it.by_ref() {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return true,
                _ => {}
            }
        }
    }
    false
}

fn parse_named_fields(group: TokenStream) -> Result<Vec<NamedField>, String> {
    let mut it: Iter = group.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let mut default = FieldDefault::Required;
        while let Some(attr) = take_attr(&mut it) {
            if let Some(d) = parse_serde_attr(attr) {
                default = d;
            }
        }
        skip_vis(&mut it);
        let name = match it.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            Some(other) => return Err(format!("unexpected token in fields: {other}")),
        };
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field `{name}`, got {other:?}")),
        }
        fields.push(NamedField { name, default });
        if !skip_type_until_comma(&mut it) {
            break;
        }
    }
    Ok(fields)
}

fn count_tuple_fields(group: TokenStream) -> usize {
    let mut it: Iter = group.clone().into_iter().peekable();
    if it.peek().is_none() {
        return 0;
    }
    let mut n = 1;
    while skip_type_until_comma(&mut it) {
        if it.peek().is_some() {
            n += 1;
        }
    }
    n
}

fn parse_variants(group: TokenStream) -> Result<Vec<Variant>, String> {
    let mut it: Iter = group.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        while take_attr(&mut it).is_some() {}
        let name = match it.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            Some(other) => return Err(format!("unexpected token in enum body: {other}")),
        };
        let fields = match it.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let stream = g.stream();
                it.next();
                Fields::Named(parse_named_fields(stream)?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let stream = g.stream();
                it.next();
                Fields::Tuple(count_tuple_fields(stream))
            }
            _ => Fields::Unit,
        };
        variants.push(Variant { name, fields });
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            None => break,
            Some(other) => return Err(format!("expected `,` between variants, got {other}")),
        }
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut it: Iter = input.into_iter().peekable();
    while take_attr(&mut it).is_some() {}
    skip_vis(&mut it);
    let kind = match it.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    let name = match it.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    if let Some(TokenTree::Punct(p)) = it.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "vendored serde_derive does not support generic type `{name}`"
            ));
        }
    }
    match kind.as_str() {
        "struct" => {
            let fields = match it.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream())?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => return Err(format!("unsupported struct body: {other:?}")),
            };
            Ok(Item::Struct { name, fields })
        }
        "enum" => {
            let variants = match it.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    parse_variants(g.stream())?
                }
                other => return Err(format!("unsupported enum body: {other:?}")),
            };
            Ok(Item::Enum { name, variants })
        }
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

// ---- codegen ---------------------------------------------------------------

/// `("name".to_string(), ser_value(&<prefix>name))` entries for an object.
fn ser_object_entries(fields: &[NamedField], prefix: &str) -> String {
    fields
        .iter()
        .map(|f| {
            format!(
                "({:?}.to_string(), ::serde::Serialize::ser_value(&{}{})),",
                f.name, prefix, f.name
            )
        })
        .collect()
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fs) => format!(
                    "::serde::Value::Object(::std::vec![{}])",
                    ser_object_entries(fs, "self.")
                ),
                Fields::Tuple(1) => "::serde::Serialize::ser_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: String = (0..*n)
                        .map(|i| format!("::serde::Serialize::ser_value(&self.{i}),"))
                        .collect();
                    format!("::serde::Value::Array(::std::vec![{items}])")
                }
                Fields::Unit => "::serde::Value::Null".to_string(),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn ser_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vname} => ::serde::Value::String({vname:?}.to_string()),\n"
                        ),
                        Fields::Tuple(1) => format!(
                            "{name}::{vname}(__f0) => ::serde::Value::Object(::std::vec![\
                             ({vname:?}.to_string(), ::serde::Serialize::ser_value(__f0))]),\n"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let items: String = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::ser_value({b}),"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Object(::std::vec![\
                                 ({vname:?}.to_string(), ::serde::Value::Array(::std::vec![{items}]))]),\n",
                                binds.join(", ")
                            )
                        }
                        Fields::Named(fs) => {
                            let binds: Vec<&str> = fs.iter().map(|f| f.name.as_str()).collect();
                            let entries = ser_object_entries(fs, "");
                            format!(
                                "{name}::{vname} {{ {} }} => ::serde::Value::Object(::std::vec![\
                                 ({vname:?}.to_string(), ::serde::Value::Object(::std::vec![{entries}]))]),\n",
                                binds.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn ser_value(&self) -> ::serde::Value {{ match self {{ {arms} }} }}\n\
                 }}"
            )
        }
    }
}

/// Field initializers for a named-field aggregate read from object `src`
/// (an expression of type `&::serde::Value`).
fn de_named_inits(ty: &str, fields: &[NamedField], src: &str) -> String {
    fields
        .iter()
        .map(|f| {
            let fname = &f.name;
            let missing = match &f.default {
                FieldDefault::Required => format!(
                    "return ::core::result::Result::Err(::serde::Error::missing_field({ty:?}, {fname:?}))"
                ),
                FieldDefault::Std => "::core::default::Default::default()".to_string(),
                FieldDefault::Path(p) => format!("{p}()"),
            };
            format!(
                "{fname}: match {src}.get({fname:?}) {{\n\
                     ::core::option::Option::Some(__fv) => ::serde::Deserialize::deser_value(__fv)?,\n\
                     ::core::option::Option::None => {missing},\n\
                 }},\n"
            )
        })
        .collect()
}

/// Constructor for a tuple payload of `n` fields from array expression
/// `items` (a `&[Value]`), with the constructor path given.
fn de_tuple_ctor(ctor: &str, n: usize) -> String {
    let args: String = (0..n)
        .map(|i| format!("::serde::Deserialize::deser_value(&__items[{i}])?,"))
        .collect();
    format!(
        "{{ let __items = __pv.as_array().ok_or_else(|| ::serde::Error::expected(\"array\", __pv))?;\n\
           if __items.len() != {n} {{\n\
               return ::core::result::Result::Err(::serde::Error::custom(\
                   format!(\"expected {n} fields, got {{}}\", __items.len())));\n\
           }}\n\
           ::core::result::Result::Ok({ctor}({args})) }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let body = match item {
        Item::Struct { name, fields } => match fields {
            Fields::Named(fs) => {
                let inits = de_named_inits(name, fs, "__v");
                format!(
                    "if __v.as_object().is_none() {{\n\
                         return ::core::result::Result::Err(::serde::Error::expected(\"object\", __v));\n\
                     }}\n\
                     ::core::result::Result::Ok({name} {{ {inits} }})"
                )
            }
            Fields::Tuple(1) => format!(
                "::core::result::Result::Ok({name}(::serde::Deserialize::deser_value(__v)?))"
            ),
            Fields::Tuple(n) => {
                let ctor = de_tuple_ctor(name, *n);
                format!("let __pv = __v; {ctor}")
            }
            Fields::Unit => format!("::core::result::Result::Ok({name})"),
        },
        Item::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| {
                    format!(
                        "{0:?} => ::core::result::Result::Ok({name}::{0}),\n",
                        v.name
                    )
                })
                .collect();
            let payload_arms: String = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    let ctor = format!("{name}::{vname}");
                    match &v.fields {
                        Fields::Unit => None,
                        Fields::Tuple(1) => Some(format!(
                            "{vname:?} => ::core::result::Result::Ok({ctor}(\
                             ::serde::Deserialize::deser_value(__pv)?)),\n"
                        )),
                        Fields::Tuple(n) => {
                            Some(format!("{vname:?} => {},\n", de_tuple_ctor(&ctor, *n)))
                        }
                        Fields::Named(fs) => {
                            let label = format!("{name}::{vname}");
                            let inits = de_named_inits(&label, fs, "__pv");
                            Some(format!(
                                "{vname:?} => ::core::result::Result::Ok({ctor} {{ {inits} }}),\n"
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match __v {{\n\
                     ::serde::Value::String(__s) => match __s.as_str() {{\n\
                         {unit_arms}\n\
                         __other => ::core::result::Result::Err(::serde::Error::custom(\
                             format!(\"unknown variant {{__other:?}} of {name}\"))),\n\
                     }},\n\
                     ::serde::Value::Object(__entries) if __entries.len() == 1 => {{\n\
                         let (__k, __pv) = &__entries[0];\n\
                         match __k.as_str() {{\n\
                             {payload_arms}\n\
                             __other => ::core::result::Result::Err(::serde::Error::custom(\
                                 format!(\"unknown variant {{__other:?}} of {name}\"))),\n\
                         }}\n\
                     }}\n\
                     _ => ::core::result::Result::Err(::serde::Error::expected(\"enum variant\", __v)),\n\
                 }}"
            )
        }
    };
    let name = match item {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name,
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn deser_value(__v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
