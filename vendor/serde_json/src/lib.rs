//! Offline stand-in for `serde_json`.
//!
//! Converts between JSON text and the vendored `serde` crate's in-memory
//! [`Value`] tree. Floats are written with Rust's shortest-roundtrip
//! formatting, which matches the `float_roundtrip` feature of the real
//! crate for the `f64 -> text -> f64` direction.

use serde::{Deserialize, Serialize};
pub use serde::{Error, Value};

/// Serializes any `Serialize` type into a [`Value`].
///
/// # Errors
///
/// Infallible in this implementation; the `Result` mirrors the real API.
pub fn to_value<T: Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.ser_value())
}

/// Reconstructs a `Deserialize` type from a [`Value`].
///
/// # Errors
///
/// Returns an error when the value's shape does not match the type.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T, Error> {
    T::deser_value(&value)
}

/// Serializes to compact JSON text.
///
/// # Errors
///
/// Infallible in this implementation; the `Result` mirrors the real API.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.ser_value(), None, 0);
    Ok(out)
}

/// Serializes to human-readable JSON text (two-space indentation).
///
/// # Errors
///
/// Infallible in this implementation; the `Result` mirrors the real API.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.ser_value(), Some("  "), 0);
    Ok(out)
}

/// Parses JSON text into any `Deserialize` type.
///
/// # Errors
///
/// Returns an error on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    T::deser_value(&v)
}

// ---- writer ----------------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(pad);
        }
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Shortest round-trip formatting; keep a ".0" so the value
                // re-parses as a float-shaped number.
                let s = format!("{f}");
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null"); // JSON has no NaN/Infinity
            }
        }
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            write_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            write_indent(out, indent, depth);
            out.push('}');
        }
    }
}

// ---- parser ----------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::custom("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            s.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "unknown escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::custom("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::custom("expected `,` or `}` in object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-5", "3.25", "\"hi\\n\""] {
            let v: Value = from_str(text).unwrap();
            let back = to_string(&v).unwrap();
            let v2: Value = from_str(&back).unwrap();
            assert_eq!(v, v2, "{text}");
        }
    }

    #[test]
    fn nested_structures_round_trip() {
        let text = r#"{"a":[1,2.5,{"b":null}],"c":"x y","d":{}}"#;
        let v: Value = from_str(text).unwrap();
        let compact = to_string(&v).unwrap();
        assert_eq!(from_str::<Value>(&compact).unwrap(), v);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(from_str::<Value>(&pretty).unwrap(), v);
    }

    #[test]
    fn float_precision_survives() {
        let x = 0.1f64 + 0.2;
        let s = to_string(&x).unwrap();
        let back: f64 = from_str(&s).unwrap();
        assert_eq!(x, back);
    }

    #[test]
    fn whole_floats_stay_float_shaped() {
        assert_eq!(to_string(&5.0f64).unwrap(), "5.0");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{oops}").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }
}
