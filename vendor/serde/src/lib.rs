//! Offline stand-in for the `serde` crate.
//!
//! The real `serde` cannot be fetched in the build environment, so this
//! crate provides the same *surface* the workspace uses — `Serialize` /
//! `Deserialize` traits, `#[derive(Serialize, Deserialize)]`, and the
//! `#[serde(default)]` / `#[serde(default = "path")]` field attributes —
//! backed by a much simpler data model: everything serializes through the
//! in-memory JSON [`Value`] tree defined here. `serde_json` (also vendored)
//! is then only text ⇄ [`Value`] conversion.
//!
//! Deliberate simplifications versus real serde:
//! * no zero-copy deserialization, no visitors, no custom `Serializer`s;
//! * numbers are kept as `i64` / `u64` / `f64` and converted on demand;
//! * only the attributes the workspace actually uses are honored.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// An in-memory JSON document. Field order of objects is preserved so that
/// serialized output is deterministic and stable across runs.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Negative integer (always `< 0`; non-negative integers use `UInt`).
    Int(i64),
    /// Non-negative integer.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with preserved insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Whether this is `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up a field of an object by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|o| o.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// Numeric view as `f64` (integers widen losslessly enough for metrics).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Numeric view as `u64`, when representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(u) => Some(*u),
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            Value::Float(f) if *f >= 0.0 && f.fract() == 0.0 && *f <= u64::MAX as f64 => {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// Numeric view as `i64`, when representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::UInt(u) if *u <= i64::MAX as u64 => Some(*u as i64),
            Value::Float(f)
                if f.fract() == 0.0 && (i64::MIN as f64..=i64::MAX as f64).contains(f) =>
            {
                Some(*f as i64)
            }
            _ => None,
        }
    }
}

/// Error produced by serialization or deserialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with a custom message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }

    /// A "missing field" error naming the field.
    pub fn missing_field(ty: &str, field: &str) -> Self {
        Error::custom(format!("missing field `{field}` of `{ty}`"))
    }

    /// A type-mismatch error.
    pub fn expected(what: &str, got: &Value) -> Self {
        let kind = match got {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        };
        Error::custom(format!("expected {what}, got {kind}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// A type that can be converted into a JSON [`Value`].
pub trait Serialize {
    /// Serializes `self` into the in-memory JSON tree.
    fn ser_value(&self) -> Value;
}

/// A type that can be reconstructed from a JSON [`Value`].
pub trait Deserialize: Sized {
    /// Deserializes from the in-memory JSON tree.
    fn deser_value(v: &Value) -> Result<Self, Error>;
}

// ---- primitive impls -------------------------------------------------------

macro_rules! ser_de_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn ser_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::UInt(v as u64) } else { Value::Int(v) }
            }
        }
        impl Deserialize for $t {
            fn deser_value(v: &Value) -> Result<Self, Error> {
                let i = v.as_i64().ok_or_else(|| Error::expected("integer", v))?;
                <$t>::try_from(i).map_err(|_| Error::custom(format!(
                    "{} out of range for {}", i, stringify!($t)
                )))
            }
        }
    )*};
}
ser_de_signed!(i8, i16, i32, i64, isize);

macro_rules! ser_de_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn ser_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deser_value(v: &Value) -> Result<Self, Error> {
                let u = v.as_u64().ok_or_else(|| Error::expected("unsigned integer", v))?;
                <$t>::try_from(u).map_err(|_| Error::custom(format!(
                    "{} out of range for {}", u, stringify!($t)
                )))
            }
        }
    )*};
}
ser_de_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn ser_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl Deserialize for f64 {
    fn deser_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::expected("number", v))
    }
}

impl Serialize for f32 {
    fn ser_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}
impl Deserialize for f32 {
    fn deser_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| Error::expected("number", v))
    }
}

impl Serialize for bool {
    fn ser_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn deser_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::expected("bool", v)),
        }
    }
}

impl Serialize for String {
    fn ser_value(&self) -> Value {
        Value::String(self.clone())
    }
}
impl Deserialize for String {
    fn deser_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            _ => Err(Error::expected("string", v)),
        }
    }
}

impl Serialize for str {
    fn ser_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for &'static str {
    fn deser_value(v: &Value) -> Result<Self, Error> {
        match v {
            // The Value tree is transient, so a 'static borrow has nothing
            // to borrow from; leak the (small) string instead. Real serde
            // supports this shape only via borrowed input for the same
            // reason.
            Value::String(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            _ => Err(Error::expected("string", v)),
        }
    }
}

impl Serialize for char {
    fn ser_value(&self) -> Value {
        Value::String(self.to_string())
    }
}
impl Deserialize for char {
    fn deser_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::expected("single-character string", v)),
        }
    }
}

// ---- container impls -------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn ser_value(&self) -> Value {
        (**self).ser_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn ser_value(&self) -> Value {
        (**self).ser_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn deser_value(v: &Value) -> Result<Self, Error> {
        T::deser_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn ser_value(&self) -> Value {
        match self {
            Some(t) => t.ser_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn deser_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deser_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn ser_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::ser_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn deser_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::expected("array", v))?
            .iter()
            .map(T::deser_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn ser_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::ser_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn ser_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::ser_value).collect())
    }
}
impl<T: Deserialize + Copy + Default, const N: usize> Deserialize for [T; N] {
    fn deser_value(v: &Value) -> Result<Self, Error> {
        let items = v.as_array().ok_or_else(|| Error::expected("array", v))?;
        if items.len() != N {
            return Err(Error::custom(format!(
                "expected array of length {N}, got {}",
                items.len()
            )));
        }
        let mut out = [T::default(); N];
        for (slot, item) in out.iter_mut().zip(items) {
            *slot = T::deser_value(item)?;
        }
        Ok(out)
    }
}

macro_rules! ser_de_tuple {
    ($(($($t:ident . $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn ser_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.ser_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deser_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_array().ok_or_else(|| Error::expected("array", v))?;
                let expect = [$(stringify!($t)),+].len();
                if items.len() != expect {
                    return Err(Error::custom(format!(
                        "expected {}-tuple, got array of {}", expect, items.len()
                    )));
                }
                Ok(($($t::deser_value(&items[$idx])?,)+))
            }
        }
    )*};
}
ser_de_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn ser_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.ser_value()))
                .collect(),
        )
    }
}
impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deser_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::expected("object", v))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::deser_value(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn ser_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn deser_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbers_round_trip_across_kinds() {
        assert_eq!(u32::deser_value(&Value::UInt(7)), Ok(7));
        assert_eq!(i64::deser_value(&Value::UInt(7)), Ok(7));
        assert_eq!(f64::deser_value(&Value::UInt(7)), Ok(7.0));
        assert_eq!(u64::deser_value(&Value::Float(3.0)), Ok(3));
        assert!(u8::deser_value(&Value::UInt(300)).is_err());
    }

    #[test]
    fn option_null_round_trip() {
        assert_eq!(Option::<u32>::deser_value(&Value::Null), Ok(None));
        assert_eq!(Some(5u32).ser_value(), Value::UInt(5));
    }

    #[test]
    fn tuple_and_array() {
        let v = (1u32, 2.5f64).ser_value();
        assert_eq!(<(u32, f64)>::deser_value(&v), Ok((1, 2.5)));
        let a = [1.0f64, 2.0].ser_value();
        assert_eq!(<[f64; 2]>::deser_value(&a), Ok([1.0, 2.0]));
    }
}
