//! Snapshot/fork correctness: a run forked from a warmed-up prefix
//! snapshot must be bit-identical to a cold run that replays the prefix
//! — across governors, faults active at the snapshot point and both
//! skip-ahead modes — and a prefix-shared sweep must equal a cold sweep
//! byte for byte, through the result cache and the journal.

use biglittle::{sweep, LateBindings, Scenario, StopWhen, SweepOptions, SystemConfig};
use bl_governor::GovernorConfig;
use bl_simcore::budget::RunBudget;
use bl_simcore::fault::{FaultKind, FaultPlan};
use bl_simcore::time::{SimDuration, SimTime};
use bl_workloads::apps::app_by_name;
use proptest::prelude::*;

const WARMUP_MS: u64 = 500;
const STOP_MS: u64 = 800;

/// One grid point: a TLP-heavy app warmed up for `WARMUP_MS`, with
/// everything that varies across the grid bound at the warm-up point.
/// With `prefix_faults` the prefix schedules a cluster outage that is
/// still in flight at the snapshot instant, so the captured state holds
/// offlined CPUs and pending online events.
fn grid_point(
    label: &str,
    seed: u64,
    skip_ahead: bool,
    prefix_faults: bool,
    late: LateBindings,
) -> Scenario {
    let mut cfg = SystemConfig::baseline()
        .with_seed(seed)
        .with_skip_ahead(skip_ahead);
    if prefix_faults {
        cfg = cfg.with_faults(FaultPlan::new().with_outage(
            SimTime::from_millis(100),
            SimDuration::from_millis(600),
            &[1, 5],
        ));
    }
    let app = app_by_name("Angry Bird").unwrap();
    Scenario::app(label, app, cfg)
        .with_stop(StopWhen::Deadline(SimDuration::from_millis(STOP_MS)))
        .with_warmup(SimDuration::from_millis(WARMUP_MS))
        .with_late(late)
}

/// The late-binding axis of the grid.
fn late_variant(idx: usize) -> LateBindings {
    match idx % 4 {
        0 => LateBindings::default(),
        1 => LateBindings {
            governors: Some(vec![GovernorConfig::Performance, GovernorConfig::Powersave]),
            faults: FaultPlan::new(),
        },
        2 => LateBindings {
            governors: None,
            faults: FaultPlan::new().with(
                SimTime::from_millis(WARMUP_MS + 50),
                FaultKind::ThermalSpike {
                    cluster: 0,
                    delta_c: 6.0,
                },
            ),
        },
        _ => LateBindings {
            governors: Some(vec![GovernorConfig::Powersave, GovernorConfig::Performance]),
            faults: FaultPlan::new().with(
                SimTime::from_millis(WARMUP_MS),
                FaultKind::GovernorStall {
                    cluster: 1,
                    missed_samples: 2,
                },
            ),
        },
    }
}

#[test]
fn forked_run_is_bit_identical_to_cold_run() {
    let sc = grid_point("fork-basic", 11, true, false, late_variant(1));
    let budget = RunBudget::unlimited();
    let cold = sc.run_with_budget(&budget).unwrap();
    let snap = sc.snapshot_prefix(&budget).unwrap();
    let forked = sc.run_forked(&snap, &budget).unwrap();
    assert_eq!(cold, forked);
    // The snapshot is reusable: forking it again must not observe any
    // state the first fork left behind.
    let again = sc.run_forked(&snap, &budget).unwrap();
    assert_eq!(cold, again);
}

#[test]
fn snapshot_fingerprint_is_deterministic() {
    let sc = grid_point("fp", 3, true, true, late_variant(0));
    let a = sc.snapshot_prefix(&RunBudget::unlimited()).unwrap();
    let b = sc.snapshot_prefix(&RunBudget::unlimited()).unwrap();
    assert_eq!(a.fingerprint(), b.fingerprint());
}

#[test]
fn prefix_specs_group_by_shared_prefix() {
    let a = grid_point("a", 5, true, false, late_variant(0));
    let b = grid_point("b", 5, true, false, late_variant(2));
    let c = grid_point("c", 6, true, false, late_variant(0));
    let key = |sc: &Scenario| sweep::SnapshotSpec::of(sc).unwrap().key();
    assert_eq!(key(&a), key(&b), "late bindings must not split a group");
    assert_ne!(key(&a), key(&c), "a different prefix must not share");
    let plain = Scenario::app(
        "plain",
        app_by_name("Browser").unwrap(),
        SystemConfig::baseline(),
    );
    assert!(
        sweep::SnapshotSpec::of(&plain).is_none(),
        "no warm-up point, nothing to share"
    );
}

#[test]
fn prefix_shared_sweep_equals_cold_sweep_through_cache_and_journal() {
    let scenarios: Vec<Scenario> = (0..4)
        .map(|i| grid_point(&format!("grid-{i}"), 9, true, true, late_variant(i)))
        .collect();
    let base = std::env::temp_dir().join(format!("bl-snapshot-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);

    let run = |share: bool, tag: &str, resume: bool| {
        let opts = SweepOptions::serial()
            .prefix_sharing(share)
            .cached(base.join(tag).join("cache"))
            .journaled(base.join(tag).join("journal"))
            .resuming(resume);
        sweep::run_with(&scenarios, &opts)
    };
    let bytes = |report: &sweep::SweepReport| -> Vec<String> {
        report
            .results
            .iter()
            .map(|r| serde_json::to_string(r.as_ref().unwrap()).unwrap())
            .collect()
    };

    let cold = run(false, "cold", false);
    let shared = run(true, "shared", false);
    assert!(!cold.degraded && !shared.degraded);
    assert_eq!(shared.stats.forked, scenarios.len() as u64);
    assert_eq!(
        bytes(&cold),
        bytes(&shared),
        "prefix-shared grid diverged from the cold grid"
    );

    // A second shared pass is served entirely from the cache.
    let cached = run(true, "shared", false);
    assert_eq!(cached.stats.cache_hits, scenarios.len() as u64);
    assert_eq!(bytes(&cached), bytes(&shared));

    // And resuming from the shared journal replays every point verbatim.
    let resumed = run(true, "resumed-view", false); // warm a fresh journal
    drop(resumed);
    let replay = {
        let opts = SweepOptions::serial()
            .prefix_sharing(true)
            .journaled(base.join("resumed-view").join("journal"))
            .resuming(true);
        sweep::run_with(&scenarios, &opts)
    };
    assert_eq!(replay.stats.resumed, scenarios.len() as u64);
    assert_eq!(bytes(&replay), bytes(&shared));

    let _ = std::fs::remove_dir_all(&base);
}

// ---- nested prefix trees ---------------------------------------------------

/// The warm-up ladder: nested prefixes at 300, 500 and 650 ms.
const LADDER_MS: [u64; 3] = [300, 500, 650];

/// One ladder member: warm-up at `LADDER_MS[level]`, checkpointing at
/// every shallower rung so all members share one trunk simulation (see
/// `Scenario::warmup_via` — the stop schedule is part of the scenario's
/// numeric identity).
fn ladder_point(label: &str, seed: u64, level: usize, late: LateBindings) -> Scenario {
    let via: Vec<SimDuration> = LADDER_MS[..level]
        .iter()
        .map(|&ms| SimDuration::from_millis(ms))
        .collect();
    grid_point(label, seed, true, false, late)
        .with_warmup(SimDuration::from_millis(LADDER_MS[level]))
        .with_warmup_via(via)
}

#[test]
fn ladder_members_share_a_root_but_not_a_leaf() {
    let a = ladder_point("a", 5, 0, late_variant(0));
    let b = ladder_point("b", 5, 1, late_variant(1));
    let c = ladder_point("c", 5, 2, late_variant(2));
    let root = |sc: &Scenario| sweep::SnapshotSpec::root_of(sc).unwrap().key();
    let leaf = |sc: &Scenario| sweep::SnapshotSpec::of(sc).unwrap().key();
    assert_eq!(root(&a), root(&b), "every rung descends from the root");
    assert_eq!(root(&b), root(&c));
    assert_ne!(
        leaf(&a),
        leaf(&b),
        "different depths are different prefixes"
    );
    assert_ne!(leaf(&b), leaf(&c));
    assert_eq!(
        sweep::SnapshotSpec::chain_of(&c).len(),
        3,
        "the deepest member sees the whole chain"
    );
    // A checkpoint schedule changes the prefix identity even at the same
    // warm-up point: stopping mid-run perturbs the numerics.
    let plain = grid_point("p", 5, true, false, late_variant(0))
        .with_warmup(SimDuration::from_millis(LADDER_MS[1]));
    assert_ne!(leaf(&plain), leaf(&b));
}

#[test]
fn chain_snapshots_fork_bit_identical_to_cold_runs_at_every_level() {
    let budget = RunBudget::unlimited();
    let deepest = ladder_point("deep", 7, 2, late_variant(0));
    let snaps = deepest.snapshot_prefix_chain(&budget).unwrap();
    assert_eq!(snaps.len(), LADDER_MS.len());
    for (level, snap) in snaps.iter().enumerate() {
        let member = ladder_point(&format!("m{level}"), 7, level, late_variant(level));
        let cold = member.run_with_budget(&budget).unwrap();
        let forked = member.run_forked(snap, &budget).unwrap();
        assert_eq!(cold, forked, "level {level} diverged");
    }
}

#[test]
fn invalid_checkpoint_schedules_are_rejected() {
    let budget = RunBudget::unlimited();
    // Checkpoint at/after the warm-up point.
    let sc = ladder_point("bad-order", 1, 1, late_variant(0))
        .with_warmup(SimDuration::from_millis(LADDER_MS[0]));
    assert!(sc.run_with_budget(&budget).is_err());
    // Non-ascending schedule.
    let sc = ladder_point("bad-asc", 1, 0, late_variant(0)).with_warmup_via(vec![
        SimDuration::from_millis(200),
        SimDuration::from_millis(100),
    ]);
    assert!(sc.run_with_budget(&budget).is_err());
    // Checkpoints without a warm-up point.
    let mut sc = ladder_point("bad-nowarm", 1, 1, late_variant(0));
    sc.warmup = None;
    assert!(sc.run_with_budget(&budget).is_err());
}

#[test]
fn nested_ladder_sweep_equals_cold_sweep_through_cache_and_journal() {
    // One member per level plus an extra leaf sharer: under flat leaf
    // grouping only the two deepest members could fork, so nested
    // grouping is observable as all four forking.
    let levels = [0usize, 1, 2, 2];
    let scenarios: Vec<Scenario> = levels
        .iter()
        .enumerate()
        .map(|(i, &lv)| ladder_point(&format!("ladder-{i}"), 13, lv, late_variant(i)))
        .collect();
    let base = std::env::temp_dir().join(format!("bl-ladder-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);

    let run = |share: bool, tag: &str, resume: bool| {
        let opts = SweepOptions::serial()
            .prefix_sharing(share)
            .cached(base.join(tag).join("cache"))
            .journaled(base.join(tag).join("journal"))
            .resuming(resume);
        sweep::run_with(&scenarios, &opts)
    };
    let bytes = |report: &sweep::SweepReport| -> Vec<String> {
        report
            .results
            .iter()
            .map(|r| serde_json::to_string(r.as_ref().unwrap()).unwrap())
            .collect()
    };

    let cold = run(false, "cold", false);
    let shared = run(true, "shared", false);
    assert!(!cold.degraded && !shared.degraded);
    assert_eq!(
        shared.stats.forked,
        scenarios.len() as u64,
        "every rung, not just the deepest leaf pair, must fork from the trunk"
    );
    assert_eq!(
        bytes(&cold),
        bytes(&shared),
        "nested-ladder grid diverged from the cold grid"
    );

    // Second pass: everything cached; third: journal replay.
    let cached = run(true, "shared", false);
    assert_eq!(cached.stats.cache_hits, scenarios.len() as u64);
    assert_eq!(bytes(&cached), bytes(&shared));
    let replay = {
        let opts = SweepOptions::serial()
            .prefix_sharing(true)
            .journaled(base.join("shared").join("journal"))
            .resuming(true);
        sweep::run_with(&scenarios, &opts)
    };
    assert_eq!(replay.stats.resumed, scenarios.len() as u64);
    assert_eq!(bytes(&replay), bytes(&shared));

    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn branching_chains_degrade_to_flat_leaf_sharing() {
    // Two pairs that agree on the root rung but branch at the second:
    // the group cannot ladder, so each leaf pair shares flat.
    let mk = |label: &str, second_ms: u64, late: usize| {
        grid_point(label, 17, true, false, late_variant(late))
            .with_warmup(SimDuration::from_millis(650))
            .with_warmup_via(vec![
                SimDuration::from_millis(300),
                SimDuration::from_millis(second_ms),
            ])
    };
    let scenarios = vec![
        mk("branch-a0", 450, 0),
        mk("branch-a1", 450, 1),
        mk("branch-b0", 500, 2),
        mk("branch-b1", 500, 3),
    ];
    let cold = sweep::run_with(&scenarios, &SweepOptions::serial().prefix_sharing(false));
    let shared = sweep::run_with(&scenarios, &SweepOptions::serial().prefix_sharing(true));
    assert_eq!(shared.stats.forked, 4, "each leaf pair still shares");
    let bytes = |report: &sweep::SweepReport| -> Vec<String> {
        report
            .results
            .iter()
            .map(|r| serde_json::to_string(r.as_ref().unwrap()).unwrap())
            .collect()
    };
    assert_eq!(bytes(&cold), bytes(&shared));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    // Randomized fork-vs-cold equivalence across the whole late-binding
    // grid, with and without faults active at the snapshot instant, in
    // both hot-loop modes.
    #[test]
    fn fork_vs_cold_bit_identical(
        seed in 0u64..1_000,
        late_idx in 0usize..4,
        prefix_faults in proptest::bool::ANY,
        skip_ahead in proptest::bool::ANY,
    ) {
        let sc = grid_point("prop", seed, skip_ahead, prefix_faults, late_variant(late_idx));
        let budget = RunBudget::unlimited();
        let cold = sc.run_with_budget(&budget).unwrap();
        let snap = sc.snapshot_prefix(&budget).unwrap();
        let forked = sc.run_forked(&snap, &budget).unwrap();
        prop_assert_eq!(cold, forked);
    }
}
