//! Fault-injection resilience: runs disturbed by hotplug, thermal and
//! governor faults must complete without panicking, report degraded
//! performance/power honestly, and reproduce bit-identically.

use biglittle::{RunResult, Simulation, SystemConfig};
use bl_platform::ids::{ClusterId, CpuId};
use bl_simcore::error::SimError;
use bl_simcore::fault::{FaultKind, FaultPlan};
use bl_simcore::time::{SimDuration, SimTime};
use bl_workloads::apps::app_by_name;

const BIG_CPUS: [usize; 4] = [4, 5, 6, 7];

fn run_app_with_plan(name: &str, seed: u64, plan: FaultPlan) -> RunResult {
    let app = app_by_name(name).unwrap();
    let mut sim = Simulation::try_new(SystemConfig::baseline().with_seed(seed).with_faults(plan))
        .expect("valid config");
    sim.spawn_app(&app);
    sim.try_run_app(&app).expect("faulted run must complete")
}

#[test]
fn big_cluster_outage_degrades_latency_but_completes() {
    let clean = run_app_with_plan("Photo Editor", 7, FaultPlan::new());
    // The whole big cluster dies shortly after launch and stays dead for
    // most of the run.
    let plan = FaultPlan::new().with_outage(
        SimTime::from_millis(100),
        SimDuration::from_secs(60),
        &BIG_CPUS,
    );
    let faulted = run_app_with_plan("Photo Editor", 7, plan);

    assert_eq!(faulted.resilience.hotplug_offline, 4);
    assert!(faulted.resilience.faults_injected >= 4);
    let (clean_lat, faulted_lat) = (clean.latency.unwrap(), faulted.latency.unwrap());
    assert!(
        faulted_lat >= clean_lat,
        "little-only must not be faster: {faulted_lat} vs {clean_lat}"
    );
    // Degraded power too: no big cores burning.
    assert!(
        faulted.avg_power_mw < clean.avg_power_mw,
        "{} vs {}",
        faulted.avg_power_mw,
        clean.avg_power_mw
    );
}

#[test]
fn outage_and_recovery_rehomes_and_restores() {
    // 300 ms outage in the middle of an FPS run; CPUs come back after.
    let plan = FaultPlan::new().with_outage(
        SimTime::from_millis(500),
        SimDuration::from_millis(300),
        &BIG_CPUS,
    );
    let app = app_by_name("Angry Bird").unwrap();
    let mut sim =
        Simulation::try_new(SystemConfig::baseline().with_seed(3).with_faults(plan)).unwrap();
    sim.spawn_app(&app);
    sim.try_run_until(SimTime::from_secs(2)).unwrap();
    let r = sim.finish();
    assert_eq!(r.resilience.hotplug_offline, 4);
    assert_eq!(r.resilience.hotplug_online, 4);
    // All big CPUs are usable again.
    for cpu in BIG_CPUS {
        assert!(sim.state().is_online(CpuId(cpu)));
    }
    sim.kernel().check_no_lost_tasks().unwrap();
    assert!(r.fps.expect("game still renders").avg_fps > 10.0);
}

#[test]
fn offlining_every_little_cpu_is_refused_not_fatal() {
    let mut plan = FaultPlan::new();
    for cpu in 0..4 {
        plan.schedule(SimTime::from_millis(50), FaultKind::CpuOffline { cpu });
    }
    let r = run_app_with_plan("Browser", 5, plan);
    // Three go down, the last online little is refused.
    assert_eq!(r.resilience.hotplug_offline, 3);
    assert_eq!(r.resilience.faults_rejected, 1);
}

#[test]
fn sustained_big_load_trips_thermal_throttling() {
    let mut sim = Simulation::try_new(
        SystemConfig::pinned_frequencies(1_300_000, 1_900_000).with_thermal(true),
    )
    .unwrap();
    for cpu in BIG_CPUS {
        sim.spawn_microbench(CpuId(cpu), 0.95, SimDuration::from_millis(10));
    }
    sim.try_run_until(SimTime::from_secs(30)).unwrap();
    let r = sim.finish();
    let big = ClusterId(1);

    assert!(r.resilience.throttle_trips >= 1, "{:?}", r.resilience);
    assert!(
        r.resilience.peak_temp_c[big.0] >= 85.0,
        "peak {:?}",
        r.resilience.peak_temp_c
    );
    assert!(
        r.resilience.total_throttled() > SimDuration::from_secs(5),
        "throttled for {:?}",
        r.resilience.throttled_time
    );
    // While throttled the big cluster sits at (or below) the 1.2 GHz cap
    // even though userspace keeps requesting 1.9 GHz.
    if sim.is_throttled(big) {
        assert!(sim.state().cluster_freq_khz(big) <= 1_200_000);
        assert_eq!(sim.state().freq_cap(big), Some(1_200_000));
    }
    // The little cluster never gets hot enough to matter.
    assert!(r.resilience.peak_temp_c[0] < 95.0);
}

#[test]
fn throttled_run_uses_less_power_than_unthrottled() {
    let run = |thermal: bool| {
        let mut sim = Simulation::try_new(
            SystemConfig::pinned_frequencies(1_300_000, 1_900_000).with_thermal(thermal),
        )
        .unwrap();
        for cpu in BIG_CPUS {
            sim.spawn_microbench(CpuId(cpu), 0.95, SimDuration::from_millis(10));
        }
        sim.try_run_until(SimTime::from_secs(30)).unwrap();
        sim.finish()
    };
    let free = run(false);
    let throttled = run(true);
    assert!(free.resilience.is_quiet());
    assert!(
        throttled.avg_power_mw < free.avg_power_mw - 200.0,
        "throttling must cut power: {} vs {}",
        throttled.avg_power_mw,
        free.avg_power_mw
    );
}

#[test]
fn governor_stall_drops_exactly_the_missed_samples() {
    let plan = FaultPlan::new().with(
        SimTime::from_millis(100),
        FaultKind::GovernorStall {
            cluster: 0,
            missed_samples: 5,
        },
    );
    let mut sim =
        Simulation::try_new(SystemConfig::baseline().with_seed(1).with_faults(plan)).unwrap();
    sim.try_run_until(SimTime::from_secs(1)).unwrap();
    let r = sim.finish();
    assert_eq!(r.resilience.gov_samples_missed, 5);
    assert_eq!(r.resilience.faults_injected, 1);
}

#[test]
fn faulted_runs_reproduce_bit_identically() {
    let plan = FaultPlan::random(11, 12, SimDuration::from_secs(2), 8, 2);
    let a = run_app_with_plan("Youtube", 9, plan.clone());
    let b = run_app_with_plan("Youtube", 9, plan.clone());
    assert_eq!(a, b, "same config + plan + seed must be bit-identical");
    // A different plan perturbs the run.
    let other = FaultPlan::random(12, 12, SimDuration::from_secs(2), 8, 2);
    let c = run_app_with_plan("Youtube", 9, other);
    assert_ne!(a, c);
}

#[test]
fn invalid_plans_and_configs_are_typed_errors() {
    let bad_plan = FaultPlan::new().with(SimTime::ZERO, FaultKind::CpuOffline { cpu: 42 });
    let err = Simulation::try_new(SystemConfig::baseline().with_faults(bad_plan)).unwrap_err();
    assert!(matches!(err, SimError::InvalidFaultPlan { index: 0, .. }));

    let mut cfg = SystemConfig::baseline();
    cfg.governors.truncate(1);
    let err = Simulation::try_new(cfg).unwrap_err();
    assert!(matches!(err, SimError::InvalidConfig { .. }));
}

#[test]
fn thermal_spike_fault_forces_the_thermal_model_on() {
    // thermal_enabled stays false, but the spike still lands in a node and
    // caps the cluster.
    let plan = FaultPlan::new().with(
        SimTime::from_millis(200),
        FaultKind::ThermalSpike {
            cluster: 1,
            delta_c: 80.0,
        },
    );
    let mut sim =
        Simulation::try_new(SystemConfig::baseline().with_seed(2).with_faults(plan)).unwrap();
    sim.try_run_until(SimTime::from_millis(400)).unwrap();
    let r = sim.finish();
    assert!(r.resilience.peak_temp_c[1] >= 85.0);
    assert!(r.resilience.throttle_trips >= 1);
    assert_eq!(sim.state().freq_cap(ClusterId(1)), Some(1_200_000));
}

mod random_plans {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        // Random fault schedules (hotplug storms included) may never break
        // the one-little-always-online rule or lose a task.
        #![proptest_config(ProptestConfig::with_cases(6))]
        #[test]
        fn random_hotplug_never_violates_invariants(seed in 0u64..1_000, n in 1usize..10) {
            let plan = FaultPlan::random(seed, n, SimDuration::from_millis(800), 8, 2);
            let app = app_by_name("Browser").unwrap();
            let mut sim = Simulation::try_new(
                SystemConfig::baseline().with_seed(seed).with_faults(plan),
            )
            .unwrap();
            sim.spawn_app(&app);
            sim.try_run_until(SimTime::from_secs(1)).unwrap();
            let little_online = (0..4).filter(|&c| sim.state().is_online(CpuId(c))).count();
            prop_assert!(little_online >= 1, "no little cpu online after faults");
            sim.kernel().check_no_lost_tasks().unwrap();
        }
    }
}

#[test]
fn quiet_runs_report_quiet_resilience() {
    let r = run_app_with_plan("PDF Reader", 4, FaultPlan::new());
    assert!(r.resilience.is_quiet());
    assert_eq!(r.resilience.tasks_rehomed, 0);
    assert!(r.resilience.peak_temp_c.is_empty(), "thermal model off");
}
