//! Determinism guarantees: identical seeds give bit-identical results;
//! different seeds perturb the stochastic draws.

use biglittle::{RunResult, Simulation, SystemConfig};
use bl_simcore::fault::FaultPlan;
use bl_simcore::time::SimDuration;
use bl_workloads::apps::{app_by_name, AppModel};

fn run(app: &AppModel, seed: u64) -> RunResult {
    let mut sim = Simulation::try_new(SystemConfig::baseline().with_seed(seed)).unwrap();
    sim.spawn_app(app);
    sim.try_run_app(app).unwrap()
}

#[test]
fn same_seed_is_bit_identical() {
    for name in ["PDF Reader", "Eternity Warriors 2", "Encoder"] {
        let app = app_by_name(name).unwrap();
        let a = run(&app, 7);
        let b = run(&app, 7);
        assert_eq!(a, b, "{name}: same seed must reproduce exactly");
    }
}

#[test]
fn different_seeds_differ_but_stay_in_band() {
    let app = app_by_name("Video Editor").unwrap();
    let a = run(&app, 1);
    let b = run(&app, 2);
    assert_ne!(a.latency, b.latency, "different seeds should perturb draws");
    // But the characterization stays in the same regime.
    let (la, lb) = (
        a.latency.unwrap().as_secs_f64(),
        b.latency.unwrap().as_secs_f64(),
    );
    assert!((la / lb) < 1.5 && (lb / la) < 1.5, "{la} vs {lb}");
    assert!((a.tlp.tlp - b.tlp.tlp).abs() < 0.8);
}

#[test]
fn same_seed_and_fault_plan_is_bit_identical() {
    let plan = FaultPlan::random(21, 8, SimDuration::from_secs(2), 8, 2);
    let run = |seed| {
        let app = app_by_name("Eternity Warriors 2").unwrap();
        let mut sim = Simulation::try_new(
            SystemConfig::baseline()
                .with_seed(seed)
                .with_faults(plan.clone())
                .with_thermal(true),
        )
        .unwrap();
        sim.spawn_app(&app);
        sim.try_run_app(&app).unwrap()
    };
    let a = run(13);
    let b = run(13);
    assert_eq!(a, b, "same seed + same fault plan must reproduce exactly");
    assert_ne!(
        a,
        run(14),
        "a different seed should perturb the faulted run"
    );
}

#[test]
fn json_round_trip_preserves_results() {
    let app = app_by_name("Youtube").unwrap();
    let r = run(&app, 3);
    let json = serde_json::to_string(&r).unwrap();
    let back: RunResult = serde_json::from_str(&json).unwrap();
    assert_eq!(r, back);
}
