//! Kernel-layer bit-identity: every batch kernel in
//! `bl_simcore::kernels`, and every simulator path ported onto one, must
//! produce bit-for-bit the results of its scalar reference — the same
//! association, the same summation order, masked lanes as exact
//! arithmetic. Inputs are drawn NaN- and subnormal-free; the properties
//! compare raw bit patterns, not tolerances.

use bl_kernel::LoadSet;
use bl_platform::exynos::{exynos5422, BIG_CLUSTER, LITTLE_CLUSTER};
use bl_platform::{CoreConfig, PlatformState};
use bl_power::{ClusterThermal, PowerModel, ThermalBank, ThermalParams};
use bl_simcore::kernels;
use bl_simcore::time::{SimDuration, SimTime};
use proptest::prelude::*;

/// Bit-compares two `f64` slices, reporting the first diverging lane.
fn assert_bits_eq(got: &[f64], want: &[f64]) {
    assert_eq!(got.len(), want.len());
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(g.to_bits(), w.to_bits(), "lane {i} diverged: {g} vs {w}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---- raw lane kernels vs inline scalar forms --------------------------

    #[test]
    fn fused_decay_accumulate_matches_scalar(
        lanes in proptest::collection::vec((0.0f64..1024.0, 0.0f64..1.0, 0.0f64..1024.0), 0..24),
    ) {
        let mut values: Vec<f64> = lanes.iter().map(|l| l.0).collect();
        let decays: Vec<f64> = lanes.iter().map(|l| l.1).collect();
        let contribs: Vec<f64> = lanes.iter().map(|l| l.2).collect();
        let expect: Vec<f64> = lanes
            .iter()
            .map(|&(v, d, c)| v * d + c * (1.0 - d))
            .collect();
        kernels::fused_decay_accumulate(&mut values, &decays, &contribs);
        assert_bits_eq(&values, &expect);
    }

    #[test]
    fn decay_toward_matches_scalar(
        lanes in proptest::collection::vec((20.0f64..110.0, 20.0f64..110.0, 0.0f64..1.0), 0..24),
    ) {
        let mut values: Vec<f64> = lanes.iter().map(|l| l.0).collect();
        let targets: Vec<f64> = lanes.iter().map(|l| l.1).collect();
        let decays: Vec<f64> = lanes.iter().map(|l| l.2).collect();
        let expect: Vec<f64> = lanes
            .iter()
            .map(|&(v, t, d)| t + (v - t) * d)
            .collect();
        kernels::decay_toward(&mut values, &targets, &decays);
        assert_bits_eq(&values, &expect);
    }

    #[test]
    fn relu_weighted_sum_matches_ordered_sum(
        acts in proptest::collection::vec(-0.5f64..1.5, 0..24),
        weight in 0.0f64..500.0,
    ) {
        let mut expect = 0.0;
        for &a in &acts {
            expect += weight * a.max(0.0);
        }
        let got = kernels::relu_weighted_sum(&acts, weight);
        prop_assert_eq!(got.to_bits(), expect.to_bits());
    }

    #[test]
    fn mixed_idle_power_matches_branchy_reference(
        lanes in proptest::collection::vec((0.0f64..1.5, 0.0f64..1.0), 0..24),
        leak_v in 0.5f64..10.0,
        dvvf in 0.0f64..500.0,
    ) {
        let acts: Vec<f64> = lanes.iter().map(|l| l.0).collect();
        let scales: Vec<f64> = lanes.iter().map(|l| l.1).collect();
        let mut expect = 0.0;
        let mut all_deep = true;
        for (&a, &s) in acts.iter().zip(&scales) {
            if a > 0.0 {
                all_deep = false;
                expect += leak_v + dvvf * a.max(0.0);
            } else {
                if s >= kernels::DEEP_IDLE_SCALE {
                    all_deep = false;
                }
                expect += leak_v * s;
            }
        }
        let (sum, deep) = kernels::mixed_idle_power(&acts, &scales, leak_v, dvvf);
        prop_assert_eq!(sum.to_bits(), expect.to_bits());
        prop_assert_eq!(deep, all_deep);
    }

    // ---- ported simulator paths vs their scalar references ----------------

    // PELT batch update: driving a LoadSet through `update_batch_with` must
    // leave every lane bit-equal to per-index `update` calls with the same
    // schedule, including lanes skipped on some steps.
    #[test]
    fn loadset_batch_matches_per_index(
        n_lanes in 1usize..12,
        halflife in 8.0f64..128.0,
        steps in proptest::collection::vec(
            (1u64..40, proptest::collection::vec(proptest::option::of(0.0f64..1.0), 12..13)),
            1..60,
        ),
    ) {
        let t0 = SimTime::ZERO;
        let mut batch = LoadSet::new(halflife);
        let mut scalar = LoadSet::new(halflife);
        for _ in 0..n_lanes {
            batch.push(t0);
            scalar.push(t0);
        }
        let mut now = t0;
        for (dt_ms, contribs) in &steps {
            now += SimDuration::from_millis(*dt_ms);
            for (idx, c) in contribs.iter().enumerate().take(n_lanes) {
                if let Some(r) = c {
                    scalar.update(idx, now, *r);
                }
            }
            batch.update_batch_with(now, |idx| contribs[idx]);
            assert_bits_eq(batch.values(), scalar.values());
        }
    }

    // Thermal RC step: the bank's vector path must track a vector of
    // scalar `ClusterThermal` nodes bit-for-bit through heating, trips,
    // hysteresis release and cooldown.
    #[test]
    fn thermal_bank_matches_scalar_nodes(
        n_nodes in 1usize..6,
        steps in proptest::collection::vec(
            (1u64..500, proptest::collection::vec(0.0f64..8.0, 6..7)),
            1..80,
        ),
    ) {
        let params: Vec<ThermalParams> = (0..n_nodes)
            .map(|i| {
                if i % 2 == 0 {
                    ThermalParams::exynos5422_big()
                } else {
                    ThermalParams::exynos5422_little()
                }
            })
            .collect();
        let mut scalar: Vec<ClusterThermal> =
            params.iter().map(|p| ClusterThermal::new(*p)).collect();
        let mut bank = ThermalBank::new(params);
        let mut changed = Vec::new();
        for (dt_ms, powers) in &steps {
            let dt = SimDuration::from_millis(*dt_ms);
            let powers = &powers[..n_nodes];
            let mut scalar_changed = Vec::new();
            for (i, node) in scalar.iter_mut().enumerate() {
                if node.advance(dt, powers[i]) {
                    scalar_changed.push(i);
                }
            }
            changed.clear();
            bank.advance_all(dt, powers, &mut changed);
            prop_assert_eq!(&changed, &scalar_changed);
            for (i, node) in scalar.iter().enumerate() {
                prop_assert_eq!(
                    bank.temp_c(i).to_bits(),
                    node.temp_c().to_bits(),
                    "node {} temperature diverged",
                    i
                );
                prop_assert_eq!(bank.is_throttled(i), node.is_throttled());
                prop_assert_eq!(bank.cap_khz(i), node.cap_khz());
            }
        }
    }

    // Cluster power: the gathered-lane kernel path must equal the branchy
    // per-CPU reference loop across busy/shallow/deep lanes, hotplug
    // configurations, frequencies and both idle-scale modes.
    #[test]
    fn power_model_matches_scalar_reference(
        acts in proptest::collection::vec(0.0f64..1.5, 8..9),
        scales in proptest::collection::vec(0.0f64..1.0, 8..9),
        zero_mask in 0u8..=255,
        little in 1usize..=4,
        big in 0usize..=4,
        little_khz in 200_000u32..1_500_000,
        big_khz in 200_000u32..2_100_000,
        with_idle in proptest::bool::ANY,
        screen in proptest::bool::ANY,
    ) {
        let p = exynos5422();
        let model = if screen {
            PowerModel::screen_on()
        } else {
            PowerModel::screen_off()
        };
        let mut state = PlatformState::new(&p.topology);
        state.apply_core_config(&p.topology, CoreConfig::new(little, big)).unwrap();
        for (cluster, khz) in [(LITTLE_CLUSTER, little_khz), (BIG_CLUSTER, big_khz)] {
            let opps = &p.topology.cluster(cluster).core.opps;
            let freq = opps.round_down(khz.max(opps.min_khz())).freq_khz;
            state.set_cluster_freq(&p.topology, cluster, freq);
        }
        // Force some lanes exactly idle so the busy/idle branch is taken on
        // both sides (a strictly positive draw would only test one arm).
        let activity: Vec<f64> = acts
            .iter()
            .enumerate()
            .map(|(i, &a)| if zero_mask & (1 << i) != 0 { 0.0 } else { a })
            .collect();
        let idle = with_idle.then_some(scales.as_slice());
        let fast = model.instant_mw_with_idle(&p.topology, &state, &activity, idle);
        let reference = model.instant_mw_with_idle_ref(&p.topology, &state, &activity, idle);
        prop_assert_eq!(fast.to_bits(), reference.to_bits(), "{} vs {}", fast, reference);
    }
}
