//! Sweep-engine guarantees: parallel execution is bit-identical to serial,
//! panicking scenarios are isolated, the result cache round-trips, and seed
//! derivation is deterministic and positional.

use biglittle::scenario::Scenario;
use biglittle::{sweep, SweepOptions, SystemConfig};
use bl_platform::ids::CpuId;
use bl_simcore::error::SimError;
use bl_simcore::fault::FaultPlan;
use bl_simcore::rng::derive_seed;
use bl_simcore::time::SimDuration;
use bl_workloads::apps::{app_by_name, mobile_apps};

/// A short, cheap app scenario (optionally with a random fault plan).
fn app_scenario(app_idx: usize, seed: u64, faulted: bool) -> Scenario {
    let apps = mobile_apps();
    let app = apps[app_idx % apps.len()].clone();
    let mut cfg = SystemConfig::baseline().with_seed(seed);
    if faulted {
        cfg = cfg.with_faults(FaultPlan::random(
            seed,
            4,
            SimDuration::from_millis(500),
            8,
            2,
        ));
    }
    Scenario::app(
        format!("sweep-test/{}/{seed}/{faulted}", app.name),
        app,
        cfg,
    )
}

#[test]
fn a_panicking_scenario_is_isolated_from_its_siblings() {
    // CPU 99 does not exist on the Exynos 5422; spawning the microbench
    // panics inside the worker. The sweep must surface that as a typed
    // error in the right slot while every sibling completes normally.
    let scenarios = vec![
        app_scenario(0, 3, false),
        Scenario::microbench(
            "sweep-test/bad-cpu",
            CpuId(99),
            0.5,
            SimDuration::from_millis(10),
            SimDuration::from_millis(50),
            SystemConfig::baseline(),
        ),
        app_scenario(1, 3, false),
    ];
    let results = sweep::run(scenarios, 4);
    assert_eq!(results.len(), 3);
    assert!(results[0].is_ok(), "sibling before the panic must complete");
    assert!(results[2].is_ok(), "sibling after the panic must complete");
    match &results[1] {
        Err(SimError::ScenarioPanicked { index, label, .. }) => {
            assert_eq!(*index, 1);
            assert_eq!(label, "sweep-test/bad-cpu");
        }
        other => panic!("expected ScenarioPanicked, got {other:?}"),
    }
}

#[test]
fn cache_round_trips_and_counts_hits() {
    let dir = std::env::temp_dir().join(format!("bl-sweep-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let scenarios = vec![app_scenario(2, 9, false), app_scenario(3, 9, false)];
    let opts = SweepOptions::serial().cached(&dir);

    let cold = sweep::run_with(&scenarios, &opts);
    assert_eq!(cold.stats.cache_hits, 0, "first run must miss");
    let warm = sweep::run_with(&scenarios, &opts);
    assert_eq!(warm.stats.cache_hits, 2, "second run must hit for both");

    for (a, b) in cold.results.iter().zip(&warm.results) {
        assert_eq!(
            a.as_ref().unwrap(),
            b.as_ref().unwrap(),
            "cached result must equal the computed one"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_key_distinguishes_seed_and_config() {
    let a = app_scenario(0, 1, false);
    let b = app_scenario(0, 2, false);
    let c = app_scenario(0, 1, true);
    assert_eq!(sweep::cache_key(&a), sweep::cache_key(&a));
    assert_ne!(sweep::cache_key(&a), sweep::cache_key(&b));
    assert_ne!(sweep::cache_key(&a), sweep::cache_key(&c));
}

#[test]
fn derive_seed_is_deterministic_and_spreads() {
    let s: Vec<u64> = (0..64).map(|i| derive_seed(42, i)).collect();
    let again: Vec<u64> = (0..64).map(|i| derive_seed(42, i)).collect();
    assert_eq!(s, again);
    let mut uniq = s.clone();
    uniq.sort_unstable();
    uniq.dedup();
    assert_eq!(uniq.len(), s.len(), "derived seeds must not collide");
    assert_ne!(derive_seed(42, 0), derive_seed(43, 0));
}

#[test]
fn seed_scenarios_assigns_positional_seeds() {
    let mut scenarios = vec![app_scenario(0, 0, false), app_scenario(1, 0, false)];
    sweep::seed_scenarios(&mut scenarios, 7);
    assert_eq!(scenarios[0].config.seed, derive_seed(7, 0));
    assert_eq!(scenarios[1].config.seed, derive_seed(7, 1));
}

mod parallel_identity {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        // The tentpole guarantee: any batch — healthy, faulted, or
        // panicking — produces bit-identical results at jobs=1 and jobs=8.
        #![proptest_config(ProptestConfig::with_cases(4))]
        #[test]
        fn jobs_do_not_change_results(
            picks in proptest::collection::vec((0usize..12, 0u64..50, proptest::bool::ANY), 2..5),
            with_bad in proptest::bool::ANY,
        ) {
            let mut scenarios: Vec<Scenario> = picks
                .iter()
                .map(|&(i, seed, faulted)| app_scenario(i, seed, faulted))
                .collect();
            if with_bad {
                scenarios.push(Scenario::microbench(
                    "sweep-test/bad-cpu",
                    CpuId(99),
                    0.5,
                    SimDuration::from_millis(10),
                    SimDuration::from_millis(50),
                    SystemConfig::baseline(),
                ));
            }
            let serial = sweep::run(scenarios.clone(), 1);
            let parallel = sweep::run(scenarios, 8);
            prop_assert_eq!(serial.len(), parallel.len());
            for (s, p) in serial.iter().zip(&parallel) {
                prop_assert_eq!(s, p, "jobs=1 and jobs=8 must be bit-identical");
            }
        }
    }
}

#[test]
fn run_all_matches_direct_scenario_runs() {
    let app = app_by_name("PDF Reader").unwrap();
    let sc = Scenario::app(
        "sweep-test/direct",
        app,
        SystemConfig::baseline().with_seed(5),
    );
    let direct = sc.run().unwrap();
    let swept = sweep::run_all(std::slice::from_ref(&sc), &SweepOptions::with_jobs(2));
    assert_eq!(swept[0], direct);
}
