//! Persistent snapshot-store correctness: serialized snapshots must
//! hydrate back to byte-identical simulations (guarded by the state
//! fingerprint), a store-backed sweep must publish trunks once and
//! hydrate them on every later invocation, and corrupt or mismatched
//! entries must self-heal — dropped and rebuilt, never trusted.

use biglittle::{sweep, LateBindings, Scenario, SimSnapshot, StopWhen, SweepOptions, SystemConfig};
use bl_governor::GovernorConfig;
use bl_simcore::budget::RunBudget;
use bl_simcore::fault::{FaultKind, FaultPlan};
use bl_simcore::snapstore::SnapStore;
use bl_simcore::time::{SimDuration, SimTime};
use bl_workloads::apps::app_by_name;
use proptest::prelude::*;
use std::path::{Path, PathBuf};

const WARMUP_MS: u64 = 400;
const STOP_MS: u64 = 600;

/// One grid point, mirroring `tests/snapshot.rs`: a TLP-heavy app warmed
/// up for `WARMUP_MS` with the varying knobs bound late. `prefix_faults`
/// leaves a cluster outage in flight at the snapshot instant.
fn grid_point(
    label: &str,
    seed: u64,
    skip_ahead: bool,
    prefix_faults: bool,
    late: LateBindings,
) -> Scenario {
    let mut cfg = SystemConfig::baseline()
        .with_seed(seed)
        .with_skip_ahead(skip_ahead);
    if prefix_faults {
        cfg = cfg.with_faults(FaultPlan::new().with_outage(
            SimTime::from_millis(100),
            SimDuration::from_millis(500),
            &[1, 5],
        ));
    }
    let app = app_by_name("Angry Bird").unwrap();
    Scenario::app(label, app, cfg)
        .with_stop(StopWhen::Deadline(SimDuration::from_millis(STOP_MS)))
        .with_warmup(SimDuration::from_millis(WARMUP_MS))
        .with_late(late)
}

fn late_variant(idx: usize) -> LateBindings {
    match idx % 4 {
        0 => LateBindings::default(),
        1 => LateBindings {
            governors: Some(vec![GovernorConfig::Performance, GovernorConfig::Powersave]),
            faults: FaultPlan::new(),
        },
        2 => LateBindings {
            governors: None,
            faults: FaultPlan::new().with(
                SimTime::from_millis(WARMUP_MS + 50),
                FaultKind::ThermalSpike {
                    cluster: 0,
                    delta_c: 6.0,
                },
            ),
        },
        _ => LateBindings {
            governors: Some(vec![GovernorConfig::Powersave, GovernorConfig::Performance]),
            faults: FaultPlan::new().with(
                SimTime::from_millis(WARMUP_MS),
                FaultKind::GovernorStall {
                    cluster: 1,
                    missed_samples: 2,
                },
            ),
        },
    }
}

/// Round-trips a snapshot through its serialized payload and returns the
/// hydrated copy, verifying against the original fingerprint.
fn round_trip(sc: &Scenario, snap: &SimSnapshot) -> SimSnapshot {
    let payload = snap.to_payload().expect("snapshot serializes");
    SimSnapshot::from_payload(&sc.platform.build(), &payload, snap.fingerprint())
        .expect("payload hydrates")
}

#[test]
fn payload_round_trip_preserves_fingerprint_and_forks() {
    let sc = grid_point("rt", 11, true, true, late_variant(1));
    let budget = RunBudget::unlimited();
    let snap = sc.snapshot_prefix(&budget).unwrap();
    let hydrated = round_trip(&sc, &snap);
    assert_eq!(snap.fingerprint(), hydrated.fingerprint());
    let cold = sc.run_with_budget(&budget).unwrap();
    let forked = sc.run_forked(&hydrated, &budget).unwrap();
    assert_eq!(cold, forked);
    // The hydrated snapshot is reusable, like the in-memory original.
    assert_eq!(cold, sc.run_forked(&hydrated, &budget).unwrap());
}

#[test]
fn fingerprint_mismatch_rejects_the_payload() {
    let sc = grid_point("fp-gate", 5, true, false, late_variant(0));
    let snap = sc.snapshot_prefix(&RunBudget::unlimited()).unwrap();
    let payload = snap.to_payload().unwrap();
    let err = SimSnapshot::from_payload(&sc.platform.build(), &payload, snap.fingerprint() ^ 1);
    assert!(err.is_err(), "a wrong fingerprint must never hydrate");
}

/// The committed fingerprint of one pinned scenario. This is a regression
/// tripwire, not a universal constant: it moves whenever the simulation's
/// numerics change on purpose (new platform tables, a reworked governor,
/// an event reordering). When a change here is *intended*, update the
/// constant; when this fails unexpectedly, determinism broke.
const GOLDEN_FINGERPRINT: u64 = 17027290288844323559;

#[test]
fn golden_fingerprint_regression() {
    let sc = grid_point("golden", 42, true, false, late_variant(0));
    let snap = sc.snapshot_prefix(&RunBudget::unlimited()).unwrap();
    assert_eq!(
        snap.fingerprint(),
        GOLDEN_FINGERPRINT,
        "pinned scenario's warm-state fingerprint moved: either an intended \
         numeric change (update the constant) or a determinism regression"
    );
}

// ---- store-backed sweeps ---------------------------------------------------

/// The warm-up ladder for store sweeps: nested prefixes.
const LADDER_MS: [u64; 3] = [200, 320, 400];

fn ladder_point(label: &str, seed: u64, level: usize, late: LateBindings) -> Scenario {
    let via: Vec<SimDuration> = LADDER_MS[..level]
        .iter()
        .map(|&ms| SimDuration::from_millis(ms))
        .collect();
    grid_point(label, seed, true, false, late)
        .with_stop(StopWhen::Deadline(SimDuration::from_millis(
            LADDER_MS[level] + 150,
        )))
        .with_warmup(SimDuration::from_millis(LADDER_MS[level]))
        .with_warmup_via(via)
}

fn ladder_batch(seed: u64) -> Vec<Scenario> {
    [0usize, 1, 2, 2]
        .iter()
        .enumerate()
        .map(|(i, &lv)| ladder_point(&format!("store-{i}"), seed, lv, late_variant(i)))
        .collect()
}

fn result_bytes(report: &sweep::SweepReport) -> Vec<String> {
    report
        .results
        .iter()
        .map(|r| serde_json::to_string(r.as_ref().unwrap()).unwrap())
        .collect()
}

fn temp_dir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("bl-snapstore-test-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn snap_files(dir: &Path) -> Vec<PathBuf> {
    let mut v: Vec<PathBuf> = std::fs::read_dir(dir)
        .map(|rd| {
            rd.flatten()
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|x| x == "snap"))
                .collect()
        })
        .unwrap_or_default();
    v.sort();
    v
}

#[test]
fn store_publishes_once_then_hydrates_bit_identically() {
    let scenarios = ladder_batch(13);
    let dir = temp_dir("roundtrip");
    let run = |store: bool| {
        let mut opts = SweepOptions::serial();
        if store {
            opts = opts.snap_stored(&dir);
        }
        sweep::run_with(&scenarios, &opts)
    };

    let cold = sweep::run_with(&scenarios, &SweepOptions::serial().prefix_sharing(false));

    // First store run: the trunk simulates once, every rung publishes.
    let first = run(true);
    assert_eq!(first.stats.snapshot.trunk_runs, 1);
    assert_eq!(first.stats.snapshot.published, LADDER_MS.len() as u64);
    assert_eq!(first.stats.snapshot.hydrated, 0);
    assert_eq!(first.stats.snapshot.forks, scenarios.len() as u64);
    assert_eq!(snap_files(&dir).len(), LADDER_MS.len());
    assert_eq!(result_bytes(&cold), result_bytes(&first));

    // Second store run: every rung hydrates, no trunk simulates, and the
    // saved-time credit is the deepest rung's recorded build time.
    let second = run(true);
    assert_eq!(second.stats.snapshot.trunk_runs, 0);
    assert_eq!(second.stats.snapshot.hydrated, LADDER_MS.len() as u64);
    assert!(second.stats.snapshot.trunk_ms_saved > 0.0);
    assert_eq!(result_bytes(&cold), result_bytes(&second));

    // Disabling prefix sharing also disables the store, even when a
    // directory is configured.
    let off = sweep::run_with(
        &scenarios,
        &SweepOptions::serial()
            .prefix_sharing(false)
            .snap_stored(&dir),
    );
    assert_eq!(off.stats.snapshot.hydrated, 0);
    assert_eq!(off.stats.snapshot.published, 0);
    assert_eq!(result_bytes(&cold), result_bytes(&off));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn singleton_scenarios_hydrate_from_the_store_too() {
    // One scenario alone gains nothing from in-process sharing — but with
    // a warm store, even a singleton skips its warm-up replay.
    let sc = vec![ladder_point("solo", 29, 2, late_variant(1))];
    let dir = temp_dir("solo");
    let cold = sweep::run_with(&sc, &SweepOptions::serial().prefix_sharing(false));
    let publish = sweep::run_with(&sc, &SweepOptions::serial().snap_stored(&dir));
    assert_eq!(publish.stats.snapshot.trunk_runs, 1);
    assert_eq!(publish.stats.snapshot.published, LADDER_MS.len() as u64);
    let hydrate = sweep::run_with(&sc, &SweepOptions::serial().snap_stored(&dir));
    assert_eq!(hydrate.stats.snapshot.trunk_runs, 0);
    assert_eq!(hydrate.stats.snapshot.hydrated, LADDER_MS.len() as u64);
    assert_eq!(hydrate.stats.snapshot.forks, 1);
    assert_eq!(result_bytes(&cold), result_bytes(&publish));
    assert_eq!(result_bytes(&cold), result_bytes(&hydrate));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_store_entries_self_heal_and_rebuild() {
    let scenarios = ladder_batch(17);
    let dir = temp_dir("corrupt");
    let run = || sweep::run_with(&scenarios, &SweepOptions::serial().snap_stored(&dir));
    let cold = sweep::run_with(&scenarios, &SweepOptions::serial().prefix_sharing(false));
    let first = run();
    assert_eq!(first.stats.snapshot.published, LADDER_MS.len() as u64);

    // Truncate one rung mid-payload: the checksum no longer matches, the
    // store deletes the entry on load, and the all-or-rebuild chain
    // policy re-simulates (and republishes) the whole trunk.
    let victim = snap_files(&dir).pop().expect("a published rung on disk");
    let bytes = std::fs::read(&victim).unwrap();
    std::fs::write(&victim, &bytes[..bytes.len() / 2]).unwrap();
    let healed = run();
    assert_eq!(healed.stats.snapshot.hydrated, 0, "no rung may survive");
    assert_eq!(healed.stats.snapshot.trunk_runs, 1);
    assert_eq!(healed.stats.snapshot.published, LADDER_MS.len() as u64);
    assert_eq!(result_bytes(&cold), result_bytes(&healed));

    // A checksum-valid entry whose *fingerprint* lies: hydration verifies
    // the rebuilt state against the recorded fingerprint, discards the
    // entry and re-simulates rather than trusting the bytes.
    let store = SnapStore::open(&dir);
    let key = snap_files(&dir)
        .first()
        .and_then(|p| p.file_stem().map(|s| s.to_string_lossy().into_owned()))
        .expect("a published rung on disk");
    let mut entry = store.load(&key).expect("entry loads");
    entry.fingerprint ^= 1;
    store.publish(&entry).unwrap();
    let reverified = sweep::run_with(&scenarios, &SweepOptions::serial().snap_stored(&dir));
    assert_eq!(reverified.stats.snapshot.trunk_runs, 1);
    assert_eq!(result_bytes(&cold), result_bytes(&reverified));
    // The store is clean again afterwards: a fourth run hydrates fully.
    let clean = run();
    assert_eq!(clean.stats.snapshot.trunk_runs, 0);
    assert_eq!(clean.stats.snapshot.hydrated, LADDER_MS.len() as u64);

    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    // Randomized hydrate-vs-cold equivalence: the snapshot goes through
    // the full serialize → deserialize → fingerprint-verify pipeline
    // before forking, across the late-binding grid, with and without
    // faults active at the snapshot instant, in both hot-loop modes.
    #[test]
    fn hydrate_vs_cold_bit_identical(
        seed in 0u64..1_000,
        late_idx in 0usize..4,
        prefix_faults in proptest::bool::ANY,
        skip_ahead in proptest::bool::ANY,
    ) {
        let sc = grid_point("prop", seed, skip_ahead, prefix_faults, late_variant(late_idx));
        let budget = RunBudget::unlimited();
        let cold = sc.run_with_budget(&budget).unwrap();
        let snap = sc.snapshot_prefix(&budget).unwrap();
        let hydrated = round_trip(&sc, &snap);
        let forked = sc.run_forked(&hydrated, &budget).unwrap();
        prop_assert_eq!(cold, forked);
    }
}
