//! Cross-crate integration tests: full simulations exercising platform,
//! kernel, governor, power and metrics together through the public API.

use biglittle::{Simulation, SystemConfig};
use bl_governor::GovernorConfig;
use bl_kernel::hmp::HmpParams;
use bl_platform::config::CoreConfig;
use bl_platform::ids::{ClusterId, CoreKind, CpuId};
use bl_simcore::time::{SimDuration, SimTime};
use bl_workloads::apps::{app_by_name, mobile_apps};
use bl_workloads::spec::SpecKernel;

#[test]
fn every_app_runs_to_completion_on_the_baseline() {
    for app in mobile_apps() {
        let mut sim = Simulation::try_new(SystemConfig::baseline()).unwrap();
        sim.spawn_app(&app);
        let r = sim.try_run_app(&app).unwrap();
        assert!(
            r.avg_power_mw > 300.0,
            "{}: power {}",
            app.name,
            r.avg_power_mw
        );
        assert!(r.tlp.tlp > 0.5, "{}: tlp {}", app.name, r.tlp.tlp);
        match app.metric {
            bl_workloads::PerfMetric::Latency => {
                assert!(r.latency.is_some(), "{}: script did not finish", app.name)
            }
            bl_workloads::PerfMetric::Fps => {
                let fps = r.fps.expect("frames");
                assert!(fps.avg_fps > 20.0, "{}: fps {}", app.name, fps.avg_fps);
            }
        }
    }
}

#[test]
fn energy_is_power_times_time() {
    let app = app_by_name("FIFA 15").unwrap();
    let mut sim = Simulation::try_new(SystemConfig::baseline()).unwrap();
    sim.spawn_app(&app);
    let r = sim.try_run_app(&app).unwrap();
    let expected = r.avg_power_mw * r.sim_time.as_secs_f64();
    assert!((r.energy_mj - expected).abs() / expected < 1e-9);
}

#[test]
fn table4_matrix_cells_sum_to_100() {
    let app = app_by_name("PDF Reader").unwrap();
    let mut sim = Simulation::try_new(SystemConfig::baseline()).unwrap();
    sim.spawn_app(&app);
    let r = sim.try_run_app(&app).unwrap();
    let sum: f64 = r.matrix_pct.iter().flatten().sum();
    assert!((sum - 100.0).abs() < 1e-6, "sum = {sum}");
    // Idle cell equals the TLP idle share.
    assert!((r.matrix_pct[0][0] - r.tlp.idle_pct).abs() < 1e-9);
}

#[test]
fn residency_shares_sum_to_one_when_active() {
    let app = app_by_name("Encoder").unwrap();
    let mut sim = Simulation::try_new(SystemConfig::baseline()).unwrap();
    sim.spawn_app(&app);
    let r = sim.try_run_app(&app).unwrap();
    let little_sum: f64 = r.little_residency.iter().sum();
    let big_sum: f64 = r.big_residency.iter().sum();
    assert!((little_sum - 1.0).abs() < 1e-9);
    assert!((big_sum - 1.0).abs() < 1e-9, "encoder must use big cores");
}

#[test]
fn efficiency_classes_sum_to_100_when_sampled() {
    let app = app_by_name("Video Player").unwrap();
    let mut sim = Simulation::try_new(SystemConfig::baseline()).unwrap();
    sim.spawn_app(&app);
    let r = sim.try_run_app(&app).unwrap();
    let sum: f64 = r.efficiency_pct.iter().sum();
    assert!((sum - 100.0).abs() < 1e-6);
}

#[test]
fn hotplugged_configs_never_run_tasks_on_offline_cpus() {
    let app = app_by_name("BBench").unwrap();
    let cfg = SystemConfig::baseline().with_core_config(CoreConfig::new(2, 1));
    let mut sim = Simulation::try_new(cfg).unwrap();
    sim.spawn_app(&app);
    // Step in chunks, checking placement invariants as we go.
    for step in 1..=20 {
        sim.try_run_until(SimTime::from_millis(step * 100)).unwrap();
        for cpu_idx in 0..sim.platform().topology.n_cpus() {
            let cpu = CpuId(cpu_idx);
            if !sim.state().is_online(cpu) {
                assert!(
                    sim.kernel().current_task(cpu).is_none(),
                    "offline {cpu} is executing a task"
                );
            }
        }
    }
}

#[test]
fn powersave_governor_pins_min_and_reduces_power() {
    let app = app_by_name("Eternity Warriors 2").unwrap();
    let base = {
        let mut sim = Simulation::try_new(SystemConfig::baseline()).unwrap();
        sim.spawn_app(&app);
        sim.try_run_app(&app).unwrap()
    };
    let saver = {
        let cfg = SystemConfig::baseline().with_governor(GovernorConfig::Powersave);
        let mut sim = Simulation::try_new(cfg).unwrap();
        sim.spawn_app(&app);
        let r = sim.try_run_app(&app).unwrap();
        assert_eq!(sim.state().cluster_freq_khz(ClusterId(0)), 500_000);
        assert_eq!(sim.state().cluster_freq_khz(ClusterId(1)), 800_000);
        r
    };
    assert!(saver.avg_power_mw < base.avg_power_mw);
    // And the game pays for it in frame rate.
    assert!(saver.fps.unwrap().avg_fps <= base.fps.unwrap().avg_fps + 1.0);
}

#[test]
fn performance_governor_beats_powersave_on_latency() {
    let app = app_by_name("Photo Editor").unwrap();
    let fast = biglittle::experiments::run_app_with(
        &app,
        SystemConfig::baseline().with_governor(GovernorConfig::Performance),
    );
    let slow = biglittle::experiments::run_app_with(
        &app,
        SystemConfig::baseline().with_governor(GovernorConfig::Powersave),
    );
    let (lf, ls) = (fast.latency.unwrap(), slow.latency.unwrap());
    assert!(lf < ls, "performance {lf} should beat powersave {ls}");
    assert!(fast.avg_power_mw > slow.avg_power_mw);
}

#[test]
fn aggressive_hmp_migrates_more_than_conservative() {
    let app = app_by_name("Eternity Warriors 2").unwrap();
    let aggressive = biglittle::experiments::run_app_with(
        &app,
        SystemConfig::baseline().with_hmp(HmpParams::aggressive()),
    );
    let conservative = biglittle::experiments::run_app_with(
        &app,
        SystemConfig::baseline().with_hmp(HmpParams::conservative()),
    );
    assert!(
        aggressive.migrations.0 > conservative.migrations.0,
        "up migrations: aggressive {} vs conservative {}",
        aggressive.migrations.0,
        conservative.migrations.0
    );
    // Aggressive placement burns more power on this CPU-heavy game.
    assert!(aggressive.avg_power_mw >= conservative.avg_power_mw);
}

#[test]
fn spec_kernel_iso_frequency_speedup_vs_wall_clock() {
    // The analytic speedup and the end-to-end simulated speedup must agree:
    // the scheduler adds no overhead for a single pinned task.
    let spec = SpecKernel::suite()
        .into_iter()
        .find(|k| k.name == "mcf")
        .unwrap();
    let analytic = {
        let p = bl_platform::exynos::exynos5422();
        let little = p.topology.cluster_of_kind(CoreKind::Little).unwrap();
        let big = p.topology.cluster_of_kind(CoreKind::Big).unwrap();
        p.perf
            .iso_freq_speedup(&spec.profile, &little.l2, &big.l2, 1.3)
    };
    let run = |little_khz: u32, big_khz: u32, cpu: CpuId, cc: CoreConfig| {
        let cfg = SystemConfig::pinned_frequencies(little_khz, big_khz).with_core_config(cc);
        let mut sim = Simulation::try_new(cfg).unwrap();
        sim.spawn_spec(&spec, cpu, SimDuration::from_millis(300));
        sim.try_run_until_or(SimTime::from_secs(3), |s| s.kernel().all_exited())
            .unwrap();
        sim.finish().latency.unwrap().as_secs_f64()
    };
    let t_little = run(1_300_000, 800_000, CpuId(0), CoreConfig::new(1, 0));
    let t_big = run(500_000, 1_300_000, CpuId(4), CoreConfig::new(1, 1));
    let simulated = t_little / t_big;
    assert!(
        (simulated - analytic).abs() / analytic < 0.02,
        "simulated {simulated:.3} vs analytic {analytic:.3}"
    );
}

#[test]
fn one_big_core_fixes_encoder_latency() {
    // The paper's core observation (Figs 7/8): little-only configurations
    // hurt compute-heavy apps badly, while a single big core restores
    // nearly all of the performance.
    let app = app_by_name("Encoder").unwrap();
    let base = biglittle::experiments::run_app_with(&app, SystemConfig::baseline());
    let little_only = biglittle::experiments::run_app_with(
        &app,
        SystemConfig::baseline().with_core_config(CoreConfig::new(4, 0)),
    );
    let one_big = biglittle::experiments::run_app_with(
        &app,
        SystemConfig::baseline().with_core_config(CoreConfig::new(4, 1)),
    );
    let lb = base.latency.unwrap().as_secs_f64();
    let ll = little_only.latency.unwrap().as_secs_f64();
    let l1 = one_big.latency.unwrap().as_secs_f64();
    assert!(
        ll / lb > 1.2,
        "little-only must be much slower: {:.2}",
        ll / lb
    );
    assert!(
        l1 / lb < 1.1,
        "one big core must restore performance: {:.2}",
        l1 / lb
    );
    assert!(little_only.avg_power_mw < base.avg_power_mw);
}

#[test]
fn concurrent_apps_share_the_platform() {
    // The paper studies apps in isolation; the simulator also handles
    // multitasking: a game plus a background encoder must both make
    // progress, with the encoder claiming big cores and the game keeping
    // its frame rate within reason.
    use bl_simcore::time::SimTime;
    let game = app_by_name("Angry Bird").unwrap();
    let encoder = app_by_name("Encoder").unwrap();

    let solo = {
        let mut sim = Simulation::try_new(SystemConfig::baseline()).unwrap();
        sim.spawn_app(&game);
        sim.try_run_app(&game).unwrap()
    };

    let mut sim = Simulation::try_new(SystemConfig::baseline()).unwrap();
    sim.spawn_app(&game);
    sim.spawn_app(&encoder);
    sim.try_run_until(SimTime::ZERO + game.run_for).unwrap();
    let combined = sim.finish();

    // The encoder drags big cores into play (Angry Bird alone never does).
    assert!(
        combined.tlp.big_pct > 15.0,
        "big usage {:.1}%",
        combined.tlp.big_pct
    );
    assert_eq!(solo.tlp.big_pct, 0.0);
    // The game stays playable: the encoder lives on the big side.
    let (sf, cf) = (solo.fps.unwrap(), combined.fps.unwrap());
    assert!(
        cf.avg_fps > sf.avg_fps * 0.85,
        "game fps collapsed: {} -> {}",
        sf.avg_fps,
        cf.avg_fps
    );
    // And the system draws more power doing both.
    assert!(combined.avg_power_mw > solo.avg_power_mw);
    // The encoder's script completes during the session.
    assert!(combined.latency.is_some(), "encoder starved");
}

#[test]
fn task_report_splits_cpu_time_by_core_kind() {
    let app = app_by_name("Encoder").unwrap();
    let mut sim = Simulation::try_new(SystemConfig::baseline()).unwrap();
    sim.spawn_app(&app);
    let _ = sim.try_run_app(&app).unwrap();
    let report = sim.kernel().task_report();
    // Per-thread split sums to the total.
    for row in &report {
        let sum = row.little_time + row.big_time;
        assert!(
            (sum.as_secs_f64() - row.cpu_time.as_secs_f64()).abs() < 1e-9,
            "{}: {} + {} != {}",
            row.name,
            row.little_time,
            row.big_time,
            row.cpu_time
        );
    }
    // The encode thread ran predominantly on big cores; the io helper on
    // little cores.
    let encode = report.iter().find(|r| r.name.contains("encode")).unwrap();
    assert!(encode.big_time > encode.little_time, "{encode:?}");
    let io = report.iter().find(|r| r.name.contains("-io")).unwrap();
    assert!(io.little_time > io.big_time, "{io:?}");
}

#[test]
fn recorded_trace_replays_and_responds_to_core_config() {
    use bl_workloads::replay::{RecordedTrace, ThreadTrace, TraceSegment};
    // A heavy single-thread trace: 100ms bursts every 120ms.
    let trace = RecordedTrace {
        name: "replay".to_string(),
        threads: vec![ThreadTrace {
            name: "hot".to_string(),
            segments: (0..10)
                .map(|i| TraceSegment {
                    at_ms: i as f64 * 120.0,
                    busy_ms: 100.0,
                })
                .collect(),
        }],
    };
    let run = |cc: CoreConfig| {
        let mut sim = Simulation::try_new(SystemConfig::baseline().with_core_config(cc)).unwrap();
        sim.spawn_trace(&trace);
        sim.try_run_until_or(SimTime::from_secs(20), |s| s.kernel().all_exited())
            .unwrap();
        sim.finish()
    };
    let full = run(CoreConfig::BASELINE);
    let little_only = run(CoreConfig::new(4, 0));
    let (tf, tl) = (full.latency.unwrap(), little_only.latency.unwrap());
    // With big cores the back-to-back bursts keep up with the recording;
    // little-only falls behind the 120ms cadence.
    assert!(tl > tf, "little-only {tl} should lag full platform {tf}");
    assert!(full.tlp.big_pct > 10.0, "hot thread should migrate up");
}
