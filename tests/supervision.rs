//! Integration tests for the crash-safe sweep supervisor: budgets,
//! retry/quarantine, the write-ahead journal, cache integrity and the
//! runtime invariant auditor. The cross-process SIGKILL variant lives in
//! `crates/bench/tests/supervision_cli.rs`; these tests exercise the same
//! machinery in-process.

use biglittle::sweep::{self, SweepOptions};
use biglittle::{Scenario, Simulation, SystemConfig};
use bl_platform::ids::CpuId;
use bl_simcore::budget::{CancelToken, RunBudget};
use bl_simcore::error::SimError;
use bl_simcore::time::{SimDuration, SimTime};
use std::path::PathBuf;
use std::time::Duration;

fn mb(label: &str, duty: f64, run_ms: u64) -> Scenario {
    Scenario::microbench(
        label,
        CpuId(0),
        duty,
        SimDuration::from_millis(10),
        SimDuration::from_millis(run_ms),
        SystemConfig::baseline(),
    )
}

/// A scenario whose zero metric period respawns `MetricSample` at the same
/// instant forever — an in-simulation hang, caught by the (lowered)
/// same-time watchdog.
fn staller(label: &str) -> Scenario {
    let mut sc = mb(label, 0.3, 300);
    sc.config = sc.config.with_watchdog_limit(1_000);
    sc.config.metric_period = SimDuration::ZERO;
    sc
}

fn temp_dir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("bl-supervision-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

#[test]
fn chaos_batch_completes_with_quarantine_and_cache_self_heal() {
    let dir = temp_dir("chaos");
    // Healthy + always-panicking (duty out of range) + hanging scenario:
    // the supervised sweep must return normally with the failers
    // quarantined in their slots.
    let batch = vec![
        mb("healthy", 0.4, 300),
        mb("panics", 2.0, 300),
        staller("hangs"),
    ];
    let opts = SweepOptions::with_jobs(2)
        .cached(&dir)
        .with_retries(1)
        .with_deadline(Duration::from_secs(120));
    let first = sweep::run_with(&batch, &opts);
    let clean = first.results[0].as_ref().unwrap().clone();
    assert!(matches!(
        first.results[1],
        Err(SimError::ScenarioPanicked { .. })
    ));
    assert!(matches!(
        first.results[2],
        Err(SimError::WatchdogStall { .. })
    ));
    assert!(first.degraded);
    assert_eq!(first.quarantined.len(), 2);
    assert_eq!(first.stats.retries, 2, "each failer retried once");
    // Each retry ran under a perturbed seed.
    for history in [&first.attempts[1], &first.attempts[2]] {
        assert_eq!(history.len(), 2);
        assert_ne!(history[0].seed, history[1].seed);
    }

    // Corrupt every cache entry; the re-run must miss, recompute and
    // agree bit-for-bit with the original — self-healing, not poisoning.
    let mut corrupted = 0;
    for e in std::fs::read_dir(&dir).unwrap().flatten() {
        if e.path().extension().is_some_and(|x| x == "json") {
            std::fs::write(e.path(), b"ffffffffffffffff\n{\"not\":\"a result").unwrap();
            corrupted += 1;
        }
    }
    assert!(corrupted > 0);
    let second = sweep::run_with(&batch, &opts);
    assert_eq!(second.stats.cache_hits, 0);
    assert_eq!(second.results[0].as_ref().unwrap(), &clean);
    // Healed: the third run hits the rewritten entry.
    let third = sweep::run_with(&batch, &opts);
    assert_eq!(third.stats.cache_hits, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wall_deadline_surfaces_as_typed_error() {
    // A zero wall budget trips at the first poll (every 512 events).
    let out = sweep::run_with(
        &[mb("deadline", 0.5, 10_000)],
        &SweepOptions::serial().with_deadline(Duration::ZERO),
    );
    assert!(matches!(
        out.results[0],
        Err(SimError::DeadlineExceeded { .. })
    ));
    assert!(out.degraded);
}

#[test]
fn event_budget_surfaces_as_typed_error_and_is_deterministic() {
    let run = || {
        sweep::run_with(
            &[mb("capped", 0.5, 10_000)],
            &SweepOptions::serial().with_event_cap(1_000),
        )
    };
    let (a, b) = (run(), run());
    match (&a.results[0], &b.results[0]) {
        (
            Err(SimError::EventBudgetExhausted { budget: ba, at: ta }),
            Err(SimError::EventBudgetExhausted { budget: bb, at: tb }),
        ) => {
            assert_eq!(ba, bb);
            assert_eq!(ta, tb, "the event cap trips at the same simulated instant");
        }
        other => panic!("expected EventBudgetExhausted twice, got {other:?}"),
    }
}

#[test]
fn cancellation_token_stops_a_run_cooperatively() {
    let token = CancelToken::new();
    token.cancel();
    let budget = RunBudget::unlimited().cancelled_by(token);
    let err = mb("cancelled", 0.5, 10_000)
        .run_with_budget(&budget)
        .unwrap_err();
    assert!(matches!(err, SimError::DeadlineExceeded { wall_ms: 0, .. }));
}

#[test]
fn budgeted_run_inside_limits_is_bit_identical_to_unbudgeted() {
    let sc = mb("budgeted", 0.6, 500);
    let free = sc.run().unwrap();
    let budgeted = sc
        .run_with_budget(
            &RunBudget::unlimited()
                .with_wall_limit(Duration::from_secs(600))
                .with_max_events(u64::MAX / 2),
        )
        .unwrap();
    assert_eq!(free, budgeted);
}

#[test]
fn journal_truncation_resumes_the_remainder_bit_identically() {
    let dir = temp_dir("truncate");
    let batch = vec![mb("t0", 0.2, 300), mb("t1", 0.4, 300), mb("t2", 0.6, 300)];
    let opts = SweepOptions::serial().journaled(&dir);
    let reference = sweep::run_with(&batch, &opts);

    // Simulate a crash after the second scenario: drop the journal's last
    // completed record (done + the third start), keeping a valid prefix.
    let journal_path = std::fs::read_dir(&dir)
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|x| x == "jsonl"))
        .expect("journal file exists");
    let text = std::fs::read_to_string(&journal_path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    // Layout is alternating start/done records: keep the first four lines
    // (two completed scenarios), plus a torn partial line for realism.
    let truncated = format!(
        "{}\n{}",
        lines[..4].join("\n"),
        &lines[4][..lines[4].len() / 2]
    );
    std::fs::write(&journal_path, truncated).unwrap();

    let resumed = sweep::run_with(&batch, &opts.clone().resuming(true));
    assert_eq!(
        resumed.stats.resumed, 2,
        "the two journaled scenarios replay; the torn record is dropped"
    );
    for (a, b) in reference.results.iter().zip(&resumed.results) {
        assert_eq!(a.as_ref().unwrap(), b.as_ref().unwrap());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn auditor_reports_zero_violations_on_healthy_runs() {
    // Representative healthy scenarios under a tight cadence: a pinned
    // microbench and a scheduled app, plus a thermal-throttled variant so
    // the freq-cap check sees a real cap.
    use bl_workloads::apps::app_by_name;
    let mut audited = SystemConfig::baseline()
        .with_audit(true)
        .with_audit_cadence(16);
    audited.seed = 7;
    let mb_sc = Scenario::microbench(
        "audited-mb",
        CpuId(0),
        0.7,
        SimDuration::from_millis(10),
        SimDuration::from_millis(500),
        audited.clone(),
    );
    let app_sc = Scenario::app(
        "audited-app",
        app_by_name("Angry Bird").unwrap(),
        audited.with_thermal(true),
    );
    let out = sweep::run_with(&[mb_sc, app_sc], &SweepOptions::with_jobs(2));
    for r in &out.results {
        let r = r.as_ref().expect("audited healthy run succeeds");
        assert!(r.resilience.audit_checks > 0, "audit passes actually ran");
    }
    assert!(!out.degraded);
}

#[test]
fn audit_override_in_sweep_options_audits_every_scenario() {
    let out = sweep::run_with(
        &[mb("forced-audit", 0.5, 2_000)],
        &SweepOptions::serial().audited(true),
    );
    let r = out.results[0].as_ref().unwrap();
    assert!(r.resilience.audit_checks > 0);
}

#[test]
fn audited_run_is_bit_identical_to_unaudited() {
    let sc = mb("audit-identity", 0.5, 500);
    let plain = sc.run().unwrap();
    let mut audited_sc = sc.clone();
    audited_sc.config = audited_sc.config.with_audit(true).with_audit_cadence(8);
    let audited = audited_sc.run().unwrap();
    // Everything but the audit telemetry matches: auditing observes, never
    // perturbs.
    let mut audited_scrubbed = audited.clone();
    audited_scrubbed.resilience.audit_checks = 0;
    assert_eq!(plain, audited_scrubbed);
    assert!(audited.resilience.audit_checks > 0);
}

#[test]
fn broken_accounting_is_caught_as_invariant_violation() {
    let mut sim = Simulation::try_new(
        SystemConfig::baseline()
            .with_audit(true)
            .with_audit_cadence(4),
    )
    .unwrap();
    sim.spawn_microbench(CpuId(0), 0.5, SimDuration::from_millis(10));
    sim.try_run_until(SimTime::from_millis(50)).unwrap();
    assert!(
        sim.audit_checks() > 0,
        "the guard was live before corruption"
    );
    // Corrupt the auditor's clock: the next pass must fail loudly instead
    // of letting a time anomaly propagate into downstream results.
    sim.corrupt_audit_clock_for_test();
    let err = sim.try_run_until(SimTime::from_millis(200)).unwrap_err();
    match err {
        SimError::InvariantViolated { invariant, .. } => {
            assert_eq!(invariant, "time-monotone")
        }
        other => panic!("expected InvariantViolated, got {other}"),
    }
}

#[test]
fn watchdog_limit_is_configurable_and_carries_stuck_event_context() {
    let err = staller("stuck").run().unwrap_err();
    match err {
        SimError::WatchdogStall {
            iterations, detail, ..
        } => {
            assert_eq!(iterations, 1_001, "the lowered limit applies");
            assert!(
                detail.contains("MetricSample"),
                "detail names the stuck event: {detail}"
            );
        }
        other => panic!("expected WatchdogStall, got {other}"),
    }
}
