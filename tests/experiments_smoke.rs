//! Shape tests for every paper experiment at reduced scale: the headline
//! qualitative claims of the paper must hold in the reproduction.

use biglittle::experiments::{appchar, arch, coreconfig, dvfs, tables};
use biglittle::{SweepOptions, SystemConfig};
use bl_platform::ids::CoreKind;
use bl_simcore::time::SimDuration;
use bl_workloads::apps::{app_by_name, mobile_apps};
use bl_workloads::PerfMetric;

#[test]
fn tables_1_and_2_render() {
    assert!(tables::table1().contains("Cortex-A15"));
    assert!(tables::table2().contains("Video Player"));
}

#[test]
fn fig2_fig3_shapes() {
    let m = arch::run_spec_matrix(SimDuration::from_millis(300), 11, &SweepOptions::default());
    // Fig 2: iso-frequency speedups up to ~4.5x; big@1.3 always wins.
    let speedups13: Vec<f64> = m.rows.iter().map(|r| r.speedups()[1]).collect();
    assert!(speedups13.iter().all(|s| *s > 1.0));
    assert!(speedups13.iter().cloned().fold(0.0, f64::max) > 3.5);
    // Fig 3: big@1.3 draws ~2.3x little@1.3 (full system).
    for r in &m.rows {
        let ratio = r.power_mw[2] / r.power_mw[0];
        assert!((1.9..=2.7).contains(&ratio), "{}: ratio {ratio:.2}", r.name);
        let ratio08 = r.power_mw[1] / r.power_mw[0];
        assert!(
            (1.2..=1.8).contains(&ratio08),
            "{}: ratio {ratio08:.2}",
            r.name
        );
    }
    // Power varies across benchmarks but much less than performance.
    let pmax = m.rows.iter().map(|r| r.power_mw[2]).fold(0.0, f64::max);
    let pmin = m
        .rows
        .iter()
        .map(|r| r.power_mw[2])
        .fold(f64::INFINITY, f64::min);
    assert!(pmax / pmin < 1.3, "power spread should be modest");
}

#[test]
fn fig4_latency_apps_shape() {
    let rows = appchar::fig4_latency_big_vs_little(11, &SweepOptions::default());
    assert_eq!(rows.len(), 7);
    for r in &rows {
        let dp = r.power_increase_pct();
        let dl = r.latency_reduction_pct().unwrap();
        assert!(dp > 0.0, "{}: big must cost power ({dp:.1}%)", r.name);
        assert!(dl > -5.0 && dl < 60.0, "{}: latency delta {dl:.1}%", r.name);
    }
    // Most apps improve modestly (paper: < 30%).
    let modest = rows
        .iter()
        .filter(|r| r.latency_reduction_pct().unwrap() < 30.0)
        .count();
    assert!(modest >= 5, "most latency apps gain < 30% from big cores");
}

#[test]
fn fig5_fps_apps_shape() {
    let rows = appchar::fig5_fps_big_vs_little(11, &SweepOptions::default());
    assert_eq!(rows.len(), 5);
    // Video workloads gain ~nothing; the CPU-heavy game gains the most.
    let gain = |name: &str| {
        rows.iter()
            .find(|r| r.name == name)
            .unwrap()
            .avg_fps_improvement_pct()
            .unwrap()
    };
    assert!(gain("Video Player").abs() < 5.0);
    assert!(gain("Youtube").abs() < 5.0);
    let ew2 = gain("Eternity Warriors 2");
    assert!(ew2 > 10.0, "CPU-heavy game should gain clearly: {ew2:.1}%");
    for r in &rows {
        assert!(r.power_increase_pct() > 0.0);
    }
}

#[test]
fn fig6_microbench_shape() {
    let r = arch::fig6_power_vs_utilization(
        SimDuration::from_millis(300),
        11,
        &SweepOptions::default(),
    );
    // Big and little cover clearly different power ranges at full load.
    let little_max = r
        .little
        .iter()
        .filter(|p| (p.duty - 1.0).abs() < 1e-9)
        .map(|p| p.power_mw)
        .fold(0.0, f64::max);
    let big_min_full = r
        .big
        .iter()
        .filter(|p| (p.duty - 1.0).abs() < 1e-9)
        .map(|p| p.power_mw)
        .fold(f64::INFINITY, f64::min);
    assert!(big_min_full > little_max);
}

#[test]
fn table3_shape() {
    // Run three representative apps (full sweep lives in the repro binary).
    let check = |name: &str, max_tlp: f64, big_low: f64, big_high: f64| {
        let app = app_by_name(name).unwrap();
        let r = biglittle::experiments::run_app_with(&app, SystemConfig::baseline());
        assert!(
            r.tlp.tlp <= max_tlp,
            "{name}: TLP {:.2} above expected cap {max_tlp}",
            r.tlp.tlp
        );
        assert!(
            (big_low..=big_high).contains(&r.tlp.big_pct),
            "{name}: big {:.1}% outside [{big_low}, {big_high}]",
            r.tlp.big_pct
        );
    };
    // The paper's qualitative claims: overall TLP below ~4 cores; video
    // playback never uses big cores; the encoder mostly does.
    check("Video Player", 4.0, 0.0, 3.0);
    check("Encoder", 4.0, 40.0, 95.0);
    check("BBench", 4.5, 25.0, 65.0);
}

#[test]
fn fig7_fig8_core_config_shape() {
    let rows = coreconfig::run_core_config_sweep(
        vec![
            app_by_name("Encoder").unwrap(),
            app_by_name("Video Player").unwrap(),
        ],
        11,
        &SweepOptions::default(),
    );
    let sweep_labels: Vec<String> = bl_platform::config::CoreConfig::paper_sweep()
        .iter()
        .map(|c| c.to_string())
        .collect();
    let idx_of = |label: &str| sweep_labels.iter().position(|l| l == label).unwrap();

    let encoder = &rows[0];
    let vp = &rows[1];
    // Little-only kills the encoder; one big core restores it.
    assert!(encoder.perf_rel(idx_of("L4")).unwrap() < 0.8);
    assert!(encoder.perf_rel(idx_of("L4+B1")).unwrap() > 0.9);
    // Video player: little-only saves power without losing performance.
    assert!(vp.perf_rel(idx_of("L4")).unwrap() > 0.97);
    assert!(vp.power_saving_pct(idx_of("L4")) > 5.0);
}

#[test]
fn fig9_fig10_residency_shape() {
    let vp = biglittle::experiments::run_app_with(
        &app_by_name("Video Player").unwrap(),
        SystemConfig::baseline(),
    );
    // Paper: "video player has very low core utilization, and thus the
    // lowest frequency dominates the distribution".
    assert!(
        vp.little_residency[0] > 0.8,
        "lowest OPP share {}",
        vp.little_residency[0]
    );

    let ew = biglittle::experiments::run_app_with(
        &app_by_name("Eternity Warriors 2").unwrap(),
        SystemConfig::baseline(),
    );
    // Paper: eternity warrior "exhibits a wide variety of core frequencies".
    let spread = ew.little_residency.iter().filter(|s| **s > 0.02).count();
    assert!(
        spread >= 4,
        "expected spread across OPPs, got {spread} active bins"
    );
    // Paper Fig 10: games use big cores mostly at low frequencies.
    assert!(
        ew.big_residency[0] > 0.4,
        "games' big-core time should sit at the lowest OPP: {}",
        ew.big_residency[0]
    );
}

#[test]
fn table5_shape() {
    // Paper §VI.B: "the majority of cycles are either in min or <50% state"
    // for low-demand apps, and the encoder/virus scanner reach Full.
    let vp = biglittle::experiments::run_app_with(
        &app_by_name("Video Player").unwrap(),
        SystemConfig::baseline(),
    );
    assert!(
        vp.efficiency_pct[0] + vp.efficiency_pct[1] > 60.0,
        "{:?}",
        vp.efficiency_pct
    );
    let enc = biglittle::experiments::run_app_with(
        &app_by_name("Encoder").unwrap(),
        SystemConfig::baseline(),
    );
    assert!(
        enc.efficiency_pct[5] > 0.5,
        "encoder should hit Full: {:?}",
        enc.efficiency_pct
    );
}

#[test]
fn fig11_12_13_param_sweep_shape() {
    // Reduced sweep: one latency + one FPS app.
    let apps = vec![
        app_by_name("BBench").unwrap(),
        app_by_name("Eternity Warriors 2").unwrap(),
    ];
    let sweep = dvfs::run_param_sweep(apps, 11, &SweepOptions::default());
    assert_eq!(sweep.variants.len(), 8);
    let idx = |name: &str| {
        sweep
            .variants
            .iter()
            .position(|(n, _)| n.contains(name))
            .unwrap()
    };
    // Paper: longer sampling saves power on average...
    let s100 = sweep.power_savings(idx("100ms"));
    let avg100 = s100.iter().sum::<f64>() / s100.len() as f64;
    assert!(
        avg100 > 0.0,
        "100ms sampling should save power: {avg100:.2}%"
    );
    // ...and the aggressive HMP mostly increases power consumption.
    let agg = sweep.power_savings(idx("aggressive"));
    let avg_agg = agg.iter().sum::<f64>() / agg.len() as f64;
    assert!(
        avg_agg < 1.0,
        "aggressive HMP should not save: {avg_agg:.2}%"
    );
}

#[test]
fn metric_kinds_match_table2() {
    for app in mobile_apps() {
        match app.name.as_str() {
            "Angry Bird" | "Eternity Warriors 2" | "FIFA 15" | "Video Player" | "Youtube" => {
                assert_eq!(app.metric, PerfMetric::Fps)
            }
            _ => assert_eq!(app.metric, PerfMetric::Latency),
        }
    }
    // And the architecture experiments rely on both kinds being present.
    assert_eq!(
        mobile_apps()
            .iter()
            .filter(|a| a.metric == PerfMetric::Fps)
            .count(),
        5
    );
}

#[test]
fn big_cluster_has_bigger_cache_and_wins_iso_freq() {
    let p = bl_platform::exynos::exynos5422();
    let little = p.topology.cluster_of_kind(CoreKind::Little).unwrap();
    let big = p.topology.cluster_of_kind(CoreKind::Big).unwrap();
    assert!(big.l2.size_kb > little.l2.size_kb);
}
