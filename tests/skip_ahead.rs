//! Idle skip-ahead equivalence: `skip_ahead = true` must be a pure
//! wall-clock optimization. Every observable — power, energy, TLP matrix,
//! residencies, latency, FPS, migrations, resilience counters, traces —
//! has to come out bit-identical to the ticked path, across idle-heavy
//! apps, cpuidle, tracing, fault plans and every governor.

use biglittle::{RunResult, Simulation, SystemConfig};
use bl_governor::GovernorConfig;
use bl_platform::ids::CpuId;
use bl_simcore::fault::FaultPlan;
use bl_simcore::time::{SimDuration, SimTime};
use bl_workloads::apps::app_by_name;
use proptest::prelude::*;

/// Runs the same scenario with skip-ahead on and off and returns both
/// results; `drive` receives each freshly built simulation.
fn run_pair(
    cfg: &SystemConfig,
    drive: impl Fn(&mut Simulation) -> RunResult,
) -> (RunResult, RunResult) {
    let mut on = Simulation::try_new(cfg.clone().with_skip_ahead(true)).unwrap();
    let mut off = Simulation::try_new(cfg.clone().with_skip_ahead(false)).unwrap();
    (drive(&mut on), drive(&mut off))
}

#[test]
fn pure_idle_run_is_bit_identical_under_every_governor() {
    let governors = [
        GovernorConfig::platform_default(),
        GovernorConfig::Performance,
        GovernorConfig::Powersave,
        GovernorConfig::Userspace(800_000),
        GovernorConfig::Ondemand(Default::default()),
        GovernorConfig::Conservative(Default::default()),
    ];
    for g in governors {
        let cfg = SystemConfig::baseline().screen(false).with_governor(g);
        let (on, off) = run_pair(&cfg, |sim| {
            sim.try_run_until(SimTime::from_secs(2)).unwrap();
            sim.finish()
        });
        assert_eq!(on, off, "governor {g:?}");
        assert_eq!(on.tlp.idle_pct, 100.0);
    }
}

#[test]
fn idle_heavy_app_is_bit_identical() {
    let app = app_by_name("Browser").unwrap();
    let cfg = SystemConfig::baseline();
    let (on, off) = run_pair(&cfg, |sim| {
        sim.spawn_app(&app);
        sim.try_run_until(SimTime::from_secs(5)).unwrap();
        sim.finish()
    });
    assert_eq!(on, off);
    assert!(on.tlp.idle_pct > 0.0, "Browser should leave idle gaps");
}

#[test]
fn cpuidle_run_is_bit_identical() {
    let app = app_by_name("Browser").unwrap();
    let cfg = SystemConfig::baseline().with_cpuidle(true);
    let (on, off) = run_pair(&cfg, |sim| {
        sim.spawn_app(&app);
        sim.try_run_until(SimTime::from_secs(4)).unwrap();
        sim.finish()
    });
    assert_eq!(on, off);
}

#[test]
fn microbench_duty_cycle_is_bit_identical() {
    // 20% duty leaves an 80 ms timer-bounded idle gap every period: the
    // skip must stop exactly at each wake and resume after it.
    for duty in [0.2, 0.5, 0.8] {
        let cfg = SystemConfig::baseline().screen(false);
        let (on, off) = run_pair(&cfg, |sim| {
            sim.spawn_microbench(CpuId(0), duty, SimDuration::from_millis(100));
            sim.try_run_until(SimTime::from_secs(2)).unwrap();
            sim.finish()
        });
        assert_eq!(on, off, "duty {duty}");
    }
}

#[test]
fn faulted_thermal_run_is_bit_identical() {
    // Thermal pins the sampler to the grid and faults add hotplug,
    // governor stalls and heat spikes; the skip must stay exact around
    // all of them.
    let app = app_by_name("Browser").unwrap();
    let plan = FaultPlan::random(21, 8, SimDuration::from_secs(2), 8, 2);
    let cfg = SystemConfig::baseline()
        .with_faults(plan)
        .with_thermal(true);
    let (on, off) = run_pair(&cfg, |sim| {
        sim.spawn_app(&app);
        sim.try_run_until(SimTime::from_secs(3)).unwrap();
        sim.finish()
    });
    assert_eq!(on, off);
}

#[test]
fn traced_run_matches_and_keeps_every_row() {
    let app = app_by_name("Browser").unwrap();
    let build = |skip: bool| {
        let mut sim = Simulation::builder()
            .config(SystemConfig::baseline().with_skip_ahead(skip))
            .tracing(true)
            .build()
            .unwrap();
        sim.spawn_app(&app);
        sim.try_run_until(SimTime::from_secs(2)).unwrap();
        let trace = sim.trace().unwrap().clone();
        (sim.finish(), trace)
    };
    let (on, trace_on) = build(true);
    let (off, trace_off) = build(false);
    assert_eq!(on, off);
    assert_eq!(trace_on, trace_off);
    // Tracing pins the sampler: one row per 10 ms even through idle gaps.
    assert!(trace_on.len() >= 190, "rows = {}", trace_on.len());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    // Randomized scenario sweep: seed, workload mix and subsystem toggles.
    #[test]
    fn random_scenarios_are_bit_identical(
        seed in 0u64..1_000,
        app_idx in 0usize..3,
        cpuidle in proptest::bool::ANY,
        duty in 0.1f64..0.9,
    ) {
        let name = ["Browser", "PDF Reader", "Angry Bird"][app_idx];
        let app = app_by_name(name).unwrap();
        let cfg = SystemConfig::baseline()
            .with_seed(seed)
            .with_cpuidle(cpuidle);
        let (on, off) = run_pair(&cfg, |sim| {
            sim.spawn_app(&app);
            sim.spawn_microbench(CpuId(4), duty, SimDuration::from_millis(50));
            sim.try_run_until(SimTime::from_secs(2)).unwrap();
            sim.finish()
        });
        prop_assert_eq!(on, off);
    }
}
