//! The serve daemon: accepts scenario batches over a Unix-socket
//! JSON-lines protocol, multiplexes them onto the sweep engine, and
//! streams progress — built crash-only. Every lifecycle transition is
//! persisted through the checksummed service journal before it takes
//! effect, batches are persisted write-ahead at admission, and the sweep
//! engine's own batch journals carry the results; SIGKILL at any instant
//! therefore loses nothing a restart (plus a client resubmission) cannot
//! recover byte-identically.
//!
//! Threading model (std only, no async runtime):
//!
//! * an **accept loop** thread hands each connection a reader and a
//!   writer thread;
//! * **reader** threads parse request lines (typed rejections answered
//!   in place, so a malformed line never blocks the scheduler) and
//!   forward work to the scheduler;
//! * one **scheduler** thread owns the [`RunBoard`] and service journal,
//!   performs admission, fair-share leasing, progress polling (the batch
//!   journal file doubles as the progress feed — the engine's atomic
//!   rewrite-on-append means a poller always reads a consistent file),
//!   heartbeats, wedge quarantine and drain;
//! * one **executor** thread per active run calls
//!   [`biglittle::sweep::run_cancelable`] with journaling + resume on,
//!   so a restarted daemon re-running an adopted batch replays finished
//!   scenarios instead of recomputing them.

use crate::lifecycle::{Admission, BoardLimits, RunBoard, RunState};
use crate::proto::{self, Reject, Request, SubmitOptions};
use biglittle::{sweep, Scenario, SweepOptions};
use bl_simcore::budget::CancelToken;
use bl_simcore::journal::{self, Journal};
use bl_simcore::snapstore::clean_stale_snapshots;
use serde_json::Value;
use std::collections::HashMap;
use std::io::{self, Read as _, Write as _};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, RecvTimeoutError, Sender};
use std::thread;
use std::time::{Duration, Instant};

/// Test hook: when this environment variable is set, every executor
/// wedges (sleeps without progress) instead of running its sweep — the
/// serve twin of the shard layer's `BL_SHARD_TEST_WEDGE_WORKER`, used to
/// prove the wedge-timeout quarantine path end to end.
pub const WEDGE_ENV: &str = "BL_SERVE_TEST_WEDGE";

/// How the daemon runs: socket, state directories, execution defaults
/// and admission/timeout knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The Unix socket path to listen on (a stale file there is removed
    /// at bind — a SIGKILLed daemon cannot unlink it on the way down).
    pub socket: PathBuf,
    /// Daemon state root: the service journal (`serve.runs.jsonl`),
    /// write-ahead batch files (`<run>.batch.json`) and the per-run
    /// sweep journals (`journal/<run>.jsonl`).
    pub serve_dir: PathBuf,
    /// Persistent warm-snapshot store; `None` disables server-side
    /// trunk hydration.
    pub snap_dir: Option<PathBuf>,
    /// Worker threads per run (0 = available parallelism).
    pub jobs: usize,
    /// Admission limits (queue depth, pending scenarios, active runs).
    pub limits: BoardLimits,
    /// Heartbeat cadence for subscribed clients.
    pub heartbeat: Duration,
    /// How long an active run may go without observable progress before
    /// it is cancelled and quarantined.
    pub wedge_timeout: Duration,
    /// How long a connection may sit on a partial request line before it
    /// is dropped (slow-trickle defense). Idle connections with no
    /// partial line are never dropped.
    pub stall_timeout: Duration,
    /// Hard cap on one request line.
    pub max_line_bytes: usize,
    /// Per-scenario wall deadline imposed on submissions that do not set
    /// their own — the backstop that keeps a runaway scenario from
    /// holding an executor forever.
    pub default_deadline: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            socket: PathBuf::from("results/.serve/serve.sock"),
            serve_dir: PathBuf::from("results/.serve"),
            snap_dir: Some(PathBuf::from(sweep::DEFAULT_SNAP_DIR)),
            jobs: 0,
            limits: BoardLimits::default(),
            heartbeat: Duration::from_millis(1_000),
            wedge_timeout: Duration::from_secs(30),
            stall_timeout: Duration::from_secs(2),
            max_line_bytes: proto::MAX_LINE_BYTES,
            default_deadline: Duration::from_secs(600),
        }
    }
}

impl ServeConfig {
    fn journal_dir(&self) -> PathBuf {
        self.serve_dir.join("journal")
    }

    fn batch_path(&self, run: &str) -> PathBuf {
        self.serve_dir.join(format!("{run}.batch.json"))
    }

    fn sweep_journal_path(&self, run: &str) -> PathBuf {
        self.journal_dir().join(format!("{run}.jsonl"))
    }

    /// The sweep options a submission executes under.
    fn run_options(&self, req: &SubmitOptions) -> SweepOptions {
        let mut o = SweepOptions::with_jobs(self.jobs)
            .with_retries(req.retries)
            .audited(req.audit)
            .journaled(self.journal_dir())
            .resuming(true)
            .with_deadline(
                req.deadline_ms
                    .map_or(self.default_deadline, Duration::from_millis),
            );
        if let Some(n) = req.max_events {
            o = o.with_event_cap(n);
        }
        if let Some(dir) = &self.snap_dir {
            o = o.snap_stored(dir.clone());
        }
        o
    }
}

/// SIGTERM latch. The handler only stores a flag — everything else
/// (drain, flush, exit) happens on the scheduler thread.
static SIGTERM: AtomicBool = AtomicBool::new(false);

extern "C" fn on_sigterm(_: i32) {
    SIGTERM.store(true, Ordering::SeqCst);
}

fn install_sigterm_handler() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGTERM_NO: i32 = 15;
    unsafe {
        signal(SIGTERM_NO, on_sigterm as extern "C" fn(i32) as usize);
    }
}

/// What an executor reports back when its run finishes.
struct FinishedRun {
    run: String,
    cancelled: bool,
    degraded: bool,
    quarantined: u64,
    /// Per-index outcome, pre-serialized.
    results: Vec<Result<Value, String>>,
    stats: Value,
}

enum Cmd {
    Connected {
        conn: u64,
        writer: Sender<String>,
    },
    Disconnected {
        conn: u64,
    },
    Submit {
        conn: u64,
        client: String,
        scenarios: Vec<Scenario>,
        options: SubmitOptions,
    },
    Status {
        conn: u64,
    },
    Drain {
        conn: u64,
    },
    Finished(Box<FinishedRun>),
}

/// Everything the scheduler tracks about one non-terminal run beyond the
/// board entry.
struct RunMeta {
    cancel: CancelToken,
    /// Scenarios held for the not-yet-leased phase (dropped at lease).
    scenarios: Option<Vec<Scenario>>,
    options: SubmitOptions,
    /// Journal lines already folded into progress, to parse only the tail.
    seen_lines: usize,
}

/// Runs the daemon until drain completes. Returns the process exit code.
pub fn serve(cfg: ServeConfig) -> io::Result<i32> {
    install_sigterm_handler();
    std::fs::create_dir_all(&cfg.serve_dir)?;
    std::fs::create_dir_all(cfg.journal_dir())?;
    startup_hygiene(&cfg);

    // Stale socket file from a SIGKILLed predecessor.
    if cfg.socket.exists() {
        let _ = std::fs::remove_file(&cfg.socket);
    }
    if let Some(dir) = cfg.socket.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let listener = UnixListener::bind(&cfg.socket)?;
    listener.set_nonblocking(true)?;
    eprintln!("serve: listening on {}", cfg.socket.display());

    let (tx, rx) = channel::<Cmd>();
    let shutdown = std::sync::Arc::new(AtomicBool::new(false));

    // Accept loop: nonblocking polls so it can observe shutdown.
    let accept_shutdown = shutdown.clone();
    let accept_tx = tx.clone();
    let accept_cfg = cfg.clone();
    let accept_handle = thread::spawn(move || {
        let mut next_conn: u64 = 0;
        while !accept_shutdown.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _)) => {
                    let conn = next_conn;
                    next_conn += 1;
                    spawn_connection(conn, stream, &accept_cfg, accept_tx.clone());
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(25));
                }
                Err(_) => thread::sleep(Duration::from_millis(25)),
            }
        }
    });

    let code = scheduler_loop(&cfg, tx, rx);

    shutdown.store(true, Ordering::SeqCst);
    let _ = accept_handle.join();
    let _ = std::fs::remove_file(&cfg.socket);
    eprintln!("serve: drained, exiting");
    Ok(code)
}

/// Startup hygiene: sweep the debris a SIGKILLed predecessor may have
/// left — stale snapshots, stale shard/journal artifacts, orphaned
/// `.tmp` files in the state root — and say what was reclaimed. The age
/// threshold honors the same override the shard layer uses, so chaos
/// tests can force immediate cleanup.
fn startup_hygiene(cfg: &ServeConfig) {
    let stale_after = std::env::var(sweep::shard::STALE_ENV)
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map_or(Duration::from_secs(24 * 3600), Duration::from_millis);
    let mut snaps = 0;
    if let Some(dir) = &cfg.snap_dir {
        snaps = clean_stale_snapshots(dir, stale_after);
    }
    let artifacts = journal::clean_stale_artifacts(&cfg.journal_dir(), "", stale_after);
    let mut tmps = 0;
    if let Ok(entries) = std::fs::read_dir(&cfg.serve_dir) {
        for e in entries.flatten() {
            let p = e.path();
            let is_tmp = p.extension().is_some_and(|x| x == "tmp");
            let old = e
                .metadata()
                .and_then(|m| m.modified())
                .ok()
                .and_then(|t| t.elapsed().ok())
                .is_some_and(|age| age >= stale_after);
            if is_tmp && old && std::fs::remove_file(&p).is_ok() {
                tmps += 1;
            }
        }
    }
    eprintln!(
        "serve hygiene: reclaimed {snaps} stale snapshot(s), {artifacts} stale journal \
         artifact(s), {tmps} orphaned tmp file(s)"
    );
}

fn now_ms(start: Instant) -> u64 {
    start.elapsed().as_millis() as u64
}

/// The scheduler: owns all mutable serving state, processes commands,
/// ticks heartbeats/progress/wedges, and decides when drain is done.
fn scheduler_loop(cfg: &ServeConfig, tx: Sender<Cmd>, rx: std::sync::mpsc::Receiver<Cmd>) -> i32 {
    let start = Instant::now();
    let mut board = RunBoard::new(cfg.limits);
    let mut meta: HashMap<String, RunMeta> = HashMap::new();
    let mut writers: HashMap<u64, Sender<String>> = HashMap::new();
    let mut subs: HashMap<String, Vec<u64>> = HashMap::new();
    let mut service = match Journal::open(cfg.serve_dir.join("serve.runs.jsonl"), true) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("serve: cannot open service journal: {e}");
            return 1;
        }
    };
    adopt_runs(cfg, &mut service, &mut board, &mut meta, start);

    // Throughput signal: cumulative simulated events observed (journal
    // done records + finished runs), sampled into a short window.
    let mut observed_events: u64 = 0;
    let mut rate_window: std::collections::VecDeque<(Instant, u64)> = Default::default();
    let mut last_heartbeat = Instant::now();
    let mut draining = false;

    let tick = Duration::from_millis(cfg.heartbeat.as_millis().min(100) as u64);
    loop {
        // Lease as much as capacity allows before sleeping.
        start_ready_runs(cfg, &mut board, &mut meta, &mut service, &tx, start);

        let cmd = rx.recv_timeout(tick);
        if SIGTERM.load(Ordering::SeqCst) && !draining {
            draining = true;
            board.drain();
            journal_transition(&mut service, "daemon", "draining", "", 0);
            eprintln!("serve: SIGTERM — draining ({} active)", board.active());
        }
        match cmd {
            Ok(Cmd::Connected { conn, writer }) => {
                writers.insert(conn, writer);
            }
            Ok(Cmd::Disconnected { conn }) => {
                writers.remove(&conn);
                for list in subs.values_mut() {
                    list.retain(|c| *c != conn);
                }
            }
            Ok(Cmd::Submit {
                conn,
                client,
                scenarios,
                options,
            }) => {
                handle_submit(
                    cfg,
                    &mut board,
                    &mut meta,
                    &mut subs,
                    &writers,
                    &mut service,
                    conn,
                    client,
                    scenarios,
                    options,
                    start,
                );
            }
            Ok(Cmd::Status { conn }) => {
                let eps = events_per_sec(&rate_window);
                let line = status_line(&board, writers.len(), eps, draining || board.draining());
                send_to(&writers, conn, &line);
            }
            Ok(Cmd::Drain { conn }) => {
                if !draining {
                    draining = true;
                    board.drain();
                    journal_transition(&mut service, "daemon", "draining", "", 0);
                    eprintln!("serve: drain requested ({} active)", board.active());
                }
                send_to(&writers, conn, &proto::draining_line());
            }
            Ok(Cmd::Finished(f)) => {
                finish_run(
                    cfg,
                    &mut board,
                    &mut meta,
                    &mut subs,
                    &mut writers,
                    &mut service,
                    *f,
                    &mut observed_events,
                );
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => return 0,
        }

        // Progress polling + wedge detection on every pass.
        poll_progress(
            cfg,
            &mut board,
            &mut meta,
            &subs,
            &mut writers,
            &mut service,
            &mut observed_events,
            start,
        );
        let wedged = board.wedged(now_ms(start), cfg.wedge_timeout.as_millis() as u64);
        for run in wedged {
            if let Some(m) = meta.get(&run) {
                eprintln!(
                    "serve: run {run} made no progress for {:?} — cancelling",
                    cfg.wedge_timeout
                );
                m.cancel.cancel();
                // Terminal bookkeeping happens when the executor reports
                // back Finished{cancelled: true}.
            }
        }

        // Heartbeats + throughput sampling on the configured cadence.
        if last_heartbeat.elapsed() >= cfg.heartbeat {
            last_heartbeat = Instant::now();
            rate_window.push_back((Instant::now(), observed_events));
            while rate_window.len() > 16 {
                rate_window.pop_front();
            }
            let eps = events_per_sec(&rate_window);
            let runs: Vec<String> = subs.keys().cloned().collect();
            for run in runs {
                if let Some(e) = board.get(&run) {
                    if !e.state.is_terminal() {
                        let line = proto::heartbeat_line(
                            &run,
                            e.state.as_str(),
                            e.done as u64,
                            e.total as u64,
                            eps,
                        );
                        broadcast(&subs, &mut writers, &run, &line);
                    }
                }
            }
        }

        if draining && board.active() == 0 {
            return 0;
        }
    }
}

/// Re-queues every non-terminal run found in the service journal: the
/// restarted daemon adopts in-flight work, and the engine's journal
/// replay keeps adopted re-runs byte-identical and cheap.
fn adopt_runs(
    cfg: &ServeConfig,
    service: &mut Journal,
    board: &mut RunBoard,
    meta: &mut HashMap<String, RunMeta>,
    start: Instant,
) {
    // Fold the journal: latest state per run wins.
    let mut latest: Vec<(String, (String, String, u64))> = Vec::new();
    for line in service.records() {
        let Ok(v) = serde_json::from_str::<Value>(line) else {
            continue;
        };
        if v.get("ev").and_then(Value::as_str) != Some("run") {
            continue;
        }
        let (Some(run), Some(state)) = (
            v.get("run").and_then(Value::as_str),
            v.get("state").and_then(Value::as_str),
        ) else {
            continue;
        };
        let client = v.get("client").and_then(Value::as_str).unwrap_or("anon");
        let n = v.get("n").and_then(Value::as_u64).unwrap_or(0);
        latest.retain(|(r, _)| r != run);
        latest.push((run.to_string(), (state.to_string(), client.to_string(), n)));
    }
    let mut adopted = 0;
    for (run, (state, client, n)) in &latest {
        let Some(state) = RunState::parse(state) else {
            continue;
        };
        if state.is_terminal() {
            continue;
        }
        // Reload the write-ahead batch file; without it the run cannot
        // be re-executed and is quarantined on the spot.
        match load_batch_file(&cfg.batch_path(run)) {
            Some((scenarios, options)) => {
                if board
                    .submit(run, client, scenarios.len(), now_ms(start))
                    .is_ok()
                {
                    meta.insert(
                        run.clone(),
                        RunMeta {
                            cancel: CancelToken::new(),
                            scenarios: Some(scenarios),
                            options,
                            seen_lines: 0,
                        },
                    );
                    adopted += 1;
                    eprintln!(
                        "serve: adopted run {run} ({n} scenarios, was {})",
                        state.as_str()
                    );
                }
            }
            None => {
                eprintln!("serve: run {run} has no readable batch file — quarantining");
                board.submit(run, client, *n as usize, now_ms(start)).ok();
                board.quarantine(run);
                journal_transition(service, run, RunState::Quarantined.as_str(), client, *n);
            }
        }
    }
    // Compact: the folded view replaces the full history, bounding the
    // journal across restarts (every append rewrites the whole file).
    let compacted: Vec<String> = latest
        .iter()
        .map(|(run, (state, client, n))| run_record(run, state, client, *n))
        .collect();
    if compacted.len() < service.records().len() {
        if let Ok(mut fresh) = Journal::open(service.path().to_path_buf(), false) {
            if fresh.append_all(&compacted).is_ok() {
                *service = fresh;
            }
        }
    }
    if adopted > 0 {
        eprintln!("serve: adopted {adopted} in-flight run(s) from the service journal");
    }
}

fn run_record(run: &str, state: &str, client: &str, n: u64) -> String {
    serde_json::to_string(&Value::Object(vec![
        ("ev".into(), Value::String("run".into())),
        ("run".into(), Value::String(run.to_string())),
        ("state".into(), Value::String(state.to_string())),
        ("client".into(), Value::String(client.to_string())),
        ("n".into(), Value::UInt(n)),
    ]))
    .expect("record serializes")
}

/// Persists one lifecycle transition. Journal failures are logged, not
/// fatal: the daemon degrades to serving without durability rather than
/// dying mid-request.
fn journal_transition(service: &mut Journal, run: &str, state: &str, client: &str, n: u64) {
    if let Err(e) = service.append(&run_record(run, state, client, n)) {
        eprintln!("serve: service journal append failed: {e}");
    }
}

fn load_batch_file(path: &Path) -> Option<(Vec<Scenario>, SubmitOptions)> {
    let text = std::fs::read_to_string(path).ok()?;
    let v: Value = serde_json::from_str(&text).ok()?;
    let raw = v.get("scenarios")?.as_array()?;
    let mut scenarios = Vec::with_capacity(raw.len());
    for sc in raw {
        scenarios.push(serde_json::from_value::<Scenario>(sc.clone()).ok()?);
    }
    let options = SubmitOptions {
        deadline_ms: v.get("deadline_ms").and_then(Value::as_u64),
        max_events: v.get("max_events").and_then(Value::as_u64),
        retries: v.get("retries").and_then(Value::as_u64).unwrap_or(0) as u32,
        audit: matches!(v.get("audit"), Some(Value::Bool(true))),
    };
    Some((scenarios, options))
}

/// Writes the batch file write-ahead (tmp + fsync + rename), so an
/// admitted run survives SIGKILL before its executor ever starts.
fn store_batch_file(
    path: &Path,
    scenarios: &[Scenario],
    options: &SubmitOptions,
) -> io::Result<()> {
    let mut fields = vec![(
        "scenarios".into(),
        Value::Array(
            scenarios
                .iter()
                .map(|sc| serde_json::to_value(sc).expect("scenario serializes"))
                .collect(),
        ),
    )];
    if let Some(ms) = options.deadline_ms {
        fields.push(("deadline_ms".into(), Value::UInt(ms)));
    }
    if let Some(n) = options.max_events {
        fields.push(("max_events".into(), Value::UInt(n)));
    }
    if options.retries > 0 {
        fields.push(("retries".into(), Value::UInt(u64::from(options.retries))));
    }
    if options.audit {
        fields.push(("audit".into(), Value::Bool(true)));
    }
    let body = serde_json::to_string(&Value::Object(fields)).expect("batch serializes");
    let tmp = path.with_extension("json.tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(body.as_bytes())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        journal::fsync_dir(dir);
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn handle_submit(
    cfg: &ServeConfig,
    board: &mut RunBoard,
    meta: &mut HashMap<String, RunMeta>,
    subs: &mut HashMap<String, Vec<u64>>,
    writers: &HashMap<u64, Sender<String>>,
    service: &mut Journal,
    conn: u64,
    client: String,
    scenarios: Vec<Scenario>,
    options: SubmitOptions,
    start: Instant,
) {
    let opts = cfg.run_options(&options);
    let run = sweep::batch_key_for(&scenarios, &opts);
    let n = scenarios.len() as u64;
    match board.submit(&run, &client, scenarios.len(), now_ms(start)) {
        Err(reject) => {
            send_to(
                writers,
                conn,
                &proto::rejected_line(reject, reject.as_str()),
            );
        }
        Ok(Admission::Attached { .. }) => {
            subs.entry(run.clone()).or_default().push(conn);
            send_to(writers, conn, &proto::admitted_line(&run, 0));
        }
        Ok(Admission::Queued { position }) => {
            // Write-ahead: batch file first, then the journaled
            // transitions, then the answer — a crash between any two
            // steps leaves recoverable state, never a lie to the client.
            if let Err(e) = store_batch_file(&cfg.batch_path(&run), &scenarios, &options) {
                eprintln!("serve: cannot persist batch for run {run}: {e}");
            }
            journal_transition(service, &run, RunState::Submitted.as_str(), &client, n);
            journal_transition(service, &run, RunState::Admitted.as_str(), &client, n);
            meta.insert(
                run.clone(),
                RunMeta {
                    cancel: CancelToken::new(),
                    scenarios: Some(scenarios),
                    options,
                    seen_lines: 0,
                },
            );
            subs.entry(run.clone()).or_default().push(conn);
            send_to(writers, conn, &proto::admitted_line(&run, position));
        }
    }
}

/// Leases queued runs onto executor threads while capacity allows.
fn start_ready_runs(
    cfg: &ServeConfig,
    board: &mut RunBoard,
    meta: &mut HashMap<String, RunMeta>,
    service: &mut Journal,
    tx: &Sender<Cmd>,
    start: Instant,
) {
    while let Some(run) = board.start_next(now_ms(start)) {
        let Some(m) = meta.get_mut(&run) else {
            board.quarantine(&run);
            continue;
        };
        let entry = board.get(&run).expect("leased run is tracked");
        journal_transition(
            service,
            &run,
            RunState::Leased.as_str(),
            &entry.client,
            entry.total as u64,
        );
        let scenarios = m.scenarios.take().unwrap_or_default();
        let opts = cfg.run_options(&m.options);
        let cancel = m.cancel.clone();
        let tx = tx.clone();
        let run_name = run.clone();
        thread::spawn(move || executor(run_name, scenarios, opts, cancel, tx));
    }
}

/// One run's executor. Reports back whatever happened; a panic would be
/// caught by the engine's own supervision, and a send failure means the
/// daemon is already gone.
fn executor(
    run: String,
    scenarios: Vec<Scenario>,
    opts: SweepOptions,
    cancel: CancelToken,
    tx: Sender<Cmd>,
) {
    if std::env::var(WEDGE_ENV).is_ok() {
        // Chaos hook: hold the lease without making progress until the
        // scheduler's wedge timeout cancels us.
        while !cancel.is_cancelled() {
            thread::sleep(Duration::from_millis(20));
        }
        let _ = tx.send(Cmd::Finished(Box::new(FinishedRun {
            run,
            cancelled: true,
            degraded: true,
            quarantined: 0,
            results: Vec::new(),
            stats: Value::Null,
        })));
        return;
    }
    let t0 = Instant::now();
    let out = sweep::run_cancelable(&scenarios, &opts, &cancel);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let results: Vec<Result<Value, String>> = out
        .results
        .iter()
        .map(|r| match r {
            Ok(res) => Ok(serde_json::to_value(res).expect("result serializes")),
            Err(e) => Err(e.to_string()),
        })
        .collect();
    let s = &out.stats;
    let stats = Value::Object(vec![
        ("scenarios".into(), Value::UInt(s.scenarios)),
        ("cache_hits".into(), Value::UInt(s.cache_hits)),
        ("resumed".into(), Value::UInt(s.resumed)),
        ("forked".into(), Value::UInt(s.forked)),
        ("retries".into(), Value::UInt(s.retries)),
        ("quarantined".into(), Value::UInt(s.quarantined)),
        ("events".into(), Value::UInt(s.events)),
        (
            "events_per_sec".into(),
            Value::Float(if wall_ms > 0.0 {
                s.events as f64 / (wall_ms / 1e3)
            } else {
                0.0
            }),
        ),
        ("hydrated".into(), Value::UInt(s.snapshot.hydrated)),
        ("published".into(), Value::UInt(s.snapshot.published)),
        (
            "trunk_ms_saved".into(),
            Value::Float(s.snapshot.trunk_ms_saved),
        ),
        ("wall_ms".into(), Value::Float(wall_ms)),
    ]);
    let _ = tx.send(Cmd::Finished(Box::new(FinishedRun {
        run,
        cancelled: cancel.is_cancelled(),
        degraded: out.degraded,
        quarantined: out.quarantined.len() as u64,
        results,
        stats,
    })));
}

#[allow(clippy::too_many_arguments)]
fn finish_run(
    cfg: &ServeConfig,
    board: &mut RunBoard,
    meta: &mut HashMap<String, RunMeta>,
    subs: &mut HashMap<String, Vec<u64>>,
    writers: &mut HashMap<u64, Sender<String>>,
    service: &mut Journal,
    f: FinishedRun,
    observed_events: &mut u64,
) {
    let (client, total) = board
        .get(&f.run)
        .map(|e| (e.client.clone(), e.total as u64))
        .unwrap_or_default();
    if f.cancelled {
        board.quarantine(&f.run);
        journal_transition(
            service,
            &f.run,
            RunState::Quarantined.as_str(),
            &client,
            total,
        );
        broadcast(
            subs,
            writers,
            &f.run,
            &proto::quarantined_line(
                &f.run,
                "run made no progress within the server wedge timeout and was cancelled",
            ),
        );
        eprintln!("serve: run {} quarantined", f.run);
    } else {
        board.complete(&f.run);
        journal_transition(service, &f.run, RunState::Complete.as_str(), &client, total);
        if let Some(ev) = f.stats.get("events").and_then(Value::as_u64) {
            *observed_events += ev;
        }
        for (i, outcome) in f.results.iter().enumerate() {
            broadcast(
                subs,
                writers,
                &f.run,
                &proto::result_line(&f.run, i as u64, outcome),
            );
        }
        broadcast(
            subs,
            writers,
            &f.run,
            &proto::done_line(&f.run, f.degraded, f.quarantined, f.stats.clone()),
        );
        eprintln!(
            "serve: run {} complete ({} scenarios)",
            f.run,
            f.results.len()
        );
    }
    // Terminal runs need no batch file: the journaled transition is the
    // durable record, and results live in the sweep journal.
    let _ = std::fs::remove_file(cfg.batch_path(&f.run));
    meta.remove(&f.run);
    subs.remove(&f.run);
}

/// Folds fresh sweep-journal lines into progress counts, checkpoint
/// events and the throughput signal. The sweep journal's atomic
/// rewrite-on-append makes concurrent reads consistent by construction.
#[allow(clippy::too_many_arguments)]
fn poll_progress(
    cfg: &ServeConfig,
    board: &mut RunBoard,
    meta: &mut HashMap<String, RunMeta>,
    subs: &HashMap<String, Vec<u64>>,
    writers: &mut HashMap<u64, Sender<String>>,
    service: &mut Journal,
    observed_events: &mut u64,
    start: Instant,
) {
    let active: Vec<String> = meta.keys().cloned().collect();
    for run in active {
        let Some(entry) = board.get(&run) else {
            continue;
        };
        if !matches!(entry.state, RunState::Leased | RunState::Running) {
            continue;
        }
        let was_leased = entry.state == RunState::Leased;
        let (client, total) = (entry.client.clone(), entry.total as u64);
        let path = cfg.sweep_journal_path(&run);
        let Ok(lines) = Journal::load(&path) else {
            continue;
        };
        let Some(m) = meta.get_mut(&run) else {
            continue;
        };
        if lines.len() > m.seen_lines {
            for line in &lines[m.seen_lines..] {
                if line.starts_with("{\"ev\":\"done\"") {
                    if let Ok(v) = serde_json::from_str::<Value>(line) {
                        if let Some(ev) = v
                            .get("result")
                            .and_then(|r| r.get("events_processed"))
                            .and_then(Value::as_u64)
                        {
                            *observed_events += ev;
                        }
                    }
                }
            }
            m.seen_lines = lines.len();
        }
        let done = lines
            .iter()
            .filter(|l| l.starts_with("{\"ev\":\"done\"") || l.starts_with("{\"ev\":\"err\""))
            .count();
        if board.progress(&run, done, now_ms(start)) {
            if was_leased {
                journal_transition(service, &run, RunState::Running.as_str(), &client, total);
            }
            broadcast(
                subs,
                writers,
                &run,
                &proto::checkpoint_line(&run, done as u64, total),
            );
        } else if was_leased && path.exists() {
            // The engine opened its journal: the run is observably alive
            // even before its first completed scenario.
            board.mark_running(&run, now_ms(start));
            journal_transition(service, &run, RunState::Running.as_str(), &client, total);
        }
    }
}

fn events_per_sec(window: &std::collections::VecDeque<(Instant, u64)>) -> f64 {
    match (window.front(), window.back()) {
        (Some((t0, e0)), Some((t1, e1))) if t1 > t0 => {
            let dt = t1.duration_since(*t0).as_secs_f64();
            if dt > 0.0 {
                (e1 - e0) as f64 / dt
            } else {
                0.0
            }
        }
        _ => 0.0,
    }
}

fn status_line(board: &RunBoard, clients: usize, eps: f64, draining: bool) -> String {
    serde_json::to_string(&Value::Object(vec![
        ("ev".into(), Value::String("status".into())),
        ("queued".into(), Value::UInt(board.queued() as u64)),
        ("active".into(), Value::UInt(board.active() as u64)),
        (
            "pending_scenarios".into(),
            Value::UInt(board.pending_scenarios() as u64),
        ),
        ("completed".into(), Value::UInt(board.completed())),
        (
            "quarantined_runs".into(),
            Value::UInt(board.quarantined_runs()),
        ),
        ("clients".into(), Value::UInt(clients as u64)),
        ("events_per_sec".into(), Value::Float(eps)),
        ("draining".into(), Value::Bool(draining)),
    ]))
    .expect("status serializes")
}

fn send_to(writers: &HashMap<u64, Sender<String>>, conn: u64, line: &str) {
    if let Some(w) = writers.get(&conn) {
        let _ = w.send(line.to_string());
    }
}

/// Sends a line to every subscriber of `run`, pruning writers whose
/// connection died — a disconnected client degrades to "nobody
/// listening", never to an error.
fn broadcast(
    subs: &HashMap<String, Vec<u64>>,
    writers: &mut HashMap<u64, Sender<String>>,
    run: &str,
    line: &str,
) {
    if let Some(conns) = subs.get(run) {
        for conn in conns {
            if let Some(w) = writers.get(conn) {
                if w.send(line.to_string()).is_err() {
                    writers.remove(conn);
                }
            }
        }
    }
}

// ---- per-connection I/O ----------------------------------------------------

fn spawn_connection(conn: u64, stream: UnixStream, cfg: &ServeConfig, tx: Sender<Cmd>) {
    let (wtx, wrx) = channel::<String>();
    if tx
        .send(Cmd::Connected {
            conn,
            writer: wtx.clone(),
        })
        .is_err()
    {
        return;
    }
    // Writer half: owns a clone of the stream; exits when the channel
    // closes or the peer goes away.
    let wstream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    thread::spawn(move || {
        let mut out = io::BufWriter::new(wstream);
        for line in wrx {
            if out.write_all(line.as_bytes()).is_err()
                || out.write_all(b"\n").is_err()
                || out.flush().is_err()
            {
                break;
            }
        }
    });
    // Reader half.
    let cfg = cfg.clone();
    thread::spawn(move || {
        reader_loop(conn, stream, &cfg, &tx, &wtx);
        let _ = tx.send(Cmd::Disconnected { conn });
    });
}

/// Reads request lines with three defenses: a hard per-line size cap
/// (oversized lines are answered with `TooLarge` and discarded up to the
/// next newline, the connection stays usable), a stall timeout on
/// *partial* lines (slow-trickle senders are dropped; idle subscribers
/// are not), and typed rejections for unparseable lines answered in
/// place.
fn reader_loop(
    conn: u64,
    mut stream: UnixStream,
    cfg: &ServeConfig,
    tx: &Sender<Cmd>,
    writer: &Sender<String>,
) {
    const POLL: Duration = Duration::from_millis(100);
    let _ = stream.set_read_timeout(Some(POLL));
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 8192];
    let mut discarding = false;
    let mut stalled = Duration::ZERO;
    loop {
        // Drain complete lines from the buffer first.
        while let Some(nl) = buf.iter().position(|b| *b == b'\n') {
            let line: Vec<u8> = buf.drain(..=nl).collect();
            stalled = Duration::ZERO;
            if discarding {
                // The tail of an oversized line — already rejected.
                discarding = false;
                continue;
            }
            let text = String::from_utf8_lossy(&line[..line.len() - 1]);
            let text = text.trim();
            if text.is_empty() {
                continue;
            }
            match proto::parse_request(text) {
                Ok(Request::Ping) => {
                    let _ = writer.send(proto::pong_line());
                }
                Ok(Request::Status) => {
                    if tx.send(Cmd::Status { conn }).is_err() {
                        return;
                    }
                }
                Ok(Request::Drain) => {
                    if tx.send(Cmd::Drain { conn }).is_err() {
                        return;
                    }
                }
                Ok(Request::Submit {
                    client,
                    scenarios,
                    options,
                }) => {
                    if tx
                        .send(Cmd::Submit {
                            conn,
                            client,
                            scenarios,
                            options,
                        })
                        .is_err()
                    {
                        return;
                    }
                }
                Err((reject, detail)) => {
                    let _ = writer.send(proto::rejected_line(reject, &detail));
                }
            }
        }
        if !discarding && buf.len() > cfg.max_line_bytes {
            let _ = writer.send(proto::rejected_line(
                Reject::TooLarge,
                &format!("request line exceeds {} bytes", cfg.max_line_bytes),
            ));
            buf.clear();
            discarding = true;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => {
                if discarding {
                    // Keep only from the newline on, if one arrived.
                    if let Some(nl) = chunk[..n].iter().position(|b| *b == b'\n') {
                        buf.extend_from_slice(&chunk[nl..n]);
                    }
                } else {
                    buf.extend_from_slice(&chunk[..n]);
                }
                stalled = Duration::ZERO;
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if !buf.is_empty() || discarding {
                    stalled += POLL;
                    if stalled >= cfg.stall_timeout {
                        // A partial line going nowhere: drop the
                        // connection, not the daemon.
                        return;
                    }
                }
            }
            Err(_) => return,
        }
    }
}
