//! The serve daemon's JSON-lines wire protocol.
//!
//! One JSON object per line in both directions. Client→server lines are
//! *requests* (`{"op": ...}`), server→client lines are *events*
//! (`{"ev": ...}`). The parser is deliberately strict — unknown
//! operations, unknown fields, non-object lines, oversized lines and
//! absurd budgets all map to a typed [`Reject`] instead of a hang or a
//! crash, and a rejected line never poisons the connection: the reader
//! resynchronizes at the next newline and keeps serving.
//!
//! Requests:
//!
//! ```text
//! {"op":"submit","client":"a","scenarios":[...],"options":{"deadline_ms":60000}}
//! {"op":"status"}   {"op":"ping"}   {"op":"drain"}
//! ```
//!
//! Events (answers and per-run stream):
//!
//! ```text
//! {"ev":"admitted","run":"<16hex>","position":0}
//! {"ev":"rejected","reason":"queue-full","detail":"..."}
//! {"ev":"heartbeat","run":K,"state":"running","done":2,"total":6,"events_per_sec":...}
//! {"ev":"checkpoint","run":K,"done":3,"total":6}
//! {"ev":"result","run":K,"index":0,"ok":{...}} | {...,"error":"..."}
//! {"ev":"done","run":K,"degraded":false,"quarantined":0,"stats":{...}}
//! {"ev":"quarantined","run":K,"detail":"..."}
//! {"ev":"status",...}   {"ev":"pong"}   {"ev":"draining"}
//! ```

use biglittle::Scenario;
use serde_json::Value;

/// Hard cap on one request line. Longer lines are rejected as
/// [`Reject::TooLarge`] and discarded up to the next newline without ever
/// being buffered whole.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// Largest scenario batch one submission may carry.
pub const MAX_BATCH_SCENARIOS: usize = 4096;

/// Budget sanity bounds: a zero budget can never complete and a budget
/// beyond these is a typo, not a plan (1 day wall / 10^15 events / 100
/// retries).
pub const MAX_DEADLINE_MS: u64 = 86_400_000;
/// See [`MAX_DEADLINE_MS`].
pub const MAX_EVENT_BUDGET: u64 = 1_000_000_000_000_000;
/// See [`MAX_DEADLINE_MS`].
pub const MAX_RETRIES: u64 = 100;

/// Why a request was refused. Every variant is a *typed, recoverable*
/// answer: the daemon never hangs and never dies on bad input, and the
/// client can tell "back off and retry" ([`Reject::is_retryable`]) from
/// "fix your request".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reject {
    /// The submission queue is at capacity; retry after backoff.
    QueueFull,
    /// The queued scenario count is past the admission limit; retry
    /// after backoff.
    Overloaded,
    /// The line was not a well-formed request (bad JSON, unknown op,
    /// unknown field, wrong type, undecodable scenario).
    Malformed,
    /// The line (or batch) exceeded a hard size cap.
    TooLarge,
    /// A budget was zero or absurd (see [`MAX_DEADLINE_MS`]).
    BadBudget,
    /// A submission carried no scenarios.
    EmptyBatch,
    /// The daemon is draining and admits nothing new.
    Draining,
}

impl Reject {
    /// The wire rendering of the reason.
    pub fn as_str(self) -> &'static str {
        match self {
            Reject::QueueFull => "queue-full",
            Reject::Overloaded => "overloaded",
            Reject::Malformed => "malformed",
            Reject::TooLarge => "too-large",
            Reject::BadBudget => "bad-budget",
            Reject::EmptyBatch => "empty-batch",
            Reject::Draining => "draining",
        }
    }

    /// Parses a wire reason back into the type (client side).
    pub fn parse(s: &str) -> Option<Reject> {
        Some(match s {
            "queue-full" => Reject::QueueFull,
            "overloaded" => Reject::Overloaded,
            "malformed" => Reject::Malformed,
            "too-large" => Reject::TooLarge,
            "bad-budget" => Reject::BadBudget,
            "empty-batch" => Reject::EmptyBatch,
            "draining" => Reject::Draining,
            _ => return None,
        })
    }

    /// Whether a client should back off and resubmit (load/lifecycle
    /// rejections) rather than give up (malformed requests stay malformed
    /// no matter how often they are retried).
    pub fn is_retryable(self) -> bool {
        matches!(
            self,
            Reject::QueueFull | Reject::Overloaded | Reject::Draining
        )
    }
}

/// Per-submission execution knobs, all optional. They funnel into the
/// same [`biglittle::SweepOptions`] budgets the one-shot CLI uses.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SubmitOptions {
    /// Per-scenario wall-clock budget in milliseconds.
    pub deadline_ms: Option<u64>,
    /// Per-scenario simulated-event budget.
    pub max_events: Option<u64>,
    /// Engine-level retries per failed scenario.
    pub retries: u32,
    /// Force the runtime invariant auditor on for the batch.
    pub audit: bool,
}

/// One parsed client request.
#[derive(Debug)]
pub enum Request {
    /// Submit a scenario batch for execution.
    Submit {
        /// The submitting client's self-declared identity — the
        /// fair-share scheduling unit.
        client: String,
        /// The decoded batch, in submission order.
        scenarios: Vec<Scenario>,
        /// Execution knobs.
        options: SubmitOptions,
    },
    /// Ask for daemon-wide load/lifecycle counters.
    Status,
    /// Liveness probe.
    Ping,
    /// Begin graceful drain: stop admitting, finish active runs, exit.
    Drain,
}

/// Parses one request line. Errors carry the typed reason plus a
/// human-readable detail for the `rejected` event.
pub fn parse_request(line: &str) -> Result<Request, (Reject, String)> {
    let v: Value = serde_json::from_str(line)
        .map_err(|e| (Reject::Malformed, format!("invalid JSON: {e}")))?;
    let fields = v.as_object().ok_or_else(|| {
        (
            Reject::Malformed,
            "request must be a JSON object".to_string(),
        )
    })?;
    let op = v
        .get("op")
        .and_then(Value::as_str)
        .ok_or_else(|| (Reject::Malformed, "missing string field \"op\"".to_string()))?;
    match op {
        "submit" => parse_submit(fields, &v),
        "status" | "ping" | "drain" => {
            if let Some((k, _)) = fields.iter().find(|(k, _)| k != "op") {
                return Err((
                    Reject::Malformed,
                    format!("unknown field {k:?} for op {op:?}"),
                ));
            }
            Ok(match op {
                "status" => Request::Status,
                "ping" => Request::Ping,
                _ => Request::Drain,
            })
        }
        other => Err((Reject::Malformed, format!("unknown op {other:?}"))),
    }
}

fn parse_submit(fields: &[(String, Value)], v: &Value) -> Result<Request, (Reject, String)> {
    for (k, _) in fields {
        if !matches!(k.as_str(), "op" | "client" | "scenarios" | "options") {
            return Err((
                Reject::Malformed,
                format!("unknown field {k:?} for op \"submit\""),
            ));
        }
    }
    let client = match v.get("client") {
        None => "anon".to_string(),
        Some(Value::String(s)) if !s.is_empty() => s.clone(),
        Some(_) => {
            return Err((
                Reject::Malformed,
                "\"client\" must be a non-empty string".to_string(),
            ))
        }
    };
    let raw = v
        .get("scenarios")
        .and_then(Value::as_array)
        .ok_or_else(|| {
            (
                Reject::Malformed,
                "missing array field \"scenarios\"".to_string(),
            )
        })?;
    if raw.is_empty() {
        return Err((
            Reject::EmptyBatch,
            "a batch must carry at least one scenario".to_string(),
        ));
    }
    if raw.len() > MAX_BATCH_SCENARIOS {
        return Err((
            Reject::TooLarge,
            format!(
                "batch of {} scenarios exceeds the cap of {MAX_BATCH_SCENARIOS}",
                raw.len()
            ),
        ));
    }
    let mut scenarios = Vec::with_capacity(raw.len());
    for (i, sc) in raw.iter().enumerate() {
        scenarios.push(serde_json::from_value::<Scenario>(sc.clone()).map_err(|e| {
            (
                Reject::Malformed,
                format!("scenario #{i} does not decode: {e}"),
            )
        })?);
    }
    let options = parse_options(v.get("options"))?;
    Ok(Request::Submit {
        client,
        scenarios,
        options,
    })
}

fn parse_options(v: Option<&Value>) -> Result<SubmitOptions, (Reject, String)> {
    let mut opts = SubmitOptions::default();
    let Some(v) = v else {
        return Ok(opts);
    };
    let fields = v.as_object().ok_or_else(|| {
        (
            Reject::Malformed,
            "\"options\" must be a JSON object".to_string(),
        )
    })?;
    for (k, val) in fields {
        match k.as_str() {
            "deadline_ms" => {
                let ms = val.as_u64().ok_or_else(|| {
                    (
                        Reject::Malformed,
                        "\"deadline_ms\" must be an integer".to_string(),
                    )
                })?;
                if ms == 0 || ms > MAX_DEADLINE_MS {
                    return Err((
                        Reject::BadBudget,
                        format!("deadline_ms {ms} outside 1..={MAX_DEADLINE_MS}"),
                    ));
                }
                opts.deadline_ms = Some(ms);
            }
            "max_events" => {
                let n = val.as_u64().ok_or_else(|| {
                    (
                        Reject::Malformed,
                        "\"max_events\" must be an integer".to_string(),
                    )
                })?;
                if n == 0 || n > MAX_EVENT_BUDGET {
                    return Err((
                        Reject::BadBudget,
                        format!("max_events {n} outside 1..={MAX_EVENT_BUDGET}"),
                    ));
                }
                opts.max_events = Some(n);
            }
            "retries" => {
                let n = val.as_u64().ok_or_else(|| {
                    (
                        Reject::Malformed,
                        "\"retries\" must be an integer".to_string(),
                    )
                })?;
                if n > MAX_RETRIES {
                    return Err((
                        Reject::BadBudget,
                        format!("retries {n} exceeds {MAX_RETRIES}"),
                    ));
                }
                opts.retries = n as u32;
            }
            "audit" => match val {
                Value::Bool(b) => opts.audit = *b,
                _ => {
                    return Err((Reject::Malformed, "\"audit\" must be a boolean".to_string()));
                }
            },
            other => {
                return Err((
                    Reject::Malformed,
                    format!("unknown field {other:?} in \"options\""),
                ));
            }
        }
    }
    Ok(opts)
}

/// Builds the submit request line a client sends (the inverse of
/// [`parse_request`]). `scenarios` are pre-serialized scenario objects.
pub fn submit_line(client: &str, scenarios: &[Value], options: &SubmitOptions) -> String {
    let mut opt_fields: Vec<(String, Value)> = Vec::new();
    if let Some(ms) = options.deadline_ms {
        opt_fields.push(("deadline_ms".into(), Value::UInt(ms)));
    }
    if let Some(n) = options.max_events {
        opt_fields.push(("max_events".into(), Value::UInt(n)));
    }
    if options.retries > 0 {
        opt_fields.push(("retries".into(), Value::UInt(u64::from(options.retries))));
    }
    if options.audit {
        opt_fields.push(("audit".into(), Value::Bool(true)));
    }
    let mut fields = vec![
        ("op".into(), Value::String("submit".into())),
        ("client".into(), Value::String(client.to_string())),
        ("scenarios".into(), Value::Array(scenarios.to_vec())),
    ];
    if !opt_fields.is_empty() {
        fields.push(("options".into(), Value::Object(opt_fields)));
    }
    serde_json::to_string(&Value::Object(fields)).expect("request serializes")
}

// ---- server→client events --------------------------------------------------

/// One parsed server event (client side).
#[derive(Debug)]
pub enum Event {
    /// The submission was admitted (or attached to an in-flight run of
    /// the same batch).
    Admitted {
        /// The run's identity: the batch key of the submitted scenarios.
        run: String,
        /// Queue position at admission (0 = already executing).
        position: u64,
    },
    /// The request was refused.
    Rejected {
        /// The typed reason.
        reason: Reject,
        /// Human-readable detail.
        detail: String,
    },
    /// Periodic liveness + progress for a subscribed run.
    Heartbeat {
        /// The run.
        run: String,
        /// Lifecycle state rendering.
        state: String,
        /// Scenarios settled so far.
        done: u64,
        /// Scenarios in the batch.
        total: u64,
        /// The daemon's live throughput signal.
        events_per_sec: f64,
    },
    /// Progress advanced (journal grew).
    Checkpoint {
        /// The run.
        run: String,
        /// Scenarios settled so far.
        done: u64,
        /// Scenarios in the batch.
        total: u64,
    },
    /// One scenario's final result.
    ResultSlot {
        /// The run.
        run: String,
        /// The scenario's index in the batch.
        index: u64,
        /// `Ok(result JSON)` or `Err(error rendering)`.
        outcome: Result<Value, String>,
    },
    /// The run completed; all `result` events have been sent.
    Done {
        /// The run.
        run: String,
        /// Whether the sweep needed retries or quarantined scenarios.
        degraded: bool,
        /// Scenarios quarantined inside the batch.
        quarantined: u64,
        /// The sweep's stats object (scenarios, resumed, hydrated, ...).
        stats: Value,
    },
    /// The run was quarantined whole (wedged past the server timeout).
    RunQuarantined {
        /// The run.
        run: String,
        /// Human-readable detail.
        detail: String,
    },
    /// Daemon-wide counters (answer to `{"op":"status"}`).
    Status(Value),
    /// Answer to `{"op":"ping"}`.
    Pong,
    /// Acknowledgement that the daemon entered drain.
    Draining,
}

/// Parses one event line (client side).
pub fn parse_event(line: &str) -> Result<Event, String> {
    let v: Value = serde_json::from_str(line).map_err(|e| format!("invalid event JSON: {e}"))?;
    let ev = v
        .get("ev")
        .and_then(Value::as_str)
        .ok_or_else(|| format!("event without \"ev\": {line}"))?;
    let run = || {
        v.get("run")
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("event {ev:?} without \"run\""))
    };
    let num = |k: &str| v.get(k).and_then(Value::as_u64).unwrap_or(0);
    Ok(match ev {
        "admitted" => Event::Admitted {
            run: run()?,
            position: num("position"),
        },
        "rejected" => {
            let reason = v
                .get("reason")
                .and_then(Value::as_str)
                .and_then(Reject::parse)
                .ok_or_else(|| format!("rejected event with unknown reason: {line}"))?;
            Event::Rejected {
                reason,
                detail: v
                    .get("detail")
                    .and_then(Value::as_str)
                    .unwrap_or("")
                    .to_string(),
            }
        }
        "heartbeat" => Event::Heartbeat {
            run: run()?,
            state: v
                .get("state")
                .and_then(Value::as_str)
                .unwrap_or("")
                .to_string(),
            done: num("done"),
            total: num("total"),
            events_per_sec: v
                .get("events_per_sec")
                .and_then(Value::as_f64)
                .unwrap_or(0.0),
        },
        "checkpoint" => Event::Checkpoint {
            run: run()?,
            done: num("done"),
            total: num("total"),
        },
        "result" => {
            let outcome = match (v.get("ok"), v.get("error").and_then(Value::as_str)) {
                (Some(ok), None) => Ok(ok.clone()),
                (None, Some(e)) => Err(e.to_string()),
                _ => {
                    return Err(format!(
                        "result event needs exactly one of ok/error: {line}"
                    ))
                }
            };
            Event::ResultSlot {
                run: run()?,
                index: num("index"),
                outcome,
            }
        }
        "done" => Event::Done {
            run: run()?,
            degraded: matches!(v.get("degraded"), Some(Value::Bool(true))),
            quarantined: num("quarantined"),
            stats: v.get("stats").cloned().unwrap_or(Value::Null),
        },
        "quarantined" => Event::RunQuarantined {
            run: run()?,
            detail: v
                .get("detail")
                .and_then(Value::as_str)
                .unwrap_or("")
                .to_string(),
        },
        "status" => Event::Status(v),
        "pong" => Event::Pong,
        "draining" => Event::Draining,
        other => return Err(format!("unknown event {other:?}")),
    })
}

// ---- event line builders (server side) -------------------------------------

fn line(fields: Vec<(String, Value)>) -> String {
    serde_json::to_string(&Value::Object(fields)).expect("event serializes")
}

/// `admitted` event line.
pub fn admitted_line(run: &str, position: u64) -> String {
    line(vec![
        ("ev".into(), Value::String("admitted".into())),
        ("run".into(), Value::String(run.to_string())),
        ("position".into(), Value::UInt(position)),
    ])
}

/// `rejected` event line.
pub fn rejected_line(reason: Reject, detail: &str) -> String {
    line(vec![
        ("ev".into(), Value::String("rejected".into())),
        ("reason".into(), Value::String(reason.as_str().into())),
        ("detail".into(), Value::String(detail.to_string())),
    ])
}

/// `heartbeat` event line.
pub fn heartbeat_line(run: &str, state: &str, done: u64, total: u64, eps: f64) -> String {
    line(vec![
        ("ev".into(), Value::String("heartbeat".into())),
        ("run".into(), Value::String(run.to_string())),
        ("state".into(), Value::String(state.to_string())),
        ("done".into(), Value::UInt(done)),
        ("total".into(), Value::UInt(total)),
        ("events_per_sec".into(), Value::Float(eps)),
    ])
}

/// `checkpoint` event line.
pub fn checkpoint_line(run: &str, done: u64, total: u64) -> String {
    line(vec![
        ("ev".into(), Value::String("checkpoint".into())),
        ("run".into(), Value::String(run.to_string())),
        ("done".into(), Value::UInt(done)),
        ("total".into(), Value::UInt(total)),
    ])
}

/// `result` event line for one scenario slot.
pub fn result_line(run: &str, index: u64, outcome: &Result<Value, String>) -> String {
    let mut fields = vec![
        ("ev".into(), Value::String("result".into())),
        ("run".into(), Value::String(run.to_string())),
        ("index".into(), Value::UInt(index)),
    ];
    match outcome {
        Ok(v) => fields.push(("ok".into(), v.clone())),
        Err(e) => fields.push(("error".into(), Value::String(e.clone()))),
    }
    line(fields)
}

/// `done` event line.
pub fn done_line(run: &str, degraded: bool, quarantined: u64, stats: Value) -> String {
    line(vec![
        ("ev".into(), Value::String("done".into())),
        ("run".into(), Value::String(run.to_string())),
        ("degraded".into(), Value::Bool(degraded)),
        ("quarantined".into(), Value::UInt(quarantined)),
        ("stats".into(), stats),
    ])
}

/// `quarantined` (whole-run) event line.
pub fn quarantined_line(run: &str, detail: &str) -> String {
    line(vec![
        ("ev".into(), Value::String("quarantined".into())),
        ("run".into(), Value::String(run.to_string())),
        ("detail".into(), Value::String(detail.to_string())),
    ])
}

/// `pong` event line.
pub fn pong_line() -> String {
    line(vec![("ev".into(), Value::String("pong".into()))])
}

/// `draining` acknowledgement line.
pub fn draining_line() -> String {
    line(vec![("ev".into(), Value::String("draining".into()))])
}

#[cfg(test)]
mod tests {
    use super::*;
    use biglittle::{Scenario, SystemConfig};
    use bl_simcore::time::SimDuration;

    fn scenario_json() -> String {
        let sc = Scenario::microbench(
            "p",
            bl_platform::ids::CpuId(0),
            0.3,
            SimDuration::from_millis(10),
            SimDuration::from_millis(50),
            SystemConfig::baseline(),
        );
        serde_json::to_string(&serde_json::to_value(&sc).unwrap()).unwrap()
    }

    /// The malformed-input hardening table: every bad line maps to its
    /// typed rejection, never a panic.
    #[test]
    fn malformed_lines_map_to_typed_rejections() {
        let sc = scenario_json();
        let cases: Vec<(String, Reject)> = vec![
            // Truncated JSON.
            (
                "{\"op\":\"submit\",\"scenarios\":[".into(),
                Reject::Malformed,
            ),
            ("{\"op\":".into(), Reject::Malformed),
            ("".into(), Reject::Malformed),
            // Not an object / wrong shapes.
            ("[1,2,3]".into(), Reject::Malformed),
            ("42".into(), Reject::Malformed),
            ("{\"no_op\":true}".into(), Reject::Malformed),
            ("{\"op\":17}".into(), Reject::Malformed),
            ("{\"op\":\"launch\"}".into(), Reject::Malformed),
            // Unknown fields, top level and inside options.
            (
                format!("{{\"op\":\"submit\",\"scenarios\":[{sc}],\"extra\":1}}"),
                Reject::Malformed,
            ),
            (
                format!(
                    "{{\"op\":\"submit\",\"scenarios\":[{sc}],\"options\":{{\"priority\":9}}}}"
                ),
                Reject::Malformed,
            ),
            (
                "{\"op\":\"ping\",\"payload\":\"x\"}".into(),
                Reject::Malformed,
            ),
            // Bad client / scenario payloads.
            (
                format!("{{\"op\":\"submit\",\"client\":7,\"scenarios\":[{sc}]}}"),
                Reject::Malformed,
            ),
            (
                "{\"op\":\"submit\",\"scenarios\":[{\"not\":\"a scenario\"}]}".into(),
                Reject::Malformed,
            ),
            (
                "{\"op\":\"submit\",\"scenarios\":\"nope\"}".into(),
                Reject::Malformed,
            ),
            // Zero-scenario batches.
            (
                "{\"op\":\"submit\",\"scenarios\":[]}".into(),
                Reject::EmptyBatch,
            ),
            // Absurd budgets.
            (
                format!(
                    "{{\"op\":\"submit\",\"scenarios\":[{sc}],\"options\":{{\"deadline_ms\":0}}}}"
                ),
                Reject::BadBudget,
            ),
            (
                format!(
                    "{{\"op\":\"submit\",\"scenarios\":[{sc}],\
                     \"options\":{{\"deadline_ms\":99999999999}}}}"
                ),
                Reject::BadBudget,
            ),
            (
                format!(
                    "{{\"op\":\"submit\",\"scenarios\":[{sc}],\"options\":{{\"max_events\":0}}}}"
                ),
                Reject::BadBudget,
            ),
            (
                format!(
                    "{{\"op\":\"submit\",\"scenarios\":[{sc}],\"options\":{{\"retries\":5000}}}}"
                ),
                Reject::BadBudget,
            ),
        ];
        for (input, want) in cases {
            match parse_request(&input) {
                Err((got, detail)) => {
                    assert_eq!(got, want, "input {input:?} → {detail}");
                    assert!(!detail.is_empty(), "rejection for {input:?} carries detail");
                }
                Ok(_) => panic!("input {input:?} unexpectedly parsed"),
            }
        }
    }

    #[test]
    fn well_formed_requests_parse() {
        let sc = scenario_json();
        let req = parse_request(&format!(
            "{{\"op\":\"submit\",\"client\":\"a\",\"scenarios\":[{sc}],\
             \"options\":{{\"deadline_ms\":60000,\"retries\":2,\"audit\":true}}}}"
        ))
        .unwrap();
        match req {
            Request::Submit {
                client,
                scenarios,
                options,
            } => {
                assert_eq!(client, "a");
                assert_eq!(scenarios.len(), 1);
                assert_eq!(options.deadline_ms, Some(60_000));
                assert_eq!(options.retries, 2);
                assert!(options.audit);
            }
            other => panic!("wrong request: {other:?}"),
        }
        assert!(matches!(
            parse_request("{\"op\":\"status\"}"),
            Ok(Request::Status)
        ));
        assert!(matches!(
            parse_request("{\"op\":\"ping\"}"),
            Ok(Request::Ping)
        ));
        assert!(matches!(
            parse_request("{\"op\":\"drain\"}"),
            Ok(Request::Drain)
        ));
    }

    #[test]
    fn submit_line_round_trips_through_the_parser() {
        let sc: Value = serde_json::from_str(&scenario_json()).unwrap();
        let opts = SubmitOptions {
            deadline_ms: Some(1000),
            max_events: Some(5_000_000),
            retries: 1,
            audit: false,
        };
        let line = submit_line("smoke", std::slice::from_ref(&sc), &opts);
        match parse_request(&line).unwrap() {
            Request::Submit {
                client, options, ..
            } => {
                assert_eq!(client, "smoke");
                assert_eq!(options, opts);
            }
            other => panic!("wrong request: {other:?}"),
        }
    }

    #[test]
    fn event_lines_round_trip() {
        let cases = vec![
            admitted_line("abc", 2),
            rejected_line(Reject::Overloaded, "busy"),
            heartbeat_line("abc", "running", 2, 6, 1234.5),
            checkpoint_line("abc", 3, 6),
            result_line("abc", 0, &Ok(Value::UInt(7))),
            result_line("abc", 1, &Err("boom".into())),
            done_line("abc", false, 0, Value::Null),
            quarantined_line("abc", "wedged"),
            pong_line(),
            draining_line(),
        ];
        for l in cases {
            parse_event(&l).unwrap_or_else(|e| panic!("{l}: {e}"));
        }
        assert!(matches!(
            parse_event(&rejected_line(Reject::QueueFull, "full")),
            Ok(Event::Rejected {
                reason: Reject::QueueFull,
                ..
            })
        ));
    }
}
