//! The submit client: connects to a serve daemon, submits a scenario
//! batch, and collects the streamed results — with retry, exponential
//! backoff and reconnect-and-resume. A disconnect (daemon SIGKILLed,
//! socket dropped, retryable rejection) is answered by resubmitting the
//! identical batch: the server dedups by batch key and the engine's
//! journal replays completed scenarios, so the eventual results are
//! byte-identical to an uninterrupted one-shot sweep.

use crate::proto::{self, Event, SubmitOptions};
use serde_json::Value;
use std::io::{self, Read as _, Write as _};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// How the client connects and retries.
#[derive(Debug, Clone)]
pub struct SubmitConfig {
    /// The daemon's socket path.
    pub socket: PathBuf,
    /// Client identity for fair-share accounting.
    pub client: String,
    /// Reconnect attempts after a retryable failure before giving up.
    pub reconnects: u32,
    /// First backoff delay; doubles per consecutive failure, capped at
    /// [`SubmitConfig::backoff_cap`].
    pub backoff: Duration,
    /// Upper bound on one backoff sleep.
    pub backoff_cap: Duration,
    /// How long a connection may go without any event (heartbeats count)
    /// before it is treated as dead and retried.
    pub quiet_timeout: Duration,
    /// Per-run execution options forwarded to the server.
    pub options: SubmitOptions,
    /// Suppress progress chatter on stderr.
    pub quiet: bool,
}

impl Default for SubmitConfig {
    fn default() -> Self {
        SubmitConfig {
            socket: PathBuf::from("results/.serve/serve.sock"),
            client: "anon".to_string(),
            reconnects: 8,
            backoff: Duration::from_millis(100),
            backoff_cap: Duration::from_secs(3),
            quiet_timeout: Duration::from_secs(30),
            options: SubmitOptions::default(),
            quiet: false,
        }
    }
}

/// What one submission ultimately produced.
#[derive(Debug)]
pub struct SubmitReport {
    /// The run id (batch key) the server assigned.
    pub run: String,
    /// Per-scenario outcomes in submission order: `Ok(result JSON)` or
    /// `Err(error rendering)`.
    pub results: Vec<Result<Value, String>>,
    /// Whether the sweep needed retries or quarantined scenarios.
    pub degraded: bool,
    /// Scenarios quarantined inside the batch.
    pub quarantined: u64,
    /// The server's stats object for the run.
    pub stats: Value,
    /// Reconnect cycles spent (0 = clean first attempt).
    pub reconnects: u32,
    /// Heartbeat events observed.
    pub heartbeats: u64,
    /// Checkpoint events observed.
    pub checkpoints: u64,
    /// Retryable rejections absorbed (`queue-full`, `overloaded`,
    /// `draining`).
    pub rejections: u64,
}

/// One attempt's terminal condition.
enum Attempt {
    /// The run finished; report is complete.
    Complete(Box<SubmitReport>),
    /// Connection-level failure or retryable rejection — back off and
    /// resubmit. The payload says why, for logging.
    Retry(String),
    /// Typed, non-retryable server answer (malformed-class rejection or
    /// run quarantine) — retrying the same bytes cannot succeed.
    Fatal(String),
}

/// Submits `scenarios` (pre-serialized JSON values, so the bytes the
/// server receives are exactly the bytes the caller rendered) and blocks
/// until the run completes, retrying across disconnects and daemon
/// restarts.
pub fn submit(cfg: &SubmitConfig, scenarios: &[Value]) -> Result<SubmitReport, String> {
    let line = proto::submit_line(&cfg.client, scenarios, &cfg.options);
    let mut delay = cfg.backoff;
    let mut reconnects = 0u32;
    let mut rejections = 0u64;
    loop {
        match attempt(cfg, &line, scenarios.len()) {
            Ok(Attempt::Complete(mut report)) => {
                report.reconnects = reconnects;
                report.rejections += rejections;
                return Ok(*report);
            }
            Ok(Attempt::Fatal(why)) => return Err(why),
            Ok(Attempt::Retry(why)) => {
                if why.starts_with("rejected") {
                    rejections += 1;
                }
                if reconnects >= cfg.reconnects {
                    return Err(format!("giving up after {reconnects} reconnect(s): {why}"));
                }
                reconnects += 1;
                if !cfg.quiet {
                    eprintln!(
                        "submit: {why}; retrying in {delay:?} ({reconnects}/{})",
                        cfg.reconnects
                    );
                }
                std::thread::sleep(delay);
                delay = (delay * 2).min(cfg.backoff_cap);
            }
            Err(e) => {
                // Connect-level I/O error (daemon down / socket missing).
                if reconnects >= cfg.reconnects {
                    return Err(format!("giving up after {reconnects} reconnect(s): {e}"));
                }
                reconnects += 1;
                if !cfg.quiet {
                    eprintln!(
                        "submit: connect failed ({e}); retrying in {delay:?} ({reconnects}/{})",
                        cfg.reconnects
                    );
                }
                std::thread::sleep(delay);
                delay = (delay * 2).min(cfg.backoff_cap);
            }
        }
    }
}

/// One connect-submit-stream cycle.
fn attempt(cfg: &SubmitConfig, submit_line: &str, total: usize) -> io::Result<Attempt> {
    let mut stream = UnixStream::connect(&cfg.socket)?;
    stream.set_read_timeout(Some(Duration::from_millis(100)))?;
    stream.write_all(submit_line.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()?;

    let mut results: Vec<Option<Result<Value, String>>> = vec![None; total];
    let mut heartbeats = 0u64;
    let mut checkpoints = 0u64;
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 8192];
    let mut last_event = Instant::now();
    loop {
        while let Some(nl) = buf.iter().position(|b| *b == b'\n') {
            let line: Vec<u8> = buf.drain(..=nl).collect();
            let text = String::from_utf8_lossy(&line[..line.len() - 1]);
            let text = text.trim();
            if text.is_empty() {
                continue;
            }
            last_event = Instant::now();
            match proto::parse_event(text) {
                Ok(Event::Admitted { run, position }) => {
                    if !cfg.quiet {
                        eprintln!("submit: admitted as run {run} (queue position {position})");
                    }
                }
                Ok(Event::Rejected { reason, detail }) => {
                    return Ok(if reason.is_retryable() {
                        Attempt::Retry(format!("rejected: {} ({detail})", reason.as_str()))
                    } else {
                        Attempt::Fatal(format!(
                            "server rejected the batch: {} ({detail})",
                            reason.as_str()
                        ))
                    });
                }
                Ok(Event::Heartbeat {
                    done,
                    total,
                    events_per_sec,
                    ..
                }) => {
                    heartbeats += 1;
                    if !cfg.quiet {
                        eprintln!(
                            "submit: heartbeat {done}/{total} ({events_per_sec:.0} events/s)"
                        );
                    }
                }
                Ok(Event::Checkpoint { done, total, .. }) => {
                    checkpoints += 1;
                    if !cfg.quiet {
                        eprintln!("submit: checkpoint {done}/{total}");
                    }
                }
                Ok(Event::ResultSlot { index, outcome, .. }) => {
                    if let Some(slot) = results.get_mut(index as usize) {
                        *slot = Some(outcome);
                    }
                }
                Ok(Event::Done {
                    run: r,
                    degraded,
                    quarantined,
                    stats,
                }) => {
                    if results.iter().any(Option::is_none) {
                        // The stream completed but slots are missing —
                        // resubmit; journal replay makes it cheap.
                        return Ok(Attempt::Retry(
                            "done arrived with missing result slots".to_string(),
                        ));
                    }
                    return Ok(Attempt::Complete(Box::new(SubmitReport {
                        run: r,
                        results: results.into_iter().map(|s| s.expect("checked")).collect(),
                        degraded,
                        quarantined,
                        stats,
                        reconnects: 0,
                        heartbeats,
                        checkpoints,
                        rejections: 0,
                    })));
                }
                Ok(Event::RunQuarantined { run, detail }) => {
                    return Ok(Attempt::Fatal(format!(
                        "run {run} was quarantined by the server: {detail}"
                    )));
                }
                Ok(Event::Status(_)) | Ok(Event::Pong) => {}
                Ok(Event::Draining) => {
                    return Ok(Attempt::Retry("server is draining".to_string()));
                }
                Err(e) => {
                    return Ok(Attempt::Retry(format!("unreadable event: {e}")));
                }
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Ok(Attempt::Retry("server closed the connection".to_string())),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if last_event.elapsed() >= cfg.quiet_timeout {
                    return Ok(Attempt::Retry(format!(
                        "no events for {:?}",
                        cfg.quiet_timeout
                    )));
                }
            }
            Err(e) => return Ok(Attempt::Retry(format!("read failed: {e}"))),
        }
    }
}

/// Sends one fire-and-forget control line (`status`, `ping`, `drain`)
/// and returns the first event line the server answers with.
pub fn control(socket: &PathBuf, op: &str) -> Result<String, String> {
    let mut stream =
        UnixStream::connect(socket).map_err(|e| format!("connect {}: {e}", socket.display()))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .map_err(|e| e.to_string())?;
    let line = serde_json::to_string(&Value::Object(vec![(
        "op".into(),
        Value::String(op.to_string()),
    )]))
    .expect("op serializes");
    stream
        .write_all(format!("{line}\n").as_bytes())
        .map_err(|e| format!("send: {e}"))?;
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        if let Some(nl) = buf.iter().position(|b| *b == b'\n') {
            let line: Vec<u8> = buf.drain(..=nl).collect();
            return Ok(String::from_utf8_lossy(&line[..line.len() - 1])
                .trim()
                .to_string());
        }
        if Instant::now() >= deadline {
            return Err("timed out waiting for the server's answer".to_string());
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Err("server closed the connection".to_string()),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            }
            Err(e) => return Err(format!("read: {e}")),
        }
    }
}
