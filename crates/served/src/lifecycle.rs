//! The run lifecycle board: a pure state machine (no clocks, no I/O, no
//! sockets) deciding admission, fair-share scheduling and wedge
//! detection — the serve-layer twin of the shard layer's
//! `bl_simcore::shard::LeaseBoard`. The daemon injects timestamps and
//! persists every transition through its service journal; keeping the
//! kernel pure makes every admission-control and fairness rule unit
//! testable without a socket in sight.
//!
//! The lifecycle:
//!
//! ```text
//! submitted → admitted → leased → running → complete
//!                                        ↘ quarantined
//! ```
//!
//! `submitted` is the wire-level receipt, `admitted` means the run passed
//! admission control and its batch is persisted, `leased` means an
//! executor owns it, `running` means it has made observable progress
//! (its sweep journal exists), and the two terminal states record how it
//! ended. Terminal runs may be resubmitted: the engine's journal replay
//! makes the re-run cheap and byte-identical.

use crate::proto::Reject;
use std::collections::{HashMap, VecDeque};

/// One run's lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunState {
    /// Received and validated, admission pending.
    Submitted,
    /// Admitted and queued; its batch file is persisted.
    Admitted,
    /// Handed to an executor, no progress observed yet.
    Leased,
    /// Making observable progress.
    Running,
    /// Finished (possibly degraded — scenario-level quarantines live in
    /// the sweep report, not here).
    Complete,
    /// Wedged past the server timeout and cancelled whole.
    Quarantined,
}

impl RunState {
    /// The journal/wire rendering.
    pub fn as_str(self) -> &'static str {
        match self {
            RunState::Submitted => "submitted",
            RunState::Admitted => "admitted",
            RunState::Leased => "leased",
            RunState::Running => "running",
            RunState::Complete => "complete",
            RunState::Quarantined => "quarantined",
        }
    }

    /// Parses a journal/wire rendering.
    pub fn parse(s: &str) -> Option<RunState> {
        Some(match s {
            "submitted" => RunState::Submitted,
            "admitted" => RunState::Admitted,
            "leased" => RunState::Leased,
            "running" => RunState::Running,
            "complete" => RunState::Complete,
            "quarantined" => RunState::Quarantined,
            _ => return None,
        })
    }

    /// Whether the state is final.
    pub fn is_terminal(self) -> bool {
        matches!(self, RunState::Complete | RunState::Quarantined)
    }
}

/// One tracked run.
#[derive(Debug, Clone)]
pub struct RunEntry {
    /// The run's identity (batch key).
    pub run: String,
    /// The submitting client — the fair-share unit.
    pub client: String,
    /// Scenarios in the batch.
    pub total: usize,
    /// Current lifecycle state.
    pub state: RunState,
    /// Scenarios settled so far (journal done/err records).
    pub done: usize,
    /// Injected timestamp of the last observed progress (or grant).
    pub last_progress_ms: u64,
}

/// How a submission was accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// A fresh run, queued behind `position` others.
    Queued {
        /// Runs ahead of it in the queue.
        position: u64,
    },
    /// The same batch is already queued or executing; the caller was
    /// attached to the in-flight run instead of duplicating work.
    Attached {
        /// The in-flight run's state.
        state: RunState,
    },
}

/// Admission-control limits.
#[derive(Debug, Clone, Copy)]
pub struct BoardLimits {
    /// Most runs waiting in the queue (leased/running runs do not
    /// count). Past this, submissions get [`Reject::QueueFull`].
    pub max_queued: usize,
    /// Most scenarios summed over queued runs. Past this, submissions
    /// get [`Reject::Overloaded`].
    pub max_pending_scenarios: usize,
    /// Most runs executing at once.
    pub max_active: usize,
}

impl Default for BoardLimits {
    fn default() -> Self {
        BoardLimits {
            max_queued: 16,
            max_pending_scenarios: 4096,
            max_active: 2,
        }
    }
}

/// The board itself. All mutation goes through typed transitions; the
/// daemon journals each one.
#[derive(Debug, Default)]
pub struct RunBoard {
    limits: BoardLimits,
    draining: bool,
    runs: HashMap<String, RunEntry>,
    /// Per-client FIFO queues of admitted runs, in client arrival order.
    queues: Vec<(String, VecDeque<String>)>,
    /// Round-robin cursor over `queues` — the fair-share pointer.
    cursor: usize,
    /// Terminal tallies for the status surface.
    completed: u64,
    quarantined_runs: u64,
}

impl RunBoard {
    /// A board enforcing `limits`.
    pub fn new(limits: BoardLimits) -> RunBoard {
        RunBoard {
            limits,
            ..RunBoard::default()
        }
    }

    /// Runs currently waiting in the queue.
    pub fn queued(&self) -> usize {
        self.queues.iter().map(|(_, q)| q.len()).sum()
    }

    /// Scenarios summed over queued runs — the backpressure signal.
    pub fn pending_scenarios(&self) -> usize {
        self.queues
            .iter()
            .flat_map(|(_, q)| q.iter())
            .filter_map(|r| self.runs.get(r))
            .map(|e| e.total)
            .sum()
    }

    /// Runs currently leased or running.
    pub fn active(&self) -> usize {
        self.runs
            .values()
            .filter(|e| matches!(e.state, RunState::Leased | RunState::Running))
            .count()
    }

    /// Runs completed since startup.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Runs quarantined whole since startup.
    pub fn quarantined_runs(&self) -> u64 {
        self.quarantined_runs
    }

    /// Whether the board refuses new admissions.
    pub fn draining(&self) -> bool {
        self.draining
    }

    /// Stops admitting; already-admitted runs keep executing.
    pub fn drain(&mut self) {
        self.draining = true;
    }

    /// The entry for `run`, if tracked.
    pub fn get(&self, run: &str) -> Option<&RunEntry> {
        self.runs.get(run)
    }

    /// Submits a run. Non-terminal duplicates attach instead of
    /// re-queuing; terminal duplicates re-admit (the engine's journal
    /// replay makes the re-run cheap). Typed rejections enforce drain,
    /// queue depth and scenario-count backpressure — in that order, so an
    /// overloaded daemon always answers deterministically.
    pub fn submit(
        &mut self,
        run: &str,
        client: &str,
        total: usize,
        now_ms: u64,
    ) -> Result<Admission, Reject> {
        if let Some(e) = self.runs.get(run) {
            if !e.state.is_terminal() {
                return Ok(Admission::Attached { state: e.state });
            }
        }
        if self.draining {
            return Err(Reject::Draining);
        }
        if self.queued() >= self.limits.max_queued {
            return Err(Reject::QueueFull);
        }
        if self.pending_scenarios() + total > self.limits.max_pending_scenarios {
            return Err(Reject::Overloaded);
        }
        let position = self.queued() as u64;
        self.runs.insert(
            run.to_string(),
            RunEntry {
                run: run.to_string(),
                client: client.to_string(),
                total,
                state: RunState::Admitted,
                done: 0,
                last_progress_ms: now_ms,
            },
        );
        match self.queues.iter_mut().find(|(c, _)| c == client) {
            Some((_, q)) => q.push_back(run.to_string()),
            None => {
                let mut q = VecDeque::new();
                q.push_back(run.to_string());
                self.queues.push((client.to_string(), q));
            }
        }
        Ok(Admission::Queued { position })
    }

    /// Picks the next run to execute, fair-share: a round-robin cursor
    /// walks the clients so one flooding client cannot starve another —
    /// with clients A and B both queued, grants alternate A, B, A, B
    /// regardless of how many runs A has piled up. Respects
    /// [`BoardLimits::max_active`]; the chosen run transitions to
    /// [`RunState::Leased`].
    pub fn start_next(&mut self, now_ms: u64) -> Option<String> {
        if self.active() >= self.limits.max_active || self.queues.is_empty() {
            return None;
        }
        let n = self.queues.len();
        for step in 0..n {
            let idx = (self.cursor + step) % n;
            if let Some(run) = self.queues[idx].1.pop_front() {
                self.cursor = (idx + 1) % n;
                if let Some(e) = self.runs.get_mut(&run) {
                    e.state = RunState::Leased;
                    e.last_progress_ms = now_ms;
                }
                return Some(run);
            }
        }
        None
    }

    /// Records observed progress (`done` settled scenarios). The first
    /// progress moves a leased run to [`RunState::Running`]. Returns
    /// whether the count advanced.
    pub fn progress(&mut self, run: &str, done: usize, now_ms: u64) -> bool {
        let Some(e) = self.runs.get_mut(run) else {
            return false;
        };
        let advanced = done > e.done;
        if advanced {
            e.done = done;
            e.last_progress_ms = now_ms;
        }
        if e.state == RunState::Leased && (advanced || done > 0) {
            e.state = RunState::Running;
        }
        advanced
    }

    /// Marks a leased run as running without a progress count (its sweep
    /// journal appeared).
    pub fn mark_running(&mut self, run: &str, now_ms: u64) {
        if let Some(e) = self.runs.get_mut(run) {
            if e.state == RunState::Leased {
                e.state = RunState::Running;
                e.last_progress_ms = now_ms;
            }
        }
    }

    /// Terminal transition: the run finished.
    pub fn complete(&mut self, run: &str) {
        if let Some(e) = self.runs.get_mut(run) {
            if !e.state.is_terminal() {
                e.state = RunState::Complete;
                self.completed += 1;
            }
        }
    }

    /// Terminal transition: the run was cancelled whole.
    pub fn quarantine(&mut self, run: &str) {
        if let Some(e) = self.runs.get_mut(run) {
            if !e.state.is_terminal() {
                e.state = RunState::Quarantined;
                self.quarantined_runs += 1;
            }
        }
    }

    /// Active runs whose last observed progress is older than
    /// `timeout_ms` — the wedge candidates the daemon cancels and
    /// quarantines, exactly as the shard layer reclaims silent leases.
    pub fn wedged(&self, now_ms: u64, timeout_ms: u64) -> Vec<String> {
        self.runs
            .values()
            .filter(|e| matches!(e.state, RunState::Leased | RunState::Running))
            .filter(|e| now_ms.saturating_sub(e.last_progress_ms) >= timeout_ms)
            .map(|e| e.run.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn limits(max_queued: usize, max_pending: usize, max_active: usize) -> BoardLimits {
        BoardLimits {
            max_queued,
            max_pending_scenarios: max_pending,
            max_active,
        }
    }

    #[test]
    fn lifecycle_walks_submitted_to_complete() {
        let mut b = RunBoard::new(limits(4, 100, 1));
        assert_eq!(
            b.submit("r1", "a", 6, 0).unwrap(),
            Admission::Queued { position: 0 }
        );
        assert_eq!(b.get("r1").unwrap().state, RunState::Admitted);
        assert_eq!(b.start_next(1).as_deref(), Some("r1"));
        assert_eq!(b.get("r1").unwrap().state, RunState::Leased);
        assert!(b.progress("r1", 2, 2));
        assert_eq!(b.get("r1").unwrap().state, RunState::Running);
        b.complete("r1");
        assert_eq!(b.get("r1").unwrap().state, RunState::Complete);
        assert_eq!(b.completed(), 1);
        assert_eq!(b.active(), 0);
    }

    #[test]
    fn queue_full_and_overloaded_are_typed() {
        let mut b = RunBoard::new(limits(2, 10, 1));
        b.submit("r1", "a", 4, 0).unwrap();
        b.submit("r2", "a", 4, 0).unwrap();
        // Queue depth cap.
        assert_eq!(b.submit("r3", "a", 1, 0), Err(Reject::QueueFull));
        // Freeing one queue slot exposes the scenario-count cap.
        assert!(b.start_next(0).is_some());
        assert_eq!(b.submit("r4", "a", 8, 0), Err(Reject::Overloaded));
        // A small batch still fits.
        assert!(b.submit("r5", "a", 2, 0).is_ok());
    }

    #[test]
    fn duplicate_submission_attaches_and_terminal_readmits() {
        let mut b = RunBoard::new(limits(4, 100, 1));
        b.submit("r1", "a", 6, 0).unwrap();
        assert_eq!(
            b.submit("r1", "b", 6, 1).unwrap(),
            Admission::Attached {
                state: RunState::Admitted
            }
        );
        // Attach does not consume queue capacity.
        assert_eq!(b.queued(), 1);
        b.start_next(2);
        b.complete("r1");
        // Terminal runs re-admit as fresh work.
        assert_eq!(
            b.submit("r1", "a", 6, 3).unwrap(),
            Admission::Queued { position: 0 }
        );
    }

    #[test]
    fn fair_share_alternates_clients() {
        let mut b = RunBoard::new(limits(10, 1000, 10));
        b.submit("a1", "a", 1, 0).unwrap();
        b.submit("a2", "a", 1, 0).unwrap();
        b.submit("a3", "a", 1, 0).unwrap();
        b.submit("b1", "b", 1, 0).unwrap();
        b.submit("b2", "b", 1, 0).unwrap();
        let order: Vec<String> = std::iter::from_fn(|| b.start_next(1)).collect();
        // A flooding client "a" cannot starve "b": grants alternate.
        assert_eq!(order, ["a1", "b1", "a2", "b2", "a3"]);
    }

    #[test]
    fn max_active_gates_grants() {
        let mut b = RunBoard::new(limits(10, 1000, 2));
        for i in 0..4 {
            b.submit(&format!("r{i}"), "a", 1, 0).unwrap();
        }
        assert!(b.start_next(0).is_some());
        assert!(b.start_next(0).is_some());
        assert!(b.start_next(0).is_none(), "max_active = 2 holds");
        b.complete("r0");
        assert!(b.start_next(0).is_some(), "capacity freed by completion");
    }

    #[test]
    fn draining_rejects_new_work_but_keeps_old() {
        let mut b = RunBoard::new(limits(4, 100, 1));
        b.submit("r1", "a", 6, 0).unwrap();
        b.drain();
        assert_eq!(b.submit("r2", "a", 6, 1), Err(Reject::Draining));
        // Already-admitted work still schedules...
        assert_eq!(b.start_next(2).as_deref(), Some("r1"));
        // ...and attaching to it still works (a reconnecting client must
        // be able to collect results during drain).
        assert_eq!(
            b.submit("r1", "a", 6, 3).unwrap(),
            Admission::Attached {
                state: RunState::Leased
            }
        );
    }

    #[test]
    fn wedge_detection_uses_injected_clock() {
        let mut b = RunBoard::new(limits(4, 100, 2));
        b.submit("r1", "a", 6, 0).unwrap();
        b.submit("r2", "a", 6, 0).unwrap();
        b.start_next(1_000);
        b.start_next(1_000);
        b.progress("r1", 1, 5_000);
        // r2 last made "progress" at its lease grant (t=1000).
        assert_eq!(b.wedged(5_500, 3_000), vec!["r2".to_string()]);
        assert!(b.wedged(5_500, 10_000).is_empty());
        b.quarantine("r2");
        assert_eq!(b.quarantined_runs(), 1);
        assert!(b.wedged(60_000, 3_000) == vec!["r1".to_string()]);
    }
}
