//! Sweep-as-a-service: a crash-only daemon that serves scenario batches
//! over a Unix-socket JSON-lines protocol, plus the matching submit
//! client.
//!
//! The crate splits into:
//!
//! * [`proto`] — the wire grammar: strict request parsing with typed
//!   rejections, and the event lines the server streams back;
//! * [`lifecycle`] — the pure run-lifecycle state machine
//!   (`submitted → admitted → leased → running → complete | quarantined`)
//!   with bounded admission, per-client fair-share queues and
//!   injected-clock wedge detection;
//! * [`server`] — the daemon: std-only threads over a `UnixListener`,
//!   write-ahead batch persistence, a checksummed service journal that a
//!   restart folds/compacts/adopts, journal-poll progress streaming, and
//!   SIGTERM drain;
//! * [`client`] — submit with retry, exponential backoff and
//!   reconnect-and-resume; resubmission after a daemon SIGKILL converges
//!   on results byte-identical to a one-shot sweep, because the run id
//!   is the batch key and the engine's journal replays completed work.

pub mod client;
pub mod lifecycle;
pub mod proto;
pub mod server;

pub use client::{control, submit, SubmitConfig, SubmitReport};
pub use lifecycle::{Admission, BoardLimits, RunBoard, RunEntry, RunState};
pub use proto::{Event, Reject, Request, SubmitOptions};
pub use server::{serve, ServeConfig, WEDGE_ENV};
