//! # bl-power
//!
//! Full-system power model and simulated power meter.
//!
//! The paper measures *whole-system* power with a Monsoon meter (paper §II).
//! This crate substitutes an analytic model:
//!
//! `P = base (+ screen) + Σ_clusters [ leak(V) + Σ online cores (idle_leak(V)
//!      + C_kind · V² · f · activity) ]`
//!
//! calibrated against the paper's reported full-system ratios (§III.A):
//!
//! * big@1.3 GHz ≈ **2.3×** the power of little@1.3 GHz at full load,
//! * big@0.8 GHz ≈ **1.5×** the power of little@1.3 GHz at full load,
//! * power is linear in utilization with a slope that grows with frequency
//!   (Figure 6), and big and little cover clearly separated power ranges.
//!
//! The calibration tests in [`model`] pin those ratios.

#![warn(missing_docs)]

pub mod cpuidle;
pub mod meter;
pub mod model;
pub mod thermal;

pub use cpuidle::{CpuidleTable, IdleState};
pub use meter::{MeterReading, PowerMeter};
pub use model::{PowerModel, PowerParams};
pub use thermal::{ClusterThermal, ThermalBank, ThermalParams};
