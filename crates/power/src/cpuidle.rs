//! CPU idle states (cpuidle substrate, opt-in).
//!
//! The Exynos-class platforms the paper measures have per-core idle states
//! beyond clock gating: WFI (architectural clock gate) and core power-down
//! (C2-style), plus cluster power-down once every core in a cluster is
//! gated. The paper's whole-system measurements fold these into its idle
//! floor; the simulator models them explicitly so the idle-heavy behavior
//! the paper highlights (§V: most cores idle most of the time) can be
//! studied with and without deep idle.
//!
//! States are promoted by residency: a core entering idle starts in the
//! shallowest state and moves deeper once it has been idle for the next
//! state's target residency (a simplified menu-governor policy — in a
//! deterministic simulator the promotion ladder is equivalent to a perfect
//! next-event oracle for all but the shortest sleeps).

use bl_platform::ids::CoreKind;
use bl_simcore::time::SimDuration;
use serde::Serialize;

/// One idle state of a core.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct IdleState {
    /// Conventional name (WFI, core-off, ...).
    pub name: &'static str,
    /// Time the core must stay idle before this state pays off; the
    /// promotion ladder waits this long before entering.
    pub target_residency: SimDuration,
    /// Multiplier on the core's idle leakage while in this state.
    pub leak_scale: f64,
}

/// The ordered (shallow → deep) idle-state table for one core kind.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CpuidleTable {
    states: Vec<IdleState>,
}

impl CpuidleTable {
    /// Builds a table from shallow-to-deep states.
    ///
    /// # Panics
    ///
    /// Panics if the table is empty, residencies are not ascending, or
    /// leak scales are not descending (deeper must be cheaper).
    pub fn new(states: Vec<IdleState>) -> Self {
        assert!(!states.is_empty(), "need at least one idle state");
        assert!(
            states
                .windows(2)
                .all(|w| w[0].target_residency <= w[1].target_residency),
            "residencies must ascend"
        );
        assert!(
            states
                .windows(2)
                .all(|w| w[0].leak_scale >= w[1].leak_scale),
            "deeper states must leak less"
        );
        CpuidleTable { states }
    }

    /// Default table for a core kind, patterned after Exynos-class
    /// parameters.
    pub fn default_for(kind: CoreKind) -> Self {
        match kind {
            CoreKind::Little => CpuidleTable::new(vec![
                IdleState {
                    name: "WFI",
                    target_residency: SimDuration::ZERO,
                    leak_scale: 0.6,
                },
                IdleState {
                    name: "core-off",
                    target_residency: SimDuration::from_millis(2),
                    leak_scale: 0.1,
                },
            ]),
            CoreKind::Big => CpuidleTable::new(vec![
                IdleState {
                    name: "WFI",
                    target_residency: SimDuration::ZERO,
                    leak_scale: 0.7,
                },
                IdleState {
                    name: "core-off",
                    target_residency: SimDuration::from_millis(5),
                    leak_scale: 0.08,
                },
            ]),
        }
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Always false by construction.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The state at ladder position `i`.
    pub fn state(&self, i: usize) -> &IdleState {
        &self.states[i]
    }

    /// The residency needed to promote from state `i` to `i+1`, if a
    /// deeper state exists.
    pub fn promotion_residency(&self, i: usize) -> Option<SimDuration> {
        self.states.get(i + 1).map(|s| s.target_residency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_tables_are_well_formed() {
        for kind in CoreKind::ALL {
            let t = CpuidleTable::default_for(kind);
            assert_eq!(t.len(), 2);
            assert!(!t.is_empty());
            assert_eq!(t.state(0).name, "WFI");
            assert!(t.state(1).leak_scale < t.state(0).leak_scale);
            assert_eq!(t.promotion_residency(0), Some(t.state(1).target_residency));
            assert_eq!(t.promotion_residency(1), None);
        }
    }

    #[test]
    #[should_panic(expected = "leak less")]
    fn inverted_leak_scales_rejected() {
        CpuidleTable::new(vec![
            IdleState {
                name: "a",
                target_residency: SimDuration::ZERO,
                leak_scale: 0.2,
            },
            IdleState {
                name: "b",
                target_residency: SimDuration::from_millis(1),
                leak_scale: 0.5,
            },
        ]);
    }

    #[test]
    #[should_panic(expected = "ascend")]
    fn inverted_residencies_rejected() {
        CpuidleTable::new(vec![
            IdleState {
                name: "a",
                target_residency: SimDuration::from_millis(5),
                leak_scale: 0.5,
            },
            IdleState {
                name: "b",
                target_residency: SimDuration::ZERO,
                leak_scale: 0.1,
            },
        ]);
    }
}
