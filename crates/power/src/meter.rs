//! Simulated power meter (the Monsoon-meter substitute).

use bl_simcore::stats::TimeWeightedMean;
use bl_simcore::time::SimTime;

/// Integrates instantaneous power over simulated time, yielding average
/// power and total energy — the quantities the paper reports.
///
/// Call [`PowerMeter::record`] with the new system power whenever it changes
/// (task start/stop, frequency change, hotplug).
///
/// ```
/// use bl_power::PowerMeter;
/// use bl_simcore::time::SimTime;
///
/// let mut m = PowerMeter::starting_at(SimTime::ZERO, 1000.0);
/// m.record(SimTime::from_secs(1), 2000.0);
/// // 1 W for 1 s, then 2 W for 1 s
/// assert!((m.average_mw(SimTime::from_secs(2)) - 1500.0).abs() < 1e-9);
/// assert!((m.energy_mj(SimTime::from_secs(2)) - 3000.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PowerMeter {
    acc: TimeWeightedMean,
}

impl PowerMeter {
    /// Creates a meter reading `initial_mw` at `start`.
    pub fn starting_at(start: SimTime, initial_mw: f64) -> Self {
        PowerMeter {
            acc: TimeWeightedMean::starting_at(start, initial_mw),
        }
    }

    /// Registers a new instantaneous power level at `now`.
    pub fn record(&mut self, now: SimTime, mw: f64) {
        debug_assert!(mw >= 0.0, "negative power");
        self.acc.update(now, mw);
    }

    /// The most recent instantaneous reading in mW.
    pub fn current_mw(&self) -> f64 {
        self.acc.current()
    }

    /// Average power in mW over the metering interval ending at `now`.
    pub fn average_mw(&self, now: SimTime) -> f64 {
        self.acc.mean_at(now)
    }

    /// Total energy in millijoules over the metering interval ending at
    /// `now`.
    pub fn energy_mj(&self, now: SimTime) -> f64 {
        self.acc.integral_at(now)
    }

    /// One consistent snapshot of the meter — the audit hook behind the
    /// runtime invariant auditor's energy-conservation checks.
    pub fn reading(&self, now: SimTime) -> MeterReading {
        MeterReading {
            current_mw: self.current_mw(),
            energy_mj: self.energy_mj(now),
        }
    }
}

/// Snapshot returned by [`PowerMeter::reading`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeterReading {
    /// The most recent instantaneous power in mW.
    pub current_mw: f64,
    /// The energy integral in mJ up to the snapshot instant.
    pub energy_mj: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_power() {
        let m = PowerMeter::starting_at(SimTime::ZERO, 500.0);
        assert_eq!(m.current_mw(), 500.0);
        assert!((m.average_mw(SimTime::from_secs(3)) - 500.0).abs() < 1e-9);
        assert!((m.energy_mj(SimTime::from_secs(3)) - 1500.0).abs() < 1e-9);
    }

    #[test]
    fn step_change() {
        let mut m = PowerMeter::starting_at(SimTime::ZERO, 100.0);
        m.record(SimTime::from_millis(500), 300.0);
        let avg = m.average_mw(SimTime::from_secs(1));
        assert!((avg - 200.0).abs() < 1e-9);
    }

    #[test]
    fn energy_is_additive_across_records() {
        let mut m = PowerMeter::starting_at(SimTime::ZERO, 1000.0);
        for i in 1..=10 {
            m.record(SimTime::from_millis(i * 100), 1000.0);
        }
        assert!((m.energy_mj(SimTime::from_secs(1)) - 1000.0).abs() < 1e-9);
    }
}
