//! First-order RC thermal model with trip/release hysteresis.
//!
//! Each frequency domain (cluster) gets one thermal node: a lumped heat
//! capacity `C` behind a thermal resistance `R` to ambient. With cluster
//! power `P` held constant over a step `dt`, the junction temperature
//! relaxes exponentially toward the steady state `T∞ = ambient + P·R`:
//!
//! `T(t+dt) = T∞ + (T(t) − T∞) · exp(−dt / (R·C))`
//!
//! which is the exact solution of `dT/dt = (P·R + ambient − T)/(R·C)`, so
//! the model is step-size independent and deterministic.
//!
//! Throttling uses two thresholds: the cluster *trips* when `T ≥ trip_c`
//! and only *releases* when `T ≤ release_c` (hysteresis prevents the
//! governor fighting the thermal driver at the boundary). While tripped the
//! cluster's OPP ladder is capped at [`ThermalParams::cap_khz`]; the
//! platform layer clamps every frequency request through that ceiling.

use serde::{Deserialize, Serialize};

use bl_simcore::kernels;
use bl_simcore::time::SimDuration;

/// Calibration constants for one cluster's thermal node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalParams {
    /// Ambient (and initial) temperature in °C.
    pub ambient_c: f64,
    /// Thermal resistance junction→ambient in °C/W.
    pub r_c_per_w: f64,
    /// Lumped heat capacity in J/°C.
    pub c_j_per_c: f64,
    /// Throttle entry threshold in °C.
    pub trip_c: f64,
    /// Throttle exit threshold in °C (must be below `trip_c`).
    pub release_c: f64,
    /// OPP ceiling in kHz while throttled.
    pub cap_khz: u32,
}

impl ThermalParams {
    /// The Exynos 5422 big (A15) cluster: the small phone chassis gives a
    /// high thermal resistance, so sustained full-frequency operation trips
    /// throttling within tens of seconds — the behaviour Odroid/Galaxy
    /// firmwares exhibit.
    pub fn exynos5422_big() -> Self {
        ThermalParams {
            ambient_c: 25.0,
            r_c_per_w: 14.0,
            c_j_per_c: 0.6,
            trip_c: 85.0,
            release_c: 75.0,
            cap_khz: 1_200_000,
        }
    }

    /// The little (A7) cluster: low power density means it effectively
    /// never throttles, but the node still tracks temperature so thermal
    /// spikes injected by a fault plan behave consistently.
    pub fn exynos5422_little() -> Self {
        ThermalParams {
            ambient_c: 25.0,
            r_c_per_w: 18.0,
            c_j_per_c: 0.5,
            trip_c: 95.0,
            release_c: 85.0,
            cap_khz: 1_000_000,
        }
    }

    /// Validates the parameter set.
    ///
    /// # Errors
    ///
    /// Returns a message when thresholds are inverted or constants are
    /// non-positive/non-finite.
    pub fn validate(&self) -> Result<(), String> {
        let finite = [
            self.ambient_c,
            self.r_c_per_w,
            self.c_j_per_c,
            self.trip_c,
            self.release_c,
        ]
        .iter()
        .all(|x| x.is_finite());
        if !finite {
            return Err("thermal parameters must be finite".into());
        }
        if self.r_c_per_w <= 0.0 || self.c_j_per_c <= 0.0 {
            return Err("thermal R and C must be positive".into());
        }
        if self.release_c >= self.trip_c {
            return Err(format!(
                "release temperature {} must be below trip temperature {}",
                self.release_c, self.trip_c
            ));
        }
        Ok(())
    }
}

/// Live thermal state of one cluster.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterThermal {
    /// The calibration constants in use.
    pub params: ThermalParams,
    temp_c: f64,
    throttled: bool,
}

impl ClusterThermal {
    /// A node at ambient temperature, not throttled.
    pub fn new(params: ThermalParams) -> Self {
        ClusterThermal {
            params,
            temp_c: params.ambient_c,
            throttled: false,
        }
    }

    /// Current junction temperature in °C.
    pub fn temp_c(&self) -> f64 {
        self.temp_c
    }

    /// Whether the cluster is currently throttled.
    pub fn is_throttled(&self) -> bool {
        self.throttled
    }

    /// The frequency ceiling currently in force, if any.
    pub fn cap_khz(&self) -> Option<u32> {
        self.throttled.then_some(self.params.cap_khz)
    }

    /// Advances the node by `dt` with the cluster dissipating `power_w`
    /// watts, then re-evaluates the throttle with hysteresis. Returns
    /// `true` when the throttle state *changed*.
    pub fn advance(&mut self, dt: SimDuration, power_w: f64) -> bool {
        debug_assert!(power_w >= 0.0, "negative cluster power");
        let tau = self.params.r_c_per_w * self.params.c_j_per_c;
        let t_inf = self.params.ambient_c + power_w.max(0.0) * self.params.r_c_per_w;
        let decay = (-dt.as_secs_f64() / tau).exp();
        self.temp_c = t_inf + (self.temp_c - t_inf) * decay;
        self.update_throttle()
    }

    /// Applies an instantaneous temperature step (fault injection), then
    /// re-evaluates the throttle. Returns `true` on a state change.
    pub fn inject(&mut self, delta_c: f64) -> bool {
        debug_assert!(delta_c.is_finite(), "non-finite thermal spike");
        self.temp_c += delta_c;
        self.update_throttle()
    }

    fn update_throttle(&mut self) -> bool {
        let before = self.throttled;
        if self.throttled {
            if self.temp_c <= self.params.release_c {
                self.throttled = false;
            }
        } else if self.temp_c >= self.params.trip_c {
            self.throttled = true;
        }
        self.throttled != before
    }
}

/// Structure-of-arrays thermal state for all clusters of a platform.
///
/// Semantically a `Vec<ClusterThermal>` (identical RC math, identical
/// hysteresis), but the per-cluster temperatures and throttle flags live
/// in parallel vectors so the per-sample batch advance walks contiguous
/// memory and a snapshot clone is a handful of `memcpy`s.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThermalBank {
    params: Vec<ThermalParams>,
    temp_c: Vec<f64>,
    throttled: Vec<bool>,
}

impl ThermalBank {
    /// One node per parameter set, each starting at its ambient
    /// temperature, unthrottled.
    pub fn new(params: Vec<ThermalParams>) -> Self {
        let temp_c = params.iter().map(|p| p.ambient_c).collect();
        let throttled = vec![false; params.len()];
        ThermalBank {
            params,
            temp_c,
            throttled,
        }
    }

    /// Number of thermal nodes.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True when the bank tracks no nodes (thermal model disabled).
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Calibration constants of node `idx`.
    pub fn params(&self, idx: usize) -> &ThermalParams {
        &self.params[idx]
    }

    /// Current junction temperature of node `idx` in °C.
    pub fn temp_c(&self, idx: usize) -> f64 {
        self.temp_c[idx]
    }

    /// All junction temperatures, in cluster order.
    pub fn temps(&self) -> &[f64] {
        &self.temp_c
    }

    /// Whether node `idx` is currently throttled.
    pub fn is_throttled(&self, idx: usize) -> bool {
        self.throttled[idx]
    }

    /// The frequency ceiling node `idx` currently imposes, if any.
    pub fn cap_khz(&self, idx: usize) -> Option<u32> {
        self.throttled[idx].then_some(self.params[idx].cap_khz)
    }

    /// Advances every node by `dt` with per-cluster powers `power_w`
    /// (indexed like the nodes), re-evaluating each throttle with
    /// hysteresis — the batch form of [`ClusterThermal::advance`].
    ///
    /// **Buffer contract:** indices of nodes whose throttle state
    /// *changed* are appended to `changed` in ascending node order; the
    /// buffer is **not cleared first** and is never reallocated beyond
    /// the bank size, so a caller that reuses one buffer across samples
    /// (clearing it between reads) pays no allocation on the steady-state
    /// hot path — the common case appends nothing.
    ///
    /// Each node's temperature integrates through [`kernels::rc_step`] —
    /// the per-lane form of the `decay_toward` slice kernel, so the
    /// association matches [`ClusterThermal::advance`] term for term —
    /// with `T∞` and `exp(−dt/τ)` derived in the same fused pass that
    /// re-evaluates the throttle. One loop, no staging buffers: real
    /// platforms have 2–3 nodes, where a gather/integrate/threshold
    /// split costs more than the `exp` calls it feeds.
    /// `bank_matches_scalar_nodes_step_for_step` checks bit-identity
    /// against [`ClusterThermal`] every step.
    pub fn advance_all(&mut self, dt: SimDuration, power_w: &[f64], changed: &mut Vec<usize>) {
        debug_assert_eq!(power_w.len(), self.params.len());
        let dt_s = dt.as_secs_f64();
        // Zipped iteration (not indexing) so the per-lane loads and
        // stores compile without bounds checks.
        let lanes = self
            .params
            .iter()
            .zip(self.temp_c.iter_mut())
            .zip(self.throttled.iter_mut())
            .zip(power_w);
        for (i, (((p, t), th), &pw)) in lanes.enumerate() {
            debug_assert!(pw >= 0.0, "negative cluster power");
            let tau = p.r_c_per_w * p.c_j_per_c;
            let t_inf = p.ambient_c + pw.max(0.0) * p.r_c_per_w;
            let decay = (-dt_s / tau).exp();
            *t = kernels::rc_step(*t, t_inf, decay);
            if step_throttle(th, *t, p) {
                changed.push(i);
            }
        }
    }

    /// Applies an instantaneous temperature step to node `idx` (fault
    /// injection), then re-evaluates its throttle. Returns `true` on a
    /// throttle state change — the batch-layout form of
    /// [`ClusterThermal::inject`].
    pub fn inject(&mut self, idx: usize, delta_c: f64) -> bool {
        debug_assert!(delta_c.is_finite(), "non-finite thermal spike");
        self.temp_c[idx] += delta_c;
        self.update_throttle(idx)
    }

    fn update_throttle(&mut self, idx: usize) -> bool {
        step_throttle(
            &mut self.throttled[idx],
            self.temp_c[idx],
            &self.params[idx],
        )
    }
}

/// Re-evaluates one node's throttle with hysteresis against its current
/// temperature; returns `true` when the state changed. Shared by the
/// banked batch advance and the per-node injection path.
fn step_throttle(throttled: &mut bool, temp_c: f64, p: &ThermalParams) -> bool {
    let before = *throttled;
    if *throttled {
        if temp_c <= p.release_c {
            *throttled = false;
        }
    } else if temp_c >= p.trip_c {
        *throttled = true;
    }
    *throttled != before
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hot_node() -> ClusterThermal {
        ClusterThermal::new(ThermalParams::exynos5422_big())
    }

    #[test]
    fn starts_at_ambient_unthrottled() {
        let n = hot_node();
        assert_eq!(n.temp_c(), 25.0);
        assert!(!n.is_throttled());
        assert_eq!(n.cap_khz(), None);
    }

    #[test]
    fn relaxes_toward_steady_state() {
        let mut n = hot_node();
        // 5 W steady: T∞ = 25 + 5·14 = 95 °C.
        for _ in 0..600 {
            n.advance(SimDuration::from_millis(100), 5.0);
        }
        assert!((n.temp_c() - 95.0).abs() < 1.0, "T = {}", n.temp_c());
        assert!(n.is_throttled());
        assert_eq!(n.cap_khz(), Some(1_200_000));
    }

    #[test]
    fn step_size_independent() {
        // The exponential update must give the same temperature whether the
        // interval is taken in one step or many.
        let mut coarse = hot_node();
        coarse.advance(SimDuration::from_secs(4), 3.0);
        let mut fine = hot_node();
        for _ in 0..4000 {
            fine.advance(SimDuration::from_millis(1), 3.0);
        }
        assert!((coarse.temp_c() - fine.temp_c()).abs() < 1e-6);
    }

    #[test]
    fn hysteresis_requires_release_threshold() {
        let mut n = hot_node();
        n.inject(61.0); // 86 °C: above trip
        assert!(n.is_throttled());
        // Cooling to between release and trip keeps the throttle.
        n.inject(-6.0); // 80 °C
        assert!(n.is_throttled());
        n.inject(-6.0); // 74 °C: below release
        assert!(!n.is_throttled());
    }

    #[test]
    fn advance_reports_transitions() {
        let mut n = hot_node();
        assert!(!n.advance(SimDuration::from_secs(1), 0.0));
        assert!(n.inject(100.0));
        assert!(!n.inject(1.0)); // already throttled: no change
    }

    #[test]
    fn cooling_with_zero_power_returns_to_ambient() {
        let mut n = hot_node();
        n.inject(40.0);
        for _ in 0..600 {
            n.advance(SimDuration::from_secs(1), 0.0);
        }
        assert!((n.temp_c() - 25.0).abs() < 0.1);
    }

    #[test]
    fn bank_matches_scalar_nodes_step_for_step() {
        let params = vec![
            ThermalParams::exynos5422_little(),
            ThermalParams::exynos5422_big(),
        ];
        let mut scalar: Vec<ClusterThermal> =
            params.iter().map(|p| ClusterThermal::new(*p)).collect();
        let mut bank = ThermalBank::new(params);
        let mut changed = Vec::new();
        // A power trajectory that heats the big cluster through its trip
        // point and back down through release.
        let phases = [(6.0, 200), (0.5, 400), (6.0, 100)];
        for (big_w, steps) in phases {
            for _ in 0..steps {
                let powers = [0.3, big_w];
                changed.clear();
                let mut scalar_changed = Vec::new();
                for (i, n) in scalar.iter_mut().enumerate() {
                    if n.advance(SimDuration::from_millis(100), powers[i]) {
                        scalar_changed.push(i);
                    }
                }
                bank.advance_all(SimDuration::from_millis(100), &powers, &mut changed);
                assert_eq!(changed, scalar_changed);
                for (i, n) in scalar.iter().enumerate() {
                    assert_eq!(bank.temp_c(i), n.temp_c(), "node {i} temperature");
                    assert_eq!(bank.is_throttled(i), n.is_throttled(), "node {i} throttle");
                    assert_eq!(bank.cap_khz(i), n.cap_khz(), "node {i} cap");
                }
            }
        }
        // Injection parity too.
        for (i, n) in scalar.iter_mut().enumerate() {
            assert_eq!(bank.inject(i, 30.0), n.inject(30.0));
            assert_eq!(bank.temp_c(i), n.temp_c());
        }
    }

    #[test]
    fn params_validate() {
        assert!(ThermalParams::exynos5422_big().validate().is_ok());
        assert!(ThermalParams::exynos5422_little().validate().is_ok());
        let mut bad = ThermalParams::exynos5422_big();
        bad.release_c = bad.trip_c + 1.0;
        assert!(bad.validate().is_err());
        let mut bad = ThermalParams::exynos5422_big();
        bad.c_j_per_c = 0.0;
        assert!(bad.validate().is_err());
    }
}
