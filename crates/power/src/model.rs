//! The analytic full-system power model.

use bl_platform::ids::{ClusterId, CoreKind};
use bl_platform::state::PlatformState;
use bl_platform::topology::Topology;
use bl_simcore::kernels;
use serde::{Deserialize, Serialize};

/// Calibration constants of the power model. All power values in milliwatts;
/// dynamic coefficients in mW / (GHz · V²).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerParams {
    /// System floor with screen and radios off (SoC uncore, DRAM refresh,
    /// rails).
    pub base_mw: f64,
    /// Additional draw when the display is on (mobile-app experiments).
    pub screen_mw: f64,
    /// Switching-capacitance coefficient per core kind [little, big].
    pub dyn_coeff_mw_per_ghz_v2: [f64; 2],
    /// Per-cluster leakage per volt when the cluster has any online core
    /// [little, big]. Includes the cluster's L2.
    pub cluster_leak_mw_per_v: [f64; 2],
    /// Per-online-core idle leakage per volt [little, big].
    pub core_idle_leak_mw_per_v: [f64; 2],
}

impl PowerParams {
    /// Constants calibrated to the paper's full-system measurements on the
    /// Galaxy S5 (see crate docs for the pinned ratios).
    pub fn galaxy_s5() -> Self {
        PowerParams {
            base_mw: 350.0,
            screen_mw: 420.0,
            dyn_coeff_mw_per_ghz_v2: [200.0, 660.0],
            cluster_leak_mw_per_v: [15.0, 150.0],
            core_idle_leak_mw_per_v: [3.0, 10.0],
        }
    }

    fn kind_idx(kind: CoreKind) -> usize {
        match kind {
            CoreKind::Little => 0,
            CoreKind::Big => 1,
        }
    }
}

impl Default for PowerParams {
    fn default() -> Self {
        PowerParams::galaxy_s5()
    }
}

/// Computes instantaneous full-system power for a platform state and
/// per-CPU activity levels.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Calibration constants.
    pub params: PowerParams,
    /// Whether the display contributes (`true` for interactive-app
    /// experiments, `false` for the SPEC/microbenchmark runs where "the
    /// screen and networks are turned off", paper §III.A).
    pub screen_on: bool,
}

impl PowerModel {
    /// Model with Galaxy-S5 calibration and the screen off.
    pub fn screen_off() -> Self {
        PowerModel {
            params: PowerParams::galaxy_s5(),
            screen_on: false,
        }
    }

    /// Model with Galaxy-S5 calibration and the screen on.
    pub fn screen_on() -> Self {
        PowerModel {
            params: PowerParams::galaxy_s5(),
            screen_on: true,
        }
    }

    /// Power of one cluster given its frequency and the per-online-core
    /// activity levels (each in `[0,1]`).
    pub fn cluster_mw(
        &self,
        topo: &Topology,
        cluster: ClusterId,
        freq_khz: u32,
        online_activities: &[f64],
    ) -> f64 {
        if online_activities.is_empty() {
            return 0.0; // cluster fully hotplugged off
        }
        let c = topo.cluster(cluster);
        let k = PowerParams::kind_idx(c.core.kind);
        let opp = c.core.opps.opp_at(freq_khz);
        let v = opp.voltage_v();
        let f = opp.freq_ghz();
        let leak = self.params.cluster_leak_mw_per_v[k] * v
            + self.params.core_idle_leak_mw_per_v[k] * v * online_activities.len() as f64;
        // Activity is busy-fraction × energy intensity; intensities
        // slightly above 1 model ILP-rich code (paper Fig 3 shows
        // small per-benchmark power differences).
        #[cfg(debug_assertions)]
        for a in online_activities {
            debug_assert!((0.0..=1.5).contains(a), "activity out of range: {a}");
        }
        let dvvf = self.params.dyn_coeff_mw_per_ghz_v2[k] * v * v * f;
        leak + kernels::relu_weighted_sum(online_activities, dvvf)
    }

    /// Instantaneous full-system power in mW.
    ///
    /// `activity[cpu]` is the current busy level of each CPU in `[0,1]`
    /// (for the event-driven simulator this is 0 or 1; utilization emerges
    /// from time-averaging). Offline CPUs' entries are ignored.
    pub fn instant_mw(&self, topo: &Topology, state: &PlatformState, activity: &[f64]) -> f64 {
        self.instant_mw_with_idle(topo, state, activity, None)
    }

    /// Instantaneous full-system power with per-CPU idle-leak scales from
    /// the cpuidle subsystem (`None` = all cores at nominal idle leakage).
    /// When every online core of a cluster is below a 0.2 leak scale (deep
    /// idle), the cluster's shared leakage is gated to 25%.
    pub fn instant_mw_with_idle(
        &self,
        topo: &Topology,
        state: &PlatformState,
        activity: &[f64],
        idle_scales: Option<&[f64]>,
    ) -> f64 {
        debug_assert_eq!(activity.len(), topo.n_cpus(), "activity len mismatch");
        if let Some(scales) = idle_scales {
            debug_assert_eq!(scales.len(), topo.n_cpus(), "idle scales len mismatch");
        }
        let mut total = self.params.base_mw
            + if self.screen_on {
                self.params.screen_mw
            } else {
                0.0
            };
        for c in topo.clusters() {
            let k = PowerParams::kind_idx(c.core.kind);
            let opp = c.core.opps.opp_at(state.cluster_freq_khz(c.id));
            let v = opp.voltage_v();
            let f = opp.freq_ghz();
            // Hoisted per-lane factors — the scalar reference multiplies
            // left-to-right, so these partial products are bit-equal to
            // its per-iteration values.
            let leak_v = self.params.core_idle_leak_mw_per_v[k] * v;
            let dvvf = self.params.dyn_coeff_mw_per_ghz_v2[k] * v * v * f;
            // One pass over the cluster's online lanes, streamed straight
            // into the branch-free kernel in the same online-iteration
            // order the reference sums in — no staging buffers.
            let lanes = state.online_in(topo, c.id).map(|cpu| {
                let cpu = cpu.0;
                (activity[cpu], idle_scales.map_or(1.0, |s| s[cpu]))
            });
            let (mut cluster, all_deep, n) = kernels::mixed_idle_power_iter(lanes, leak_v, dvvf);
            if n == 0 {
                continue; // cluster fully hotplugged off
            }
            let cluster_leak = self.params.cluster_leak_mw_per_v[k] * v;
            cluster += if all_deep && idle_scales.is_some() {
                cluster_leak * 0.25
            } else {
                cluster_leak
            };
            total += cluster;
        }
        total
    }

    /// Scalar reference implementation of [`PowerModel::instant_mw_with_idle`]:
    /// the original branchy per-CPU loop, kept as the oracle the kernel
    /// path is differentially tested and benchmarked against. Results are
    /// bit-identical to `instant_mw_with_idle` by construction (the
    /// kernel path preserves this loop's association and summation
    /// order); `tests/kernels.rs` and `repro --bench-kernels` enforce it.
    pub fn instant_mw_with_idle_ref(
        &self,
        topo: &Topology,
        state: &PlatformState,
        activity: &[f64],
        idle_scales: Option<&[f64]>,
    ) -> f64 {
        let mut total = self.params.base_mw
            + if self.screen_on {
                self.params.screen_mw
            } else {
                0.0
            };
        for c in topo.clusters() {
            let k = PowerParams::kind_idx(c.core.kind);
            let opp = c.core.opps.opp_at(state.cluster_freq_khz(c.id));
            let v = opp.voltage_v();
            let f = opp.freq_ghz();
            let mut cluster = 0.0;
            let mut all_deep = true;
            let mut any_online = false;
            for cpu in state.online_in(topo, c.id).map(|cpu| cpu.0) {
                any_online = true;
                let a = activity[cpu];
                let idle_scale = idle_scales.map_or(1.0, |s| s[cpu]);
                if a > 0.0 {
                    all_deep = false;
                    cluster += self.params.core_idle_leak_mw_per_v[k] * v
                        + self.params.dyn_coeff_mw_per_ghz_v2[k] * v * v * f * a.max(0.0);
                } else {
                    if idle_scale >= 0.2 {
                        all_deep = false;
                    }
                    cluster += self.params.core_idle_leak_mw_per_v[k] * v * idle_scale;
                }
            }
            if !any_online {
                continue;
            }
            let cluster_leak = self.params.cluster_leak_mw_per_v[k] * v;
            cluster += if all_deep && idle_scales.is_some() {
                cluster_leak * 0.25
            } else {
                cluster_leak
            };
            total += cluster;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bl_platform::config::CoreConfig;
    use bl_platform::exynos::{exynos5422, BIG_CLUSTER, LITTLE_CLUSTER};

    /// Full-system power with a single core of `kind` fully busy at
    /// `freq_khz`, minimal companion configuration (L1 or L1+B1).
    fn single_core_full_load(kind: CoreKind, freq_khz: u32) -> f64 {
        let p = exynos5422();
        let model = PowerModel::screen_off();
        let mut state = PlatformState::new(&p.topology);
        let config = match kind {
            CoreKind::Little => CoreConfig::new(1, 0),
            CoreKind::Big => CoreConfig::new(1, 1),
        };
        state.apply_core_config(&p.topology, config).unwrap();
        let mut activity = vec![0.0; p.topology.n_cpus()];
        match kind {
            CoreKind::Little => {
                state.set_cluster_freq(&p.topology, LITTLE_CLUSTER, freq_khz);
                activity[0] = 1.0;
            }
            CoreKind::Big => {
                // companion little core idles at its minimum frequency
                state.set_cluster_freq(&p.topology, BIG_CLUSTER, freq_khz);
                activity[4] = 1.0;
            }
        }
        model.instant_mw(&p.topology, &state, &activity)
    }

    #[test]
    fn calibration_big13_over_little13_near_2_3() {
        let little = single_core_full_load(CoreKind::Little, 1_300_000);
        let big = single_core_full_load(CoreKind::Big, 1_300_000);
        let ratio = big / little;
        assert!(
            (2.0..=2.6).contains(&ratio),
            "big@1.3/little@1.3 = {ratio:.2}, expected ~2.3 (paper §III.A)"
        );
    }

    #[test]
    fn calibration_big08_over_little13_near_1_5() {
        let little = single_core_full_load(CoreKind::Little, 1_300_000);
        let big = single_core_full_load(CoreKind::Big, 800_000);
        let ratio = big / little;
        assert!(
            (1.3..=1.7).contains(&ratio),
            "big@0.8/little@1.3 = {ratio:.2}, expected ~1.5 (paper §III.A)"
        );
    }

    #[test]
    fn slope_grows_with_frequency_fig6() {
        // Power-vs-utilization slope must be steeper at higher frequency.
        let p = exynos5422();
        let model = PowerModel::screen_off();
        for cluster in [LITTLE_CLUSTER, BIG_CLUSTER] {
            let c = p.topology.cluster(cluster);
            let fmin = c.core.opps.min_khz();
            let fmax = c.core.opps.max_khz();
            let slope = |f: u32| {
                model.cluster_mw(&p.topology, cluster, f, &[1.0])
                    - model.cluster_mw(&p.topology, cluster, f, &[0.0])
            };
            assert!(
                slope(fmax) > slope(fmin) * 1.5,
                "{cluster}: slope should grow with f"
            );
        }
    }

    #[test]
    fn big_and_little_cover_disjoint_power_ranges_fig6() {
        // At full utilization, even the lowest big OPP draws more than the
        // highest little OPP (paper Fig 6: "clearly different ranges").
        let little_max = single_core_full_load(CoreKind::Little, 1_300_000);
        let big_min = single_core_full_load(CoreKind::Big, 800_000);
        assert!(big_min > little_max);
    }

    #[test]
    fn linear_in_utilization() {
        let p = exynos5422();
        let model = PowerModel::screen_off();
        let at = |u: f64| model.cluster_mw(&p.topology, LITTLE_CLUSTER, 1_300_000, &[u]);
        let half = at(0.5);
        assert!((half - (at(0.0) + at(1.0)) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn screen_adds_constant() {
        let p = exynos5422();
        let state = PlatformState::new(&p.topology);
        let act = vec![0.0; 8];
        let off = PowerModel::screen_off().instant_mw(&p.topology, &state, &act);
        let on = PowerModel::screen_on().instant_mw(&p.topology, &state, &act);
        assert!((on - off - PowerParams::galaxy_s5().screen_mw).abs() < 1e-9);
    }

    #[test]
    fn kernel_path_matches_scalar_reference_bitwise() {
        let p = exynos5422();
        let model = PowerModel::screen_on();
        let n = p.topology.n_cpus();
        let mut state = PlatformState::new(&p.topology);
        state.set_cluster_freq(&p.topology, BIG_CLUSTER, 1_600_000);
        // Mixed busy/shallow-idle/deep-idle lanes, plus a hotplugged core.
        state
            .apply_core_config(&p.topology, CoreConfig::new(3, 4))
            .unwrap();
        let activity: Vec<f64> = (0..n).map(|i| [0.0, 1.0, 0.35, 0.0][i % 4]).collect();
        let scales: Vec<f64> = (0..n).map(|i| [0.1, 1.0, 1.0, 0.19][i % 4]).collect();
        for idle in [None, Some(scales.as_slice())] {
            let fast = model.instant_mw_with_idle(&p.topology, &state, &activity, idle);
            let reference = model.instant_mw_with_idle_ref(&p.topology, &state, &activity, idle);
            assert_eq!(
                fast.to_bits(),
                reference.to_bits(),
                "idle={:?}: {fast} vs {reference}",
                idle.is_some()
            );
        }
    }

    #[test]
    fn hotplugged_cluster_draws_nothing() {
        let p = exynos5422();
        let model = PowerModel::screen_off();
        assert_eq!(
            model.cluster_mw(&p.topology, BIG_CLUSTER, 800_000, &[]),
            0.0
        );
    }

    #[test]
    fn more_online_cores_more_idle_leak() {
        let p = exynos5422();
        let model = PowerModel::screen_off();
        let one = model.cluster_mw(&p.topology, LITTLE_CLUSTER, 500_000, &[0.0]);
        let four = model.cluster_mw(&p.topology, LITTLE_CLUSTER, 500_000, &[0.0; 4]);
        assert!(four > one);
    }
}
