//! The parallel scenario-sweep engine.
//!
//! Experiments submit batches of [`Scenario`]s; the engine executes them on
//! a [`bl_simcore::pool`] worker pool with three guarantees:
//!
//! * **Bit-identical to serial.** Each scenario builds its own fresh
//!   [`crate::Simulation`] from its own serialized inputs, results are
//!   reassembled in submission order, and per-scenario seeds (when derived
//!   at all — see [`seed_scenarios`]) depend only on `(base_seed, index)`.
//!   `jobs = 1` and `jobs = 64` therefore produce the same `RunResult`s.
//! * **Panic isolation.** A panicking scenario surfaces as
//!   [`SimError::ScenarioPanicked`] in its slot; sibling scenarios complete.
//! * **Result caching.** With a cache directory configured, each scenario's
//!   serialized form (seed and fault plan included) plus the crate version
//!   is hashed into a key under `results/.cache/`; re-running a sweep only
//!   simulates scenarios whose inputs changed.

use crate::result::RunResult;
use crate::scenario::Scenario;
use bl_simcore::error::SimError;
use bl_simcore::pool;
use bl_simcore::rng::derive_seed;
use serde::Serialize;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Instant;

/// The cache directory the `bench` binary uses by default.
pub const DEFAULT_CACHE_DIR: &str = "results/.cache";

/// Keep the global per-scenario stats list bounded: callers that loop over
/// sweeps without draining [`take_stats`] (e.g. criterion benchmarks) must
/// not grow memory without bound.
const PER_SCENARIO_CAP: usize = 4096;

/// How a sweep executes: worker count and result cache location.
#[derive(Debug, Clone, Default)]
pub struct SweepOptions {
    /// Worker threads; `0` means "available parallelism".
    pub jobs: usize,
    /// Result cache directory; `None` disables caching.
    pub cache_dir: Option<PathBuf>,
}

impl SweepOptions {
    /// One worker, no cache — the reference serial path.
    pub fn serial() -> Self {
        SweepOptions {
            jobs: 1,
            cache_dir: None,
        }
    }

    /// `jobs` workers, no cache.
    pub fn with_jobs(jobs: usize) -> Self {
        SweepOptions {
            jobs,
            cache_dir: None,
        }
    }

    /// Enables the on-disk result cache under `dir`.
    pub fn cached(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }

    fn effective_jobs(&self) -> usize {
        if self.jobs == 0 {
            pool::available_jobs()
        } else {
            self.jobs
        }
    }
}

/// Timing and cache outcome of one scenario within a sweep.
#[derive(Debug, Clone, Serialize)]
pub struct ScenarioStats {
    /// The scenario's label.
    pub label: String,
    /// Wall-clock time spent on it (cache lookup included).
    pub wall_ms: f64,
    /// Whether the result came from the cache.
    pub cache_hit: bool,
}

/// Aggregated execution statistics of one or more sweeps.
#[derive(Debug, Clone, Default, Serialize)]
pub struct SweepStats {
    /// Scenarios executed (or served from cache).
    pub scenarios: u64,
    /// Scenarios served from the cache.
    pub cache_hits: u64,
    /// Per-scenario timing, in submission order (bounded; oldest sweeps
    /// win when the global tally overflows [`PER_SCENARIO_CAP`]).
    pub per_scenario: Vec<ScenarioStats>,
}

impl SweepStats {
    fn merge(&mut self, other: &SweepStats) {
        self.scenarios += other.scenarios;
        self.cache_hits += other.cache_hits;
        let room = PER_SCENARIO_CAP.saturating_sub(self.per_scenario.len());
        self.per_scenario
            .extend(other.per_scenario.iter().take(room).cloned());
    }
}

/// Results and statistics of one sweep.
#[derive(Debug)]
pub struct SweepOutcome {
    /// Per-scenario results, in submission order.
    pub results: Vec<Result<RunResult, SimError>>,
    /// Execution statistics of this sweep alone.
    pub stats: SweepStats,
}

/// Global tally across sweeps, drained by [`take_stats`] (the `bench`
/// binary reads it to report per-experiment timing without threading the
/// stats through every experiment's return type).
static TALLY: Mutex<SweepStats> = Mutex::new(SweepStats {
    scenarios: 0,
    cache_hits: 0,
    per_scenario: Vec::new(),
});

/// Runs a batch of scenarios on `jobs` workers (`0` = available
/// parallelism) and returns per-scenario results in submission order.
///
/// ```
/// use biglittle::sweep;
/// use biglittle::{Scenario, SystemConfig};
/// use bl_platform::ids::CpuId;
/// use bl_simcore::time::SimDuration;
///
/// let mb = |label: &str, duty: f64| {
///     Scenario::microbench(
///         label,
///         CpuId(0),
///         duty,
///         SimDuration::from_millis(10),
///         SimDuration::from_millis(50),
///         SystemConfig::baseline(),
///     )
/// };
/// let results = sweep::run(vec![mb("a", 0.25), mb("b", 0.75)], 2);
/// assert!(results.iter().all(|r| r.is_ok()));
/// ```
pub fn run(scenarios: Vec<Scenario>, jobs: usize) -> Vec<Result<RunResult, SimError>> {
    run_with(&scenarios, &SweepOptions::with_jobs(jobs)).results
}

/// Runs a batch of scenarios under full [`SweepOptions`] control and
/// returns results plus execution statistics. The statistics are also
/// merged into the global tally read by [`take_stats`].
pub fn run_with(scenarios: &[Scenario], opts: &SweepOptions) -> SweepOutcome {
    let items: Vec<&Scenario> = scenarios.iter().collect();
    let cache_dir = opts.cache_dir.as_deref();
    let raw = pool::scoped_map(items, opts.effective_jobs(), |index, sc| {
        let start = Instant::now();
        let (result, cache_hit) = run_one(index, sc, cache_dir);
        (result, cache_hit, start.elapsed().as_secs_f64() * 1e3)
    });
    let mut results = Vec::with_capacity(scenarios.len());
    let mut stats = SweepStats::default();
    for (index, slot) in raw.into_iter().enumerate() {
        let (result, cache_hit, wall_ms) = match slot {
            Ok(triple) => triple,
            // A panic that escaped `run_one` (i.e. not one from the
            // scenario itself, which `run_one` already catches — e.g. a
            // cache I/O path panicking) still lands in the right slot.
            Err(detail) => (
                Err(SimError::ScenarioPanicked {
                    index,
                    label: scenarios[index].label.clone(),
                    detail,
                }),
                false,
                0.0,
            ),
        };
        stats.scenarios += 1;
        stats.cache_hits += u64::from(cache_hit);
        if stats.per_scenario.len() < PER_SCENARIO_CAP {
            stats.per_scenario.push(ScenarioStats {
                label: scenarios[index].label.clone(),
                wall_ms,
                cache_hit,
            });
        }
        results.push(result);
    }
    TALLY.lock().expect("stats tally poisoned").merge(&stats);
    SweepOutcome { results, stats }
}

/// Executes one scenario with panic isolation and optional caching.
fn run_one(
    index: usize,
    sc: &Scenario,
    cache_dir: Option<&Path>,
) -> (Result<RunResult, SimError>, bool) {
    let path = cache_dir.map(|d| d.join(format!("{}.json", cache_key(sc))));
    if let Some(hit) = path.as_deref().and_then(cache_read) {
        return (Ok(hit), true);
    }
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| sc.run()))
        .unwrap_or_else(|payload| {
            Err(SimError::ScenarioPanicked {
                index,
                label: sc.label.clone(),
                // `as_ref()`, not `&payload`: `&Box<dyn Any>` would itself
                // coerce to `&dyn Any` and hide the payload from downcasts.
                detail: panic_detail(payload.as_ref()),
            })
        });
    if let (Some(p), Ok(r)) = (path.as_deref(), &result) {
        cache_write(p, index, r);
    }
    (result, false)
}

fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs a batch and unwraps every result, panicking with the failing
/// scenario's label — the convenience form for experiment code that
/// treated failures as fatal before the sweep engine existed.
pub fn run_all(scenarios: &[Scenario], opts: &SweepOptions) -> Vec<RunResult> {
    run_with(scenarios, opts)
        .results
        .into_iter()
        .zip(scenarios)
        .map(|(r, sc)| r.unwrap_or_else(|e| panic!("scenario {:?} failed: {e}", sc.label)))
        .collect()
}

/// Drains the global execution tally accumulated by every sweep since the
/// last call.
pub fn take_stats() -> SweepStats {
    std::mem::take(&mut *TALLY.lock().expect("stats tally poisoned"))
}

/// Overwrites each scenario's seed with `derive_seed(base_seed, index)` —
/// the canonical per-scenario seeding for randomized batches. Depends only
/// on position, never on execution order, so seeding commutes with any
/// `jobs` setting.
pub fn seed_scenarios(scenarios: &mut [Scenario], base_seed: u64) {
    for (i, sc) in scenarios.iter_mut().enumerate() {
        sc.config.seed = derive_seed(base_seed, i as u64);
    }
}

/// The cache key of a scenario: a 64-bit FNV-1a hash (16 hex digits) over
/// its canonical JSON serialization plus the crate version. The JSON form
/// covers the platform preset, full [`crate::SystemConfig`] (seed and
/// fault plan included), workloads and stop condition, so any input change
/// changes the key; the version guard invalidates the cache whenever the
/// simulator itself may have changed.
pub fn cache_key(sc: &Scenario) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for b in bytes {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    let json = serde_json::to_string(sc).expect("scenario serialization is infallible");
    eat(json.as_bytes());
    eat(b"\0");
    eat(env!("CARGO_PKG_VERSION").as_bytes());
    format!("{h:016x}")
}

/// Reads a cached result; any I/O or parse failure is a miss.
fn cache_read(path: &Path) -> Option<RunResult> {
    let text = std::fs::read_to_string(path).ok()?;
    serde_json::from_str(&text).ok()
}

/// Writes a result via a temp file + rename so concurrent readers never
/// observe a partial entry. Failures are ignored: the cache is an
/// optimization, never a correctness dependency.
fn cache_write(path: &Path, index: usize, result: &RunResult) {
    let Some(dir) = path.parent() else { return };
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let tmp = path.with_extension(format!("tmp{index}"));
    let Ok(json) = serde_json::to_string(result) else {
        return;
    };
    if std::fs::write(&tmp, json).is_ok() && std::fs::rename(&tmp, path).is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use bl_platform::ids::CpuId;
    use bl_simcore::time::SimDuration;

    fn mb(label: &str, duty: f64) -> Scenario {
        Scenario::microbench(
            label,
            CpuId(0),
            duty,
            SimDuration::from_millis(10),
            SimDuration::from_millis(50),
            SystemConfig::baseline(),
        )
    }

    #[test]
    fn cache_key_is_stable_and_input_sensitive() {
        let a = mb("a", 0.25);
        assert_eq!(cache_key(&a), cache_key(&a.clone()));
        // Any input change — even just the seed — changes the key.
        let mut b = a.clone();
        b.config.seed ^= 1;
        assert_ne!(cache_key(&a), cache_key(&b));
        // The label is part of the spec too (it is serialized).
        let c = mb("c", 0.25);
        assert_ne!(cache_key(&a), cache_key(&c));
    }

    #[test]
    fn seed_scenarios_is_positional() {
        let mut batch = vec![mb("a", 0.2), mb("b", 0.4), mb("c", 0.6)];
        seed_scenarios(&mut batch, 99);
        let seeds: Vec<u64> = batch.iter().map(|s| s.config.seed).collect();
        assert_eq!(seeds[0], derive_seed(99, 0));
        assert_eq!(seeds[1], derive_seed(99, 1));
        assert_eq!(seeds[2], derive_seed(99, 2));
        assert_eq!(
            seeds.iter().collect::<std::collections::HashSet<_>>().len(),
            3
        );
    }

    #[test]
    fn run_all_preserves_order() {
        let batch = vec![mb("d10", 0.1), mb("d50", 0.5), mb("d90", 0.9)];
        let out = run_all(&batch, &SweepOptions::with_jobs(3));
        assert_eq!(out.len(), 3);
        // Higher duty on the same pinned CPU burns more power.
        assert!(out[0].avg_power_mw < out[1].avg_power_mw);
        assert!(out[1].avg_power_mw < out[2].avg_power_mw);
    }
}
