//! # biglittle
//!
//! A full-system simulator of an asymmetric (big.LITTLE) mobile platform,
//! built to reproduce every experiment of *"Big or Little: A Study of
//! Mobile Interactive Applications on an Asymmetric Multi-core Platform"*
//! (Seo, Im, Choi, Huh — IISWC 2015).
//!
//! The paper characterizes a Galaxy S5 (Exynos 5422: 4× Cortex-A15 + 4×
//! Cortex-A7). This crate wires together the substrate crates into a
//! deterministic discrete-event simulation:
//!
//! * [`bl_platform`] — core/cache/OPP hardware model,
//! * [`bl_power`] — calibrated full-system power model,
//! * [`bl_kernel`] — tasks, runqueues, the HMP scheduler,
//! * [`bl_governor`] — the interactive DVFS governor and baselines,
//! * [`bl_workloads`] — SPEC-like kernels and 12 mobile-app models,
//! * [`bl_metrics`] — TLP/residency/efficiency/FPS measurement,
//!
//! and exposes one [`sim::Simulation`] driver plus one function per paper
//! table/figure in [`experiments`].
//!
//! Runs are described as serializable [`Scenario`]s and executed — in
//! parallel, with panic isolation and an on-disk result cache — by the
//! [`sweep`] engine.
//!
//! ## Quickstart
//!
//! ```
//! use biglittle::config::SystemConfig;
//! use biglittle::sim::Simulation;
//! use bl_workloads::apps::app_by_name;
//!
//! let app = app_by_name("Video Player").unwrap();
//! let mut sim = Simulation::builder()
//!     .config(SystemConfig::default())
//!     .build()
//!     .expect("valid config");
//! sim.spawn_app(&app);
//! let result = sim.try_run_app(&app).expect("run completes");
//! assert!(result.avg_power_mw > 0.0);
//! assert!(result.tlp.tlp > 0.0);
//! ```
//!
//! Batches of runs go through the sweep engine instead:
//!
//! ```
//! use biglittle::{Scenario, SystemConfig, sweep};
//! use bl_workloads::apps::app_by_name;
//!
//! let scenarios: Vec<Scenario> = ["Browser", "PDF Reader"]
//!     .iter()
//!     .map(|name| {
//!         let app = app_by_name(name).unwrap();
//!         Scenario::app(*name, app, SystemConfig::baseline())
//!     })
//!     .collect();
//! for result in sweep::run(scenarios, 2) {
//!     assert!(result.expect("runs complete").latency.is_some());
//! }
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod experiments;
pub mod options;
pub mod result;
pub mod scenario;
pub mod sim;
pub mod sweep;

pub use config::SystemConfig;
pub use options::SimOptions;
pub use result::{ResilienceStats, RunResult};
pub use scenario::{LateBindings, PlatformPreset, Scenario, StopWhen, Workload};
pub use sim::{SimSnapshot, Simulation, SimulationBuilder};
pub use sweep::{SweepOptions, SweepOutcome, SweepReport, SweepRequest, SweepStats};
