//! # biglittle
//!
//! A full-system simulator of an asymmetric (big.LITTLE) mobile platform,
//! built to reproduce every experiment of *"Big or Little: A Study of
//! Mobile Interactive Applications on an Asymmetric Multi-core Platform"*
//! (Seo, Im, Choi, Huh — IISWC 2015).
//!
//! The paper characterizes a Galaxy S5 (Exynos 5422: 4× Cortex-A15 + 4×
//! Cortex-A7). This crate wires together the substrate crates into a
//! deterministic discrete-event simulation:
//!
//! * [`bl_platform`] — core/cache/OPP hardware model,
//! * [`bl_power`] — calibrated full-system power model,
//! * [`bl_kernel`] — tasks, runqueues, the HMP scheduler,
//! * [`bl_governor`] — the interactive DVFS governor and baselines,
//! * [`bl_workloads`] — SPEC-like kernels and 12 mobile-app models,
//! * [`bl_metrics`] — TLP/residency/efficiency/FPS measurement,
//!
//! and exposes one [`sim::Simulation`] driver plus one function per paper
//! table/figure in [`experiments`].
//!
//! ## Quickstart
//!
//! ```
//! use biglittle::config::SystemConfig;
//! use biglittle::sim::Simulation;
//! use bl_workloads::apps::app_by_name;
//!
//! let app = app_by_name("Video Player").unwrap();
//! let mut sim = Simulation::new(SystemConfig::default());
//! sim.spawn_app(&app);
//! let result = sim.run_app(&app);
//! assert!(result.avg_power_mw > 0.0);
//! assert!(result.tlp.tlp > 0.0);
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod experiments;
pub mod result;
pub mod sim;

pub use config::SystemConfig;
pub use result::{ResilienceStats, RunResult};
pub use sim::Simulation;
