//! Fault-tolerant multi-process sharding of a sweep: the coordinator /
//! worker runtime behind [`SweepOptions::workers`].
//!
//! The pure lease state machine and the wire protocol live in
//! [`bl_simcore::shard`]; this module owns everything that touches
//! processes and disks:
//!
//! * the **coordinator** ([`run_sharded`]) partitions the batch into
//!   contiguous ranges, spawns `workers` copies of the host binary in
//!   worker mode (through a caller-registered [`set_worker_launcher`]),
//!   and leases ranges to them with expiring, heartbeat-renewed leases;
//! * each **worker** ([`worker_main`]) executes its leased ranges through
//!   the exact same [`supervise`] path the in-process engine uses —
//!   cache, retries, budgets and all — appending every outcome to its own
//!   per-worker journal and heartbeating over stdout;
//! * a worker that dies (stdout EOF), wedges (lease deadline passes), or
//!   keeps poisoning a range (attempt budget spent) is killed and its
//!   range re-leased or quarantined; the batch **degrades instead of
//!   dying**;
//! * on completion — and on [`SweepOptions::resume`] startup — the
//!   coordinator **merges** every per-worker journal into the batch's
//!   merged journal (`<batch>.jsonl`), deduplicating by cache key with
//!   `done` records beating `err` records. Results are deterministic, so
//!   a range executed one-and-a-half times merges to the same bytes as a
//!   range executed once; the merged multi-process output is therefore
//!   byte-identical to a serial `jobs = 1` run, even under worker
//!   crashes, and a batch interrupted at *any* point (coordinator death
//!   included) resumes from journals alone.
//!
//! Results never travel over the pipes — only protocol lines do — so a
//! torn pipe can lose at most liveness, never data: everything a worker
//! completed is already fsynced in its journal.

use std::collections::{HashMap, HashSet};
use std::io::{BufRead, BufReader, Write as _};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use bl_simcore::budget::CancelToken;
use bl_simcore::error::SimError;
use bl_simcore::journal::{self, Journal};
use bl_simcore::shard::{partition, FromWorker, LeaseBoard, RangeId, ToWorker, WorkerId};
use serde_json::Value;

use super::{
    batch_key, cache_key_with, collect_entries, collect_snapstats, effective_scenario,
    execute_indices, snap_store_for, snapstats_record, ExecEnv, JournalEntry, QuarantineRecord,
    ScenarioStats, ShardStats, SnapshotStats, SweepOptions, SweepOutcome, SweepStats, WorkerStats,
    PER_SCENARIO_CAP,
};
use crate::result::RunResult;
use crate::scenario::Scenario;

/// Test hook: a worker whose fleet id equals this variable's value wedges
/// on its first lease — alive but silent — to exercise lease expiry.
pub const WEDGE_ENV: &str = "BL_SHARD_TEST_WEDGE_WORKER";

/// Overrides (in milliseconds) the age threshold for startup hygiene of
/// stale shard artifacts in the journal directory. Defaults to 24 hours.
pub const STALE_ENV: &str = "BL_SWEEP_STALE_MS";

/// Everything a worker process needs to join a fleet.
#[derive(Debug, Clone)]
pub struct WorkerSpec {
    /// The worker's fleet id (`0..workers`).
    pub worker: WorkerId,
    /// The coordinator incarnation's nonce (its pid), namespacing this
    /// fleet's per-worker journals against earlier, killed fleets.
    pub nonce: u64,
    /// Path of the serialized batch the worker loads its scenarios from.
    pub batch_file: PathBuf,
    /// The shared journal directory.
    pub journal_dir: PathBuf,
    /// The sweep options the worker supervises under (audit, retries,
    /// budgets, cache, heartbeat cadence).
    pub opts: SweepOptions,
}

type Launcher = Box<dyn Fn(&WorkerSpec) -> Command + Send + Sync>;

static LAUNCHER: OnceLock<Launcher> = OnceLock::new();

/// Registers the closure that turns a [`WorkerSpec`] into a spawnable
/// [`Command`]. The host binary registers itself here (typically
/// `Command::new(current_exe)` plus [`worker_cli_args`]) before running
/// sharded sweeps; later registrations are ignored.
pub fn set_worker_launcher(f: impl Fn(&WorkerSpec) -> Command + Send + Sync + 'static) {
    let _ = LAUNCHER.set(Box::new(f));
}

/// The canonical CLI encoding of a [`WorkerSpec`], parsed back by
/// [`worker_main`]. Hosts that re-exec themselves can pass this verbatim.
pub fn worker_cli_args(spec: &WorkerSpec) -> Vec<String> {
    let mut args = vec![
        "--worker".to_string(),
        "--fleet-id".to_string(),
        spec.worker.to_string(),
        "--nonce".to_string(),
        spec.nonce.to_string(),
        "--batch".to_string(),
        spec.batch_file.display().to_string(),
        "--journal-dir".to_string(),
        spec.journal_dir.display().to_string(),
        "--heartbeat-ms".to_string(),
        spec.opts.heartbeat.as_millis().to_string(),
        "--jobs".to_string(),
        spec.opts.jobs.to_string(),
        "--retries".to_string(),
        spec.opts.retries.to_string(),
    ];
    if spec.opts.audit {
        args.push("--audit".to_string());
    }
    if !spec.opts.prefix_share {
        args.push("--no-prefix-share".to_string());
    }
    if let Some(d) = spec.opts.deadline {
        args.push("--deadline-ms".to_string());
        args.push(d.as_millis().to_string());
    }
    if let Some(m) = spec.opts.max_events {
        args.push("--max-events".to_string());
        args.push(m.to_string());
    }
    if let Some(c) = &spec.opts.cache_dir {
        args.push("--cache-dir".to_string());
        args.push(c.display().to_string());
    }
    if let Some(s) = &spec.opts.snap_store {
        args.push("--snap-store-dir".to_string());
        args.push(s.display().to_string());
    }
    args
}

/// Parses the argument list produced by [`worker_cli_args`] (the leading
/// `--worker` may be present or already consumed by the host's dispatch).
fn parse_worker_args(args: &[String]) -> Result<WorkerSpec, String> {
    let mut worker = None;
    let mut nonce = None;
    let mut batch_file = None;
    let mut journal_dir = None;
    let mut opts = SweepOptions::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut val = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--worker" => {}
            "--fleet-id" => worker = Some(val()?.parse::<usize>().map_err(|e| e.to_string())?),
            "--nonce" => nonce = Some(val()?.parse::<u64>().map_err(|e| e.to_string())?),
            "--batch" => batch_file = Some(PathBuf::from(val()?)),
            "--journal-dir" => journal_dir = Some(PathBuf::from(val()?)),
            "--heartbeat-ms" => {
                opts.heartbeat =
                    Duration::from_millis(val()?.parse::<u64>().map_err(|e| e.to_string())?);
            }
            "--jobs" => opts.jobs = val()?.parse::<usize>().map_err(|e| e.to_string())?,
            "--retries" => opts.retries = val()?.parse::<u32>().map_err(|e| e.to_string())?,
            "--audit" => opts.audit = true,
            "--no-prefix-share" => opts.prefix_share = false,
            "--deadline-ms" => {
                opts.deadline = Some(Duration::from_millis(
                    val()?.parse::<u64>().map_err(|e| e.to_string())?,
                ));
            }
            "--max-events" => {
                opts.max_events = Some(val()?.parse::<u64>().map_err(|e| e.to_string())?);
            }
            "--cache-dir" => opts.cache_dir = Some(PathBuf::from(val()?)),
            "--snap-store-dir" => opts.snap_store = Some(PathBuf::from(val()?)),
            other => return Err(format!("unknown worker flag {other:?}")),
        }
    }
    Ok(WorkerSpec {
        worker: worker.ok_or("missing --fleet-id")?,
        nonce: nonce.ok_or("missing --nonce")?,
        batch_file: batch_file.ok_or("missing --batch")?,
        journal_dir: journal_dir.ok_or("missing --journal-dir")?,
        opts,
    })
}

// ---- worker ----------------------------------------------------------------

/// Writes one protocol line to stdout. Failures are swallowed: a closed
/// pipe means the coordinator is gone, and the cancellation token — not a
/// broken-pipe panic — is how the worker learns that.
fn emit(msg: &FromWorker) {
    let mut out = std::io::stdout().lock();
    let _ = writeln!(out, "{}", msg.to_line());
    let _ = out.flush();
}

/// Entry point of a worker process: parses [`worker_cli_args`], executes
/// leases from stdin until `shutdown` (or coordinator death), and returns
/// the process exit code.
pub fn worker_main(args: &[String]) -> i32 {
    let spec = match parse_worker_args(args) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("sweep worker: bad arguments: {e}");
            return 2;
        }
    };
    match run_worker(&spec) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("sweep worker {}: {e}", spec.worker);
            1
        }
    }
}

fn run_worker(spec: &WorkerSpec) -> Result<(), String> {
    let text = std::fs::read_to_string(&spec.batch_file)
        .map_err(|e| format!("reading batch file {:?}: {e}", spec.batch_file))?;
    let scenarios: Vec<Scenario> =
        serde_json::from_str(&text).map_err(|e| format!("parsing batch file: {e:?}"))?;
    let effective: Vec<Scenario> = scenarios
        .iter()
        .map(|sc| effective_scenario(sc, &spec.opts))
        .collect();
    let keys: Vec<String> = effective
        .iter()
        .map(|sc| cache_key_with(sc, &spec.opts))
        .collect();
    let bkey = batch_key(&keys);

    // Fleet-wide resume knowledge: whatever the coordinator merged into
    // the batch journal before spawning us is replayed, not re-simulated.
    let merged_path = spec.journal_dir.join(format!("{bkey}.jsonl"));
    let merged_lines = Journal::load(&merged_path).map_err(|e| format!("loading journal: {e}"))?;
    let resumed: HashMap<String, RunResult> = collect_entries(&merged_lines, false)
        .into_iter()
        .filter_map(|(k, e)| e.result.ok().map(|r| (k, r)))
        .collect();
    let journal_path = spec.journal_dir.join(format!(
        "{bkey}.worker-{}-{}.jsonl",
        spec.nonce, spec.worker
    ));
    let journal = Mutex::new(
        Journal::open(&journal_path, true).map_err(|e| format!("opening worker journal: {e}"))?,
    );

    // stdin → lease queue; EOF without `shutdown` means the coordinator
    // died, and the token aborts whatever range is mid-flight.
    let cancel = CancelToken::new();
    let (tx, rx) = mpsc::channel::<ToWorker>();
    let reader_cancel = cancel.clone();
    std::thread::spawn(move || {
        for line in std::io::stdin().lines() {
            let Ok(line) = line else { break };
            if let Some(msg) = ToWorker::parse(&line) {
                let is_shutdown = msg == ToWorker::Shutdown;
                if tx.send(msg).is_err() || is_shutdown {
                    return;
                }
            }
        }
        reader_cancel.cancel();
    });

    let wedged = std::env::var(WEDGE_ENV)
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        == Some(spec.worker);

    // The persistent snapshot store is how a fleet shares warm trunks:
    // whichever worker simulates a trunk first publishes it, and every
    // later lease — in this worker or a sibling process — hydrates.
    let store = snap_store_for(&spec.opts);
    let snap_tally = Mutex::new(SnapshotStats::default());

    emit(&FromWorker::Ready {
        worker: spec.worker,
    });
    // `while let` ends when the channel closes, i.e. the coordinator died.
    while let Ok(msg) = rx.recv() {
        match msg {
            ToWorker::Shutdown => break,
            ToWorker::Lease {
                range,
                start,
                end,
                epoch,
            } => {
                if wedged {
                    // Deliberately wedged (test hook): alive but silent —
                    // no heartbeat, no progress — until the coordinator's
                    // lease expiry kills us.
                    loop {
                        if cancel.is_cancelled() {
                            return Ok(());
                        }
                        std::thread::sleep(Duration::from_millis(20));
                    }
                }
                execute_range(
                    spec,
                    &effective,
                    &keys,
                    &journal,
                    &resumed,
                    &cancel,
                    store.as_ref(),
                    &snap_tally,
                    range,
                    start,
                    end,
                    epoch,
                );
                if cancel.is_cancelled() {
                    break;
                }
                emit(&FromWorker::RangeDone {
                    worker: spec.worker,
                    range,
                    epoch,
                });
            }
        }
    }
    // Publish the worker's warm-snapshot tally into its journal so the
    // coordinator can assemble fleet-wide snapshot statistics. Best
    // effort: losing it costs observability, never results.
    let snap = *snap_tally.lock().expect("snapshot tally poisoned");
    if snap.trunk_runs + snap.forks + snap.hydrated + snap.published > 0 {
        if let Ok(mut j) = journal.lock() {
            let _ = j.append(&snapstats_record(&snap));
        }
    }
    Ok(())
}

/// Executes one leased range on the worker's thread pool while a sibling
/// thread heartbeats the lease; both stop the moment the range settles or
/// the cancellation token trips.
#[allow(clippy::too_many_arguments)]
fn execute_range(
    spec: &WorkerSpec,
    effective: &[Scenario],
    keys: &[String],
    journal: &Mutex<Journal>,
    resumed: &HashMap<String, RunResult>,
    cancel: &CancelToken,
    store: Option<&bl_simcore::snapstore::SnapStore>,
    snap_tally: &Mutex<SnapshotStats>,
    range: RangeId,
    start: usize,
    end: usize,
    epoch: u64,
) {
    let end = end.min(effective.len());
    let start = start.min(end);
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        s.spawn(|| {
            // First beat immediately (the lease clock started at grant),
            // then every `heartbeat`, polling `stop` finely in between.
            loop {
                if stop.load(Ordering::Relaxed) || cancel.is_cancelled() {
                    break;
                }
                emit(&FromWorker::Heartbeat {
                    worker: spec.worker,
                    range,
                    epoch,
                });
                let step = Duration::from_millis(10).min(spec.opts.heartbeat);
                let mut slept = Duration::ZERO;
                while slept < spec.opts.heartbeat && !stop.load(Ordering::Relaxed) {
                    std::thread::sleep(step);
                    slept += step;
                }
            }
        });
        let env = ExecEnv {
            opts: &spec.opts,
            journal: Some(journal),
            resumed,
            cancel: Some(cancel),
            store,
            snap: snap_tally,
        };
        // In sharded mode `jobs = 0` means one thread *per worker*, not
        // available parallelism: N workers must not oversubscribe N-fold.
        let jobs = spec.opts.jobs.max(1);
        let indices: Vec<usize> = (start..end).collect();
        // Fork groups form within the leased range; results land in the
        // worker's journal, so the return value is irrelevant here.
        let _ = execute_indices(&indices, effective, keys, &env, jobs);
        stop.store(true, Ordering::Relaxed);
    });
}

// ---- coordinator -----------------------------------------------------------

/// One worker process as the coordinator sees it.
struct WorkerProc {
    id: WorkerId,
    child: Child,
    stdin: Option<ChildStdin>,
    alive: bool,
    ready: bool,
    shutdown_sent: bool,
    lost: bool,
    /// The `(range, epoch)` currently assigned, if any.
    assignment: Option<(RangeId, u64)>,
    leases: u64,
    scenarios_done: u64,
}

enum Event {
    Msg(WorkerId, FromWorker),
    Eof(WorkerId),
}

/// Waits briefly for a (dead or dying) child to exit, then force-kills it
/// — the coordinator must never block forever on a wedged worker.
fn reap(child: &mut Child) {
    for _ in 0..200 {
        if let Ok(Some(_)) = child.try_wait() {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let _ = child.kill();
    let _ = child.wait();
}

/// Kills a worker and reclaims everything it held. Used for wedged
/// workers (expired lease), the chaos hook, and unresponsive stragglers.
fn kill_worker(p: &mut WorkerProc, board: &mut LeaseBoard) {
    let _ = p.child.kill();
    p.lost = true;
    p.alive = false;
    p.stdin = None;
    board.reclaim_worker(p.id);
    p.assignment = None;
    reap(&mut p.child);
}

/// Leases open ranges to every idle, ready, live worker.
fn grant_open(board: &mut LeaseBoard, workers: &mut [WorkerProc], now_ms: u64) {
    while let Some(w) = workers
        .iter()
        .position(|p| p.alive && p.ready && p.assignment.is_none())
    {
        let Some((rid, (start, end), epoch)) = board.grant(w, now_ms) else {
            break;
        };
        let line = ToWorker::Lease {
            range: rid,
            start,
            end,
            epoch,
        }
        .to_line();
        let sent = workers[w]
            .stdin
            .as_mut()
            .is_some_and(|si| writeln!(si, "{line}").is_ok());
        if sent {
            workers[w].assignment = Some((rid, epoch));
            workers[w].leases += 1;
        } else {
            // The pipe is gone: the worker is dying. Take back the lease
            // now; the EOF event finishes the bookkeeping.
            kill_worker(&mut workers[w], board);
        }
    }
}

/// The `<batch>.worker-*.jsonl` journals currently on disk — this fleet's
/// and any dead predecessor's.
fn worker_journal_paths(dir: &Path, bkey: &str) -> Vec<PathBuf> {
    let prefix = format!("{bkey}.worker-");
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut out: Vec<PathBuf> = entries
        .flatten()
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with(&prefix) && n.ends_with(".jsonl"))
        })
        .collect();
    out.sort();
    out
}

/// Folds the merged journal plus every per-worker journal into deduped
/// entries, in batch order, and rewrites the merged journal to exactly
/// that state. On success the absorbed per-worker journals are deleted;
/// on I/O failure they are kept so nothing is lost.
fn merge_journals(
    dir: &Path,
    bkey: &str,
    keys: &[String],
) -> Result<(HashMap<String, JournalEntry>, SnapshotStats), String> {
    let merged_path = dir.join(format!("{bkey}.jsonl"));
    let mut lines = Journal::load(&merged_path).map_err(|e| format!("loading journal: {e}"))?;
    let worker_paths = worker_journal_paths(dir, bkey);
    for p in &worker_paths {
        lines.extend(Journal::load(p).unwrap_or_default());
    }
    let entries = collect_entries(&lines, true);
    // The workers' snapstats records live only in their own journals; the
    // rewrite below keeps keyed result records only, so sum them now.
    let snapstats = collect_snapstats(&lines);
    let ordered: Vec<String> = keys
        .iter()
        .filter_map(|k| entries.get(k).map(|e| e.raw.clone()))
        .collect();
    let mut merged =
        Journal::open(&merged_path, false).map_err(|e| format!("rewriting merged journal: {e}"))?;
    merged
        .append_all(&ordered)
        .map_err(|e| format!("rewriting merged journal: {e}"))?;
    for p in &worker_paths {
        let _ = std::fs::remove_file(p);
    }
    Ok((entries, snapstats))
}

/// Best-effort observability snapshot of the lease board, written next to
/// the merged journal as `<batch>.leases.json`.
fn write_lease_snapshot(dir: &Path, bkey: &str, board: &LeaseBoard) {
    let v = Value::Object(vec![
        ("batch".to_string(), Value::String(bkey.to_string())),
        (
            "counters".to_string(),
            serde_json::to_value(board.counters().clone()).unwrap_or(Value::Null),
        ),
        (
            "leases".to_string(),
            serde_json::to_value(board.leases().to_vec()).unwrap_or(Value::Null),
        ),
    ]);
    let Ok(json) = serde_json::to_string(&v) else {
        return;
    };
    let path = dir.join(format!("{bkey}.leases.json"));
    let tmp = dir.join(format!("{bkey}.leases.json.tmp"));
    if std::fs::write(&tmp, json).is_ok() && std::fs::rename(&tmp, &path).is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
}

/// A [`SweepOutcome`] where setup failed before any worker ran: every
/// slot carries the error, mirroring how the in-process engine accounts
/// failed scenarios.
fn fail_all(scenarios: &[Scenario], error: &SimError) -> SweepOutcome {
    let n = scenarios.len();
    let mut stats = SweepStats {
        scenarios: n as u64,
        quarantined: n as u64,
        degraded: true,
        ..SweepStats::default()
    };
    let mut results = Vec::with_capacity(n);
    let mut quarantined = Vec::with_capacity(n);
    for (index, sc) in scenarios.iter().enumerate() {
        quarantined.push(QuarantineRecord {
            index,
            label: sc.label.clone(),
            attempts: 0,
            error: error.to_string(),
        });
        if stats.per_scenario.len() < PER_SCENARIO_CAP {
            stats.per_scenario.push(ScenarioStats {
                label: sc.label.clone(),
                wall_ms: 0.0,
                cache_hit: false,
                resumed: false,
                forked: false,
                attempts: 0,
                events: 0,
            });
        }
        results.push(Err(error.clone()));
    }
    SweepOutcome {
        results,
        degraded: true,
        quarantined,
        attempts: vec![Vec::new(); n],
        stats,
    }
}

/// Runs the batch across a fleet of worker processes. Never panics on
/// fleet trouble: setup failures, dead workers and poisoned ranges all
/// surface as typed per-scenario errors in the outcome.
pub(crate) fn run_sharded(
    scenarios: &[Scenario],
    keys: &[String],
    opts: &SweepOptions,
) -> SweepOutcome {
    match run_sharded_inner(scenarios, keys, opts) {
        Ok(outcome) => outcome,
        Err(e) => fail_all(scenarios, &e),
    }
}

fn run_sharded_inner(
    scenarios: &[Scenario],
    keys: &[String],
    opts: &SweepOptions,
) -> Result<SweepOutcome, SimError> {
    let n = scenarios.len();
    let dir = opts.journal_dir.clone().ok_or_else(|| {
        SimError::config("sharded sweeps require a journal directory (SweepOptions::journaled)")
    })?;
    let launcher = LAUNCHER.get().ok_or_else(|| {
        SimError::config(
            "sharded sweeps require a registered worker launcher (shard::set_worker_launcher)",
        )
    })?;
    std::fs::create_dir_all(&dir)
        .map_err(|e| SimError::config(format!("creating journal directory {dir:?}: {e}")))?;
    let bkey = batch_key(keys);
    let io_err = |what: &str, e: std::io::Error| SimError::config(format!("{what}: {e}"));

    // Startup hygiene: other batches' orphaned worker journals, lease
    // snapshots, batch files and temp files — debris of killed
    // coordinators — are removed once old enough. This batch's own files
    // and every merged `<key>.jsonl` (fleet resume state) survive.
    let stale_after = std::env::var(STALE_ENV)
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map_or(Duration::from_secs(24 * 3600), Duration::from_millis);
    journal::clean_stale_artifacts(&dir, &bkey, stale_after);

    // Fleet-wide resume: absorb the merged journal AND every per-worker
    // journal a dead fleet left behind, then rewrite the merged journal
    // to that deduped state before a single worker spawns. Without
    // `resume`, prior state of this batch is discarded instead.
    let merged_path = dir.join(format!("{bkey}.jsonl"));
    let prior: HashMap<String, JournalEntry> = if opts.resume {
        // Snapstats of an earlier, dead fleet describe *its* invocation;
        // only the keyed result entries carry over.
        merge_journals(&dir, &bkey, keys)
            .map_err(SimError::config)?
            .0
    } else {
        let _ = Journal::open(&merged_path, false).map_err(|e| io_err("clearing journal", e))?;
        for p in worker_journal_paths(&dir, &bkey) {
            let _ = std::fs::remove_file(p);
        }
        HashMap::new()
    };
    let resumed_keys: HashSet<&String> = prior
        .iter()
        .filter(|(_, e)| e.result.is_ok())
        .map(|(k, _)| k)
        .collect();
    let resumed_keys: HashSet<String> = resumed_keys.into_iter().cloned().collect();

    // The serialized batch the workers load their scenarios from.
    let batch_file = dir.join(format!("{bkey}.batch.json"));
    let batch_json = serde_json::to_string(&scenarios.to_vec())
        .map_err(|e| SimError::config(format!("serializing batch: {e:?}")))?;
    let batch_tmp = dir.join(format!("{bkey}.batch.json.tmp"));
    std::fs::write(&batch_tmp, batch_json).map_err(|e| io_err("writing batch file", e))?;
    std::fs::rename(&batch_tmp, &batch_file).map_err(|e| io_err("writing batch file", e))?;

    // Fine-grained ranges (≈4 per worker) keep re-lease losses small.
    let chunk = n.div_ceil(opts.workers * 4).max(1);
    let lease_ms = opts.lease.as_millis().max(1) as u64;
    let mut board = LeaseBoard::new(partition(n, chunk), lease_ms, opts.range_attempts);

    // Spawn the fleet.
    let nonce = u64::from(std::process::id());
    let (tx, rx) = mpsc::channel::<Event>();
    let mut workers: Vec<WorkerProc> = Vec::with_capacity(opts.workers);
    for w in 0..opts.workers {
        let spec = WorkerSpec {
            worker: w,
            nonce,
            batch_file: batch_file.clone(),
            journal_dir: dir.clone(),
            opts: opts.clone(),
        };
        let mut cmd = launcher(&spec);
        cmd.stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit());
        match cmd.spawn() {
            Ok(mut child) => {
                let stdin = child.stdin.take();
                let stdout = child.stdout.take();
                if let Some(stdout) = stdout {
                    let tx = tx.clone();
                    std::thread::spawn(move || {
                        for line in BufReader::new(stdout).lines() {
                            let Ok(line) = line else { break };
                            if let Some(msg) = FromWorker::parse(&line) {
                                if tx.send(Event::Msg(w, msg)).is_err() {
                                    return;
                                }
                            }
                        }
                        let _ = tx.send(Event::Eof(w));
                    });
                }
                workers.push(WorkerProc {
                    id: w,
                    child,
                    stdin,
                    alive: true,
                    ready: false,
                    shutdown_sent: false,
                    lost: false,
                    assignment: None,
                    leases: 0,
                    scenarios_done: 0,
                });
            }
            Err(e) => {
                // Partial fleets are torn down: a setup failure must not
                // leak orphan processes.
                for p in workers.iter_mut() {
                    let _ = p.child.kill();
                    let _ = p.child.wait();
                }
                return Err(SimError::config(format!("spawning worker {w}: {e}")));
            }
        }
    }
    drop(tx);

    // The event loop: drive the board from worker messages, worker
    // deaths, and the clock.
    let started = Instant::now();
    let now_ms = || started.elapsed().as_millis() as u64;
    let hb_ms = opts.heartbeat.as_millis() as u64;
    let poll = Duration::from_millis((hb_ms / 2).clamp(10, 500));
    let mut chaos_pending = opts.chaos_kill_one_worker;
    loop {
        if board.all_settled() || workers.iter().all(|p| !p.alive) {
            break;
        }
        let now = now_ms();
        // Wedged workers: a lease whose deadline passed belongs to a
        // worker that is alive but not making progress. Kill it — its
        // state is untrustworthy — and re-lease (or quarantine) the range.
        for (_rid, w) in board.reclaim_expired(now) {
            if workers[w].alive {
                kill_worker(&mut workers[w], &mut board);
            }
        }
        // A worker that never even said `ready` within one lease TTL is
        // wedged before its first message.
        for p in workers.iter_mut() {
            if p.alive && !p.ready && now >= lease_ms {
                kill_worker(p, &mut board);
            }
        }
        grant_open(&mut board, &mut workers, now);
        match rx.recv_timeout(poll) {
            Ok(Event::Msg(w, FromWorker::Ready { worker })) if worker == w => {
                workers[w].ready = true;
            }
            Ok(Event::Msg(
                w,
                FromWorker::Heartbeat {
                    worker,
                    range,
                    epoch,
                },
            )) if worker == w => {
                board.heartbeat(w, range, epoch, now_ms());
            }
            Ok(Event::Msg(
                w,
                FromWorker::RangeDone {
                    worker,
                    range,
                    epoch,
                },
            )) if worker == w => {
                if board.complete(w, range, epoch) {
                    let (s, e) = board.leases()[range].range;
                    workers[w].scenarios_done += (e - s) as u64;
                }
                if workers[w].assignment == Some((range, epoch)) {
                    workers[w].assignment = None;
                }
                grant_open(&mut board, &mut workers, now_ms());
                // Chaos hook: the first worker to finish a range — now
                // freshly re-leased and provably mid-range — is SIGKILLed,
                // exercising death reclamation end to end.
                if chaos_pending
                    && workers[w].alive
                    && workers[w].assignment.is_some()
                    && workers.iter().any(|p| p.id != w && p.alive)
                {
                    kill_worker(&mut workers[w], &mut board);
                    chaos_pending = false;
                }
            }
            Ok(Event::Msg(_, _)) => {} // mismatched fleet id: ignore
            Ok(Event::Eof(w)) => {
                if workers[w].alive {
                    workers[w].alive = false;
                    workers[w].lost = !workers[w].shutdown_sent;
                    workers[w].stdin = None;
                    board.reclaim_worker(w);
                    workers[w].assignment = None;
                    reap(&mut workers[w].child);
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                // Every reader thread is gone; the loop head settles it.
            }
        }
    }
    let fleet_lost = !board.all_settled();

    // Wind the fleet down: polite shutdown, then force.
    for p in workers.iter_mut() {
        if p.alive {
            p.shutdown_sent = true;
            if let Some(si) = p.stdin.as_mut() {
                let _ = writeln!(si, "{}", ToWorker::Shutdown.to_line());
            }
            p.stdin = None;
        }
    }
    for p in workers.iter_mut() {
        if p.alive {
            reap(&mut p.child);
            p.alive = false;
        }
    }

    // Merge every journal into the batch journal and assemble the
    // outcome from disk state alone — exactly what a later `--resume`
    // would see.
    let (entries, fleet_snapstats) = match merge_journals(&dir, &bkey, keys) {
        Ok(merged) => merged,
        Err(_) => {
            // The rewrite failed; per-worker journals were kept. Assemble
            // from an in-memory merge so the caller still gets results.
            let mut lines = Journal::load(&merged_path).unwrap_or_default();
            for p in worker_journal_paths(&dir, &bkey) {
                lines.extend(Journal::load(&p).unwrap_or_default());
            }
            (collect_entries(&lines, true), collect_snapstats(&lines))
        }
    };
    let _ = std::fs::remove_file(&batch_file);
    write_lease_snapshot(&dir, &bkey, &board);

    let workers_lost = workers.iter().filter(|p| p.lost).count();
    let fleet_detail = format!("{workers_lost} of {} workers lost", opts.workers);
    let mut stats = SweepStats::default();
    let mut results = Vec::with_capacity(n);
    let mut quarantined = Vec::new();
    for (index, sc) in scenarios.iter().enumerate() {
        let (result, attempts, cache_hit, resumed, forked, wall_ms) =
            match entries.get(&keys[index]) {
                Some(e) => (
                    e.result.clone(),
                    e.attempts,
                    e.cache_hit,
                    resumed_keys.contains(&keys[index]),
                    e.forked,
                    e.wall_ms,
                ),
                None => {
                    // Never published: the scenario sits in a quarantined
                    // range, or the whole fleet died first.
                    let lease = board
                        .leases()
                        .iter()
                        .find(|r| r.range.0 <= index && index < r.range.1);
                    let err = match lease {
                        Some(r) if r.state == bl_simcore::shard::LeaseState::Quarantined => {
                            SimError::ShardRangeQuarantined {
                                start: r.range.0,
                                end: r.range.1,
                                attempts: r.attempts,
                            }
                        }
                        _ => {
                            debug_assert!(fleet_lost, "published results cover all settled ranges");
                            SimError::WorkerFleetLost {
                                workers: opts.workers,
                                detail: fleet_detail.clone(),
                            }
                        }
                    };
                    let attempts = lease.map_or(0, |r| r.attempts);
                    (Err(err), attempts, false, false, false, 0.0)
                }
            };
        stats.scenarios += 1;
        stats.cache_hits += u64::from(cache_hit);
        stats.resumed += u64::from(resumed);
        stats.forked += u64::from(forked);
        stats.retries += u64::from(attempts.saturating_sub(1));
        let events = result.as_ref().map_or(0, |r| r.events_processed);
        stats.events += events;
        if let Err(e) = &result {
            stats.quarantined += 1;
            quarantined.push(QuarantineRecord {
                index,
                label: sc.label.clone(),
                attempts,
                error: e.to_string(),
            });
        }
        if stats.per_scenario.len() < PER_SCENARIO_CAP {
            stats.per_scenario.push(ScenarioStats {
                label: sc.label.clone(),
                wall_ms,
                cache_hit,
                resumed,
                forked,
                attempts,
                events,
            });
        }
        results.push(result);
    }
    stats.degraded = stats.quarantined > 0 || stats.retries > 0;
    stats.snapshot = fleet_snapstats;
    let c = board.counters();
    stats.shard = Some(ShardStats {
        workers: opts.workers as u64,
        ranges: board.leases().len() as u64,
        leases_granted: c.leases_granted,
        reclaimed_expired: c.reclaimed_expired,
        reclaimed_dead: c.reclaimed_dead,
        releases: c.releases,
        ranges_quarantined: c.ranges_quarantined,
        workers_lost: workers_lost as u64,
        per_worker: workers
            .iter()
            .map(|p| WorkerStats {
                worker: p.id as u64,
                leases: p.leases,
                scenarios_done: p.scenarios_done,
                lost: p.lost,
            })
            .collect(),
    });
    Ok(SweepOutcome {
        results,
        degraded: stats.degraded,
        quarantined,
        attempts: vec![Vec::new(); n],
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_cli_args_round_trip() {
        let spec = WorkerSpec {
            worker: 3,
            nonce: 99,
            batch_file: PathBuf::from("/tmp/b.json"),
            journal_dir: PathBuf::from("/tmp/j"),
            opts: SweepOptions::with_jobs(2)
                .with_retries(4)
                .audited(true)
                .with_deadline(Duration::from_millis(1500))
                .with_event_cap(1_000_000)
                .cached("/tmp/c")
                .with_heartbeat(Duration::from_millis(250))
                .prefix_sharing(false)
                .snap_stored("/tmp/s"),
        };
        let args = worker_cli_args(&spec);
        assert_eq!(args[0], "--worker");
        let parsed = parse_worker_args(&args).unwrap();
        assert_eq!(parsed.worker, 3);
        assert_eq!(parsed.nonce, 99);
        assert_eq!(parsed.batch_file, spec.batch_file);
        assert_eq!(parsed.journal_dir, spec.journal_dir);
        assert_eq!(parsed.opts.jobs, 2);
        assert_eq!(parsed.opts.retries, 4);
        assert!(parsed.opts.audit);
        assert_eq!(parsed.opts.deadline, Some(Duration::from_millis(1500)));
        assert_eq!(parsed.opts.max_events, Some(1_000_000));
        assert_eq!(parsed.opts.cache_dir, Some(PathBuf::from("/tmp/c")));
        assert_eq!(parsed.opts.heartbeat, Duration::from_millis(250));
        assert!(!parsed.opts.prefix_share);
        assert_eq!(parsed.opts.snap_store, Some(PathBuf::from("/tmp/s")));
    }

    #[test]
    fn worker_args_reject_garbage() {
        let bad = ["--fleet-id".to_string()]; // missing value
        assert!(parse_worker_args(&bad).is_err());
        let unknown = ["--frobnicate".to_string(), "1".to_string()];
        assert!(parse_worker_args(&unknown).is_err());
        let missing = ["--fleet-id".to_string(), "1".to_string()];
        assert!(parse_worker_args(&missing).is_err(), "spec is incomplete");
    }

    #[test]
    fn sharding_without_journal_dir_fails_typed_not_fatal() {
        use crate::config::SystemConfig;
        use bl_platform::ids::CpuId;
        use bl_simcore::time::SimDuration;
        let sc = Scenario::microbench(
            "no-journal",
            CpuId(0),
            0.3,
            SimDuration::from_millis(10),
            SimDuration::from_millis(50),
            SystemConfig::baseline(),
        );
        let opts = SweepOptions::with_jobs(1).sharded(2); // no journal_dir
        let out = super::super::run_with(std::slice::from_ref(&sc), &opts);
        assert!(matches!(
            out.results[0],
            Err(SimError::InvalidConfig { .. })
        ));
        assert!(out.degraded);
    }
}
