//! The parallel scenario-sweep engine and its crash-safe supervisor.
//!
//! Experiments submit batches of [`Scenario`]s; the engine executes them on
//! a [`bl_simcore::pool`] worker pool with these guarantees:
//!
//! * **Bit-identical to serial.** Each scenario builds its own fresh
//!   [`crate::Simulation`] from its own serialized inputs, results are
//!   reassembled in submission order, and per-scenario seeds (when derived
//!   at all — see [`seed_scenarios`]) depend only on `(base_seed, index)`.
//!   `jobs = 1` and `jobs = 64` therefore produce the same `RunResult`s.
//! * **Panic isolation.** A panicking scenario surfaces as
//!   [`SimError::ScenarioPanicked`] in its slot; sibling scenarios complete.
//! * **Budgets.** A per-scenario wall-clock deadline and/or simulated-event
//!   cap ([`SweepOptions::deadline`] / [`SweepOptions::max_events`]) is
//!   enforced cooperatively inside the event loop, so one pathological
//!   scenario cannot stall an hours-long sweep. Exhaustion surfaces as the
//!   typed [`SimError::DeadlineExceeded`] /
//!   [`SimError::EventBudgetExhausted`].
//! * **Retry & quarantine.** Runtime failures (panic, stall, budget
//!   exhaustion, invariant violation) are retried up to
//!   [`SweepOptions::retries`] times with a perturbed seed
//!   (`derive_seed(seed, attempt)`); scenarios that keep failing are
//!   *quarantined* — their slot carries the final error, the sweep
//!   completes, and [`SweepOutcome::degraded`] is raised instead of the
//!   whole batch dying. Configuration errors are never retried.
//! * **Crash-only journaling.** With [`SweepOptions::journal_dir`] set,
//!   every completed scenario is appended to a checksummed write-ahead
//!   journal (`<journal_dir>/<batch-key>.jsonl`, tmp+rename+fsync). A
//!   killed sweep re-run with [`SweepOptions::resume`] replays completed
//!   scenarios from the journal bit-identically and only simulates the
//!   remainder.
//! * **Result caching with integrity.** With a cache directory configured,
//!   each scenario's serialized form plus the sweep's behavior-relevant
//!   options (see [`cache_key_with`]) is hashed into a key under
//!   `results/.cache/`. Entries carry an FNV-1a checksum over the payload;
//!   corrupt or truncated entries are detected, deleted and recomputed
//!   (self-healing) instead of poisoning downstream results.
//! * **Prefix sharing.** Scenarios carrying a warm-up split point (see
//!   [`Scenario::warmup`]) whose prefixes serialize identically are
//!   executed as a *fork group*: the shared prefix is simulated once,
//!   captured as a [`crate::SimSnapshot`], and every member forks from it
//!   instead of replaying the warm-up — bit-identical to the cold path
//!   (each member would apply its late bindings at the same instant
//!   either way). The prefix's identity ([`SnapshotSpec::key`]) is hashed
//!   into every member's result key, so prefix-shared results never alias
//!   non-shared ones in the cache or journal, and a group whose snapshot
//!   cannot be built or forked degrades member by member to cold runs.
//!
//! The typed front door is [`SweepRequest`] → [`SweepReport`];
//! [`run`] and [`run_with`] remain as the thin functional forms.

use crate::result::RunResult;
use crate::scenario::Scenario;
use crate::sim::SimSnapshot;
use bl_simcore::budget::{CancelToken, RunBudget};
use bl_simcore::error::SimError;
use bl_simcore::journal::{fnv1a, fsync_dir, Journal};
use bl_simcore::pool;
use bl_simcore::rng::derive_seed;
use bl_simcore::snapstore::{SnapEntry, SnapStore, SNAP_FORMAT_VERSION};
use bl_simcore::time::SimDuration;
use serde::{Deserialize, Serialize};
use serde_json::Value;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub mod shard;

/// The cache directory the `bench` binary uses by default.
pub const DEFAULT_CACHE_DIR: &str = "results/.cache";

/// The write-ahead journal directory the `bench` binary uses by default.
pub const DEFAULT_JOURNAL_DIR: &str = "results/.sweep-journal";

/// The persistent snapshot store directory the `bench` binary uses by
/// default.
pub const DEFAULT_SNAP_DIR: &str = "results/.snapshots";

/// Keep the global per-scenario stats list bounded: callers that loop over
/// sweeps without draining [`take_stats`] (e.g. criterion benchmarks) must
/// not grow memory without bound.
const PER_SCENARIO_CAP: usize = 4096;

/// How a sweep executes: worker count, result cache, per-scenario budgets,
/// retry policy, journaling, auditing, and multi-process sharding.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Worker threads; `0` means "available parallelism". In sharded mode
    /// (`workers > 1`) this is the thread count *inside each worker
    /// process* (`0` becomes 1 there, so `--workers N` does not
    /// oversubscribe the host N times over).
    pub jobs: usize,
    /// Result cache directory; `None` disables caching.
    pub cache_dir: Option<PathBuf>,
    /// Per-scenario wall-clock deadline; `None` means unlimited.
    pub deadline: Option<Duration>,
    /// Per-scenario simulated-event cap; `None` means unlimited.
    pub max_events: Option<u64>,
    /// Retries after a first failed attempt (0 = fail fast). Each retry
    /// perturbs the scenario's seed with `derive_seed(seed, attempt)`.
    pub retries: u32,
    /// Forces the runtime invariant auditor on for every scenario in the
    /// batch (see [`crate::SystemConfig::with_audit`]).
    pub audit: bool,
    /// Write-ahead journal directory; `None` disables journaling.
    pub journal_dir: Option<PathBuf>,
    /// Replay scenarios already completed in the batch's journal instead of
    /// re-simulating them (bit-identical: the journaled `RunResult` is
    /// returned verbatim). Requires [`SweepOptions::journal_dir`].
    pub resume: bool,
    /// Worker *processes* to shard the batch across. `0` or `1` keeps the
    /// in-process engine; `> 1` leases contiguous scenario ranges to a
    /// fleet of spawned worker processes with expiring heartbeat-renewed
    /// leases (see [`shard`]). Requires [`SweepOptions::journal_dir`] and
    /// a registered [`shard::set_worker_launcher`].
    pub workers: usize,
    /// How long a leased range may go without a heartbeat before the
    /// coordinator reclaims it from its (dead or wedged) worker.
    pub lease: Duration,
    /// How often a worker heartbeats the range it is executing.
    pub heartbeat: Duration,
    /// Lease grants per range before the coordinator quarantines it — the
    /// process-level twin of [`SweepOptions::retries`]: a range whose
    /// workers keep dying degrades the batch instead of killing it.
    pub range_attempts: u32,
    /// Chaos-test hook: once the first range completes, the coordinator
    /// SIGKILLs one worker that is mid-range, proving death reclamation
    /// end to end. Never set outside robustness tests.
    pub chaos_kill_one_worker: bool,
    /// Execute scenarios sharing a warm-up prefix as fork groups (simulate
    /// the prefix once, fork per member) instead of replaying the prefix
    /// per scenario. Results are bit-identical either way — this is purely
    /// a wall-clock optimization, on by default.
    pub prefix_share: bool,
    /// Persistent snapshot store directory; `None` disables the store.
    /// With a directory set (and [`SweepOptions::prefix_share`] on), warm
    /// trunk snapshots are hydrated from disk instead of re-simulated and
    /// freshly built trunks are published back — reuse across
    /// invocations, worker processes and hosts. Hydration is guarded by
    /// the snapshot's state fingerprint, so results stay bit-identical to
    /// the cold path either way (which is why this knob, like
    /// `prefix_share`, is *not* part of the result cache key).
    pub snap_store: Option<PathBuf>,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            jobs: 0,
            cache_dir: None,
            deadline: None,
            max_events: None,
            retries: 0,
            audit: false,
            journal_dir: None,
            resume: false,
            workers: 0,
            lease: Duration::from_millis(10_000),
            heartbeat: Duration::from_millis(1_000),
            range_attempts: 3,
            chaos_kill_one_worker: false,
            prefix_share: true,
            snap_store: None,
        }
    }
}

impl SweepOptions {
    /// One worker, no cache — the reference serial path.
    pub fn serial() -> Self {
        SweepOptions {
            jobs: 1,
            ..SweepOptions::default()
        }
    }

    /// `jobs` workers, no cache.
    pub fn with_jobs(jobs: usize) -> Self {
        SweepOptions {
            jobs,
            ..SweepOptions::default()
        }
    }

    /// Enables the on-disk result cache under `dir`.
    pub fn cached(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Sets the per-scenario wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the per-scenario simulated-event cap.
    pub fn with_event_cap(mut self, max_events: u64) -> Self {
        self.max_events = Some(max_events);
        self
    }

    /// Sets how many times a failed scenario is retried with a reseed.
    pub fn with_retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// Forces the runtime invariant auditor on for the whole batch.
    pub fn audited(mut self, on: bool) -> Self {
        self.audit = on;
        self
    }

    /// Enables the write-ahead sweep journal under `dir`.
    pub fn journaled(mut self, dir: impl Into<PathBuf>) -> Self {
        self.journal_dir = Some(dir.into());
        self
    }

    /// Enables resuming from the batch's journal.
    pub fn resuming(mut self, on: bool) -> Self {
        self.resume = on;
        self
    }

    /// Shards the batch across `workers` worker processes (`0`/`1` keeps
    /// the in-process engine).
    pub fn sharded(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the lease TTL for sharded mode.
    pub fn with_lease(mut self, lease: Duration) -> Self {
        self.lease = lease;
        self
    }

    /// Sets the worker heartbeat cadence for sharded mode.
    pub fn with_heartbeat(mut self, heartbeat: Duration) -> Self {
        self.heartbeat = heartbeat;
        self
    }

    /// Sets how many lease grants a range gets before quarantine.
    pub fn with_range_attempts(mut self, attempts: u32) -> Self {
        self.range_attempts = attempts;
        self
    }

    /// Enables or disables warm-up prefix sharing (on by default).
    pub fn prefix_sharing(mut self, on: bool) -> Self {
        self.prefix_share = on;
        self
    }

    /// Enables the persistent snapshot store under `dir` (requires
    /// [`SweepOptions::prefix_share`], which is on by default).
    pub fn snap_stored(mut self, dir: impl Into<PathBuf>) -> Self {
        self.snap_store = Some(dir.into());
        self
    }

    /// Folds a [`SimOptions`](crate::SimOptions) bundle into the sweep:
    /// the audit override and per-scenario budgets come from the shared
    /// struct, so front ends configure execution through one serializable
    /// source of truth instead of mirroring each knob as a separate flag.
    pub fn with_sim_options(mut self, sim: &crate::SimOptions) -> Self {
        self.audit = sim.audit;
        self.deadline = sim.deadline_ms.map(Duration::from_millis);
        self.max_events = sim.max_events;
        self
    }

    fn effective_jobs(&self) -> usize {
        if self.jobs == 0 {
            pool::available_jobs()
        } else {
            self.jobs
        }
    }

    /// The per-scenario execution budget these options imply.
    fn budget(&self) -> RunBudget {
        let mut b = RunBudget::unlimited();
        if let Some(d) = self.deadline {
            b = b.with_wall_limit(d);
        }
        if let Some(m) = self.max_events {
            b = b.with_max_events(m);
        }
        b
    }
}

/// Timing and cache outcome of one scenario within a sweep.
#[derive(Debug, Clone, Serialize)]
pub struct ScenarioStats {
    /// The scenario's label.
    pub label: String,
    /// Wall-clock time spent on it (cache lookup included).
    pub wall_ms: f64,
    /// Whether the result came from the cache.
    pub cache_hit: bool,
    /// Whether the result was replayed from the sweep journal.
    pub resumed: bool,
    /// Whether the result was produced by forking a shared warm-up
    /// prefix snapshot instead of a cold run.
    pub forked: bool,
    /// Execution attempts made (0 when cached or resumed, 1 for a clean
    /// first run, more when retries fired).
    pub attempts: u32,
    /// Simulator events the scenario's result reports
    /// ([`RunResult::events_processed`]); 0 when the scenario failed.
    pub events: u64,
}

/// One execution attempt of one scenario within a sweep.
#[derive(Debug, Clone, Serialize)]
pub struct AttemptRecord {
    /// Attempt number, starting at 0.
    pub attempt: u32,
    /// The seed the attempt ran with (attempt 0 uses the scenario's own
    /// seed; retries perturb it with `derive_seed`).
    pub seed: u64,
    /// `None` on success; the error rendering otherwise.
    pub error: Option<String>,
}

/// A scenario that kept failing after every retry and was quarantined.
#[derive(Debug, Clone, Serialize)]
pub struct QuarantineRecord {
    /// The scenario's index in the submitted batch.
    pub index: usize,
    /// The scenario's label.
    pub label: String,
    /// Total attempts made before giving up.
    pub attempts: u32,
    /// The final error's rendering.
    pub error: String,
}

/// Aggregated execution statistics of one or more sweeps.
#[derive(Debug, Clone, Default, Serialize)]
pub struct SweepStats {
    /// Scenarios executed (or served from cache / journal).
    pub scenarios: u64,
    /// Scenarios served from the cache.
    pub cache_hits: u64,
    /// Scenarios replayed from the sweep journal.
    pub resumed: u64,
    /// Scenarios whose result came from forking a shared warm-up prefix
    /// snapshot instead of a cold run.
    pub forked: u64,
    /// Extra attempts spent on retries across the batch.
    pub retries: u64,
    /// Scenarios quarantined after exhausting their retries.
    pub quarantined: u64,
    /// Simulator events summed over every successful result
    /// ([`RunResult::events_processed`]) — divide by the batch's wall
    /// time for an events/sec throughput figure.
    pub events: u64,
    /// Whether any scenario was retried or quarantined.
    pub degraded: bool,
    /// Warm-snapshot accounting: trunks simulated, forks taken, and the
    /// persistent store's hydrate/publish traffic.
    pub snapshot: SnapshotStats,
    /// Multi-process lease/reclaim accounting; `None` for in-process
    /// sweeps.
    pub shard: Option<ShardStats>,
    /// Per-scenario timing, in submission order (bounded; oldest sweeps
    /// win when the global tally overflows [`PER_SCENARIO_CAP`]).
    pub per_scenario: Vec<ScenarioStats>,
}

/// Warm-snapshot traffic of one or more sweeps: how often trunks were
/// simulated cold, how often members forked from a warm snapshot, and how
/// much the persistent store ([`SweepOptions::snap_store`]) contributed.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct SnapshotStats {
    /// Warm-up trunks simulated in-process (snapshot chains built cold).
    pub trunk_runs: u64,
    /// Scenarios whose result came from forking a warm snapshot instead
    /// of replaying the warm-up prefix.
    pub forks: u64,
    /// Snapshot rungs hydrated from the persistent store instead of
    /// re-simulated.
    pub hydrated: u64,
    /// Snapshot rungs published to the persistent store.
    pub published: u64,
    /// Wall-clock milliseconds of trunk simulation avoided by hydrating
    /// from the store (the deepest hydrated rung's recorded build time
    /// per trunk — warm-up times along one trunk are cumulative).
    pub trunk_ms_saved: f64,
}

impl SnapshotStats {
    fn merge(&mut self, other: &SnapshotStats) {
        self.trunk_runs += other.trunk_runs;
        self.forks += other.forks;
        self.hydrated += other.hydrated;
        self.published += other.published;
        self.trunk_ms_saved += other.trunk_ms_saved;
    }
}

/// What one worker process did within a sharded sweep.
#[derive(Debug, Clone, Default, Serialize)]
pub struct WorkerStats {
    /// The worker's fleet id.
    pub worker: u64,
    /// Leases the worker was granted.
    pub leases: u64,
    /// Scenarios the worker executed to completion (ranges it finished).
    pub scenarios_done: u64,
    /// Whether the worker was lost (died or was killed after wedging).
    pub lost: bool,
}

/// Fleet-level accounting of a sharded sweep: how many leases were
/// granted, reclaimed from dead or wedged workers, and re-leased — the
/// operator's view of how rough the batch was.
#[derive(Debug, Clone, Default, Serialize)]
pub struct ShardStats {
    /// Worker processes launched.
    pub workers: u64,
    /// Ranges the batch was partitioned into.
    pub ranges: u64,
    /// Leases granted, re-grants included.
    pub leases_granted: u64,
    /// Leases reclaimed because the heartbeat deadline passed (worker
    /// wedged).
    pub reclaimed_expired: u64,
    /// Leases reclaimed because the owning worker process died.
    pub reclaimed_dead: u64,
    /// Re-grants of a previously reclaimed range to a surviving worker.
    pub releases: u64,
    /// Ranges quarantined after exhausting their lease-attempt budget.
    pub ranges_quarantined: u64,
    /// Worker processes lost over the batch (died or killed after
    /// wedging).
    pub workers_lost: u64,
    /// Per-worker breakdown, by fleet id.
    pub per_worker: Vec<WorkerStats>,
}

impl ShardStats {
    fn merge(&mut self, other: &ShardStats) {
        self.workers += other.workers;
        self.ranges += other.ranges;
        self.leases_granted += other.leases_granted;
        self.reclaimed_expired += other.reclaimed_expired;
        self.reclaimed_dead += other.reclaimed_dead;
        self.releases += other.releases;
        self.ranges_quarantined += other.ranges_quarantined;
        self.workers_lost += other.workers_lost;
        self.per_worker.extend(other.per_worker.iter().cloned());
    }
}

impl SweepStats {
    fn merge(&mut self, other: &SweepStats) {
        self.scenarios += other.scenarios;
        self.cache_hits += other.cache_hits;
        self.resumed += other.resumed;
        self.forked += other.forked;
        self.retries += other.retries;
        self.quarantined += other.quarantined;
        self.events += other.events;
        self.degraded |= other.degraded;
        self.snapshot.merge(&other.snapshot);
        if let Some(other_shard) = &other.shard {
            self.shard
                .get_or_insert_with(ShardStats::default)
                .merge(other_shard);
        }
        let room = PER_SCENARIO_CAP.saturating_sub(self.per_scenario.len());
        self.per_scenario
            .extend(other.per_scenario.iter().take(room).cloned());
    }
}

/// A fully-described sweep submission: the scenario batch plus how to run
/// it — the typed replacement for threading positional arguments through
/// [`run`]-style functions.
///
/// ```
/// use biglittle::sweep::SweepRequest;
/// use biglittle::{Scenario, SystemConfig, SweepOptions};
/// use bl_platform::ids::CpuId;
/// use bl_simcore::time::SimDuration;
///
/// let mb = |label: &str, duty: f64| {
///     Scenario::microbench(
///         label,
///         CpuId(0),
///         duty,
///         SimDuration::from_millis(10),
///         SimDuration::from_millis(50),
///         SystemConfig::baseline(),
///     )
/// };
/// let report = SweepRequest::new(vec![mb("a", 0.25), mb("b", 0.75)])
///     .options(SweepOptions::with_jobs(2))
///     .run();
/// assert_eq!(report.results.len(), 2);
/// assert!(!report.degraded);
/// ```
#[derive(Debug, Clone)]
pub struct SweepRequest {
    /// The scenarios to execute, in submission order.
    pub scenarios: Vec<Scenario>,
    /// How to execute them.
    pub options: SweepOptions,
}

impl SweepRequest {
    /// A request running `scenarios` under default [`SweepOptions`].
    pub fn new(scenarios: Vec<Scenario>) -> Self {
        SweepRequest {
            scenarios,
            options: SweepOptions::default(),
        }
    }

    /// Replaces the execution options.
    pub fn options(mut self, options: SweepOptions) -> Self {
        self.options = options;
        self
    }

    /// Overwrites every scenario's seed with the canonical positional
    /// derivation (see [`seed_scenarios`]).
    pub fn seeded(mut self, base_seed: u64) -> Self {
        seed_scenarios(&mut self.scenarios, base_seed);
        self
    }

    /// Executes the batch and returns the full report. Statistics are also
    /// merged into the global tally read by [`take_stats`].
    pub fn run(&self) -> SweepReport {
        run_with(&self.scenarios, &self.options)
    }

    /// [`SweepRequest::run`], unwrapping every result and panicking with
    /// the failing scenario's label — for callers that treat any failure
    /// as fatal.
    pub fn run_expecting_all(&self) -> Vec<RunResult> {
        run_all(&self.scenarios, &self.options)
    }
}

/// Results and statistics of one sweep.
#[derive(Debug)]
pub struct SweepReport {
    /// Per-scenario results, in submission order.
    pub results: Vec<Result<RunResult, SimError>>,
    /// Whether the sweep needed retries or quarantined scenarios — it
    /// completed, but not cleanly.
    pub degraded: bool,
    /// Scenarios that kept failing and were quarantined.
    pub quarantined: Vec<QuarantineRecord>,
    /// Per-scenario attempt histories, in submission order (empty for
    /// cached / resumed scenarios).
    pub attempts: Vec<Vec<AttemptRecord>>,
    /// Execution statistics of this sweep alone.
    pub stats: SweepStats,
}

impl SweepReport {
    /// Unwraps every result in submission order, panicking with the slot
    /// index on the first failure.
    pub fn expect_all(self) -> Vec<RunResult> {
        self.results
            .into_iter()
            .enumerate()
            .map(|(i, r)| r.unwrap_or_else(|e| panic!("scenario #{i} failed: {e}")))
            .collect()
    }
}

/// The pre-[`SweepReport`] name of the sweep's result type, kept so
/// long-lived call sites read naturally during the transition.
pub type SweepOutcome = SweepReport;

/// Global tally across sweeps, drained by [`take_stats`] (the `bench`
/// binary reads it to report per-experiment timing without threading the
/// stats through every experiment's return type).
static TALLY: Mutex<SweepStats> = Mutex::new(SweepStats {
    scenarios: 0,
    cache_hits: 0,
    resumed: 0,
    forked: 0,
    retries: 0,
    quarantined: 0,
    events: 0,
    degraded: false,
    snapshot: SnapshotStats {
        trunk_runs: 0,
        forks: 0,
        hydrated: 0,
        published: 0,
        trunk_ms_saved: 0.0,
    },
    shard: None,
    per_scenario: Vec::new(),
});

/// Runs a batch of scenarios on `jobs` workers (`0` = available
/// parallelism) and returns per-scenario results in submission order.
///
/// ```
/// use biglittle::sweep;
/// use biglittle::{Scenario, SystemConfig};
/// use bl_platform::ids::CpuId;
/// use bl_simcore::time::SimDuration;
///
/// let mb = |label: &str, duty: f64| {
///     Scenario::microbench(
///         label,
///         CpuId(0),
///         duty,
///         SimDuration::from_millis(10),
///         SimDuration::from_millis(50),
///         SystemConfig::baseline(),
///     )
/// };
/// let results = sweep::run(vec![mb("a", 0.25), mb("b", 0.75)], 2);
/// assert!(results.iter().all(|r| r.is_ok()));
/// ```
pub fn run(scenarios: Vec<Scenario>, jobs: usize) -> Vec<Result<RunResult, SimError>> {
    run_with(&scenarios, &SweepOptions::with_jobs(jobs)).results
}

/// Runs a batch of scenarios under full [`SweepOptions`] control and
/// returns results plus execution statistics. The statistics are also
/// merged into the global tally read by [`take_stats`].
pub fn run_with(scenarios: &[Scenario], opts: &SweepOptions) -> SweepOutcome {
    run_with_cancel(scenarios, opts, None)
}

/// [`run_with`] with a cooperative cancellation token: when `cancel`
/// trips, in-flight scenarios abandon their event loops (surfacing as
/// budget errors) and not-yet-started scenarios are skipped — without
/// journaling the interruptions as scenario failures, so a later
/// [`SweepOptions::resume`] of the same batch replays only genuinely
/// completed work. This is the hook a long-lived server uses to
/// quarantine a wedged run without restarting the process. Cancellation
/// applies to the in-process engine; sharded sweeps (`workers > 1`)
/// already carry their own lease-expiry reclamation and ignore the token.
pub fn run_cancelable(
    scenarios: &[Scenario],
    opts: &SweepOptions,
    cancel: &CancelToken,
) -> SweepOutcome {
    run_with_cancel(scenarios, opts, Some(cancel))
}

fn run_with_cancel(
    scenarios: &[Scenario],
    opts: &SweepOptions,
    cancel: Option<&CancelToken>,
) -> SweepOutcome {
    // The supervisor runs the *effective* scenarios: the batch-level audit
    // override is folded into each scenario's config up front, so cache
    // keys, journal keys and execution all agree on what actually runs.
    let effective: Vec<Scenario> = scenarios
        .iter()
        .map(|sc| effective_scenario(sc, opts))
        .collect();
    let keys: Vec<String> = effective
        .iter()
        .map(|sc| cache_key_with(sc, opts))
        .collect();

    if opts.workers > 1 && !scenarios.is_empty() {
        let outcome = shard::run_sharded(scenarios, &keys, opts);
        TALLY
            .lock()
            .expect("stats tally poisoned")
            .merge(&outcome.stats);
        return outcome;
    }

    let journal = open_journal(opts, &keys);
    let resumed_map = match (&journal, opts.resume) {
        (Some(j), true) => replay_journal(&j.lock().expect("journal poisoned")),
        _ => HashMap::new(),
    };

    let store = snap_store_for(opts);
    let snap_tally = Mutex::new(SnapshotStats::default());
    let env = ExecEnv {
        opts,
        journal: journal.as_ref(),
        resumed: &resumed_map,
        cancel,
        store: store.as_ref(),
        snap: &snap_tally,
    };
    let indices: Vec<usize> = (0..effective.len()).collect();
    let raw = execute_indices(&indices, &effective, &keys, &env, opts.effective_jobs());

    let mut results = Vec::with_capacity(scenarios.len());
    let mut attempts = Vec::with_capacity(scenarios.len());
    let mut quarantined = Vec::new();
    let mut stats = SweepStats::default();
    for (index, sup) in raw.into_iter().enumerate() {
        stats.scenarios += 1;
        stats.cache_hits += u64::from(sup.cache_hit);
        stats.resumed += u64::from(sup.resumed);
        stats.forked += u64::from(sup.forked);
        stats.retries += sup.attempts.len().saturating_sub(1) as u64;
        let events = sup.result.as_ref().map_or(0, |r| r.events_processed);
        stats.events += events;
        if let Err(e) = &sup.result {
            stats.quarantined += 1;
            quarantined.push(QuarantineRecord {
                index,
                label: scenarios[index].label.clone(),
                attempts: sup.attempts.len() as u32,
                error: e.to_string(),
            });
        }
        if stats.per_scenario.len() < PER_SCENARIO_CAP {
            stats.per_scenario.push(ScenarioStats {
                label: scenarios[index].label.clone(),
                wall_ms: sup.wall_ms,
                cache_hit: sup.cache_hit,
                resumed: sup.resumed,
                forked: sup.forked,
                attempts: sup.attempts.len() as u32,
                events,
            });
        }
        results.push(sup.result);
        attempts.push(sup.attempts);
    }
    stats.degraded = stats.quarantined > 0 || stats.retries > 0;
    stats.snapshot = *snap_tally.lock().expect("snapshot tally poisoned");
    TALLY.lock().expect("stats tally poisoned").merge(&stats);
    SweepOutcome {
        results,
        degraded: stats.degraded,
        quarantined,
        attempts,
        stats,
    }
}

/// What the supervisor learned about one scenario.
pub(crate) struct Supervised {
    pub(crate) result: Result<RunResult, SimError>,
    pub(crate) cache_hit: bool,
    pub(crate) resumed: bool,
    pub(crate) forked: bool,
    pub(crate) attempts: Vec<AttemptRecord>,
    pub(crate) wall_ms: f64,
}

impl Supervised {
    fn escaped(index: usize, label: String, detail: String) -> Self {
        Supervised {
            result: Err(SimError::ScenarioPanicked {
                index,
                label,
                detail,
            }),
            cache_hit: false,
            resumed: false,
            forked: false,
            attempts: Vec::new(),
            wall_ms: 0.0,
        }
    }
}

/// Everything the supervisor needs beyond the scenario itself: options,
/// the batch journal, resume knowledge, and — inside a sharded worker
/// process — the cancellation token that trips when the coordinator dies.
pub(crate) struct ExecEnv<'a> {
    pub(crate) opts: &'a SweepOptions,
    pub(crate) journal: Option<&'a Mutex<Journal>>,
    pub(crate) resumed: &'a HashMap<String, RunResult>,
    pub(crate) cancel: Option<&'a CancelToken>,
    /// The persistent snapshot store, when [`SweepOptions::snap_store`]
    /// names one and prefix sharing is on. `SnapStore` synchronizes
    /// internally, so worker threads share the reference directly.
    pub(crate) store: Option<&'a SnapStore>,
    /// Where the engine accumulates warm-snapshot traffic for this
    /// sweep (or this worker process's slice of it).
    pub(crate) snap: &'a Mutex<SnapshotStats>,
}

/// Supervises one scenario: journal replay, cache lookup, then up to
/// `1 + retries` budgeted attempts with reseeding, journaling the final
/// result — success *or* exhausted failure — so a sharded coordinator can
/// reconstruct the full outcome from journals alone.
///
/// When the env's cancellation token trips (coordinator death), the
/// scenario is abandoned without journaling the failure and without
/// retrying: a cancellation is not evidence about the scenario, and a
/// journaled pseudo-error would poison the fleet-wide resume.
pub(crate) fn supervise(
    index: usize,
    sc: &Scenario,
    key: &str,
    env: &ExecEnv<'_>,
    snapshot: Option<&SimSnapshot>,
) -> Supervised {
    let opts = env.opts;
    let start = Instant::now();
    if let Some(r) = env.resumed.get(key) {
        return Supervised {
            result: Ok(r.clone()),
            cache_hit: false,
            resumed: true,
            forked: false,
            attempts: Vec::new(),
            wall_ms: start.elapsed().as_secs_f64() * 1e3,
        };
    }
    // Write-ahead: announce the scenario before running it, so a resumed
    // sweep can tell "in flight when killed" from "never started".
    journal_append(env.journal, start_record(index, key, &sc.label));
    let cache_path = opts
        .cache_dir
        .as_deref()
        .map(|d| d.join(format!("{key}.json")));
    if let Some(hit) = cache_path.as_deref().and_then(cache_read_checked) {
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        journal_append(env.journal, done_record(key, &hit, 0, true, None, wall_ms));
        return Supervised {
            result: Ok(hit),
            cache_hit: true,
            resumed: false,
            forked: false,
            attempts: Vec::new(),
            wall_ms,
        };
    }

    let mut budget = opts.budget();
    if let Some(token) = env.cancel {
        budget = budget.cancelled_by(token.clone());
    }
    let cancelled = || env.cancel.is_some_and(CancelToken::is_cancelled);
    let mut attempts = Vec::new();
    let mut forked;
    let result = loop {
        let attempt = attempts.len() as u32;
        let seed = if attempt == 0 {
            sc.config.seed
        } else {
            derive_seed(sc.config.seed, u64::from(attempt))
        };
        // Only the first attempt may fork: a reseeded retry no longer
        // matches the state baked into the shared prefix.
        let snap = if attempt == 0 { snapshot } else { None };
        let (outcome, used_fork) = run_attempt(index, sc, seed, &budget, snap);
        forked = used_fork;
        attempts.push(AttemptRecord {
            attempt,
            seed,
            error: outcome.as_ref().err().map(|e| e.to_string()),
        });
        match outcome {
            Ok(r) => break Ok(r),
            Err(e) => {
                let out_of_attempts = attempt >= opts.retries;
                if cancelled() || out_of_attempts || !is_retryable(&e) {
                    break Err(e);
                }
            }
        }
    };
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    match &result {
        Ok(r) => {
            if let Some(p) = cache_path.as_deref() {
                cache_write(p, index, r);
            }
            let fp = forked
                .then(|| snapshot.map(SimSnapshot::fingerprint))
                .flatten();
            journal_append(
                env.journal,
                done_record(key, r, attempts.len() as u32, false, fp, wall_ms),
            );
        }
        Err(e) => {
            if !cancelled() {
                journal_append(
                    env.journal,
                    err_record(key, e, attempts.len() as u32, wall_ms),
                );
            }
        }
    }
    Supervised {
        result,
        cache_hit: false,
        resumed: false,
        forked,
        attempts,
        wall_ms,
    }
}

/// Executes one attempt with panic isolation, overriding the seed for
/// retries. With a prefix snapshot available the attempt forks it instead
/// of replaying the warm-up; [`SimError::SnapshotUnsupported`] (some live
/// state refused to be duplicated) falls straight back to a cold run
/// *within the same attempt* — a fork refusal is an implementation limit,
/// not evidence about the scenario. Returns the outcome and whether the
/// result actually came from a fork.
fn run_attempt(
    index: usize,
    sc: &Scenario,
    seed: u64,
    budget: &RunBudget,
    snapshot: Option<&SimSnapshot>,
) -> (Result<RunResult, SimError>, bool) {
    let catch = |f: &dyn Fn() -> Result<RunResult, SimError>| {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)).unwrap_or_else(|payload| {
            Err(SimError::ScenarioPanicked {
                index,
                label: sc.label.clone(),
                // `as_ref()`, not `&payload`: `&Box<dyn Any>` would itself
                // coerce to `&dyn Any` and hide the payload from downcasts.
                detail: panic_detail(payload.as_ref()),
            })
        })
    };
    if let Some(snap) = snapshot {
        match catch(&|| sc.run_forked(snap, budget)) {
            Err(SimError::SnapshotUnsupported { .. }) => {}
            outcome => return (outcome, true),
        }
    }
    let reseeded;
    let sc_ref = if seed == sc.config.seed {
        sc
    } else {
        let mut copy = sc.clone();
        copy.config.seed = seed;
        reseeded = copy;
        &reseeded
    };
    (catch(&|| sc_ref.run_with_budget(budget)), false)
}

/// Whether a reseeded retry has any chance of changing the outcome.
/// Configuration-class errors are deterministic in the scenario's inputs,
/// so retrying them only wastes a simulation run.
fn is_retryable(e: &SimError) -> bool {
    matches!(
        e,
        SimError::WatchdogStall { .. }
            | SimError::TaskLost { .. }
            | SimError::ScenarioPanicked { .. }
            | SimError::DeadlineExceeded { .. }
            | SimError::EventBudgetExhausted { .. }
            | SimError::InvariantViolated { .. }
    )
}

fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

// ---- prefix sharing --------------------------------------------------------

/// The serializable identity of a shared warm-up prefix: which normalized
/// prefix scenario is simulated, to which point, and — once the prefix
/// has actually run — the captured state's digest. The pre-run half is
/// what result keys hash in ([`SnapshotSpec::key`] is computable before
/// any simulation, which caching, resume and sharding require); the
/// fingerprint is recorded in journal `done` records for post-hoc
/// divergence audits.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SnapshotSpec {
    /// The normalized prefix scenario (see [`Scenario::prefix_scenario`]).
    pub prefix: Scenario,
    /// The warm-up point the snapshot is taken at.
    pub at: SimDuration,
    /// The captured state's digest, once known
    /// (see [`crate::SimSnapshot::fingerprint`]).
    #[serde(default)]
    pub fingerprint: Option<u64>,
}

impl SnapshotSpec {
    /// The spec of `sc`'s shared prefix; `None` without a warm-up point.
    pub fn of(sc: &Scenario) -> Option<SnapshotSpec> {
        Some(SnapshotSpec {
            prefix: sc.prefix_scenario()?,
            at: sc.warmup?,
            fingerprint: None,
        })
    }

    /// The spec of `sc`'s *root* prefix — chain level 0, the first stop
    /// instant of [`Scenario::chain_points`]. For a plain warm-up scenario
    /// (no `warmup_via`) this equals [`SnapshotSpec::of`]; for a ladder
    /// member it identifies the snapshot-tree node every rung descends
    /// from, which is what the planner groups by. `None` without a
    /// warm-up point.
    pub fn root_of(sc: &Scenario) -> Option<SnapshotSpec> {
        let chain = sc.chain_points();
        let &at = chain.first()?;
        Some(SnapshotSpec {
            prefix: sc.prefix_scenario_at(0),
            at,
            fingerprint: None,
        })
    }

    /// One spec per chain level of `sc`'s prefix, root first — the full
    /// path of snapshot-tree nodes the scenario's warm-up traverses.
    /// Empty without a warm-up point. The last element equals
    /// [`SnapshotSpec::of`].
    pub fn chain_of(sc: &Scenario) -> Vec<SnapshotSpec> {
        sc.chain_points()
            .into_iter()
            .enumerate()
            .map(|(level, at)| SnapshotSpec {
                prefix: sc.prefix_scenario_at(level),
                at,
                fingerprint: None,
            })
            .collect()
    }

    /// Stable 16-hex-digit key of the prefix: an FNV-1a hash over the
    /// serialized prefix scenario, the split point and the crate version.
    /// Two scenarios may share a snapshot exactly when their keys are
    /// equal. The fingerprint deliberately does not enter: the key must be
    /// computable before the prefix runs, and the prefix is deterministic
    /// in its serialized form, so the fingerprint is already a function of
    /// this key.
    pub fn key(&self) -> String {
        let json =
            serde_json::to_string(&self.prefix).expect("scenario serialization is infallible");
        let mut data = json.into_bytes();
        data.push(0);
        data.extend_from_slice(&self.at.as_nanos().to_le_bytes());
        data.push(0);
        data.extend_from_slice(env!("CARGO_PKG_VERSION").as_bytes());
        format!("{:016x}", fnv1a(&data))
    }
}

/// One schedulable piece of a sweep: a standalone scenario, or a fork
/// group whose members share a warm-up prefix.
enum Unit {
    One(usize),
    Group(Vec<usize>),
}

/// Partitions scenario indices into execution units. Scenarios whose
/// *root* prefix keys ([`SnapshotSpec::root_of`]) are equal land in one
/// fork group (submission order preserved within it); everything else —
/// no warm-up point, prefix sharing disabled, or a prefix nobody shares —
/// runs standalone. For plain warm-up scenarios the root key *is* the
/// full prefix key, so flat grouping is unchanged; ladder members
/// ([`Scenario::warmup_via`]) additionally join the group of their
/// shallowest ancestor, and [`run_group`] decides whether the group forms
/// a single nested chain or must degrade to per-leaf flat sharing.
fn plan_units(indices: &[usize], effective: &[Scenario], opts: &SweepOptions) -> Vec<Unit> {
    let mut units: Vec<Unit> = Vec::with_capacity(indices.len());
    if !opts.prefix_share {
        units.extend(indices.iter().map(|&i| Unit::One(i)));
        return units;
    }
    let mut group_at: HashMap<String, usize> = HashMap::new();
    for &i in indices {
        match SnapshotSpec::root_of(&effective[i]) {
            Some(spec) => match group_at.get(&spec.key()) {
                Some(&u) => {
                    let Unit::Group(members) = &mut units[u] else {
                        unreachable!("group_at only points at Group units")
                    };
                    members.push(i);
                }
                None => {
                    group_at.insert(spec.key(), units.len());
                    units.push(Unit::Group(vec![i]));
                }
            },
            None => units.push(Unit::One(i)),
        }
    }
    // A prefix nobody shares gains nothing from the snapshot detour.
    for u in units.iter_mut() {
        if let Unit::Group(m) = u {
            if m.len() == 1 {
                *u = Unit::One(m[0]);
            }
        }
    }
    units
}

/// Executes a set of scenario indices — the shared engine behind the
/// in-process sweep and a sharded worker's leased range. Returns one
/// [`Supervised`] per index, in `indices` order; a unit-level panic (or a
/// cancellation before start) lands in every member's slot as a typed
/// error.
pub(crate) fn execute_indices(
    indices: &[usize],
    effective: &[Scenario],
    keys: &[String],
    env: &ExecEnv<'_>,
    jobs: usize,
) -> Vec<Supervised> {
    let units = plan_units(indices, effective, env.opts);
    let membership: Vec<Vec<usize>> = units
        .iter()
        .map(|u| match u {
            Unit::One(i) => vec![*i],
            Unit::Group(m) => m.clone(),
        })
        .collect();
    let fresh = CancelToken::new();
    let cancel = env.cancel.unwrap_or(&fresh);
    let raw = pool::scoped_map_cancelable(units, jobs, cancel, |_, unit| match unit {
        Unit::One(i) => vec![(i, run_one(i, &effective[i], &keys[i], env))],
        Unit::Group(members) => run_group(&members, effective, keys, env),
    });
    let pos: HashMap<usize, usize> = indices.iter().enumerate().map(|(p, &i)| (i, p)).collect();
    let mut out: Vec<Option<Supervised>> = indices.iter().map(|_| None).collect();
    for (slot, members) in raw.into_iter().zip(membership) {
        match slot {
            Ok(pairs) => {
                for (i, sup) in pairs {
                    out[pos[&i]] = Some(sup);
                }
            }
            Err(detail) => {
                // A panic escaped the supervisor itself (e.g. a cache I/O
                // path) or the unit never started: every member gets the
                // error in its own slot.
                for i in members {
                    out[pos[&i]] = Some(Supervised::escaped(
                        i,
                        effective[i].label.clone(),
                        detail.clone(),
                    ));
                }
            }
        }
    }
    let out: Vec<Supervised> = out
        .into_iter()
        .map(|s| s.expect("every index belongs to exactly one unit"))
        .collect();
    let forks = out.iter().filter(|s| s.forked).count() as u64;
    if forks > 0 {
        env.snap.lock().expect("snapshot tally poisoned").forks += forks;
    }
    out
}

/// Executes one standalone scenario. Without a persistent store this is
/// plain supervision; with one, a scenario carrying a warm-up point first
/// tries to hydrate its trunk chain from the store (publishing a freshly
/// built chain otherwise), so even singleton scenarios reuse trunks warmed
/// by earlier invocations, sibling workers, or other hosts.
fn run_one(i: usize, sc: &Scenario, key: &str, env: &ExecEnv<'_>) -> Supervised {
    let warm = env.store.is_some()
        && SnapshotSpec::of(sc).is_some()
        && !env.resumed.contains_key(key)
        && !cache_entry_present(env.opts, key);
    if !warm {
        return supervise(i, sc, key, env, None);
    }
    let snapshots = build_chain_snapshots(sc, env);
    let snap = snapshots.as_ref().and_then(|s| s.last());
    supervise(i, sc, key, env, snap)
}

/// Executes one fork group serially on the calling worker thread.
/// Members already settled by the journal or cache skip the fork, and
/// snapshots are only built at all when at least two members will
/// actually simulate — below that a cold run is strictly cheaper.
///
/// The group shares a *root* prefix ([`SnapshotSpec::root_of`]); members'
/// full chains ([`Scenario::chain_points`]) may extend it to different
/// depths. When every pending chain is a prefix of the deepest one — a
/// *ladder* — the deepest member's prefix is simulated **once** with a
/// snapshot captured at every rung ([`Scenario::snapshot_prefix_chain`]),
/// and each member forks from its own depth: nested prefixes fork from
/// forks of the same trunk, so each shared segment simulates exactly
/// once. When chains genuinely branch, the group degrades to flat
/// sharing per leaf prefix key — exactly the pre-tree behavior, one
/// snapshot per set of identical full prefixes.
fn run_group(
    members: &[usize],
    effective: &[Scenario],
    keys: &[String],
    env: &ExecEnv<'_>,
) -> Vec<(usize, Supervised)> {
    let pending: Vec<usize> = members
        .iter()
        .copied()
        .filter(|&i| {
            !env.resumed.contains_key(&keys[i]) && !cache_entry_present(env.opts, &keys[i])
        })
        .collect();
    if pending.len() < 2 {
        return members
            .iter()
            .map(|&i| (i, supervise(i, &effective[i], &keys[i], env, None)))
            .collect();
    }

    let chains: HashMap<usize, Vec<SimDuration>> = pending
        .iter()
        .map(|&i| (i, effective[i].chain_points()))
        .collect();
    let trunk = *pending
        .iter()
        .max_by_key(|&&i| chains[&i].len())
        .expect("pending is non-empty");
    let ladder = pending
        .iter()
        .all(|&i| chains[&trunk].starts_with(&chains[&i]));

    if ladder {
        // One trunk simulation, one snapshot per rung; member i resumes
        // from the rung its own warm-up point sits on. A missing rung
        // (build failed) degrades that member to a cold run inside
        // `supervise`, with full retry semantics.
        let snapshots = build_chain_snapshots(&effective[trunk], env);
        return members
            .iter()
            .map(|&i| {
                let snap = chains
                    .get(&i)
                    .and_then(|c| snapshots.as_ref()?.get(c.len() - 1));
                (i, supervise(i, &effective[i], &keys[i], env, snap))
            })
            .collect();
    }

    // Branching chains: fall back to one flat snapshot per leaf prefix,
    // built from the first pending member of each leaf with sharers.
    let mut leaf_of: HashMap<usize, String> = HashMap::new();
    let mut leaf_members: HashMap<String, Vec<usize>> = HashMap::new();
    for &i in &pending {
        if let Some(spec) = SnapshotSpec::of(&effective[i]) {
            let key = spec.key();
            leaf_of.insert(i, key.clone());
            leaf_members.entry(key).or_default().push(i);
        }
    }
    let leaf_snaps: HashMap<&String, SimSnapshot> = leaf_members
        .iter()
        .filter(|(_, m)| m.len() >= 2)
        .filter_map(|(k, m)| Some((k, build_group_snapshot(&effective[m[0]], env)?)))
        .collect();
    members
        .iter()
        .map(|&i| {
            let snap = leaf_of.get(&i).and_then(|k| leaf_snaps.get(k));
            (i, supervise(i, &effective[i], &keys[i], env, snap))
        })
        .collect()
}

/// Whether a cache entry exists for `key` (existence only — the
/// read-and-verify happens inside the supervisor; a corrupt entry merely
/// costs its group one cold run instead of a fork).
fn cache_entry_present(opts: &SweepOptions, key: &str) -> bool {
    opts.cache_dir
        .as_deref()
        .is_some_and(|d| d.join(format!("{key}.json")).is_file())
}

/// The persistent store these options imply: open only when a directory
/// is configured *and* prefix sharing is on (without fork groups there is
/// nothing to hydrate into).
pub(crate) fn snap_store_for(opts: &SweepOptions) -> Option<SnapStore> {
    if !opts.prefix_share {
        return None;
    }
    opts.snap_store.as_ref().map(SnapStore::open)
}

/// Simulates a fork group's shared prefix and captures it — after first
/// offering the persistent store a chance to hydrate the warmed state
/// instead. Any build failure — typed error or panic — degrades the whole
/// group to cold runs (`None`); per-member supervision then reports
/// whatever is actually wrong with full retry/quarantine semantics.
fn build_group_snapshot(sc: &Scenario, env: &ExecEnv<'_>) -> Option<SimSnapshot> {
    let spec = SnapshotSpec::of(sc)?;
    let key = spec.key();
    if let Some(store) = env.store {
        if let Some(entry) = store.load(&key) {
            match hydrate_entry(sc, &entry) {
                Some(snap) => {
                    let mut tally = env.snap.lock().expect("snapshot tally poisoned");
                    tally.hydrated += 1;
                    tally.trunk_ms_saved += entry.warm_ms;
                    return Some(snap);
                }
                // Checksummed bytes whose hydrated state still fails the
                // fingerprint are never trusted: drop and rebuild.
                None => store.invalidate(&key),
            }
        }
    }
    let mut budget = env.opts.budget();
    if let Some(token) = env.cancel {
        budget = budget.cancelled_by(token.clone());
    }
    let started = Instant::now();
    let snap =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| sc.snapshot_prefix(&budget)))
            .ok()?
            .ok()?;
    let warm_ms = started.elapsed().as_secs_f64() * 1e3;
    let mut tally = env.snap.lock().expect("snapshot tally poisoned");
    tally.trunk_runs += 1;
    if let Some(store) = env.store {
        tally.published += publish_rungs(store, &[(key, &snap, warm_ms)]);
    }
    Some(snap)
}

/// Simulates a ladder group's trunk — the deepest member's prefix — once,
/// capturing a snapshot at every chain rung
/// ([`Scenario::snapshot_prefix_chain`]) — unless the persistent store can
/// hydrate the *whole* chain, in which case no trunk simulation happens at
/// all. Hydration is all-or-rebuild: one missing, corrupt or
/// fingerprint-mismatched rung rebuilds (and republishes) the full chain,
/// so forks never mix rungs from different trunk executions. Same
/// degradation contract as [`build_group_snapshot`]: any build failure
/// returns `None` and the whole group runs cold.
fn build_chain_snapshots(sc: &Scenario, env: &ExecEnv<'_>) -> Option<Vec<SimSnapshot>> {
    let specs = SnapshotSpec::chain_of(sc);
    if specs.is_empty() {
        return None;
    }
    let keys: Vec<String> = specs.iter().map(SnapshotSpec::key).collect();
    if let Some(store) = env.store {
        if let Some((snaps, saved_ms)) = hydrate_chain(sc, &keys, store) {
            let mut tally = env.snap.lock().expect("snapshot tally poisoned");
            tally.hydrated += snaps.len() as u64;
            // Warm-up times along one trunk are cumulative, so the deepest
            // rung's recorded build time is the whole replay just avoided.
            tally.trunk_ms_saved += saved_ms;
            return Some(snaps);
        }
    }
    let mut budget = env.opts.budget();
    if let Some(token) = env.cancel {
        budget = budget.cancelled_by(token.clone());
    }
    let timed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        sc.snapshot_prefix_chain_timed(&budget)
    }))
    .ok()?
    .ok()?;
    let mut tally = env.snap.lock().expect("snapshot tally poisoned");
    tally.trunk_runs += 1;
    if let Some(store) = env.store {
        let rungs: Vec<(String, &SimSnapshot, f64)> = keys
            .iter()
            .zip(&timed)
            .map(|(k, (snap, ms))| (k.clone(), snap, *ms))
            .collect();
        tally.published += publish_rungs(store, &rungs);
    }
    Some(timed.into_iter().map(|(snap, _)| snap).collect())
}

/// Hydrates every rung of a trunk chain from the store, returning the
/// snapshots plus the deepest rung's recorded build time. `None` — with
/// the offending entry invalidated — on any missing or unverifiable rung.
fn hydrate_chain(
    sc: &Scenario,
    keys: &[String],
    store: &SnapStore,
) -> Option<(Vec<SimSnapshot>, f64)> {
    let mut snaps = Vec::with_capacity(keys.len());
    let mut saved_ms = 0.0_f64;
    for key in keys {
        let entry = store.load(key)?;
        match hydrate_entry(sc, &entry) {
            Some(snap) => {
                saved_ms = saved_ms.max(entry.warm_ms);
                snaps.push(snap);
            }
            None => {
                store.invalidate(key);
                return None;
            }
        }
    }
    Some((snaps, saved_ms))
}

/// Rebuilds a [`SimSnapshot`] from a store entry, verifying the hydrated
/// state's fingerprint against the recorded one. A payload that panics the
/// decoder degrades to `None` like any other verification failure.
fn hydrate_entry(sc: &Scenario, entry: &SnapEntry) -> Option<SimSnapshot> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        SimSnapshot::from_payload(&sc.platform.build(), &entry.state, entry.fingerprint)
    }))
    .ok()?
    .ok()
}

/// Publishes freshly built trunk rungs to the store; returns how many
/// landed. Serialization refusals (a behavior without `save_box`) and I/O
/// failures are tolerated — the in-process snapshots still fork fine, the
/// store just stays cold.
fn publish_rungs(store: &SnapStore, rungs: &[(String, &SimSnapshot, f64)]) -> u64 {
    let mut published = 0;
    for (key, snap, warm_ms) in rungs {
        // Deeper rungs share the shallow rungs' tasks, so the first
        // unserializable rung means the rest cannot serialize either.
        let Ok(state) = snap.to_payload() else { break };
        let entry = SnapEntry {
            version: SNAP_FORMAT_VERSION,
            key: key.clone(),
            fingerprint: snap.fingerprint(),
            warm_ms: *warm_ms,
            state,
        };
        if store.publish(&entry).is_ok() {
            published += 1;
        }
    }
    published
}

/// Runs a batch and unwraps every result, panicking with the failing
/// scenario's label — the convenience form for experiment code that
/// treated failures as fatal before the sweep engine existed.
pub fn run_all(scenarios: &[Scenario], opts: &SweepOptions) -> Vec<RunResult> {
    run_with(scenarios, opts)
        .results
        .into_iter()
        .zip(scenarios)
        .map(|(r, sc)| r.unwrap_or_else(|e| panic!("scenario {:?} failed: {e}", sc.label)))
        .collect()
}

/// Drains the global execution tally accumulated by every sweep since the
/// last call.
pub fn take_stats() -> SweepStats {
    std::mem::take(&mut *TALLY.lock().expect("stats tally poisoned"))
}

/// Overwrites each scenario's seed with `derive_seed(base_seed, index)` —
/// the canonical per-scenario seeding for randomized batches. Depends only
/// on position, never on execution order, so seeding commutes with any
/// `jobs` setting.
pub fn seed_scenarios(scenarios: &mut [Scenario], base_seed: u64) {
    for (i, sc) in scenarios.iter_mut().enumerate() {
        sc.config.seed = derive_seed(base_seed, i as u64);
    }
}

/// The scenario as the sweep will actually run it: batch-level option
/// overrides (currently the audit flag) folded into its config.
fn effective_scenario(sc: &Scenario, opts: &SweepOptions) -> Scenario {
    let mut sc = sc.clone();
    if opts.audit {
        sc.config.audit = true;
    }
    sc
}

/// The cache key of a scenario: a 64-bit FNV-1a hash (16 hex digits) over
/// its canonical JSON serialization plus the crate version. The JSON form
/// covers the platform preset, full [`crate::SystemConfig`] (seed and
/// fault plan included), workloads and stop condition, so any input change
/// changes the key; the version guard invalidates the cache whenever the
/// simulator itself may have changed.
pub fn cache_key(sc: &Scenario) -> String {
    let json = serde_json::to_string(sc).expect("scenario serialization is infallible");
    let mut data = json.into_bytes();
    data.push(0);
    data.extend_from_slice(env!("CARGO_PKG_VERSION").as_bytes());
    format!("{:016x}", fnv1a(&data))
}

/// [`cache_key`] extended with the sweep options' behavior-relevant
/// feature set, so results computed under different supervision features
/// (today: the audit override) never alias in the cache, plus — for
/// scenarios with a warm-up split point — the identity of the shared
/// prefix ([`SnapshotSpec::key`]), tying every such result to the exact
/// prefix a fork group would share. Options that cannot change simulated
/// results — jobs, deadlines, retries, journaling, and notably
/// [`SweepOptions::prefix_share`] itself (forked and cold runs are
/// bit-identical) — deliberately do *not* enter the key.
pub fn cache_key_with(sc: &Scenario, opts: &SweepOptions) -> String {
    let json = serde_json::to_string(sc).expect("scenario serialization is infallible");
    let mut data = json.into_bytes();
    data.push(0);
    data.extend_from_slice(env!("CARGO_PKG_VERSION").as_bytes());
    data.push(0);
    data.extend_from_slice(format!("features:audit={}", opts.audit).as_bytes());
    if let Some(spec) = SnapshotSpec::of(sc) {
        data.push(0);
        data.extend_from_slice(format!("prefix:{}", spec.key()).as_bytes());
    }
    format!("{:016x}", fnv1a(&data))
}

/// The batch key identifying a submitted batch in the journal directory:
/// an FNV-1a hash over every scenario's cache key in submission order.
pub fn batch_key(keys: &[String]) -> String {
    let mut data = Vec::new();
    for k in keys {
        data.extend_from_slice(k.as_bytes());
        data.push(b'\n');
    }
    format!("{:016x}", fnv1a(&data))
}

/// The batch key [`run_with`] will derive for `scenarios` under `opts` —
/// and therefore the name of the batch's journal file
/// (`<journal_dir>/<key>.jsonl`). Long-lived front ends (the serve
/// daemon) use this to identify a submission *before* running it: the
/// same scenarios under the same options always map to the same key, so
/// a resubmitted batch is recognized, its journal adopted, and its
/// progress observable from outside the engine.
pub fn batch_key_for(scenarios: &[Scenario], opts: &SweepOptions) -> String {
    let keys: Vec<String> = scenarios
        .iter()
        .map(|sc| cache_key_with(&effective_scenario(sc, opts), opts))
        .collect();
    batch_key(&keys)
}

// ---- journal ---------------------------------------------------------------

/// Opens the batch's write-ahead journal when journaling is configured.
/// Open failures degrade to "no journal": the sweep itself must never die
/// on supervision I/O.
fn open_journal(opts: &SweepOptions, keys: &[String]) -> Option<Mutex<Journal>> {
    let dir = opts.journal_dir.as_deref()?;
    let path = dir.join(format!("{}.jsonl", batch_key(keys)));
    Journal::open(path, opts.resume).ok().map(Mutex::new)
}

/// Collects the journal's completed scenarios as `cache key → result`.
fn replay_journal(journal: &Journal) -> HashMap<String, RunResult> {
    collect_entries(journal.records(), false)
        .into_iter()
        .filter_map(|(k, e)| e.result.ok().map(|r| (k, r)))
        .collect()
}

/// One scenario's final journal record, recovered for replay or merging.
pub(crate) struct JournalEntry {
    /// The raw payload line, re-appendable verbatim into a merged journal.
    pub(crate) raw: String,
    /// The recovered outcome (`err` records round-trip the typed error).
    pub(crate) result: Result<RunResult, SimError>,
    /// Execution attempts the record reports (0 for cached results and
    /// for records written before the field existed).
    pub(crate) attempts: u32,
    /// Whether the result came from the on-disk result cache.
    pub(crate) cache_hit: bool,
    /// Whether the result was produced by forking a prefix snapshot (the
    /// record carries the snapshot's fingerprint).
    pub(crate) forked: bool,
    /// Wall-clock milliseconds the record reports.
    pub(crate) wall_ms: f64,
}

/// Folds journal payload lines into `cache key → final record`. `done`
/// records always beat `err` records for the same key (a range re-leased
/// after a partial failure may carry both); among records of the same
/// kind, the latest wins. `err` records are only surfaced at all when
/// `include_errors` is set — single-process resume deliberately re-runs
/// failed scenarios instead of replaying their failures.
pub(crate) fn collect_entries(
    lines: &[String],
    include_errors: bool,
) -> HashMap<String, JournalEntry> {
    let mut map: HashMap<String, JournalEntry> = HashMap::new();
    for line in lines {
        let Ok(v) = serde_json::from_str::<Value>(line) else {
            continue;
        };
        let Some(key) = v.get("key").and_then(Value::as_str) else {
            continue;
        };
        let attempts = v.get("attempts").and_then(Value::as_u64).unwrap_or(0) as u32;
        let cache_hit = matches!(v.get("cache"), Some(Value::Bool(true)));
        let forked = v.get("snapshot").is_some();
        let wall_ms = v.get("wall_ms").and_then(Value::as_f64).unwrap_or(0.0);
        let result = match v.get("ev").and_then(Value::as_str) {
            Some("done") => {
                let Some(r) = v
                    .get("result")
                    .and_then(|r| serde_json::from_value::<RunResult>(r.clone()).ok())
                else {
                    continue;
                };
                Ok(r)
            }
            Some("err") if include_errors => {
                let Some(e) = v
                    .get("error")
                    .and_then(|e| serde_json::from_value::<SimError>(e.clone()).ok())
                else {
                    continue;
                };
                Err(e)
            }
            _ => continue,
        };
        let supersedes = match map.get(key) {
            // A recovered success is never displaced by a failure record.
            Some(old) => !(old.result.is_ok() && result.is_err()),
            None => true,
        };
        if supersedes {
            map.insert(
                key.to_string(),
                JournalEntry {
                    raw: line.clone(),
                    result,
                    attempts,
                    cache_hit,
                    forked,
                    wall_ms,
                },
            );
        }
    }
    map
}

/// Renders a worker's warm-snapshot tally as a journal record
/// (`"ev":"snapstats"`), so a sharded coordinator can assemble fleet-wide
/// snapshot statistics from journals alone.
pub(crate) fn snapstats_record(s: &SnapshotStats) -> String {
    let mut fields = vec![("ev".to_string(), Value::String("snapstats".to_string()))];
    if let Ok(Value::Object(rest)) = serde_json::to_value(*s) {
        fields.extend(rest);
    }
    serde_json::to_string(&Value::Object(fields)).unwrap_or_default()
}

/// Sums every `"ev":"snapstats"` record in a journal line set — the
/// coordinator-side inverse of [`snapstats_record`].
pub(crate) fn collect_snapstats(lines: &[String]) -> SnapshotStats {
    let mut s = SnapshotStats::default();
    for line in lines {
        let Ok(v) = serde_json::from_str::<Value>(line) else {
            continue;
        };
        if v.get("ev").and_then(Value::as_str) != Some("snapstats") {
            continue;
        }
        s.trunk_runs += v.get("trunk_runs").and_then(Value::as_u64).unwrap_or(0);
        s.forks += v.get("forks").and_then(Value::as_u64).unwrap_or(0);
        s.hydrated += v.get("hydrated").and_then(Value::as_u64).unwrap_or(0);
        s.published += v.get("published").and_then(Value::as_u64).unwrap_or(0);
        s.trunk_ms_saved += v
            .get("trunk_ms_saved")
            .and_then(Value::as_f64)
            .unwrap_or(0.0);
    }
    s
}

fn journal_append(journal: Option<&Mutex<Journal>>, payload: String) {
    if let Some(j) = journal {
        if let Ok(mut j) = j.lock() {
            // Journal failures are tolerated: supervision I/O must never
            // kill the sweep it protects.
            let _ = j.append(&payload);
        }
    }
}

fn start_record(index: usize, key: &str, label: &str) -> String {
    let v = Value::Object(vec![
        ("ev".to_string(), Value::String("start".to_string())),
        ("index".to_string(), Value::UInt(index as u64)),
        ("key".to_string(), Value::String(key.to_string())),
        ("label".to_string(), Value::String(label.to_string())),
    ]);
    serde_json::to_string(&v).expect("journal record serialization is infallible")
}

fn done_record(
    key: &str,
    result: &RunResult,
    attempts: u32,
    cache: bool,
    snapshot: Option<u64>,
    wall_ms: f64,
) -> String {
    let mut fields = vec![
        ("ev".to_string(), Value::String("done".to_string())),
        ("key".to_string(), Value::String(key.to_string())),
        ("attempts".to_string(), Value::UInt(u64::from(attempts))),
        ("cache".to_string(), Value::Bool(cache)),
        ("wall_ms".to_string(), Value::Float(wall_ms)),
    ];
    // The fork's source-state digest rides along for post-hoc divergence
    // audits; replay ignores it.
    if let Some(fp) = snapshot {
        fields.push(("snapshot".to_string(), Value::String(format!("{fp:016x}"))));
    }
    fields.push((
        "result".to_string(),
        serde_json::to_value(result).expect("result serialization is infallible"),
    ));
    let v = Value::Object(fields);
    serde_json::to_string(&v).expect("journal record serialization is infallible")
}

/// The journal record of a scenario that exhausted its retries: the typed
/// error rides along so a sharded coordinator can reconstruct the exact
/// failure from journals alone.
fn err_record(key: &str, error: &SimError, attempts: u32, wall_ms: f64) -> String {
    let v = Value::Object(vec![
        ("ev".to_string(), Value::String("err".to_string())),
        ("key".to_string(), Value::String(key.to_string())),
        ("attempts".to_string(), Value::UInt(u64::from(attempts))),
        ("wall_ms".to_string(), Value::Float(wall_ms)),
        (
            "error".to_string(),
            serde_json::to_value(error).expect("error serialization is infallible"),
        ),
    ]);
    serde_json::to_string(&v).expect("journal record serialization is infallible")
}

// ---- cache -----------------------------------------------------------------

/// Reads a cached result, verifying its integrity checksum. Entries are
/// framed as `<16-hex FNV-1a of payload>\n<payload JSON>\n`; a missing
/// file is a plain miss, while a corrupt, truncated or legacy-format entry
/// is deleted on sight (self-healing) and recomputed by the caller. An
/// entry path occupied by a directory is tolerated as a miss.
fn cache_read_checked(path: &Path) -> Option<RunResult> {
    let text = std::fs::read_to_string(path).ok()?;
    let parsed = (|| {
        let (sum, payload) = text.split_once('\n')?;
        let payload = payload.strip_suffix('\n').unwrap_or(payload);
        if sum.len() != 16 || u64::from_str_radix(sum, 16) != Ok(fnv1a(payload.as_bytes())) {
            return None;
        }
        serde_json::from_str::<RunResult>(payload).ok()
    })();
    if parsed.is_none() {
        // The file exists but does not verify: heal by deleting it so the
        // recomputed entry replaces it.
        let _ = std::fs::remove_file(path);
    }
    parsed
}

/// Writes a checksummed result entry via a temp file + rename (so
/// concurrent readers never observe a partial entry), then fsyncs the
/// cache directory so the rename itself survives a crash. Failures are
/// ignored — including the cache path being occupied by a regular file —
/// because the cache is an optimization, never a correctness dependency.
fn cache_write(path: &Path, index: usize, result: &RunResult) {
    let Some(dir) = path.parent() else { return };
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let tmp = path.with_extension(format!("tmp{index}"));
    let Ok(json) = serde_json::to_string(result) else {
        return;
    };
    let framed = format!("{:016x}\n{json}\n", fnv1a(json.as_bytes()));
    if std::fs::write(&tmp, framed).is_ok() {
        if std::fs::rename(&tmp, path).is_ok() {
            fsync_dir(dir);
        } else {
            let _ = std::fs::remove_file(&tmp);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use bl_platform::ids::CpuId;
    use bl_simcore::time::SimDuration;

    fn mb(label: &str, duty: f64) -> Scenario {
        Scenario::microbench(
            label,
            CpuId(0),
            duty,
            SimDuration::from_millis(10),
            SimDuration::from_millis(50),
            SystemConfig::baseline(),
        )
    }

    fn temp_dir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("bl-sweep-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn cache_key_is_stable_and_input_sensitive() {
        let a = mb("a", 0.25);
        assert_eq!(cache_key(&a), cache_key(&a.clone()));
        // Any input change — even just the seed — changes the key.
        let mut b = a.clone();
        b.config.seed ^= 1;
        assert_ne!(cache_key(&a), cache_key(&b));
        // The label is part of the spec too (it is serialized).
        let c = mb("c", 0.25);
        assert_ne!(cache_key(&a), cache_key(&c));
    }

    #[test]
    fn cache_key_is_sensitive_to_option_features() {
        let sc = mb("a", 0.25);
        let plain = cache_key_with(&sc, &SweepOptions::default());
        let audited = cache_key_with(&sc, &SweepOptions::default().audited(true));
        assert_ne!(plain, audited, "the audit override must change the key");
        // Options that cannot change simulated results do not.
        let budgeted = cache_key_with(
            &sc,
            &SweepOptions::with_jobs(7)
                .with_deadline(Duration::from_secs(1))
                .with_retries(3),
        );
        assert_eq!(plain, budgeted);
        // The config's own feature flags enter through the serialized form.
        let mut no_skip = sc.clone();
        no_skip.config.skip_ahead = false;
        assert_ne!(plain, cache_key_with(&no_skip, &SweepOptions::default()));
    }

    #[test]
    fn seed_scenarios_is_positional() {
        let mut batch = vec![mb("a", 0.2), mb("b", 0.4), mb("c", 0.6)];
        seed_scenarios(&mut batch, 99);
        let seeds: Vec<u64> = batch.iter().map(|s| s.config.seed).collect();
        assert_eq!(seeds[0], derive_seed(99, 0));
        assert_eq!(seeds[1], derive_seed(99, 1));
        assert_eq!(seeds[2], derive_seed(99, 2));
        assert_eq!(
            seeds.iter().collect::<std::collections::HashSet<_>>().len(),
            3
        );
    }

    #[test]
    fn run_all_preserves_order() {
        let batch = vec![mb("d10", 0.1), mb("d50", 0.5), mb("d90", 0.9)];
        let out = run_all(&batch, &SweepOptions::with_jobs(3));
        assert_eq!(out.len(), 3);
        // Higher duty on the same pinned CPU burns more power.
        assert!(out[0].avg_power_mw < out[1].avg_power_mw);
        assert!(out[1].avg_power_mw < out[2].avg_power_mw);
    }

    #[test]
    fn panicking_scenario_is_retried_then_quarantined() {
        // duty = 2.0 violates MicroBench's input contract and panics at
        // spawn time on every attempt — a data-driven always-failing
        // scenario.
        let batch = vec![mb("ok", 0.3), mb("panics", 2.0)];
        let out = run_with(&batch, &SweepOptions::serial().with_retries(2));
        assert!(out.results[0].is_ok());
        assert!(matches!(
            out.results[1],
            Err(SimError::ScenarioPanicked { .. })
        ));
        assert!(out.degraded);
        assert_eq!(out.quarantined.len(), 1);
        assert_eq!(out.quarantined[0].label, "panics");
        assert_eq!(out.quarantined[0].attempts, 3, "1 attempt + 2 retries");
        assert_eq!(out.attempts[1].len(), 3);
        // Retries perturbed the seed.
        assert_ne!(out.attempts[1][0].seed, out.attempts[1][1].seed);
        assert_eq!(out.stats.retries, 2);
        assert_eq!(out.stats.quarantined, 1);
    }

    #[test]
    fn config_errors_are_not_retried() {
        use crate::scenario::StopWhen;
        let sc = mb("no-app", 0.5).with_stop(StopWhen::FirstAppDone);
        let out = run_with(&[sc], &SweepOptions::serial().with_retries(5));
        assert!(matches!(
            out.results[0],
            Err(SimError::InvalidConfig { .. })
        ));
        assert_eq!(out.attempts[0].len(), 1, "config errors fail fast");
        assert_eq!(out.stats.retries, 0);
    }

    #[test]
    fn event_cap_surfaces_as_typed_error() {
        let out = run_with(
            &[mb("capped", 0.5)],
            &SweepOptions::serial().with_event_cap(3),
        );
        assert!(matches!(
            out.results[0],
            Err(SimError::EventBudgetExhausted { budget: 3, .. })
        ));
    }

    #[test]
    fn corrupt_cache_entry_self_heals() {
        let dir = temp_dir("self-heal");
        let sc = mb("heal", 0.4);
        let opts = SweepOptions::serial().cached(&dir);
        let first = run_with(std::slice::from_ref(&sc), &opts);
        let clean = first.results[0].as_ref().unwrap().clone();
        let entry = dir.join(format!("{}.json", cache_key_with(&sc, &opts)));
        assert!(entry.exists());

        // Truncate the entry mid-payload: the checksum no longer verifies.
        let text = std::fs::read_to_string(&entry).unwrap();
        std::fs::write(&entry, &text[..text.len() / 2]).unwrap();
        let second = run_with(std::slice::from_ref(&sc), &opts);
        assert_eq!(second.stats.cache_hits, 0, "corrupt entry must not hit");
        assert_eq!(second.results[0].as_ref().unwrap(), &clean);
        // ... and the entry was rewritten, valid again.
        let third = run_with(std::slice::from_ref(&sc), &opts);
        assert_eq!(third.stats.cache_hits, 1);
        assert_eq!(third.results[0].as_ref().unwrap(), &clean);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_tolerates_path_type_mismatches() {
        let dir = temp_dir("mismatch");
        let sc = mb("dirclash", 0.4);
        let opts = SweepOptions::serial().cached(&dir);
        // The entry's path is occupied by a directory: read misses, write
        // fails silently, the sweep still completes.
        let entry = dir.join(format!("{}.json", cache_key_with(&sc, &opts)));
        std::fs::create_dir_all(&entry).unwrap();
        let out = run_with(std::slice::from_ref(&sc), &opts);
        assert!(out.results[0].is_ok());
        let _ = std::fs::remove_dir_all(&dir);

        // The cache dir itself is a regular file: caching is skipped.
        let file_dir =
            std::env::temp_dir().join(format!("bl-sweep-{}-cache-is-a-file", std::process::id()));
        let _ = std::fs::remove_dir_all(&file_dir);
        let _ = std::fs::remove_file(&file_dir);
        std::fs::write(&file_dir, b"not a directory").unwrap();
        let out = run_with(
            std::slice::from_ref(&sc),
            &SweepOptions::serial().cached(&file_dir),
        );
        assert!(out.results[0].is_ok());
        let _ = std::fs::remove_file(&file_dir);
    }

    #[test]
    fn journal_resume_replays_completed_scenarios() {
        let dir = temp_dir("resume");
        let batch = vec![mb("j1", 0.2), mb("j2", 0.6)];
        let opts = SweepOptions::serial().journaled(&dir);
        let first = run_with(&batch, &opts);
        assert_eq!(first.stats.resumed, 0);

        let resumed = run_with(&batch, &opts.clone().resuming(true));
        assert_eq!(resumed.stats.resumed, 2, "both results replayed");
        for (a, b) in first.results.iter().zip(&resumed.results) {
            assert_eq!(a.as_ref().unwrap(), b.as_ref().unwrap());
        }
        // Without --resume the journal is truncated and everything re-runs.
        let fresh = run_with(&batch, &opts);
        assert_eq!(fresh.stats.resumed, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
