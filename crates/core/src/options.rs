//! One serializable bundle of execution options shared by every front end.
//!
//! Skip-ahead, auditing, the stall watchdog and execution budgets used to
//! be configured twice: once through `SystemConfig::with_*` builder calls
//! and once through the `repro` binary's hand-parsed flags. [`SimOptions`]
//! is the single source of truth both consume — the builder folds it into
//! the configuration via [`SimulationBuilder::options`], and the flag
//! parser fills the same struct field by field — so a knob added here is
//! automatically available everywhere, with one set of defaults.
//!
//! [`SimulationBuilder::options`]: crate::sim::SimulationBuilder::options

use crate::config::SystemConfig;
use bl_simcore::budget::RunBudget;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Execution options for a run or sweep: everything about *how* to execute
/// that does not change *what* is simulated. All fields have serde
/// defaults, so persisted option sets stay readable as knobs are added.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimOptions {
    /// Event-driven idle skip-ahead (results are bit-identical either
    /// way; see [`SystemConfig::skip_ahead`]).
    #[serde(default = "default_skip_ahead")]
    pub skip_ahead: bool,
    /// Runtime invariant auditing (see [`SystemConfig::audit`]).
    #[serde(default)]
    pub audit: bool,
    /// Events between invariant-audit passes when `audit` is on.
    #[serde(default = "default_audit_cadence")]
    pub audit_cadence: u64,
    /// Stall-watchdog limit on events at a single simulated instant.
    #[serde(default = "default_watchdog_limit")]
    pub watchdog_same_time_limit: u64,
    /// Wall-clock budget per run in milliseconds (`None` = unlimited).
    #[serde(default)]
    pub deadline_ms: Option<u64>,
    /// Simulated-event budget per run (`None` = unlimited).
    #[serde(default)]
    pub max_events: Option<u64>,
}

fn default_skip_ahead() -> bool {
    true
}

fn default_watchdog_limit() -> u64 {
    100_000
}

fn default_audit_cadence() -> u64 {
    bl_simcore::audit::DEFAULT_AUDIT_CADENCE
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            skip_ahead: default_skip_ahead(),
            audit: false,
            audit_cadence: default_audit_cadence(),
            watchdog_same_time_limit: default_watchdog_limit(),
            deadline_ms: None,
            max_events: None,
        }
    }
}

impl SimOptions {
    /// Enables or disables idle skip-ahead.
    pub fn with_skip_ahead(mut self, on: bool) -> Self {
        self.skip_ahead = on;
        self
    }

    /// Enables or disables the invariant auditor.
    pub fn with_audit(mut self, on: bool) -> Self {
        self.audit = on;
        self
    }

    /// Sets the audit cadence (events between passes).
    pub fn with_audit_cadence(mut self, cadence: u64) -> Self {
        self.audit_cadence = cadence;
        self
    }

    /// Sets the stall watchdog's same-instant event limit.
    pub fn with_watchdog_limit(mut self, limit: u64) -> Self {
        self.watchdog_same_time_limit = limit;
        self
    }

    /// Sets the per-run wall-clock budget in milliseconds.
    pub fn with_deadline_ms(mut self, ms: u64) -> Self {
        self.deadline_ms = Some(ms);
        self
    }

    /// Sets the per-run simulated-event budget.
    pub fn with_max_events(mut self, events: u64) -> Self {
        self.max_events = Some(events);
        self
    }

    /// Folds the execution knobs into a [`SystemConfig`] (budget limits
    /// are not config — read them with [`SimOptions::budget`]).
    pub fn apply_to(&self, cfg: &mut SystemConfig) {
        cfg.skip_ahead = self.skip_ahead;
        cfg.audit = self.audit;
        cfg.audit_cadence = self.audit_cadence;
        cfg.watchdog_same_time_limit = self.watchdog_same_time_limit;
    }

    /// The execution budget these options describe (unlimited when neither
    /// limit is set).
    pub fn budget(&self) -> RunBudget {
        let mut b = RunBudget::unlimited();
        if let Some(ms) = self.deadline_ms {
            b = b.with_wall_limit(Duration::from_millis(ms));
        }
        if let Some(n) = self.max_events {
            b = b.with_max_events(n);
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_system_config_defaults() {
        let opts = SimOptions::default();
        let cfg = SystemConfig::baseline();
        assert_eq!(opts.skip_ahead, cfg.skip_ahead);
        assert_eq!(opts.audit, cfg.audit);
        assert_eq!(opts.audit_cadence, cfg.audit_cadence);
        assert_eq!(opts.watchdog_same_time_limit, cfg.watchdog_same_time_limit);
        assert!(opts.budget().is_unlimited());
    }

    #[test]
    fn apply_to_overrides_every_knob() {
        let opts = SimOptions::default()
            .with_skip_ahead(false)
            .with_audit(true)
            .with_audit_cadence(64)
            .with_watchdog_limit(2_000);
        let mut cfg = SystemConfig::baseline();
        opts.apply_to(&mut cfg);
        assert!(!cfg.skip_ahead);
        assert!(cfg.audit);
        assert_eq!(cfg.audit_cadence, 64);
        assert_eq!(cfg.watchdog_same_time_limit, 2_000);
    }

    #[test]
    fn budget_limits_arm_a_run_budget() {
        let opts = SimOptions::default()
            .with_deadline_ms(1_000)
            .with_max_events(5);
        assert!(!opts.budget().is_unlimited());
    }

    #[test]
    fn serde_round_trip_and_sparse_deserialization() {
        let opts = SimOptions::default().with_audit(true).with_max_events(10);
        let json = serde_json::to_string(&opts).unwrap();
        let back: SimOptions = serde_json::from_str(&json).unwrap();
        assert_eq!(back, opts);
        // An empty object yields the defaults (forward compatibility).
        let sparse: SimOptions = serde_json::from_str("{}").unwrap();
        assert_eq!(sparse, SimOptions::default());
    }
}
