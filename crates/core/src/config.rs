//! Whole-system configuration for one simulation run.

use bl_governor::GovernorConfig;
use bl_kernel::hmp::HmpParams;
use bl_kernel::policy::AsymPolicy;
use bl_platform::config::CoreConfig;
use bl_simcore::fault::FaultPlan;
use bl_simcore::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Everything that defines a run besides the workload: enabled cores,
/// governors, scheduler parameters, screen state and the random seed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Which cores are online (default: all eight).
    pub core_config: CoreConfig,
    /// Governor per cluster, index = cluster id (default: interactive on
    /// both).
    pub governors: Vec<GovernorConfig>,
    /// HMP scheduler tunables.
    pub hmp: HmpParams,
    /// Whether big↔little migration runs (disabled for pinned experiments).
    pub hmp_enabled: bool,
    /// Optional scheduling-policy override (paper §IV.A alternatives). When
    /// `None`, the policy is derived from `hmp` / `hmp_enabled`.
    #[serde(default)]
    pub policy: Option<AsymPolicy>,
    /// Whether intra-cluster balancing runs.
    pub balance_enabled: bool,
    /// Display on (mobile-app runs) or off (SPEC/microbenchmark runs).
    pub screen_on: bool,
    /// Master random seed; every stochastic draw derives from it.
    pub seed: u64,
    /// Metric sampling period (paper: 10 ms).
    pub metric_period: SimDuration,
    /// Enables the cpuidle subsystem (WFI / core-off promotion ladder);
    /// off by default to match the paper's baseline calibration.
    #[serde(default)]
    pub cpuidle_enabled: bool,
    /// Faults to inject during the run (default: none). Validated against
    /// the platform when the simulation is built.
    #[serde(default)]
    pub fault_plan: FaultPlan,
    /// Enables the RC thermal model with throttling; off by default to keep
    /// the paper's baseline calibration. A fault plan containing a thermal
    /// spike turns the model on regardless, so injected heat always has a
    /// node to land in.
    #[serde(default)]
    pub thermal_enabled: bool,
    /// Event-driven idle skip-ahead: when every CPU is idle and nothing but
    /// periodic no-op events is pending, jump straight to the next real
    /// event with closed-form bookkeeping. Results are bit-identical either
    /// way (see DESIGN.md, timing model); disable only to cross-check.
    #[serde(default = "default_skip_ahead")]
    pub skip_ahead: bool,
    /// How many events may fire at a single simulated instant before the
    /// stall watchdog declares the run stuck. A healthy batch is bounded by
    /// the task count plus a handful of periodic events; six figures of
    /// same-time events means something is rescheduling itself at zero
    /// delay. Lower it in stress tests to exercise the stall path cheaply.
    #[serde(default = "default_watchdog_limit")]
    pub watchdog_same_time_limit: u64,
    /// Enables the runtime invariant auditor: conservation-law checks
    /// (time monotone, no lost/duplicated tasks, non-negative energy,
    /// frequency caps honoured) every [`SystemConfig::audit_cadence`]
    /// events, failing the run with a typed
    /// [`bl_simcore::SimError::InvariantViolated`] at the point of
    /// corruption. Off by default (it costs a census pass per cadence).
    #[serde(default)]
    pub audit: bool,
    /// Events between invariant-audit passes when `audit` is on.
    #[serde(default = "default_audit_cadence")]
    pub audit_cadence: u64,
}

fn default_skip_ahead() -> bool {
    true
}

fn default_watchdog_limit() -> u64 {
    100_000
}

fn default_audit_cadence() -> u64 {
    bl_simcore::audit::DEFAULT_AUDIT_CADENCE
}

impl SystemConfig {
    /// The paper's baseline system: L4+B4, interactive governor with stock
    /// tunables on both clusters, default HMP, screen on.
    pub fn baseline() -> Self {
        SystemConfig {
            core_config: CoreConfig::BASELINE,
            governors: vec![GovernorConfig::platform_default(); 2],
            hmp: HmpParams::default_platform(),
            hmp_enabled: true,
            policy: None,
            balance_enabled: true,
            screen_on: true,
            seed: 42,
            metric_period: SimDuration::from_millis(10),
            cpuidle_enabled: false,
            fault_plan: FaultPlan::new(),
            thermal_enabled: false,
            skip_ahead: true,
            watchdog_same_time_limit: default_watchdog_limit(),
            audit: false,
            audit_cadence: default_audit_cadence(),
        }
    }

    /// Baseline with a different core configuration.
    pub fn with_core_config(mut self, cc: CoreConfig) -> Self {
        self.core_config = cc;
        self
    }

    /// Sets the same governor on every cluster.
    pub fn with_governor(mut self, g: GovernorConfig) -> Self {
        self.governors = vec![g; self.governors.len().max(2)];
        self
    }

    /// Sets per-cluster governors (index = cluster id).
    pub fn with_governors(mut self, gs: Vec<GovernorConfig>) -> Self {
        self.governors = gs;
        self
    }

    /// Sets HMP parameters.
    pub fn with_hmp(mut self, hmp: HmpParams) -> Self {
        self.hmp = hmp;
        self
    }

    /// Enables/disables HMP migration.
    pub fn hmp_enabled(mut self, on: bool) -> Self {
        self.hmp_enabled = on;
        self
    }

    /// Overrides the asymmetric scheduling policy entirely (e.g. the
    /// paper's §IV.A efficiency-based or parallelism-aware alternatives).
    pub fn with_policy(mut self, policy: AsymPolicy) -> Self {
        self.policy = Some(policy);
        self
    }

    /// The effective policy for this configuration.
    pub fn effective_policy(&self) -> AsymPolicy {
        match self.policy {
            Some(p) => p,
            None if self.hmp_enabled => AsymPolicy::Hmp(self.hmp),
            None => AsymPolicy::Disabled,
        }
    }

    /// Sets the screen state.
    pub fn screen(mut self, on: bool) -> Self {
        self.screen_on = on;
        self
    }

    /// Sets the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables or disables the cpuidle subsystem (deep idle states).
    pub fn with_cpuidle(mut self, on: bool) -> Self {
        self.cpuidle_enabled = on;
        self
    }

    /// Injects a fault plan into the run (hotplug, thermal spikes,
    /// governor stalls). Same config + same plan + same seed reproduce
    /// bit-identically.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Enables or disables the thermal model (junction temperature
    /// tracking plus throttling of hot clusters).
    pub fn with_thermal(mut self, on: bool) -> Self {
        self.thermal_enabled = on;
        self
    }

    /// Enables or disables idle skip-ahead (on by default; results are
    /// bit-identical either way).
    pub fn with_skip_ahead(mut self, on: bool) -> Self {
        self.skip_ahead = on;
        self
    }

    /// Overrides the stall watchdog's same-instant event limit (default
    /// 100 000). Stress tests lower it to exercise the stall path without
    /// burning hundreds of thousands of iterations first.
    pub fn with_watchdog_limit(mut self, limit: u64) -> Self {
        self.watchdog_same_time_limit = limit;
        self
    }

    /// Enables or disables the runtime invariant auditor.
    pub fn with_audit(mut self, on: bool) -> Self {
        self.audit = on;
        self
    }

    /// Sets how many events pass between invariant-audit passes (`0` is
    /// clamped to 1 — audit on every event).
    pub fn with_audit_cadence(mut self, cadence: u64) -> Self {
        self.audit_cadence = cadence;
        self
    }

    /// Fixed-frequency configuration used by the architecture experiments:
    /// userspace governors pinning `little_khz` / `big_khz`, HMP off,
    /// screen off.
    pub fn pinned_frequencies(little_khz: u32, big_khz: u32) -> Self {
        SystemConfig::baseline()
            .with_governors(vec![
                GovernorConfig::Userspace(little_khz),
                GovernorConfig::Userspace(big_khz),
            ])
            .hmp_enabled(false)
            .screen(false)
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig::baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_paper_defaults() {
        let c = SystemConfig::baseline();
        assert_eq!(c.core_config, CoreConfig::BASELINE);
        assert_eq!(c.governors.len(), 2);
        assert_eq!(c.hmp.up_threshold, 700.0);
        assert!(c.hmp_enabled);
        assert!(c.screen_on);
        assert_eq!(c.metric_period, SimDuration::from_millis(10));
    }

    #[test]
    fn builders_compose() {
        let c = SystemConfig::baseline()
            .with_core_config(CoreConfig::new(2, 1))
            .with_hmp(HmpParams::aggressive())
            .with_seed(7)
            .screen(false);
        assert_eq!(c.core_config, CoreConfig::new(2, 1));
        assert_eq!(c.hmp.up_threshold, 550.0);
        assert_eq!(c.seed, 7);
        assert!(!c.screen_on);
    }

    #[test]
    fn supervision_knobs_default_off_and_compose() {
        let c = SystemConfig::baseline();
        assert_eq!(c.watchdog_same_time_limit, 100_000);
        assert!(!c.audit);
        assert_eq!(c.audit_cadence, bl_simcore::audit::DEFAULT_AUDIT_CADENCE);
        let c = c
            .with_watchdog_limit(2_000)
            .with_audit(true)
            .with_audit_cadence(64);
        assert_eq!(c.watchdog_same_time_limit, 2_000);
        assert!(c.audit);
        assert_eq!(c.audit_cadence, 64);
        // Configs serialized before these knobs existed still deserialize
        // to the defaults.
        let serde_json::Value::Object(mut fields) =
            serde_json::to_value(SystemConfig::baseline()).unwrap()
        else {
            panic!("config serializes to an object")
        };
        fields.retain(|(k, _)| {
            !matches!(
                k.as_str(),
                "watchdog_same_time_limit" | "audit" | "audit_cadence"
            )
        });
        let back: SystemConfig = serde_json::from_value(serde_json::Value::Object(fields)).unwrap();
        assert_eq!(back.watchdog_same_time_limit, 100_000);
        assert!(!back.audit);
    }

    #[test]
    fn pinned_frequencies_disable_hmp_and_screen() {
        let c = SystemConfig::pinned_frequencies(1_300_000, 800_000);
        assert!(!c.hmp_enabled);
        assert!(!c.screen_on);
        assert_eq!(c.governors[0], GovernorConfig::Userspace(1_300_000));
        assert_eq!(c.governors[1], GovernorConfig::Userspace(800_000));
    }
}
