//! Core-combination experiments (paper §V.C, Figures 7 and 8).

use crate::result::RunResult;
use crate::scenario::Scenario;
use crate::sweep::{self, SweepOptions};
use crate::SystemConfig;
use bl_metrics::report::{fnum, TextTable};
use bl_platform::config::CoreConfig;
use bl_workloads::apps::{mobile_apps, AppModel};
use serde::{Deserialize, Serialize};

/// One app's results across core configurations.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CoreConfigRow {
    /// App name.
    pub name: String,
    /// Baseline (L4+B4) run.
    pub baseline: RunResult,
    /// `(config, result)` for each swept configuration.
    pub configs: Vec<(CoreConfig, RunResult)>,
}

impl CoreConfigRow {
    /// Relative performance (higher is better) vs the baseline for the
    /// `i`-th swept config; `None` when the run produced no metric.
    pub fn perf_rel(&self, i: usize) -> Option<f64> {
        let base = self.baseline.perf_score()?;
        // A latency app that missed its cap under a weak configuration is
        // scored by the cap as a lower bound.
        let score = self.configs[i]
            .1
            .perf_score()
            .unwrap_or_else(|| 1.0 / self.configs[i].1.sim_time.as_secs_f64());
        Some(score / base)
    }

    /// Power saving vs the baseline for the `i`-th swept config, percent.
    pub fn power_saving_pct(&self, i: usize) -> f64 {
        (1.0 - self.configs[i].1.avg_power_mw / self.baseline.avg_power_mw) * 100.0
    }
}

/// Runs every app across the paper's seven core combinations plus the
/// baseline. Shared by Figures 7 and 8.
pub fn run_core_config_sweep(
    apps: Vec<AppModel>,
    seed: u64,
    opts: &SweepOptions,
) -> Vec<CoreConfigRow> {
    let cc_sweep = CoreConfig::paper_sweep();
    let per_app = 1 + cc_sweep.len();
    let mut scenarios = Vec::with_capacity(apps.len() * per_app);
    for app in &apps {
        scenarios.push(Scenario::app(
            format!("coreconfig/{}/baseline", app.name),
            app.clone(),
            SystemConfig::baseline().with_seed(seed),
        ));
        for cc in &cc_sweep {
            scenarios.push(Scenario::app(
                format!("coreconfig/{}/{cc}", app.name),
                app.clone(),
                SystemConfig::baseline()
                    .with_core_config(*cc)
                    .with_seed(seed),
            ));
        }
    }
    let results = sweep::run_all(&scenarios, opts);
    apps.iter()
        .zip(results.chunks_exact(per_app))
        .map(|(app, chunk)| CoreConfigRow {
            name: app.name.to_string(),
            baseline: chunk[0].clone(),
            configs: cc_sweep.iter().copied().zip(chunk[1..].to_vec()).collect(),
        })
        .collect()
}

/// Figure 7: performance across core configurations (all apps).
pub fn fig7_performance(seed: u64, opts: &SweepOptions) -> Vec<CoreConfigRow> {
    run_core_config_sweep(mobile_apps(), seed, opts)
}

/// Figure 8 shares Figure 7's runs.
pub fn fig8_power_saving(seed: u64, opts: &SweepOptions) -> Vec<CoreConfigRow> {
    run_core_config_sweep(mobile_apps(), seed, opts)
}

/// Renders the Figure 7 table (performance relative to L4+B4).
pub fn render_fig7(rows: &[CoreConfigRow]) -> String {
    let sweep = CoreConfig::paper_sweep();
    let mut headers = vec!["App".to_string()];
    headers.extend(sweep.iter().map(|c| c.to_string()));
    let mut t = TextTable::new(headers)
        .with_title("Figure 7: performance relative to L4+B4 (1.00 = baseline)");
    for r in rows {
        let mut cells = vec![r.name.clone()];
        for i in 0..r.configs.len() {
            cells.push(fnum(r.perf_rel(i).unwrap_or(f64::NAN), 2));
        }
        t.row(cells);
    }
    t.render()
}

/// Renders the Figure 8 table (power saving vs L4+B4).
pub fn render_fig8(rows: &[CoreConfigRow]) -> String {
    let sweep = CoreConfig::paper_sweep();
    let mut headers = vec!["App".to_string()];
    headers.extend(sweep.iter().map(|c| c.to_string()));
    let mut t = TextTable::new(headers).with_title("Figure 8: power saving vs L4+B4 (%)");
    for r in rows {
        let mut cells = vec![r.name.clone()];
        for i in 0..r.configs.len() {
            cells.push(fnum(r.power_saving_pct(i), 1));
        }
        t.row(cells);
    }
    t.render()
}
