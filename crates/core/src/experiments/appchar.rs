//! Application characterization experiments (paper §V, Figures 4–5,
//! Tables III–IV).

use crate::result::RunResult;
use crate::scenario::Scenario;
use crate::sweep::{self, SweepOptions};
use crate::SystemConfig;
use bl_kernel::task::Affinity;
use bl_metrics::report::{fnum, pct, TextTable};
use bl_platform::config::CoreConfig;
use bl_platform::ids::CoreKind;
use bl_workloads::apps::{fps_apps, latency_apps, mobile_apps, AppModel};
use serde::{Deserialize, Serialize};

/// Runs every app on the default system (L4+B4, HMP, interactive) —
/// the shared input of Tables III–V and Figures 9–10.
pub fn default_runs(seed: u64, opts: &SweepOptions) -> Vec<(AppModel, RunResult)> {
    let apps = mobile_apps();
    let scenarios: Vec<Scenario> = apps
        .iter()
        .map(|app| {
            Scenario::app(
                format!("default/{}", app.name),
                app.clone(),
                SystemConfig::baseline().with_seed(seed),
            )
        })
        .collect();
    apps.into_iter()
        .zip(sweep::run_all(&scenarios, opts))
        .collect()
}

/// The paper's published Table III rows: (app, idle %, big %, TLP).
/// Used by [`render_table3_comparison`] to score the reproduction.
pub const PAPER_TABLE3: [(&str, f64, f64, f64); 12] = [
    ("PDF Reader", 16.14, 13.05, 2.06),
    ("Video Editor", 19.44, 10.44, 2.25),
    ("Photo Editor", 9.06, 7.50, 1.40),
    ("BBench", 0.10, 47.83, 3.95),
    ("Virus Scanner", 2.93, 22.74, 2.44),
    ("Browser", 52.94, 5.41, 1.86),
    ("Encoder", 0.55, 62.19, 1.78),
    ("Angry Bird", 4.41, 0.11, 2.34),
    ("Eternity Warriors 2", 3.65, 27.35, 2.85),
    ("FIFA 15", 9.27, 14.37, 2.37),
    ("Video Player", 14.22, 0.61, 2.29),
    ("Youtube", 12.72, 0.07, 2.29),
];

/// Renders Table III with the paper's values side by side, including the
/// rank correlation of the TLP and big-usage orderings — the quantitative
/// summary of how well the app models reproduce the characterization.
pub fn render_table3_comparison(runs: &[(AppModel, RunResult)]) -> String {
    let mut t = TextTable::new(vec![
        "App Name".into(),
        "Idle p/m".into(),
        "Big p/m".into(),
        "TLP p/m".into(),
    ])
    .with_title("Table III comparison: paper / measured");
    let mut paper_tlp = Vec::new();
    let mut meas_tlp = Vec::new();
    let mut paper_big = Vec::new();
    let mut meas_big = Vec::new();
    for (app, r) in runs {
        let Some((_, p_idle, p_big, p_tlp)) =
            PAPER_TABLE3.iter().find(|(n, _, _, _)| *n == app.name)
        else {
            continue;
        };
        paper_tlp.push(*p_tlp);
        meas_tlp.push(r.tlp.tlp);
        paper_big.push(*p_big);
        meas_big.push(r.tlp.big_pct);
        t.row(vec![
            app.name.to_string(),
            format!("{:.1}/{:.1}", p_idle, r.tlp.idle_pct),
            format!("{:.1}/{:.1}", p_big, r.tlp.big_pct),
            format!("{:.2}/{:.2}", p_tlp, r.tlp.tlp),
        ]);
    }
    let mut out = t.render();
    out.push_str(&format!(
        "
Spearman rank correlation: TLP {:.2}, big-usage {:.2}
",
        spearman(&paper_tlp, &meas_tlp),
        spearman(&paper_big, &meas_big),
    ));
    out
}

/// Spearman rank correlation between two equal-length samples.
pub fn spearman(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let n = a.len();
    if n < 2 {
        return 1.0;
    }
    let rank = |xs: &[f64]| -> Vec<f64> {
        let mut idx: Vec<usize> = (0..xs.len()).collect();
        idx.sort_by(|i, j| xs[*i].total_cmp(&xs[*j]));
        let mut ranks = vec![0.0; xs.len()];
        for (r, i) in idx.into_iter().enumerate() {
            ranks[i] = r as f64;
        }
        ranks
    };
    let (ra, rb) = (rank(a), rank(b));
    let d2: f64 = ra.iter().zip(&rb).map(|(x, y)| (x - y).powi(2)).sum();
    1.0 - 6.0 * d2 / (n as f64 * (n as f64 * n as f64 - 1.0))
}

/// Renders Table III from default runs.
pub fn render_table3(runs: &[(AppModel, RunResult)]) -> String {
    let mut t = TextTable::new(vec![
        "App Name".into(),
        "Idle".into(),
        "Little".into(),
        "Big".into(),
        "TLP".into(),
    ])
    .with_title("Table III: thread-level parallelism with 8 cores");
    for (app, r) in runs {
        t.row(vec![
            app.name.to_string(),
            pct(r.tlp.idle_pct),
            pct(r.tlp.little_pct),
            pct(r.tlp.big_pct),
            fnum(r.tlp.tlp, 2),
        ]);
    }
    t.render()
}

/// Renders one Table IV matrix.
pub fn render_table4_matrix(app: &str, r: &RunResult) -> String {
    let mut headers = vec![format!("{app} (big\\little)")];
    headers.extend((0..r.matrix_pct[0].len()).map(|l| format!("C{l}")));
    let mut t = TextTable::new(headers);
    for (b, row) in r.matrix_pct.iter().enumerate() {
        let mut cells = vec![format!("C{b}")];
        cells.extend(row.iter().map(|v| pct(*v)));
        t.row(cells);
    }
    t.render()
}

/// Renders every Table IV matrix.
pub fn render_table4(runs: &[(AppModel, RunResult)]) -> String {
    let mut out = String::from("Table IV: TLP distributions by core type (% of samples)\n\n");
    for (app, r) in runs {
        out.push_str(&render_table4_matrix(&app.name, r));
        out.push('\n');
    }
    out
}

/// One app's big-vs-little comparison (Figures 4 and 5).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BigVsLittleRow {
    /// App name.
    pub name: String,
    /// Run restricted to the four little cores.
    pub little: RunResult,
    /// Run restricted to the four big cores.
    pub big: RunResult,
}

impl BigVsLittleRow {
    /// Power increase of big over little, percent.
    pub fn power_increase_pct(&self) -> f64 {
        (self.big.avg_power_mw / self.little.avg_power_mw - 1.0) * 100.0
    }

    /// Latency reduction of big over little, percent (latency apps).
    pub fn latency_reduction_pct(&self) -> Option<f64> {
        let (l, b) = (self.little.latency?, self.big.latency?);
        Some((1.0 - b.as_secs_f64() / l.as_secs_f64()) * 100.0)
    }

    /// Average-FPS improvement of big over little, percent (FPS apps).
    pub fn avg_fps_improvement_pct(&self) -> Option<f64> {
        let (l, b) = (self.little.fps?, self.big.fps?);
        Some((b.avg_fps / l.avg_fps - 1.0) * 100.0)
    }

    /// Minimum-FPS improvement of big over little, percent (FPS apps).
    pub fn min_fps_improvement_pct(&self) -> Option<f64> {
        let (l, b) = (self.little.fps?, self.big.fps?);
        if l.min_fps <= 0.0 {
            return None;
        }
        Some((b.min_fps / l.min_fps - 1.0) * 100.0)
    }
}

fn big_vs_little(apps: Vec<AppModel>, seed: u64, opts: &SweepOptions) -> Vec<BigVsLittleRow> {
    let mut scenarios = Vec::with_capacity(apps.len() * 2);
    for app in &apps {
        let little_cfg = SystemConfig::baseline()
            .with_core_config(CoreConfig::new(4, 0))
            .with_seed(seed);
        scenarios.push(Scenario::app_with_affinity(
            format!("little/{}", app.name),
            app.clone(),
            Affinity::Kind(CoreKind::Little),
            little_cfg,
        ));
        // "4 big cores": one little core must stay online (hardware
        // rule) but the app is pinned to the big side; the idle little
        // core contributes only leakage.
        let big_cfg = SystemConfig::baseline()
            .with_core_config(CoreConfig::new(1, 4))
            .with_seed(seed);
        scenarios.push(Scenario::app_with_affinity(
            format!("big/{}", app.name),
            app.clone(),
            Affinity::Kind(CoreKind::Big),
            big_cfg,
        ));
    }
    let results = sweep::run_all(&scenarios, opts);
    apps.iter()
        .zip(results.chunks_exact(2))
        .map(|(app, pair)| BigVsLittleRow {
            name: app.name.to_string(),
            little: pair[0].clone(),
            big: pair[1].clone(),
        })
        .collect()
}

/// Figure 4: power and latency for 4 big cores vs 4 little cores
/// (latency-oriented applications).
pub fn fig4_latency_big_vs_little(seed: u64, opts: &SweepOptions) -> Vec<BigVsLittleRow> {
    big_vs_little(latency_apps(), seed, opts)
}

/// Figure 5: power and FPS for 4 big cores vs 4 little cores
/// (FPS-oriented applications).
pub fn fig5_fps_big_vs_little(seed: u64, opts: &SweepOptions) -> Vec<BigVsLittleRow> {
    big_vs_little(fps_apps(), seed, opts)
}

/// Renders the Figure 4 table.
pub fn render_fig4(rows: &[BigVsLittleRow]) -> String {
    let mut t = TextTable::new(vec!["App".into(), "Power +%".into(), "Latency -%".into()])
        .with_title("Figure 4: 4 big cores vs 4 little cores (latency apps)");
    for r in rows {
        t.row(vec![
            r.name.clone(),
            fnum(r.power_increase_pct(), 1),
            fnum(r.latency_reduction_pct().unwrap_or(f64::NAN), 1),
        ]);
    }
    t.render()
}

/// Renders the Figure 5 table.
pub fn render_fig5(rows: &[BigVsLittleRow]) -> String {
    let mut t = TextTable::new(vec![
        "App".into(),
        "Power +%".into(),
        "Avg FPS +%".into(),
        "Min FPS +%".into(),
    ])
    .with_title("Figure 5: 4 big cores vs 4 little cores (FPS apps)");
    for r in rows {
        t.row(vec![
            r.name.clone(),
            fnum(r.power_increase_pct(), 1),
            fnum(r.avg_fps_improvement_pct().unwrap_or(f64::NAN), 1),
            fnum(r.min_fps_improvement_pct().unwrap_or(f64::NAN), 1),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table3_covers_all_twelve_apps() {
        let apps = mobile_apps();
        for app in &apps {
            assert!(
                PAPER_TABLE3.iter().any(|(n, _, _, _)| *n == app.name),
                "missing paper row for {}",
                app.name
            );
        }
        assert_eq!(PAPER_TABLE3.len(), apps.len());
    }

    #[test]
    fn spearman_basics() {
        assert!((spearman(&[1.0, 2.0, 3.0], &[10.0, 20.0, 30.0]) - 1.0).abs() < 1e-12);
        assert!((spearman(&[1.0, 2.0, 3.0], &[30.0, 20.0, 10.0]) + 1.0).abs() < 1e-12);
        assert_eq!(spearman(&[1.0], &[2.0]), 1.0);
    }

    #[test]
    fn reproduction_rank_correlations_are_high() {
        // The headline calibration requirement: the ordering of apps by TLP
        // and by big-core usage must track the paper.
        let runs = default_runs(42, &SweepOptions::default());
        let mut paper = Vec::new();
        let mut meas = Vec::new();
        let mut paper_big = Vec::new();
        let mut meas_big = Vec::new();
        for (app, r) in &runs {
            let (_, _, p_big, p_tlp) = PAPER_TABLE3
                .iter()
                .find(|(n, _, _, _)| *n == app.name)
                .unwrap();
            paper.push(*p_tlp);
            meas.push(r.tlp.tlp);
            paper_big.push(*p_big);
            meas_big.push(r.tlp.big_pct);
        }
        let rho_tlp = spearman(&paper, &meas);
        let rho_big = spearman(&paper_big, &meas_big);
        assert!(rho_tlp > 0.5, "TLP rank correlation too low: {rho_tlp:.2}");
        assert!(
            rho_big > 0.8,
            "big-usage rank correlation too low: {rho_big:.2}"
        );
    }
}
