//! Ablation experiments beyond the paper's measurements, testing the design
//! hypotheses its conclusion raises.
//!
//! * [`tiny_floor_ablation`] — §VI.B proposes a weaker "tiny" core for the
//!   loads that sit in the Table-V *Min* state. We extend the little
//!   cluster's DVFS floor to 200 MHz and measure how much of the Min
//!   residency converts into lower power.
//! * [`equal_l2_ablation`] — §III.A claims the L2 capacity gap *enlarges*
//!   the big-core speedup beyond microarchitecture. We equalize the caches
//!   and quantify the cache contribution per SPEC kernel.
//! * [`governor_comparison`] — the paper only studies the interactive
//!   governor's tunables; here the classic Linux governors are swept over
//!   the app suite as additional baselines.
//! * [`scheduler_comparison`] — §IV.A describes three asymmetric-scheduling
//!   approaches but measures only the shipped utilization-based HMP; the
//!   simulator runs the efficiency-based and parallelism-aware academic
//!   alternatives on the same workloads.

use crate::result::RunResult;
use crate::scenario::{PlatformPreset, Scenario};
use crate::sweep::{self, SweepOptions};
use crate::SystemConfig;
use bl_governor::classic::{ConservativeParams, OndemandParams};
use bl_governor::GovernorConfig;
use bl_kernel::policy::AsymPolicy;
use bl_metrics::report::{fnum, pct, TextTable};
use bl_platform::config::CoreConfig;
use bl_platform::ids::{CoreKind, CpuId};
use bl_simcore::time::SimDuration;
use bl_workloads::apps::{mobile_apps, AppModel};
use bl_workloads::spec::SpecKernel;
use serde::{Deserialize, Serialize};

// ---------------------------------------------------------------------------
// Tiny-core (extended DVFS floor) ablation
// ---------------------------------------------------------------------------

/// Per-app outcome of the tiny-floor ablation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TinyFloorRow {
    /// App name.
    pub name: String,
    /// Baseline run (500 MHz floor).
    pub baseline: RunResult,
    /// Run with the 200 MHz floor.
    pub tiny: RunResult,
}

impl TinyFloorRow {
    /// Power saving from the lower floor, percent.
    pub fn power_saving_pct(&self) -> f64 {
        (1.0 - self.tiny.avg_power_mw / self.baseline.avg_power_mw) * 100.0
    }

    /// Reduction of the Table-V "Min" share, percentage points.
    pub fn min_share_drop_pp(&self) -> f64 {
        self.baseline.efficiency_pct[0] - self.tiny.efficiency_pct[0]
    }
}

/// Runs every app on the baseline and the tiny-floor platform.
pub fn tiny_floor_ablation(
    apps: Vec<AppModel>,
    seed: u64,
    opts: &SweepOptions,
) -> Vec<TinyFloorRow> {
    let mut scenarios = Vec::with_capacity(apps.len() * 2);
    for app in &apps {
        let cfg = SystemConfig::baseline().with_seed(seed);
        scenarios.push(Scenario::app(
            format!("tiny/{}/baseline", app.name),
            app.clone(),
            cfg.clone(),
        ));
        scenarios.push(
            Scenario::app(format!("tiny/{}/floor200", app.name), app.clone(), cfg)
                .on(PlatformPreset::TinyFloor),
        );
    }
    let results = sweep::run_all(&scenarios, opts);
    apps.iter()
        .zip(results.chunks_exact(2))
        .map(|(app, pair)| TinyFloorRow {
            name: app.name.to_string(),
            baseline: pair[0].clone(),
            tiny: pair[1].clone(),
        })
        .collect()
}

/// Renders the tiny-floor ablation table.
pub fn render_tiny_floor(rows: &[TinyFloorRow]) -> String {
    let mut t = TextTable::new(vec![
        "App".into(),
        "Min% base".into(),
        "Min% tiny".into(),
        "Power saving %".into(),
    ])
    .with_title("Ablation: 200 MHz little-cluster floor (the paper's 'tiny core' hypothesis)");
    for r in rows {
        t.row(vec![
            r.name.clone(),
            pct(r.baseline.efficiency_pct[0]),
            pct(r.tiny.efficiency_pct[0]),
            fnum(r.power_saving_pct(), 2),
        ]);
    }
    t.render()
}

// ---------------------------------------------------------------------------
// Equal-L2 ablation
// ---------------------------------------------------------------------------

/// Per-kernel outcome of the equal-L2 ablation at iso-frequency 1.3 GHz.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EqualL2Row {
    /// SPEC kernel name.
    pub name: String,
    /// Big/little speedup with the real 2 MB big L2.
    pub speedup_real: f64,
    /// Big/little speedup with both clusters at 512 KB.
    pub speedup_equal_l2: f64,
}

impl EqualL2Row {
    /// Multiplicative share of the speedup owed to the L2 capacity gap.
    pub fn cache_contribution(&self) -> f64 {
        self.speedup_real / self.speedup_equal_l2
    }
}

/// Measures the iso-frequency (1.3 GHz) big-core speedup with and without
/// the L2 capacity gap, end-to-end through the simulator.
pub fn equal_l2_ablation(
    ref_duration: SimDuration,
    seed: u64,
    opts: &SweepOptions,
) -> Vec<EqualL2Row> {
    let suite = SpecKernel::suite();
    let scenario = |kernel: &SpecKernel, kind: CoreKind, preset: PlatformPreset, tag: &str| {
        let (cc, cpu, little_khz, big_khz) = match kind {
            CoreKind::Little => (CoreConfig::new(1, 0), CpuId(0), 1_300_000, 800_000),
            CoreKind::Big => (CoreConfig::new(1, 1), CpuId(4), 500_000, 1_300_000),
        };
        let cfg = SystemConfig::pinned_frequencies(little_khz, big_khz)
            .with_core_config(cc)
            .with_seed(seed);
        Scenario::spec(
            format!("equal-l2/{}/{tag}", kernel.name),
            kernel,
            cpu,
            ref_duration,
            cfg,
        )
        .on(preset)
    };
    let mut scenarios = Vec::with_capacity(suite.len() * 3);
    for k in &suite {
        scenarios.push(scenario(
            k,
            CoreKind::Little,
            PlatformPreset::Exynos5422,
            "little",
        ));
        scenarios.push(scenario(
            k,
            CoreKind::Big,
            PlatformPreset::Exynos5422,
            "big-2MB",
        ));
        scenarios.push(scenario(
            k,
            CoreKind::Big,
            PlatformPreset::EqualL2,
            "big-512KB",
        ));
    }
    let results = sweep::run_all(&scenarios, opts);
    let secs = |r: &RunResult| r.latency.expect("kernel finished").as_secs_f64();
    suite
        .iter()
        .zip(results.chunks_exact(3))
        .map(|(k, chunk)| {
            let t_little = secs(&chunk[0]);
            let t_big_real = secs(&chunk[1]);
            let t_big_small = secs(&chunk[2]);
            EqualL2Row {
                name: k.name.to_string(),
                speedup_real: t_little / t_big_real,
                speedup_equal_l2: t_little / t_big_small,
            }
        })
        .collect()
}

/// Renders the equal-L2 ablation table.
pub fn render_equal_l2(rows: &[EqualL2Row]) -> String {
    let mut t = TextTable::new(vec![
        "Benchmark".into(),
        "speedup (2MB L2)".into(),
        "speedup (512KB L2)".into(),
        "cache factor".into(),
    ])
    .with_title("Ablation: big-core speedup at 1.3GHz with and without the L2 capacity gap");
    for r in rows {
        t.row(vec![
            r.name.clone(),
            format!("{:.2}x", r.speedup_real),
            format!("{:.2}x", r.speedup_equal_l2),
            format!("{:.2}x", r.cache_contribution()),
        ]);
    }
    t.render()
}

// ---------------------------------------------------------------------------
// Governor comparison (beyond the paper)
// ---------------------------------------------------------------------------

/// One app under one governor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GovernorRow {
    /// Governor label.
    pub governor: String,
    /// Per-app results (same order as [`mobile_apps()`]).
    pub results: Vec<(String, RunResult)>,
}

/// Sweeps the classic Linux governors over `apps`.
pub fn governor_comparison(
    apps: Vec<AppModel>,
    seed: u64,
    opts: &SweepOptions,
) -> Vec<GovernorRow> {
    let governors = vec![
        (
            "interactive".to_string(),
            GovernorConfig::platform_default(),
        ),
        (
            "ondemand".to_string(),
            GovernorConfig::Ondemand(OndemandParams::default()),
        ),
        (
            "conservative".to_string(),
            GovernorConfig::Conservative(ConservativeParams::default()),
        ),
        ("performance".to_string(), GovernorConfig::Performance),
        ("powersave".to_string(), GovernorConfig::Powersave),
    ];
    let mut scenarios = Vec::with_capacity(governors.len() * apps.len());
    for (label, g) in &governors {
        for app in &apps {
            scenarios.push(Scenario::app(
                format!("governor/{label}/{}", app.name),
                app.clone(),
                SystemConfig::baseline().with_governor(*g).with_seed(seed),
            ));
        }
    }
    let results = sweep::run_all(&scenarios, opts);
    governors
        .into_iter()
        .zip(results.chunks_exact(apps.len().max(1)))
        .map(|((label, _), chunk)| GovernorRow {
            governor: label,
            results: apps
                .iter()
                .zip(chunk)
                .map(|(app, r)| (app.name.to_string(), r.clone()))
                .collect(),
        })
        .collect()
}

/// Renders the governor comparison (average power and energy per governor).
pub fn render_governor_comparison(rows: &[GovernorRow]) -> String {
    let mut t = TextTable::new(vec![
        "Governor".into(),
        "Avg power mW".into(),
        "Avg energy mJ".into(),
    ])
    .with_title("Extension: classic-governor sweep over the app suite");
    for r in rows {
        let n = r.results.len() as f64;
        let p: f64 = r.results.iter().map(|(_, x)| x.avg_power_mw).sum::<f64>() / n;
        let e: f64 = r.results.iter().map(|(_, x)| x.energy_mj).sum::<f64>() / n;
        t.row(vec![r.governor.clone(), fnum(p, 0), fnum(e, 0)]);
    }
    t.render()
}

/// Convenience: the full tiny-floor ablation over all 12 apps.
pub fn tiny_floor_full(seed: u64, opts: &SweepOptions) -> Vec<TinyFloorRow> {
    tiny_floor_ablation(mobile_apps(), seed, opts)
}

// ---------------------------------------------------------------------------
// Cpuidle ablation (deep idle states)
// ---------------------------------------------------------------------------

/// One app with and without the cpuidle subsystem.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CpuidleRow {
    /// App name.
    pub name: String,
    /// Run with shallow idle only (paper-calibrated baseline).
    pub baseline: RunResult,
    /// Run with the WFI/core-off promotion ladder enabled.
    pub cpuidle: RunResult,
}

impl CpuidleRow {
    /// Power saving from deep idle, percent.
    pub fn power_saving_pct(&self) -> f64 {
        (1.0 - self.cpuidle.avg_power_mw / self.baseline.avg_power_mw) * 100.0
    }
}

/// Measures what deep idle states buy on each app — the saving should
/// track the app's idle share (paper Table III).
pub fn cpuidle_ablation(apps: Vec<AppModel>, seed: u64, opts: &SweepOptions) -> Vec<CpuidleRow> {
    let mut scenarios = Vec::with_capacity(apps.len() * 2);
    for app in &apps {
        scenarios.push(Scenario::app(
            format!("cpuidle/{}/baseline", app.name),
            app.clone(),
            SystemConfig::baseline().with_seed(seed),
        ));
        scenarios.push(Scenario::app(
            format!("cpuidle/{}/deep-idle", app.name),
            app.clone(),
            SystemConfig::baseline().with_seed(seed).with_cpuidle(true),
        ));
    }
    let results = sweep::run_all(&scenarios, opts);
    apps.iter()
        .zip(results.chunks_exact(2))
        .map(|(app, pair)| CpuidleRow {
            name: app.name.to_string(),
            baseline: pair[0].clone(),
            cpuidle: pair[1].clone(),
        })
        .collect()
}

/// Renders the cpuidle ablation table.
pub fn render_cpuidle(rows: &[CpuidleRow]) -> String {
    let mut t = TextTable::new(vec![
        "App".into(),
        "Idle %".into(),
        "Power base mW".into(),
        "Power cpuidle mW".into(),
        "Saving %".into(),
    ])
    .with_title("Ablation: deep idle states (WFI / core-off promotion ladder)");
    for r in rows {
        t.row(vec![
            r.name.clone(),
            pct(r.baseline.tlp.idle_pct),
            fnum(r.baseline.avg_power_mw, 0),
            fnum(r.cpuidle.avg_power_mw, 0),
            fnum(r.power_saving_pct(), 2),
        ]);
    }
    t.render()
}

// ---------------------------------------------------------------------------
// Scheduling-policy comparison (paper §IV.A's three approaches)
// ---------------------------------------------------------------------------

/// One app under one scheduling policy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PolicyRow {
    /// Policy label.
    pub policy: String,
    /// Per-app results (same order as the `apps` argument).
    pub results: Vec<(String, RunResult)>,
}

/// Compares the paper's three asymmetric-scheduling approaches — the
/// production utilization-based HMP, efficiency-based (Kumar et al.) and
/// parallelism-aware (Saez et al.) — on the same workloads. The paper
/// describes all three (§IV.A) but can only measure the one its platform
/// ships; the simulator runs them all.
pub fn scheduler_comparison(apps: Vec<AppModel>, seed: u64, opts: &SweepOptions) -> Vec<PolicyRow> {
    let policies = vec![
        ("utilization (HMP)".to_string(), AsymPolicy::default_hmp()),
        (
            "efficiency-based".to_string(),
            AsymPolicy::efficiency_based(),
        ),
        (
            "parallelism-aware".to_string(),
            AsymPolicy::parallelism_aware(),
        ),
    ];
    let mut scenarios = Vec::with_capacity(policies.len() * apps.len());
    for (label, policy) in &policies {
        for app in &apps {
            scenarios.push(Scenario::app(
                format!("policy/{label}/{}", app.name),
                app.clone(),
                SystemConfig::baseline()
                    .with_policy(*policy)
                    .with_seed(seed),
            ));
        }
    }
    let results = sweep::run_all(&scenarios, opts);
    policies
        .into_iter()
        .zip(results.chunks_exact(apps.len().max(1)))
        .map(|((label, _), chunk)| PolicyRow {
            policy: label,
            results: apps
                .iter()
                .zip(chunk)
                .map(|(app, r)| (app.name.to_string(), r.clone()))
                .collect(),
        })
        .collect()
}

/// Renders the scheduler comparison: per policy, average power, big-core
/// usage and a performance summary.
pub fn render_scheduler_comparison(rows: &[PolicyRow]) -> String {
    let mut t = TextTable::new(vec![
        "Policy".into(),
        "Avg power mW".into(),
        "Avg big-active %".into(),
        "Avg latency s".into(),
        "Avg FPS".into(),
    ])
    .with_title("Extension: the paper's three scheduling approaches (§IV.A) compared");
    for r in rows {
        let n = r.results.len() as f64;
        let p: f64 = r.results.iter().map(|(_, x)| x.avg_power_mw).sum::<f64>() / n;
        let b: f64 = r.results.iter().map(|(_, x)| x.tlp.big_pct).sum::<f64>() / n;
        let lats: Vec<f64> = r
            .results
            .iter()
            .filter_map(|(_, x)| x.latency.map(|l| l.as_secs_f64()))
            .collect();
        let fpss: Vec<f64> = r
            .results
            .iter()
            .filter_map(|(_, x)| x.fps.map(|f| f.avg_fps))
            .collect();
        let avg = |v: &[f64]| {
            if v.is_empty() {
                f64::NAN
            } else {
                v.iter().sum::<f64>() / v.len() as f64
            }
        };
        t.row(vec![
            r.policy.clone(),
            fnum(p, 0),
            fnum(b, 1),
            fnum(avg(&lats), 2),
            fnum(avg(&fpss), 1),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bl_workloads::apps::app_by_name;

    #[test]
    fn tiny_floor_saves_power_on_low_demand_apps() {
        let rows = tiny_floor_ablation(
            vec![app_by_name("Video Player").unwrap()],
            5,
            &SweepOptions::default(),
        );
        let r = &rows[0];
        // The 200 MHz floor must reduce the Min share and save power for
        // the archetypal low-demand app.
        assert!(
            r.min_share_drop_pp() > 10.0,
            "Min share should fall: base {:.1} -> tiny {:.1}",
            r.baseline.efficiency_pct[0],
            r.tiny.efficiency_pct[0]
        );
        assert!(
            r.power_saving_pct() > 0.5,
            "saving {:.2}%",
            r.power_saving_pct()
        );
        // And playback must not collapse.
        let (fb, ft) = (r.baseline.fps.unwrap(), r.tiny.fps.unwrap());
        assert!(ft.avg_fps > fb.avg_fps * 0.9);
        assert!(!render_tiny_floor(&rows).is_empty());
    }

    #[test]
    fn equal_l2_shrinks_cache_sensitive_speedups_only() {
        let rows = equal_l2_ablation(SimDuration::from_millis(150), 5, &SweepOptions::default());
        let get = |n: &str| rows.iter().find(|r| r.name == n).unwrap();
        // mcf loses a large factor; hmmer (compute-bound) barely changes.
        assert!(get("mcf").cache_contribution() > 1.5);
        assert!(get("hmmer").cache_contribution() < 1.1);
        for r in &rows {
            assert!(
                r.speedup_real >= r.speedup_equal_l2 - 0.02,
                "{}: bigger cache can only help",
                r.name
            );
        }
        assert!(!render_equal_l2(&rows).is_empty());
    }

    #[test]
    fn scheduler_comparison_shows_the_papers_tradeoff() {
        // The paper (§IV.A): the academic policies can improve performance
        // by using big cores more eagerly — at a power cost the
        // utilization-based scheduler avoids.
        let apps = vec![
            bl_workloads::apps::app_by_name("Encoder").unwrap(),
            bl_workloads::apps::app_by_name("Eternity Warriors 2").unwrap(),
        ];
        let rows = scheduler_comparison(apps, 5, &SweepOptions::default());
        let find = |label: &str| rows.iter().find(|r| r.policy.contains(label)).unwrap();
        let hmp = find("utilization");
        let eff = find("efficiency");
        let avg_power = |r: &PolicyRow| {
            r.results.iter().map(|(_, x)| x.avg_power_mw).sum::<f64>() / r.results.len() as f64
        };
        let avg_big = |r: &PolicyRow| {
            r.results.iter().map(|(_, x)| x.tlp.big_pct).sum::<f64>() / r.results.len() as f64
        };
        assert!(
            avg_big(eff) > avg_big(hmp),
            "efficiency policy must use big cores more"
        );
        assert!(avg_power(eff) > avg_power(hmp), "...at a power cost");
        // And it must not be slower on the latency app.
        let hmp_lat = hmp.results[0].1.latency.unwrap();
        let eff_lat = eff.results[0].1.latency.unwrap();
        assert!(eff_lat <= hmp_lat.mul_f64(1.05), "{eff_lat} vs {hmp_lat}");
        assert!(!render_scheduler_comparison(&rows).is_empty());
    }

    #[test]
    fn governor_comparison_orders_power_sensibly() {
        let rows = governor_comparison(
            vec![app_by_name("FIFA 15").unwrap()],
            5,
            &SweepOptions::default(),
        );
        let power = |g: &str| {
            rows.iter().find(|r| r.governor == g).unwrap().results[0]
                .1
                .avg_power_mw
        };
        assert!(power("performance") > power("interactive"));
        assert!(power("interactive") >= power("powersave"));
        assert!(!render_governor_comparison(&rows).is_empty());
    }
}
