//! Tables I and II: platform and benchmark descriptions.

use bl_metrics::report::TextTable;
use bl_platform::exynos::exynos5422;
use bl_workloads::apps::mobile_apps;

/// Renders Table I (architectural details of big/little cores) from the
/// platform preset.
pub fn table1() -> String {
    let p = exynos5422();
    let mut t = TextTable::new(vec![
        "Cluster".into(),
        "Core".into(),
        "Cores".into(),
        "Issue".into(),
        "Pipeline".into(),
        "Freq range".into(),
        "L2".into(),
    ])
    .with_title("Table I: architectural details of big/little cores");
    for c in p.topology.clusters() {
        t.row(vec![
            c.core.kind.to_string(),
            c.core.name.clone(),
            c.n_cores.to_string(),
            format!("{}-wide", c.core.issue_width),
            format!("{} stages", c.core.pipeline_depth),
            format!(
                "{:.1}-{:.1}GHz",
                c.core.opps.min_khz() as f64 / 1e6,
                c.core.opps.max_khz() as f64 / 1e6
            ),
            format!("{}KB/{}-way", c.l2.size_kb, c.l2.assoc),
        ]);
    }
    t.render()
}

/// Renders Table II (the mobile benchmark applications).
pub fn table2() -> String {
    let mut t = TextTable::new(vec![
        "App Name".into(),
        "Perf. Metric".into(),
        "Structure".into(),
    ])
    .with_title("Table II: mobile benchmark applications");
    for app in mobile_apps() {
        let structure = match &app.kind {
            bl_workloads::apps::AppKind::Scripted(s) => format!(
                "{} actions, {} workers, {} batch threads",
                s.n_actions,
                s.n_workers,
                s.continuous.iter().map(|c| c.count).sum::<usize>()
            ),
            bl_workloads::apps::AppKind::Streaming(s) => format!(
                "{}fps render + {} helper loops + {} periodic",
                s.fps,
                s.helper_loops.len(),
                s.periodic.len()
            ),
        };
        t.row(vec![
            app.name.to_string(),
            app.metric.to_string(),
            structure,
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tables_render() {
        let t1 = super::table1();
        assert!(t1.contains("Cortex-A15"));
        assert!(t1.contains("Cortex-A7"));
        assert!(t1.contains("2048KB"));
        let t2 = super::table2();
        assert!(t2.contains("BBench"));
        assert!(t2.contains("Latency"));
        assert!(t2.contains("FPS"));
    }
}
