//! Resilience experiments beyond the paper's measurements: what the
//! asymmetric platform does when the big cluster is lost or thermally
//! throttled mid-run.
//!
//! * [`outage_comparison`] — every app runs clean and then through a
//!   permanent big-cluster outage 100 ms after launch. The kernel drains
//!   and rehomes all work onto the little cluster; the rows quantify the
//!   paper's implicit claim that interactive apps remain usable (if
//!   slower) on LITTLE-only hardware.
//! * [`thermal_throttle`] — a sustained full-duty load on all four big
//!   cores with the RC thermal model on and off. With the model on the
//!   big cluster trips its 85 °C limit, is capped at 1.2 GHz until it
//!   cools, and the run reports the throttle duty cycle and power saving.

use crate::result::RunResult;
use crate::scenario::{Scenario, Workload};
use crate::sweep::{self, SweepOptions};
use crate::SystemConfig;
use bl_metrics::report::{fnum, TextTable};
use bl_platform::ids::{ClusterId, CpuId};
use bl_simcore::fault::FaultPlan;
use bl_simcore::time::{SimDuration, SimTime};
use bl_workloads::apps::AppModel;
use serde::{Deserialize, Serialize};

/// The four big-cluster CPU indices on the Exynos 5422.
const BIG_CPUS: [usize; 4] = [4, 5, 6, 7];

// ---------------------------------------------------------------------------
// Big-cluster outage comparison
// ---------------------------------------------------------------------------

/// One app, clean versus through a big-cluster outage.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OutageRow {
    /// App name.
    pub name: String,
    /// Undisturbed baseline run.
    pub clean: RunResult,
    /// Run with all big CPUs offlined 100 ms in, for the rest of the run.
    pub faulted: RunResult,
}

impl OutageRow {
    /// Latency slowdown factor from losing the big cluster (NaN when the
    /// app has no latency phase).
    pub fn slowdown(&self) -> f64 {
        match (self.clean.latency, self.faulted.latency) {
            (Some(c), Some(f)) => f.as_secs_f64() / c.as_secs_f64(),
            _ => f64::NAN,
        }
    }

    /// FPS retention factor (NaN for non-rendering apps).
    pub fn fps_retention(&self) -> f64 {
        match (&self.clean.fps, &self.faulted.fps) {
            (Some(c), Some(f)) => f.avg_fps / c.avg_fps,
            _ => f64::NAN,
        }
    }

    /// Power saving from running little-only, percent.
    pub fn power_saving_pct(&self) -> f64 {
        (1.0 - self.faulted.avg_power_mw / self.clean.avg_power_mw) * 100.0
    }
}

/// Runs every app clean and through a permanent big-cluster outage.
pub fn outage_comparison(apps: Vec<AppModel>, seed: u64, opts: &SweepOptions) -> Vec<OutageRow> {
    let mut scenarios = Vec::with_capacity(apps.len() * 2);
    for app in &apps {
        scenarios.push(Scenario::app(
            format!("outage/{}/clean", app.name),
            app.clone(),
            SystemConfig::baseline().with_seed(seed),
        ));
        let plan = FaultPlan::new().with_outage(
            SimTime::from_millis(100),
            SimDuration::from_secs(3_600),
            &BIG_CPUS,
        );
        scenarios.push(Scenario::app(
            format!("outage/{}/big-offline", app.name),
            app.clone(),
            SystemConfig::baseline().with_seed(seed).with_faults(plan),
        ));
    }
    let results = sweep::run_all(&scenarios, opts);
    apps.iter()
        .zip(results.chunks_exact(2))
        .map(|(app, pair)| OutageRow {
            name: app.name.to_string(),
            clean: pair[0].clone(),
            faulted: pair[1].clone(),
        })
        .collect()
}

/// Renders the outage comparison table.
pub fn render_outage(rows: &[OutageRow]) -> String {
    let mut t = TextTable::new(vec![
        "App".into(),
        "Power clean mW".into(),
        "Power outage mW".into(),
        "Saving %".into(),
        "Latency x".into(),
        "FPS kept x".into(),
        "Rehomed".into(),
    ])
    .with_title("Resilience: permanent big-cluster outage 100 ms after launch");
    for r in rows {
        let opt = |v: f64, digits| {
            if v.is_nan() {
                "-".into()
            } else {
                fnum(v, digits)
            }
        };
        t.row(vec![
            r.name.clone(),
            fnum(r.clean.avg_power_mw, 0),
            fnum(r.faulted.avg_power_mw, 0),
            fnum(r.power_saving_pct(), 1),
            opt(r.slowdown(), 2),
            opt(r.fps_retention(), 2),
            r.faulted.resilience.tasks_rehomed.to_string(),
        ]);
    }
    t.render()
}

// ---------------------------------------------------------------------------
// Thermal throttling demonstration
// ---------------------------------------------------------------------------

/// A sustained big-cluster load with the thermal model off and on.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThrottleReport {
    /// Run length of both experiments.
    pub run_len: SimDuration,
    /// Thermal model disabled: the cluster holds 1.9 GHz throughout.
    pub free: RunResult,
    /// Thermal model enabled: trips at 85 °C, capped to 1.2 GHz, releases
    /// at 75 °C.
    pub throttled: RunResult,
}

impl ThrottleReport {
    /// Fraction of the run the big cluster spent capped.
    pub fn throttle_duty(&self) -> f64 {
        self.throttled.resilience.total_throttled().as_secs_f64() / self.run_len.as_secs_f64()
    }

    /// Power saved by honouring the thermal limit, percent.
    pub fn power_saving_pct(&self) -> f64 {
        (1.0 - self.throttled.avg_power_mw / self.free.avg_power_mw) * 100.0
    }
}

/// Pins the clusters at their top frequencies, loads all four big cores at
/// 95 % duty for `run_len`, and compares the thermally honest run against
/// the unconstrained one.
pub fn thermal_throttle(run_len: SimDuration, seed: u64, opts: &SweepOptions) -> ThrottleReport {
    let scenario = |thermal: bool, tag: &str| {
        let cfg = SystemConfig::pinned_frequencies(1_300_000, 1_900_000)
            .with_seed(seed)
            .with_thermal(thermal);
        let mut sc = Scenario::microbench(
            format!("thermal/{tag}"),
            CpuId(BIG_CPUS[0]),
            0.95,
            SimDuration::from_millis(10),
            run_len,
            cfg,
        );
        for cpu in &BIG_CPUS[1..] {
            sc = sc.push(Workload::Microbench {
                cpu: *cpu,
                duty: 0.95,
                period: SimDuration::from_millis(10),
            });
        }
        sc
    };
    let scenarios = vec![scenario(false, "free"), scenario(true, "throttled")];
    let mut results = sweep::run_all(&scenarios, opts).into_iter();
    ThrottleReport {
        run_len,
        free: results.next().expect("two scenarios ran"),
        throttled: results.next().expect("two scenarios ran"),
    }
}

/// Renders the thermal throttling report.
pub fn render_throttle(r: &ThrottleReport) -> String {
    let big = ClusterId(1);
    let mut t = TextTable::new(vec![
        "Thermal model".into(),
        "Avg power mW".into(),
        "Peak big °C".into(),
        "Trips".into(),
        "Throttled s".into(),
    ])
    .with_title(format!(
        "Resilience: 4x big cores at 95% duty for {:.0} s (trip 85 °C, cap 1.2 GHz)",
        r.run_len.as_secs_f64()
    ));
    t.row(vec![
        "off".into(),
        fnum(r.free.avg_power_mw, 0),
        "-".into(),
        "0".into(),
        "0".into(),
    ]);
    let res = &r.throttled.resilience;
    t.row(vec![
        "on".into(),
        fnum(r.throttled.avg_power_mw, 0),
        fnum(res.peak_temp_c.get(big.0).copied().unwrap_or(f64::NAN), 1),
        res.throttle_trips.to_string(),
        fnum(res.total_throttled().as_secs_f64(), 1),
    ]);
    let mut s = t.render();
    s.push_str(&format!(
        "\nthrottle duty {:.0}%, power saving {:.1}%\n",
        r.throttle_duty() * 100.0,
        r.power_saving_pct()
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use bl_workloads::apps::app_by_name;

    #[test]
    fn outage_rows_report_degradation_honestly() {
        let rows = outage_comparison(
            vec![app_by_name("Photo Editor").unwrap()],
            5,
            &SweepOptions::default(),
        );
        let r = &rows[0];
        assert_eq!(r.faulted.resilience.hotplug_offline, 4);
        assert!(
            r.slowdown() >= 1.0,
            "little-only cannot be faster: {}",
            r.slowdown()
        );
        assert!(r.power_saving_pct() > 0.0);
        assert!(!render_outage(&rows).is_empty());
    }

    #[test]
    fn thermal_demo_trips_and_saves_power() {
        let rep = thermal_throttle(SimDuration::from_secs(20), 5, &SweepOptions::default());
        assert!(rep.free.resilience.is_quiet());
        assert!(rep.throttled.resilience.throttle_trips >= 1);
        assert!(rep.throttle_duty() > 0.1, "duty {}", rep.throttle_duty());
        assert!(
            rep.power_saving_pct() > 1.0,
            "saving {}",
            rep.power_saving_pct()
        );
        assert!(!render_throttle(&rep).is_empty());
    }
}
