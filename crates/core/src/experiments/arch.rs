//! Architecture characterization experiments (paper §III, Figures 2, 3, 6).

use crate::scenario::Scenario;
use crate::sweep::{self, SweepOptions};
use crate::SystemConfig;
use bl_metrics::report::{fnum, TextTable};
use bl_platform::config::CoreConfig;
use bl_platform::exynos::exynos5422;
use bl_platform::ids::{CoreKind, CpuId};
use bl_simcore::time::SimDuration;
use bl_workloads::spec::SpecKernel;
use serde::{Deserialize, Serialize};

/// The four single-core configurations of Figures 2 and 3.
pub const SPEC_CONFIGS: [(&str, CoreKind, u32); 4] = [
    ("little@1.3GHz", CoreKind::Little, 1_300_000),
    ("big@0.8GHz", CoreKind::Big, 800_000),
    ("big@1.3GHz", CoreKind::Big, 1_300_000),
    ("big@1.9GHz", CoreKind::Big, 1_900_000),
];

/// One benchmark's measurements across the four configurations.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpecRow {
    /// Benchmark name.
    pub name: String,
    /// Completion time per configuration, seconds (order of
    /// [`SPEC_CONFIGS`]).
    pub time_s: [f64; 4],
    /// Average full-system power per configuration, mW.
    pub power_mw: [f64; 4],
}

impl SpecRow {
    /// Speedups of the three big configurations over little@1.3 (Figure 2
    /// bars): `[big@0.8, big@1.3, big@1.9]`.
    pub fn speedups(&self) -> [f64; 3] {
        [
            self.time_s[0] / self.time_s[1],
            self.time_s[0] / self.time_s[2],
            self.time_s[0] / self.time_s[3],
        ]
    }
}

/// Results of the SPEC single-core sweep shared by Figures 2 and 3.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpecMatrix {
    /// One row per benchmark.
    pub rows: Vec<SpecRow>,
}

/// Runs every SPEC kernel on each of the four fixed configurations.
///
/// `ref_duration` is the per-benchmark runtime on little@1.3 GHz (the paper
/// runs full SPEC inputs; 2 s of simulated reference time preserves the
/// ratios).
pub fn run_spec_matrix(ref_duration: SimDuration, seed: u64, opts: &SweepOptions) -> SpecMatrix {
    let suite = SpecKernel::suite();
    let mut scenarios = Vec::with_capacity(suite.len() * SPEC_CONFIGS.len());
    for kernel in &suite {
        for (name, kind, freq) in SPEC_CONFIGS {
            let (core_config, cpu, little_khz, big_khz) = match kind {
                CoreKind::Little => (CoreConfig::new(1, 0), CpuId(0), freq, 800_000),
                CoreKind::Big => (CoreConfig::new(1, 4).min_big(), CpuId(4), 500_000, freq),
            };
            let cfg = SystemConfig::pinned_frequencies(little_khz, big_khz)
                .with_core_config(core_config)
                .with_seed(seed);
            // The scenario's AllExited cap is a generous 4x: the slowest
            // config is the little core itself.
            scenarios.push(Scenario::spec(
                format!("spec/{}/{name}", kernel.name),
                kernel,
                cpu,
                ref_duration,
                cfg,
            ));
        }
    }
    let results = sweep::run_all(&scenarios, opts);
    let rows = suite
        .iter()
        .zip(results.chunks_exact(SPEC_CONFIGS.len()))
        .map(|(kernel, chunk)| {
            let mut time_s = [0.0; 4];
            let mut power_mw = [0.0; 4];
            for (i, r) in chunk.iter().enumerate() {
                let t = r.latency.unwrap_or_else(|| {
                    panic!("{} did not finish on {}", kernel.name, SPEC_CONFIGS[i].0)
                });
                time_s[i] = t.as_secs_f64();
                // Power averaged over the busy portion only (meter runs to
                // completion time since the run stops there).
                power_mw[i] = r.avg_power_mw;
            }
            SpecRow {
                name: kernel.name.to_string(),
                time_s,
                power_mw,
            }
        })
        .collect();
    SpecMatrix { rows }
}

/// Figure 2: speedup of big-core configurations normalized to a little core
/// at 1.3 GHz.
pub fn fig2_spec_speedup(ref_duration: SimDuration, seed: u64, opts: &SweepOptions) -> SpecMatrix {
    run_spec_matrix(ref_duration, seed, opts)
}

/// Renders the Figure 2 table.
pub fn render_fig2(m: &SpecMatrix) -> String {
    let mut t = TextTable::new(vec![
        "Benchmark".into(),
        "big@0.8".into(),
        "big@1.3".into(),
        "big@1.9".into(),
    ])
    .with_title("Figure 2: speedup normalized to little core @ 1.3GHz");
    for r in &m.rows {
        let s = r.speedups();
        t.row(vec![
            r.name.clone(),
            format!("{:.2}x", s[0]),
            format!("{:.2}x", s[1]),
            format!("{:.2}x", s[2]),
        ]);
    }
    t.render()
}

/// Figure 3: full-system power for the same runs.
pub fn fig3_spec_power(ref_duration: SimDuration, seed: u64, opts: &SweepOptions) -> SpecMatrix {
    run_spec_matrix(ref_duration, seed, opts)
}

/// Renders the Figure 3 table.
pub fn render_fig3(m: &SpecMatrix) -> String {
    let mut t = TextTable::new(vec![
        "Benchmark".into(),
        "little@1.3 (mW)".into(),
        "big@0.8 (mW)".into(),
        "big@1.3 (mW)".into(),
        "big@1.9 (mW)".into(),
    ])
    .with_title("Figure 3: full-system power (mW), screen off");
    for r in &m.rows {
        t.row(vec![
            r.name.clone(),
            fnum(r.power_mw[0], 0),
            fnum(r.power_mw[1], 0),
            fnum(r.power_mw[2], 0),
            fnum(r.power_mw[3], 0),
        ]);
    }
    t.render()
}

/// One (frequency, duty, power) point of Figure 6.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct UtilPowerPoint {
    /// Cluster frequency in kHz.
    pub freq_khz: u32,
    /// Target utilization of the pinned core.
    pub duty: f64,
    /// Average full-system power, mW.
    pub power_mw: f64,
}

/// Figure 6 result: power vs utilization per core type and frequency.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig6Result {
    /// Points for a single little core.
    pub little: Vec<UtilPowerPoint>,
    /// Points for a single big core (plus the mandatory idle little core).
    pub big: Vec<UtilPowerPoint>,
}

/// Duty cycles swept by the microbenchmark.
pub const DUTIES: [f64; 5] = [0.1, 0.25, 0.5, 0.75, 1.0];

/// Figure 6: run the duty-cycle microbenchmark at every OPP of both core
/// types.
pub fn fig6_power_vs_utilization(
    run_for: SimDuration,
    seed: u64,
    opts: &SweepOptions,
) -> Fig6Result {
    let platform = exynos5422();
    let mut scenarios = Vec::new();
    let mut points = Vec::new();
    for kind in CoreKind::ALL {
        let cluster = platform.topology.cluster_of_kind(kind).expect("cluster");
        for opp in cluster.core.opps.iter() {
            for duty in DUTIES {
                let (core_config, cpu, little_khz, big_khz) = match kind {
                    CoreKind::Little => (CoreConfig::new(1, 0), CpuId(0), opp.freq_khz, 800_000),
                    CoreKind::Big => (CoreConfig::new(1, 1), CpuId(4), 500_000, opp.freq_khz),
                };
                let cfg = SystemConfig::pinned_frequencies(little_khz, big_khz)
                    .with_core_config(core_config)
                    .with_seed(seed);
                scenarios.push(Scenario::microbench(
                    format!("fig6/{kind}@{}kHz/{:.0}%", opp.freq_khz, duty * 100.0),
                    cpu,
                    duty,
                    SimDuration::from_millis(10),
                    run_for,
                    cfg,
                ));
                points.push((kind, opp.freq_khz, duty));
            }
        }
    }
    let results = sweep::run_all(&scenarios, opts);
    let mut out = Fig6Result {
        little: Vec::new(),
        big: Vec::new(),
    };
    for ((kind, freq_khz, duty), r) in points.into_iter().zip(&results) {
        let point = UtilPowerPoint {
            freq_khz,
            duty,
            power_mw: r.avg_power_mw,
        };
        match kind {
            CoreKind::Little => out.little.push(point),
            CoreKind::Big => out.big.push(point),
        }
    }
    out
}

/// Renders the Figure 6 tables (one per core type).
pub fn render_fig6(r: &Fig6Result) -> String {
    let mut out = String::new();
    for (label, points) in [("little", &r.little), ("big", &r.big)] {
        let mut freqs: Vec<u32> = points.iter().map(|p| p.freq_khz).collect();
        freqs.sort();
        freqs.dedup();
        let mut headers = vec![format!("{label} freq")];
        headers.extend(DUTIES.iter().map(|d| format!("{:.0}% util", d * 100.0)));
        let mut t = TextTable::new(headers).with_title(format!(
            "Figure 6 ({label} core): full-system power (mW) by utilization"
        ));
        for f in freqs {
            let mut row = vec![format!("{:.1}GHz", f as f64 / 1e6)];
            for d in DUTIES {
                let p = points
                    .iter()
                    .find(|p| p.freq_khz == f && (p.duty - d).abs() < 1e-9)
                    .expect("point exists");
                row.push(fnum(p.power_mw, 0));
            }
            t.row(row);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

trait MinBig {
    fn min_big(self) -> Self;
}
impl MinBig for CoreConfig {
    // The big SPEC runs only need one big core; trim hotplug to B1 to keep
    // idle-core leakage out of the single-core comparison.
    fn min_big(self) -> Self {
        CoreConfig::new(self.little, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_matrix_short_run_has_sane_shape() {
        let m = run_spec_matrix(SimDuration::from_millis(200), 1, &SweepOptions::default());
        assert_eq!(m.rows.len(), 12);
        for r in &m.rows {
            let s = r.speedups();
            // big@1.3 must beat little@1.3 for every benchmark (paper).
            assert!(s[1] > 1.0, "{}: {s:?}", r.name);
            // Higher big frequency is never slower.
            assert!(s[2] >= s[1] && s[1] >= s[0], "{}: {s:?}", r.name);
            // Power ordering: big@1.9 > big@1.3 > little@1.3.
            assert!(r.power_mw[3] > r.power_mw[2]);
            assert!(r.power_mw[2] > r.power_mw[0]);
        }
        let max13: f64 = m.rows.iter().map(|r| r.speedups()[1]).fold(0.0, f64::max);
        assert!(
            max13 > 3.5,
            "cache-sensitive speedup should approach 4.5x, got {max13}"
        );
        // Paper §III.A: a few applications run *slower* on a big core at its
        // minimum 0.8 GHz than on a little core at 1.3 GHz.
        let slower_at_min = m.rows.iter().filter(|r| r.speedups()[0] < 1.0).count();
        assert!(
            (2..=4).contains(&slower_at_min),
            "expected ~3 kernels below 1x at big@0.8, got {slower_at_min}"
        );
        assert!(!render_fig2(&m).is_empty());
        assert!(!render_fig3(&m).is_empty());
    }

    #[test]
    fn fig6_power_monotone_in_duty_and_freq() {
        let r =
            fig6_power_vs_utilization(SimDuration::from_millis(300), 1, &SweepOptions::default());
        assert_eq!(r.little.len(), 9 * 5);
        assert_eq!(r.big.len(), 12 * 5);
        // At fixed frequency, power rises with duty.
        for pts in [&r.little, &r.big] {
            for f in pts
                .iter()
                .map(|p| p.freq_khz)
                .collect::<std::collections::BTreeSet<_>>()
            {
                let series: Vec<f64> = DUTIES
                    .iter()
                    .map(|d| {
                        pts.iter()
                            .find(|p| p.freq_khz == f && (p.duty - d).abs() < 1e-9)
                            .unwrap()
                            .power_mw
                    })
                    .collect();
                for w in series.windows(2) {
                    assert!(
                        w[1] >= w[0] - 1.0,
                        "power not monotone in duty at {f}: {series:?}"
                    );
                }
            }
        }
        assert!(!render_fig6(&r).is_empty());
    }
}
