//! One module per paper artifact: every table and figure of the evaluation.
//!
//! | Paper artifact | Function |
//! |---|---|
//! | Table I (platform) | [`tables::table1`] |
//! | Table II (benchmarks) | [`tables::table2`] |
//! | Figure 2 (SPEC speedup) | [`arch::fig2_spec_speedup`] |
//! | Figure 3 (SPEC power) | [`arch::fig3_spec_power`] |
//! | Figure 4 (latency apps big-vs-little) | [`appchar::fig4_latency_big_vs_little`] |
//! | Figure 5 (FPS apps big-vs-little) | [`appchar::fig5_fps_big_vs_little`] |
//! | Figure 6 (power vs utilization) | [`arch::fig6_power_vs_utilization`] |
//! | Table III (TLP) | [`appchar::default_runs`] + [`appchar::render_table3`] |
//! | Table IV (TLP by core type) | [`appchar::default_runs`] + [`appchar::render_table4`] |
//! | Figure 7 (perf per core config) | [`coreconfig::fig7_performance`] |
//! | Figure 8 (power per core config) | [`coreconfig::fig8_power_saving`] |
//! | Figure 9 (little freq residency) | [`appchar::default_runs`] + [`dvfs::render_residency`] |
//! | Figure 10 (big freq residency) | [`appchar::default_runs`] + [`dvfs::render_residency`] |
//! | Table V (efficiency decomposition) | [`appchar::default_runs`] + [`dvfs::render_table5`] |
//! | Figures 11–13 (parameter sweep) | [`dvfs::fig11_12_13_parameter_sweep`] |
//!
//! Every experiment takes a `seed` and a `scale` knob where meaningful so
//! tests can run shortened versions; the `repro` binary uses paper-scale
//! defaults. Sim-running experiments also take a
//! [`SweepOptions`](crate::sweep::SweepOptions): they describe their runs
//! as [`Scenario`](crate::Scenario) batches and execute them through the
//! [`sweep`](crate::sweep) engine, so `--jobs` parallelism and the result
//! cache apply uniformly.

pub mod ablation;
pub mod appchar;
pub mod arch;
pub mod coreconfig;
pub mod dvfs;
pub mod resilience;
pub mod tables;

use crate::result::RunResult;
use crate::sim::Simulation;
use crate::SystemConfig;
use bl_workloads::apps::AppModel;

/// Runs one app under `cfg` to its natural end (shared helper).
///
/// Takes the app by reference (callers may hold models that are not in the
/// registry), so it drives the simulation directly instead of going
/// through a serialized [`Scenario`](crate::Scenario).
pub fn run_app_with(app: &AppModel, cfg: SystemConfig) -> RunResult {
    let mut sim = Simulation::builder()
        .config(cfg)
        .build()
        .unwrap_or_else(|e| panic!("{e}"));
    sim.spawn_app(app);
    sim.try_run_app(app).unwrap_or_else(|e| panic!("{e}"))
}
