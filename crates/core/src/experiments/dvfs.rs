//! Scheduler/governor experiments (paper §VI, Figures 9–13 and Table V).

use crate::result::RunResult;
use crate::scenario::Scenario;
use crate::sweep::{self, SweepOptions};
use crate::SystemConfig;
use bl_governor::{GovernorConfig, InteractiveParams};
use bl_kernel::hmp::HmpParams;
use bl_metrics::report::{fnum, pct, TextTable};
use bl_platform::exynos::exynos5422;
use bl_platform::ids::CoreKind;
use bl_workloads::apps::{mobile_apps, AppModel};
use bl_workloads::PerfMetric;
use serde::{Deserialize, Serialize};

// ---------------------------------------------------------------------------
// Figures 9 & 10: frequency residency (from the default runs)
// ---------------------------------------------------------------------------

/// Renders a frequency-residency table for one core kind from default runs.
pub fn render_residency(runs: &[(AppModel, RunResult)], kind: CoreKind) -> String {
    let platform = exynos5422();
    let cluster = platform.topology.cluster_of_kind(kind).expect("cluster");
    let freqs: Vec<String> = cluster
        .core
        .opps
        .iter()
        .map(|o| format!("{:.1}G", o.freq_ghz()))
        .collect();
    let mut headers = vec!["App".to_string()];
    headers.extend(freqs);
    let (title, figure) = match kind {
        CoreKind::Little => (
            "Figure 9: little core frequency distribution (% of active time)",
            9,
        ),
        CoreKind::Big => (
            "Figure 10: big core frequency distribution (% of active time)",
            10,
        ),
    };
    let _ = figure;
    let mut t = TextTable::new(headers).with_title(title);
    for (app, r) in runs {
        let shares = match kind {
            CoreKind::Little => &r.little_residency,
            CoreKind::Big => &r.big_residency,
        };
        let mut cells = vec![app.name.to_string()];
        cells.extend(shares.iter().map(|s| pct(s * 100.0)));
        t.row(cells);
    }
    t.render()
}

/// Renders Table V from default runs.
pub fn render_table5(runs: &[(AppModel, RunResult)]) -> String {
    let mut t = TextTable::new(vec![
        "App Name".into(),
        "Min".into(),
        "<50%".into(),
        "<70%".into(),
        "70-95%".into(),
        ">95%".into(),
        "Full".into(),
    ])
    .with_title("Table V: efficiency decomposition (% of active core-samples)");
    for (app, r) in runs {
        let mut cells = vec![app.name.to_string()];
        cells.extend(r.efficiency_pct.iter().map(|v| pct(*v)));
        t.row(cells);
    }
    t.render()
}

// ---------------------------------------------------------------------------
// Figures 11–13: the eight governor/HMP parameter variants
// ---------------------------------------------------------------------------

/// The paper's eight §VI.C configurations, in figure order: four governor
/// variants then four HMP variants.
pub fn paper_param_variants() -> Vec<(&'static str, SystemConfig)> {
    let gov = |p: InteractiveParams| {
        SystemConfig::baseline().with_governor(GovernorConfig::Interactive(p))
    };
    let hmp = |h: HmpParams| SystemConfig::baseline().with_hmp(h);
    vec![
        ("sampling 60ms", gov(InteractiveParams::sampling_60ms())),
        ("sampling 100ms", gov(InteractiveParams::sampling_100ms())),
        (
            "target high (80)",
            gov(InteractiveParams::target_load_high()),
        ),
        ("target low (60)", gov(InteractiveParams::target_load_low())),
        ("HMP conservative (850,400)", hmp(HmpParams::conservative())),
        ("HMP aggressive (550,100)", hmp(HmpParams::aggressive())),
        ("2x history weight", hmp(HmpParams::double_history())),
        ("1/2 history weight", hmp(HmpParams::half_history())),
    ]
}

/// Results of the parameter sweep: per variant, per app.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ParamSweep {
    /// Baseline results per app.
    pub baseline: Vec<(String, PerfMetric, RunResult)>,
    /// Variant name → per-app results (same app order as baseline).
    pub variants: Vec<(String, Vec<RunResult>)>,
}

/// Aggregate (avg, min, max) helper.
fn agg(values: &[f64]) -> (f64, f64, f64) {
    let avg = values.iter().sum::<f64>() / values.len().max(1) as f64;
    let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    (avg, min, max)
}

impl ParamSweep {
    /// Power savings of variant `v` across apps, percent (positive =
    /// saving).
    pub fn power_savings(&self, v: usize) -> Vec<f64> {
        self.variants[v]
            .1
            .iter()
            .zip(&self.baseline)
            .map(|(r, (_, _, b))| (1.0 - r.avg_power_mw / b.avg_power_mw) * 100.0)
            .collect()
    }

    /// Latency changes of variant `v` over the latency apps, percent
    /// (positive = slower).
    pub fn latency_changes(&self, v: usize) -> Vec<(String, f64)> {
        self.variants[v]
            .1
            .iter()
            .zip(&self.baseline)
            .filter(|(_, (_, m, _))| *m == PerfMetric::Latency)
            .filter_map(|(r, (name, _, b))| {
                let (rb, bb) = (r.latency?, b.latency?);
                Some((
                    name.clone(),
                    (rb.as_secs_f64() / bb.as_secs_f64() - 1.0) * 100.0,
                ))
            })
            .collect()
    }

    /// Average-FPS changes of variant `v` over the FPS apps, percent
    /// (positive = faster).
    pub fn fps_changes(&self, v: usize) -> Vec<(String, f64)> {
        self.variants[v]
            .1
            .iter()
            .zip(&self.baseline)
            .filter(|(_, (_, m, _))| *m == PerfMetric::Fps)
            .filter_map(|(r, (name, _, b))| {
                let (rf, bf) = (r.fps?, b.fps?);
                Some((name.clone(), (rf.avg_fps / bf.avg_fps - 1.0) * 100.0))
            })
            .collect()
    }
}

/// Runs the full §VI.C parameter sweep over `apps` (pass
/// [`mobile_apps()`] for paper scale).
pub fn run_param_sweep(apps: Vec<AppModel>, seed: u64, opts: &SweepOptions) -> ParamSweep {
    let param_variants = paper_param_variants();
    let mut scenarios = Vec::with_capacity(apps.len() * (1 + param_variants.len()));
    for app in &apps {
        scenarios.push(Scenario::app(
            format!("param/baseline/{}", app.name),
            app.clone(),
            SystemConfig::baseline().with_seed(seed),
        ));
    }
    for (name, cfg) in &param_variants {
        for app in &apps {
            scenarios.push(Scenario::app(
                format!("param/{name}/{}", app.name),
                app.clone(),
                cfg.clone().with_seed(seed),
            ));
        }
    }
    let results = sweep::SweepRequest::new(scenarios)
        .options(opts.clone())
        .run_expecting_all();
    let baseline: Vec<(String, PerfMetric, RunResult)> = apps
        .iter()
        .zip(&results)
        .map(|(app, r)| (app.name.to_string(), app.metric, r.clone()))
        .collect();
    let variants = param_variants
        .iter()
        .zip(results[apps.len()..].chunks_exact(apps.len()))
        .map(|((name, _), chunk)| (name.to_string(), chunk.to_vec()))
        .collect();
    ParamSweep { baseline, variants }
}

/// Figures 11–13 all share the sweep.
pub fn fig11_12_13_parameter_sweep(seed: u64, opts: &SweepOptions) -> ParamSweep {
    run_param_sweep(mobile_apps(), seed, opts)
}

/// Renders Figure 11 (power saving avg + min–max per variant).
pub fn render_fig11(s: &ParamSweep) -> String {
    let mut t = TextTable::new(vec![
        "Configuration".into(),
        "Avg saving %".into(),
        "Min %".into(),
        "Max %".into(),
    ])
    .with_title("Figure 11: power saving vs baseline, 8 governor/HMP variants (all apps)");
    for (v, (name, _)) in s.variants.iter().enumerate() {
        let (avg, min, max) = agg(&s.power_savings(v));
        t.row(vec![name.clone(), fnum(avg, 2), fnum(min, 2), fnum(max, 2)]);
    }
    t.render()
}

/// Renders Figure 12 (latency change avg + min–max per variant).
pub fn render_fig12(s: &ParamSweep) -> String {
    let mut t = TextTable::new(vec![
        "Configuration".into(),
        "Avg latency +%".into(),
        "Min %".into(),
        "Max %".into(),
    ])
    .with_title("Figure 12: latency change vs baseline (latency apps; positive = slower)");
    for (v, (name, _)) in s.variants.iter().enumerate() {
        let vals: Vec<f64> = s.latency_changes(v).into_iter().map(|(_, x)| x).collect();
        let (avg, min, max) = agg(&vals);
        t.row(vec![name.clone(), fnum(avg, 2), fnum(min, 2), fnum(max, 2)]);
    }
    t.render()
}

/// Renders Figure 13 (average-FPS change avg + min–max per variant).
pub fn render_fig13(s: &ParamSweep) -> String {
    let mut t = TextTable::new(vec![
        "Configuration".into(),
        "Avg FPS +%".into(),
        "Min %".into(),
        "Max %".into(),
    ])
    .with_title("Figure 13: average FPS change vs baseline (FPS apps)");
    for (v, (name, _)) in s.variants.iter().enumerate() {
        let vals: Vec<f64> = s.fps_changes(v).into_iter().map(|(_, x)| x).collect();
        let (avg, min, max) = agg(&vals);
        t.row(vec![name.clone(), fnum(avg, 2), fnum(min, 2), fnum(max, 2)]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_variants_in_paper_order() {
        let v = paper_param_variants();
        assert_eq!(v.len(), 8);
        assert!(v[0].0.contains("60ms"));
        assert!(v[4].0.contains("conservative"));
        assert!(v[7].0.contains("1/2 history"));
    }

    #[test]
    fn aggregate_helper() {
        let (avg, min, max) = agg(&[1.0, 2.0, 3.0]);
        assert_eq!((avg, min, max), (2.0, 1.0, 3.0));
    }
}
