//! Serializable descriptions of one simulation run.
//!
//! A [`Scenario`] captures everything a run depends on — platform preset,
//! [`SystemConfig`] (seed and fault plan included), workloads and stop
//! condition — as plain data. That makes a run *schedulable*: the sweep
//! engine (see [`crate::sweep`]) can execute batches of scenarios on a
//! worker pool, and the serialized form is the input to the on-disk result
//! cache's key, so identical scenarios are never simulated twice.
//!
//! Executing a scenario builds a fresh [`Simulation`] through
//! [`Simulation::builder`], spawns the workloads in declaration order and
//! runs to the stop condition — exactly the code path a hand-rolled
//! experiment loop would take, which is what keeps sweep results
//! bit-identical to the serial path.

use crate::config::SystemConfig;
use crate::result::RunResult;
use crate::sim::{SimSnapshot, Simulation};
use bl_governor::GovernorConfig;
use bl_kernel::task::Affinity;
use bl_platform::exynos::{exynos5422, exynos5422_equal_l2, exynos5422_tiny_floor};
use bl_platform::ids::CpuId;
use bl_platform::topology::Platform;
use bl_simcore::budget::RunBudget;
use bl_simcore::error::SimError;
use bl_simcore::fault::FaultPlan;
use bl_simcore::time::{SimDuration, SimTime};
use bl_workloads::apps::AppModel;
use bl_workloads::spec::SpecKernel;
use serde::{Deserialize, Serialize};

/// The platform a scenario runs on, named rather than embedded so the
/// serialized form stays small and stable across platform-table tweaks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlatformPreset {
    /// The Exynos-5422-class model every headline experiment uses.
    #[default]
    Exynos5422,
    /// Ablation: the big cluster's L2 shrunk to the little cluster's size.
    EqualL2,
    /// Ablation: the little cores' microarchitecture scaled further down.
    TinyFloor,
}

impl PlatformPreset {
    /// Instantiates the platform description.
    pub fn build(&self) -> Platform {
        match self {
            PlatformPreset::Exynos5422 => exynos5422(),
            PlatformPreset::EqualL2 => exynos5422_equal_l2(),
            PlatformPreset::TinyFloor => exynos5422_tiny_floor(),
        }
    }
}

/// One workload inside a scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Workload {
    /// A mobile app model with a placement constraint.
    App {
        /// The app to run.
        app: AppModel,
        /// Where its threads may run.
        affinity: Affinity,
    },
    /// A SPEC kernel (by suite name) pinned to one CPU, sized to run
    /// `ref_duration` on a little core at 1.3 GHz.
    Spec {
        /// Name of the kernel within [`SpecKernel::suite`].
        kernel: String,
        /// The CPU it is pinned to.
        cpu: usize,
        /// Reference duration the work is sized against.
        ref_duration: SimDuration,
    },
    /// The utilization microbenchmark pinned to one CPU.
    Microbench {
        /// The CPU it is pinned to.
        cpu: usize,
        /// Fraction of each period spent computing.
        duty: f64,
        /// Period of the busy/idle cycle.
        period: SimDuration,
    },
}

/// Parameters a scenario binds *after* its warm-up prefix, at
/// `t = warmup`: the knobs sweep grids typically vary while everything
/// before the split point stays byte-identical. Scenarios differing only
/// in late bindings (and label / stop condition) share a warmed-up
/// [`SimSnapshot`] in prefix-sharing sweeps instead of each replaying the
/// prefix.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LateBindings {
    /// Replacement governors (one per cluster), swapped in at the warm-up
    /// point; `None` keeps the prefix governors.
    #[serde(default)]
    pub governors: Option<Vec<GovernorConfig>>,
    /// Additional faults scheduled at the warm-up point; onsets before it
    /// fire immediately.
    #[serde(default)]
    pub faults: FaultPlan,
}

impl LateBindings {
    /// True when the bindings change nothing.
    pub fn is_empty(&self) -> bool {
        self.governors.is_none() && self.faults.is_empty()
    }
}

/// When a scenario's run ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StopWhen {
    /// Run for exactly this long.
    Deadline(SimDuration),
    /// Run the first `App` workload to its natural end via
    /// [`Simulation::try_run_app`] (latency apps until the script
    /// completes, FPS apps for their full `run_for`).
    FirstAppDone,
    /// Run until every task exited, capped at `cap`.
    AllExited {
        /// Upper bound on the run length.
        cap: SimDuration,
    },
}

/// A serializable description of one simulation run: platform, system
/// configuration (seed and fault plan included), workloads and stop
/// condition.
///
/// ```
/// use biglittle::{Scenario, SystemConfig};
/// use bl_workloads::apps::app_by_name;
///
/// let app = app_by_name("Browser").unwrap();
/// let sc = Scenario::app("browser-baseline", app, SystemConfig::baseline());
/// let result = sc.run().expect("valid scenario");
/// assert!(result.latency.is_some());
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scenario {
    /// Human-readable label, used in progress output and error reports.
    pub label: String,
    /// The platform preset to simulate.
    pub platform: PlatformPreset,
    /// The system configuration (includes seed and fault plan).
    pub config: SystemConfig,
    /// Workloads, spawned in declaration order.
    pub workloads: Vec<Workload>,
    /// The stop condition.
    pub stop: StopWhen,
    /// Optional warm-up split point: the run executes to this time first,
    /// then applies `late` and continues to `stop`. Scenarios with equal
    /// prefixes (everything except label, `late` and `stop`) can share a
    /// snapshot taken here.
    #[serde(default)]
    pub warmup: Option<SimDuration>,
    /// Intermediate checkpoint instants *before* `warmup` (strictly
    /// ascending, each below `warmup`; requires `warmup`). The run stops
    /// at each instant on its way to the warm-up point — on the cold path
    /// and on the snapshot-trunk path alike, so both traverse the *same*
    /// stop schedule and stay bit-identical (a mid-run stop is an extra
    /// PELT/accounting update point, so it is part of the run's numeric
    /// identity, not a free implementation detail).
    ///
    /// This is what makes *nested* prefix sharing sound: a grid over
    /// warm-up lengths `w_0 < w_1 < … < w_n` built as a ladder (member
    /// `k` has `warmup = w_k, warmup_via = [w_0 … w_{k-1}]`) lets the
    /// sweep planner simulate one trunk that snapshots at every `w_k`
    /// and fork each member from its own level — snapshots forked from
    /// the states of earlier snapshots, each prefix segment simulated
    /// once.
    #[serde(default)]
    pub warmup_via: Vec<SimDuration>,
    /// Parameters bound at the warm-up point (requires `warmup`).
    #[serde(default)]
    pub late: Option<LateBindings>,
}

impl Scenario {
    /// A scenario running `app` with free placement to its natural end.
    pub fn app(label: impl Into<String>, app: AppModel, config: SystemConfig) -> Self {
        Scenario::app_with_affinity(label, app, Affinity::Any, config)
    }

    /// A scenario running `app` with all threads forced to `affinity`.
    pub fn app_with_affinity(
        label: impl Into<String>,
        app: AppModel,
        affinity: Affinity,
        config: SystemConfig,
    ) -> Self {
        Scenario {
            label: label.into(),
            platform: PlatformPreset::default(),
            config,
            workloads: vec![Workload::App { app, affinity }],
            stop: StopWhen::FirstAppDone,
            warmup: None,
            warmup_via: Vec::new(),
            late: None,
        }
    }

    /// A scenario running one SPEC kernel pinned to `cpu`, stopping when
    /// every task exited (capped at 4× the reference duration, matching the
    /// architecture experiments).
    pub fn spec(
        label: impl Into<String>,
        kernel: &SpecKernel,
        cpu: CpuId,
        ref_duration: SimDuration,
        config: SystemConfig,
    ) -> Self {
        Scenario {
            label: label.into(),
            platform: PlatformPreset::default(),
            config,
            workloads: vec![Workload::Spec {
                kernel: kernel.name.to_string(),
                cpu: cpu.0,
                ref_duration,
            }],
            stop: StopWhen::AllExited {
                cap: ref_duration * 4,
            },
            warmup: None,
            warmup_via: Vec::new(),
            late: None,
        }
    }

    /// A scenario running the utilization microbenchmark on `cpu` for
    /// exactly `run_for`.
    pub fn microbench(
        label: impl Into<String>,
        cpu: CpuId,
        duty: f64,
        period: SimDuration,
        run_for: SimDuration,
        config: SystemConfig,
    ) -> Self {
        Scenario {
            label: label.into(),
            platform: PlatformPreset::default(),
            config,
            workloads: vec![Workload::Microbench {
                cpu: cpu.0,
                duty,
                period,
            }],
            stop: StopWhen::Deadline(run_for),
            warmup: None,
            warmup_via: Vec::new(),
            late: None,
        }
    }

    /// Switches the scenario onto a different platform preset.
    pub fn on(mut self, platform: PlatformPreset) -> Self {
        self.platform = platform;
        self
    }

    /// Replaces the stop condition.
    pub fn with_stop(mut self, stop: StopWhen) -> Self {
        self.stop = stop;
        self
    }

    /// Appends another workload (spawned after the existing ones).
    pub fn push(mut self, workload: Workload) -> Self {
        self.workloads.push(workload);
        self
    }

    /// Sets the warm-up split point (see [`Scenario::warmup`]).
    pub fn with_warmup(mut self, warmup: SimDuration) -> Self {
        self.warmup = Some(warmup);
        self
    }

    /// Sets the intermediate checkpoint instants before the warm-up point
    /// (see [`Scenario::warmup_via`]). Validated when the scenario runs.
    pub fn with_warmup_via(mut self, via: Vec<SimDuration>) -> Self {
        self.warmup_via = via;
        self
    }

    /// Sets the parameters bound at the warm-up point.
    pub fn with_late(mut self, late: LateBindings) -> Self {
        self.late = Some(late);
        self
    }

    /// Executes the scenario: builds a fresh [`Simulation`], spawns the
    /// workloads in order and runs to the stop condition.
    ///
    /// # Errors
    ///
    /// Construction errors ([`SimError::InvalidConfig`],
    /// [`SimError::InvalidFaultPlan`]), runtime errors
    /// ([`SimError::WatchdogStall`], [`SimError::TaskLost`]), and
    /// [`SimError::InvalidConfig`] for a `Spec` workload naming an unknown
    /// kernel or a `FirstAppDone` stop without any `App` workload.
    pub fn run(&self) -> Result<RunResult, SimError> {
        self.run_with_budget(&RunBudget::unlimited())
    }

    /// [`Scenario::run`] under an execution budget: the wall-clock
    /// deadline starts when the simulation is built, and the event loop
    /// books every processed event against the cap / cancellation token.
    /// The simulated results are bit-identical to an unbudgeted run that
    /// stays inside the limits.
    ///
    /// # Errors
    ///
    /// Everything [`Scenario::run`] reports, plus
    /// [`SimError::DeadlineExceeded`] / [`SimError::EventBudgetExhausted`]
    /// when a limit is crossed.
    pub fn run_with_budget(&self, budget: &RunBudget) -> Result<RunResult, SimError> {
        self.validate_via()?;
        let mut sim = self.instantiate(budget)?;
        if let Some(w) = self.warmup {
            // Stop at every checkpoint on the way — the via schedule is
            // part of the run's numeric identity (see `warmup_via`), so
            // the cold path must traverse exactly the stops the
            // snapshot-trunk path does.
            for &v in &self.warmup_via {
                sim.try_run_until(SimTime::ZERO + v)?;
            }
            sim.try_run_until(SimTime::ZERO + w)?;
            self.apply_late(&mut sim)?;
        }
        self.run_to_stop(&mut sim)
    }

    /// Builds the prefix of this scenario — platform, config, workloads,
    /// run to the warm-up point — and captures it as a [`SimSnapshot`].
    /// Every scenario with an equal [`Scenario::prefix_scenario`] can then
    /// continue from it via [`Scenario::run_forked`].
    ///
    /// # Errors
    ///
    /// Everything [`Scenario::run_with_budget`] reports, plus
    /// [`SimError::InvalidConfig`] when the scenario has no warm-up point
    /// and [`SimError::SnapshotUnsupported`] when the warmed-up state
    /// cannot be captured (e.g. a closure-driven task).
    pub fn snapshot_prefix(&self, budget: &RunBudget) -> Result<SimSnapshot, SimError> {
        let w = self.warmup.ok_or_else(|| {
            SimError::config(format!(
                "scenario {:?} has no warmup point to snapshot",
                self.label
            ))
        })?;
        self.validate_via()?;
        let mut sim = self.instantiate(budget)?;
        for &v in &self.warmup_via {
            sim.try_run_until(SimTime::ZERO + v)?;
        }
        sim.try_run_until(SimTime::ZERO + w)?;
        sim.snapshot()
    }

    /// Runs *one* simulation through every chain point of this scenario
    /// (each `warmup_via` instant, then `warmup`), capturing a
    /// [`SimSnapshot`] at each stop — the trunk of a nested prefix tree.
    /// Snapshot `k` is in exactly the state a cold run of a ladder member
    /// with `warmup = chain[k], warmup_via = chain[..k]` would be in at
    /// its warm-up point, so each member forks from its own level and
    /// every shared prefix segment is simulated once.
    ///
    /// Returns the snapshots in chain order (`warmup_via.len() + 1`
    /// entries; the last is the full-warm-up snapshot
    /// [`Scenario::snapshot_prefix`] would produce).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Scenario::snapshot_prefix`].
    pub fn snapshot_prefix_chain(&self, budget: &RunBudget) -> Result<Vec<SimSnapshot>, SimError> {
        Ok(self
            .snapshot_prefix_chain_timed(budget)?
            .into_iter()
            .map(|(s, _)| s)
            .collect())
    }

    /// [`Scenario::snapshot_prefix_chain`], additionally reporting the
    /// cumulative wall-clock milliseconds spent simulating up to each
    /// snapshot — the replay cost a store hit at that rung saves, which
    /// the persistent snapshot store records beside each published entry.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Scenario::snapshot_prefix`].
    pub fn snapshot_prefix_chain_timed(
        &self,
        budget: &RunBudget,
    ) -> Result<Vec<(SimSnapshot, f64)>, SimError> {
        let w = self.warmup.ok_or_else(|| {
            SimError::config(format!(
                "scenario {:?} has no warmup point to snapshot",
                self.label
            ))
        })?;
        self.validate_via()?;
        let started = std::time::Instant::now();
        let mut sim = self.instantiate(budget)?;
        let mut snaps = Vec::with_capacity(self.warmup_via.len() + 1);
        for &v in &self.warmup_via {
            sim.try_run_until(SimTime::ZERO + v)?;
            let warm_ms = started.elapsed().as_secs_f64() * 1e3;
            snaps.push((sim.snapshot()?, warm_ms));
        }
        sim.try_run_until(SimTime::ZERO + w)?;
        let warm_ms = started.elapsed().as_secs_f64() * 1e3;
        snaps.push((sim.snapshot()?, warm_ms));
        Ok(snaps)
    }

    /// Continues this scenario from a warmed-up prefix snapshot: forks the
    /// snapshot, applies the late bindings at the warm-up point and runs
    /// to the stop condition — bit-identical to the cold
    /// [`Scenario::run_with_budget`] path, which warms up, applies the
    /// same bindings at the same instant and continues in the same state.
    ///
    /// The caller is responsible for passing a snapshot of *this
    /// scenario's* prefix; the sweep planner guarantees it by grouping on
    /// the serialized prefix scenario.
    ///
    /// # Errors
    ///
    /// Everything [`Scenario::run_with_budget`] reports, plus
    /// [`SimError::SnapshotUnsupported`] when the snapshot cannot be
    /// forked.
    pub fn run_forked(
        &self,
        snapshot: &SimSnapshot,
        budget: &RunBudget,
    ) -> Result<RunResult, SimError> {
        let mut sim = Simulation::fork(snapshot)?;
        sim.set_budget(budget);
        self.apply_late(&mut sim)?;
        self.run_to_stop(&mut sim)
    }

    /// The scenario's shared prefix, normalized for keying: label cleared,
    /// late bindings dropped, stop pinned to the warm-up deadline, the
    /// checkpoint schedule kept (two runs that stop at different
    /// intermediate instants are *not* in the same state at the warm-up
    /// point — see [`Scenario::warmup_via`]). Two scenarios may share a
    /// snapshot exactly when their prefix scenarios serialize
    /// identically. `None` when the scenario has no warm-up point
    /// (nothing to share).
    pub fn prefix_scenario(&self) -> Option<Scenario> {
        self.warmup?;
        Some(self.prefix_scenario_at(self.warmup_via.len()))
    }

    /// The full ladder of stop instants of this scenario's prefix: every
    /// `warmup_via` checkpoint followed by `warmup`. Empty when the
    /// scenario has no warm-up point.
    pub fn chain_points(&self) -> Vec<SimDuration> {
        let Some(w) = self.warmup else {
            return Vec::new();
        };
        let mut points = self.warmup_via.clone();
        points.push(w);
        points
    }

    /// The normalized prefix scenario truncated at chain level `level`
    /// (`0..chain_points().len()`): it stops at `chain_points()[level]`
    /// having traversed the checkpoints before it. Level
    /// `warmup_via.len()` is the full prefix ([`Scenario::prefix_scenario`]);
    /// lower levels are the ancestors a nested-prefix planner keys
    /// snapshot-tree nodes by — a ladder member's level-`k` prefix equals
    /// the full prefix of the member `k` rungs down.
    ///
    /// # Panics
    ///
    /// Panics when the scenario has no warm-up point or `level` exceeds
    /// `warmup_via.len()`.
    pub fn prefix_scenario_at(&self, level: usize) -> Scenario {
        let w = self.warmup.expect("prefix_scenario_at without warmup");
        assert!(level <= self.warmup_via.len(), "chain level out of range");
        let stop_at = if level == self.warmup_via.len() {
            w
        } else {
            self.warmup_via[level]
        };
        Scenario {
            label: String::new(),
            platform: self.platform,
            config: self.config.clone(),
            workloads: self.workloads.clone(),
            stop: StopWhen::Deadline(stop_at),
            warmup: None,
            warmup_via: self.warmup_via[..level].to_vec(),
            late: None,
        }
    }

    /// Validates the checkpoint schedule: `warmup_via` requires a warm-up
    /// point, must ascend strictly and stay strictly below `warmup`.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] describing the violation.
    fn validate_via(&self) -> Result<(), SimError> {
        if self.warmup_via.is_empty() {
            return Ok(());
        }
        let Some(w) = self.warmup else {
            return Err(SimError::config(format!(
                "scenario {:?} has warmup_via checkpoints but no warmup point",
                self.label
            )));
        };
        let mut prev: Option<SimDuration> = None;
        for &v in &self.warmup_via {
            if prev.is_some_and(|p| v <= p) {
                return Err(SimError::config(format!(
                    "scenario {:?}: warmup_via must ascend strictly",
                    self.label
                )));
            }
            if v >= w {
                return Err(SimError::config(format!(
                    "scenario {:?}: warmup_via checkpoint {:?} is not below warmup {:?}",
                    self.label, v, w
                )));
            }
            prev = Some(v);
        }
        Ok(())
    }

    /// Builds the simulation and spawns the workloads, without running.
    fn instantiate(&self, budget: &RunBudget) -> Result<Simulation, SimError> {
        let mut sim = Simulation::builder()
            .platform(self.platform.build())
            .config(self.config.clone())
            .budget(budget.clone())
            .build()?;
        for w in &self.workloads {
            match w {
                Workload::App { app, affinity } => {
                    sim.spawn_app_with_affinity(app, *affinity);
                }
                Workload::Spec {
                    kernel,
                    cpu,
                    ref_duration,
                } => {
                    let suite = SpecKernel::suite();
                    let spec = suite.iter().find(|s| s.name == kernel).ok_or_else(|| {
                        SimError::config(format!("unknown SPEC kernel {kernel:?}"))
                    })?;
                    sim.spawn_spec(spec, CpuId(*cpu), *ref_duration);
                }
                Workload::Microbench { cpu, duty, period } => {
                    sim.spawn_microbench(CpuId(*cpu), *duty, *period);
                }
            }
        }
        Ok(sim)
    }

    /// Applies the late bindings (no-op without any).
    fn apply_late(&self, sim: &mut Simulation) -> Result<(), SimError> {
        if let Some(late) = &self.late {
            if let Some(govs) = &late.governors {
                sim.replace_governors(govs)?;
            }
            sim.schedule_late_faults(&late.faults)?;
        }
        Ok(())
    }

    /// Runs an instantiated (and possibly warmed-up) simulation to the
    /// scenario's stop condition.
    fn run_to_stop(&self, sim: &mut Simulation) -> Result<RunResult, SimError> {
        match self.stop {
            StopWhen::Deadline(d) => {
                sim.try_run_until(SimTime::ZERO + d)?;
                Ok(sim.finish())
            }
            StopWhen::FirstAppDone => {
                let app = self
                    .workloads
                    .iter()
                    .find_map(|w| match w {
                        Workload::App { app, .. } => Some(app),
                        _ => None,
                    })
                    .ok_or_else(|| {
                        SimError::config(format!(
                            "scenario {:?} stops at FirstAppDone but has no App workload",
                            self.label
                        ))
                    })?;
                sim.try_run_app(app)
            }
            StopWhen::AllExited { cap } => {
                sim.try_run_until_or(SimTime::ZERO + cap, |s| s.kernel().all_exited())?;
                Ok(sim.finish())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bl_workloads::apps::app_by_name;

    #[test]
    fn scenario_run_matches_hand_rolled_simulation() {
        let app = app_by_name("Browser").unwrap();
        let cfg = SystemConfig::baseline().with_seed(7);
        let from_scenario = Scenario::app("browser", app.clone(), cfg.clone())
            .run()
            .unwrap();
        let mut sim = Simulation::try_new(cfg).unwrap();
        sim.spawn_app(&app);
        let by_hand = sim.try_run_app(&app).unwrap();
        assert_eq!(from_scenario, by_hand);
    }

    #[test]
    fn scenario_round_trips_through_json() {
        let app = app_by_name("Video Player").unwrap();
        let sc = Scenario::app("vp", app, SystemConfig::baseline().with_seed(3));
        let json = serde_json::to_string(&sc).unwrap();
        let back: Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(back.run().unwrap(), sc.run().unwrap());
    }

    #[test]
    fn unknown_spec_kernel_is_a_typed_error() {
        let suite = SpecKernel::suite();
        let mut sc = Scenario::spec(
            "bad",
            &suite[0],
            CpuId(0),
            SimDuration::from_millis(100),
            SystemConfig::pinned_frequencies(1_300_000, 800_000),
        );
        let Workload::Spec { kernel, .. } = &mut sc.workloads[0] else {
            unreachable!()
        };
        *kernel = "no-such-kernel".to_string();
        assert!(matches!(
            sc.run().unwrap_err(),
            SimError::InvalidConfig { .. }
        ));
    }

    #[test]
    fn first_app_done_without_app_is_a_typed_error() {
        let sc = Scenario::microbench(
            "mb",
            CpuId(0),
            0.5,
            SimDuration::from_millis(10),
            SimDuration::from_millis(100),
            SystemConfig::baseline(),
        )
        .with_stop(StopWhen::FirstAppDone);
        assert!(matches!(
            sc.run().unwrap_err(),
            SimError::InvalidConfig { .. }
        ));
    }
}
