//! The discrete-event simulation driver wiring every substrate together.

use crate::config::SystemConfig;
use crate::options::SimOptions;
use crate::result::{ResilienceStats, RunResult};
use bl_governor::{ClusterSample, CpufreqGovernor, GovernorConfig, GovernorState};
use bl_kernel::accounting::BusyWindow;
use bl_kernel::kernel::{Hw, Kernel, KernelConfig, KernelSaved, WakeRequest};
use bl_kernel::task::{Affinity, AppSignal, ForkCtx, RestoreCtx, SaveCtx, TaskBehavior, TaskId};
use bl_metrics::{MetricsCollector, MetricsSaved, Trace, TraceRow};
use bl_platform::exynos::exynos5422;
use bl_platform::ids::{ClusterId, CoreKind, CpuId};
use bl_platform::state::PlatformState;
use bl_platform::topology::Platform;
use bl_power::{CpuidleTable, PowerMeter, PowerModel, ThermalBank, ThermalParams};
use bl_simcore::audit::InvariantGuard;
use bl_simcore::budget::{ArmedBudget, RunBudget};
use bl_simcore::error::SimError;
use bl_simcore::event::{EventQueue, QueueEntry};
use bl_simcore::fault::{FaultEvent, FaultKind, FaultPlan};
use bl_simcore::journal::fnv1a;
use bl_simcore::rng::{RngState, SimRng};
use bl_simcore::time::{SimDuration, SimTime};
use bl_workloads::apps::{AppInstance, AppModel};
use bl_workloads::microbench::MicroBench;
use bl_workloads::replay::RecordedTrace;
use bl_workloads::spec::SpecKernel;
use bl_workloads::threads::{CompletionTracker, TrackerSaved};
use bl_workloads::PerfMetric;
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
enum Ev {
    Tick,
    Timer(WakeRequest),
    GovSample(ClusterId),
    MetricSample,
    /// Promote `cpu` to the next deeper idle state if its idle episode
    /// (identified by the sequence number) is still running.
    IdlePromote(CpuId, u64),
    /// A scheduled fault from the run's [`bl_simcore::fault::FaultPlan`]
    /// fires.
    Fault(FaultEvent),
}

/// Runtime state of the thermal subsystem: one RC node per cluster,
/// stored structure-of-arrays in a [`ThermalBank`] so the per-sample
/// integration is one batch pass over contiguous state.
#[derive(Debug, Clone)]
struct ThermalRt {
    nodes: ThermalBank,
    /// When the nodes were last advanced (temperature integrates between
    /// metric samples).
    last_advance: SimTime,
    /// When each cluster's current throttle episode began, if throttled.
    throttle_since: Vec<Option<SimTime>>,
    /// Per-CPU busy window: the RC nodes integrate the *time-averaged*
    /// power over each interval, which is step-size independent and immune
    /// to aliasing between the sampling grid and periodic workloads.
    window: BusyWindow,
    /// Reusable per-cluster power buffer fed to the batch advance.
    power_scratch: Vec<f64>,
    /// Reusable per-CPU activity buffer for one cluster at a time.
    acts_scratch: Vec<f64>,
    /// Reusable list of nodes whose throttle state flipped this advance.
    changed_scratch: Vec<usize>,
}

/// Serialized form of [`ThermalRt`]: the RC nodes, throttle episodes and
/// busy window; the scratch buffers are rebuilt empty.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
struct ThermalRtSaved {
    nodes: ThermalBank,
    last_advance: SimTime,
    throttle_since: Vec<Option<SimTime>>,
    window: BusyWindow,
}

impl ThermalRt {
    fn state_save(&self) -> ThermalRtSaved {
        ThermalRtSaved {
            nodes: self.nodes.clone(),
            last_advance: self.last_advance,
            throttle_since: self.throttle_since.clone(),
            window: self.window.clone(),
        }
    }

    fn state_restore(saved: &ThermalRtSaved) -> ThermalRt {
        let n = saved.throttle_since.len();
        ThermalRt {
            nodes: saved.nodes.clone(),
            last_advance: saved.last_advance,
            throttle_since: saved.throttle_since.clone(),
            window: saved.window.clone(),
            power_scratch: Vec::with_capacity(n),
            acts_scratch: Vec::new(),
            changed_scratch: Vec::new(),
        }
    }

    fn new(platform: &Platform, window: BusyWindow, start: SimTime) -> Self {
        let params: Vec<ThermalParams> = platform
            .topology
            .clusters()
            .iter()
            .map(|c| match c.core.kind {
                CoreKind::Big => ThermalParams::exynos5422_big(),
                CoreKind::Little => ThermalParams::exynos5422_little(),
            })
            .collect();
        let n = params.len();
        ThermalRt {
            nodes: ThermalBank::new(params),
            last_advance: start,
            throttle_since: vec![None; n],
            window,
            power_scratch: Vec::with_capacity(n),
            acts_scratch: Vec::new(),
            changed_scratch: Vec::new(),
        }
    }
}

/// Runtime state of the cpuidle subsystem.
#[derive(Debug, Clone)]
struct CpuidleRt {
    /// Idle-state table per CPU (indexed by cpu id).
    tables: Vec<CpuidleTable>,
    /// Current idle-state ladder position per CPU (`None` = busy).
    state: Vec<Option<usize>>,
    /// Episode sequence numbers to invalidate stale promotion events.
    seq: Vec<u64>,
    /// When the current idle episode began (valid while `state` is Some).
    idle_since: Vec<SimTime>,
}

/// Serialized form of [`CpuidleRt`]: the per-CPU ladder positions and
/// episode bookkeeping; the idle-state tables are static per core kind and
/// are rebuilt from the platform on restore.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
struct CpuidleRtSaved {
    state: Vec<Option<usize>>,
    seq: Vec<u64>,
    idle_since: Vec<SimTime>,
}

impl CpuidleRt {
    fn state_save(&self) -> CpuidleRtSaved {
        CpuidleRtSaved {
            state: self.state.clone(),
            seq: self.seq.clone(),
            idle_since: self.idle_since.clone(),
        }
    }

    fn state_restore(platform: &Platform, saved: &CpuidleRtSaved) -> CpuidleRt {
        let tables = platform
            .topology
            .cpus()
            .map(|c| CpuidleTable::default_for(platform.topology.kind_of(c)))
            .collect();
        CpuidleRt {
            tables,
            state: saved.state.clone(),
            seq: saved.seq.clone(),
            idle_since: saved.idle_since.clone(),
        }
    }

    fn new(platform: &Platform) -> Self {
        let tables = platform
            .topology
            .cpus()
            .map(|c| CpuidleTable::default_for(platform.topology.kind_of(c)))
            .collect::<Vec<_>>();
        let n = tables.len();
        CpuidleRt {
            tables,
            state: vec![None; n],
            seq: vec![0; n],
            idle_since: vec![SimTime::ZERO; n],
        }
    }

    /// Writes the per-CPU leakage scale factors into `out` (1.0 = busy or
    /// shallow); reuses the caller's buffer so the hot path never allocates.
    fn leak_scales_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend(self.state.iter().enumerate().map(|(i, s)| match s {
            Some(idx) => self.tables[i].state(*idx).leak_scale,
            None => 1.0,
        }));
    }
}

/// One deterministic simulation run of the modeled platform.
///
/// Create it via [`Simulation::builder`] (or [`Simulation::try_new`]),
/// spawn workloads, then call [`Simulation::try_run_until`] /
/// [`Simulation::try_run_app`] and read the [`RunResult`].
pub struct Simulation {
    platform: Platform,
    state: PlatformState,
    kernel: Kernel,
    governors: Vec<Box<dyn CpufreqGovernor>>,
    gov_window: BusyWindow,
    power_model: PowerModel,
    meter: PowerMeter,
    collector: MetricsCollector,
    queue: EventQueue<Ev>,
    now: SimTime,
    rng: SimRng,
    trackers: Vec<CompletionTracker>,
    cfg: SystemConfig,
    trace: Option<Trace>,
    trace_window: BusyWindow,
    cpuidle: Option<CpuidleRt>,
    thermal: Option<ThermalRt>,
    /// Per-cluster count of governor samples still to drop (stall faults).
    gov_skip: Vec<u32>,
    /// Same-instant event counter feeding the stall watchdog.
    watchdog: u64,
    /// Armed execution budget: wall-clock deadline, event cap and
    /// cancellation token, booked per processed event.
    budget: ArmedBudget,
    /// Events processed over the simulation's lifetime. Unlike the budget
    /// (re-armed per run), this counter survives snapshot/fork, so a
    /// forked run reports the same total as the cold run it is
    /// bit-identical to — which is what lets [`RunResult`] carry it.
    events_total: u64,
    /// Runtime invariant auditor, when [`SystemConfig::audit`] is on.
    audit: Option<InvariantGuard>,
    resilience: ResilienceStats,
    // Reusable scratch buffers: the hot loop never allocates once warm.
    skip_stash: Vec<QueueEntry<Ev>>,
    gov_fired: Vec<Option<SimTime>>,
    activity_scratch: Vec<f64>,
    leak_scratch: Vec<f64>,
    utils_scratch: Vec<f64>,
    wake_scratch: Vec<WakeRequest>,
    signal_scratch: Vec<(SimTime, AppSignal)>,
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.now)
            .field("cfg", &self.cfg)
            .finish_non_exhaustive()
    }
}

impl Simulation {
    /// Starts a fluent builder: platform, config, seed, fault plan, thermal
    /// model and tracing in one chain, ending in a non-panicking
    /// [`SimulationBuilder::build`].
    pub fn builder() -> SimulationBuilder {
        SimulationBuilder::default()
    }

    /// Builds a simulation of the Exynos-5422-class platform under `cfg`,
    /// reporting configuration problems as values.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] for a core configuration the platform
    /// cannot satisfy or a governor list that does not cover every cluster;
    /// [`SimError::InvalidFaultPlan`] when the fault plan names CPUs or
    /// clusters the platform does not have.
    pub fn try_new(cfg: SystemConfig) -> Result<Self, SimError> {
        Simulation::try_with_platform(exynos5422(), cfg)
    }

    /// Non-panicking [`Simulation::with_platform`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulation::try_new`].
    pub fn try_with_platform(platform: Platform, cfg: SystemConfig) -> Result<Self, SimError> {
        let mut state = PlatformState::new(&platform.topology);
        state
            .apply_core_config(&platform.topology, cfg.core_config)
            .map_err(|e| SimError::config(format!("invalid core configuration: {e:?}")))?;
        if cfg.governors.len() != platform.topology.n_clusters() {
            return Err(SimError::config(format!(
                "need one governor per cluster: {} governors for {} clusters",
                cfg.governors.len(),
                platform.topology.n_clusters()
            )));
        }
        cfg.fault_plan
            .validate(platform.topology.n_cpus(), platform.topology.n_clusters())?;

        let kernel = Kernel::new(
            platform.topology.n_cpus(),
            KernelConfig {
                tick_period: SimDuration::from_millis(4),
                policy: cfg.effective_policy(),
                balance_enabled: cfg.balance_enabled,
            },
            SimTime::ZERO,
        );

        let governors: Vec<Box<dyn CpufreqGovernor>> =
            cfg.governors.iter().map(|g| g.build()).collect();

        let power_model = if cfg.screen_on {
            PowerModel::screen_on()
        } else {
            PowerModel::screen_off()
        };

        let mut queue = EventQueue::new();
        queue.schedule(SimTime::ZERO + SimDuration::from_millis(4), Ev::Tick);
        queue.schedule(SimTime::ZERO + cfg.metric_period, Ev::MetricSample);
        for ev in cfg.fault_plan.events() {
            queue.schedule(ev.at, Ev::Fault(*ev));
        }

        let gov_window = BusyWindow::open(kernel.accounting(), SimTime::ZERO);
        let collector =
            MetricsCollector::new(&platform.topology, kernel.accounting(), SimTime::ZERO);

        let trace_window = BusyWindow::open(kernel.accounting(), SimTime::ZERO);
        let cpuidle = cfg.cpuidle_enabled.then(|| CpuidleRt::new(&platform));
        // A plan that injects heat needs thermal nodes even when the model
        // is nominally off.
        let wants_thermal = cfg.thermal_enabled
            || cfg
                .fault_plan
                .events()
                .iter()
                .any(|e| matches!(e.kind, FaultKind::ThermalSpike { .. }));
        let thermal = wants_thermal.then(|| {
            ThermalRt::new(
                &platform,
                BusyWindow::open(kernel.accounting(), SimTime::ZERO),
                SimTime::ZERO,
            )
        });
        let n_clusters = platform.topology.n_clusters();
        let mut resilience = ResilienceStats::default();
        if let Some(rt) = &thermal {
            resilience.throttled_time = vec![SimDuration::ZERO; n_clusters];
            resilience.peak_temp_c = rt.nodes.temps().to_vec();
        }
        let n_cpus = platform.topology.n_cpus();
        let audit = cfg.audit.then(|| InvariantGuard::new(cfg.audit_cadence));
        let mut sim = Simulation {
            meter: PowerMeter::starting_at(SimTime::ZERO, 0.0),
            rng: SimRng::seed_from(cfg.seed),
            platform,
            state,
            kernel,
            governors,
            gov_window,
            power_model,
            collector,
            queue,
            now: SimTime::ZERO,
            trackers: Vec::new(),
            cfg,
            trace: None,
            trace_window,
            cpuidle,
            thermal,
            gov_skip: vec![0; n_clusters],
            watchdog: 0,
            budget: ArmedBudget::default(),
            events_total: 0,
            audit,
            resilience,
            skip_stash: Vec::new(),
            gov_fired: vec![None; n_clusters],
            activity_scratch: Vec::with_capacity(n_cpus),
            leak_scratch: Vec::with_capacity(n_cpus),
            utils_scratch: Vec::with_capacity(n_cpus),
            wake_scratch: Vec::new(),
            signal_scratch: Vec::new(),
        };

        // Let fixed-policy governors (userspace/performance/powersave) set
        // their frequencies before anything runs, and schedule the first
        // samples.
        for c in 0..sim.platform.topology.n_clusters() {
            sim.governor_sample(ClusterId(c))?;
        }
        sim.record_power();
        Ok(sim)
    }

    // ---- workload spawning -------------------------------------------------

    /// Spawns a mobile app with free (scheduler-controlled) placement.
    pub fn spawn_app(&mut self, app: &AppModel) -> AppInstance {
        self.spawn_app_with_affinity(app, Affinity::Any)
    }

    /// Spawns a mobile app with all threads forced to `affinity`.
    pub fn spawn_app_with_affinity(&mut self, app: &AppModel, affinity: Affinity) -> AppInstance {
        let hw = Hw {
            platform: &self.platform,
            state: &self.state,
        };
        let instance = app.build_with_affinity(
            &mut self.kernel,
            &self.platform,
            &hw,
            &mut self.rng,
            self.now,
            affinity,
        );
        if let Some(t) = &instance.tracker {
            self.trackers.push(t.clone());
        }
        self.after_kernel_call();
        instance
    }

    /// Spawns a SPEC kernel pinned to `cpu`, sized to run `ref_duration`
    /// on a little core at 1.3 GHz.
    pub fn spawn_spec(&mut self, spec: &SpecKernel, cpu: CpuId, ref_duration: SimDuration) {
        let little = self
            .platform
            .topology
            .cluster_of_kind(CoreKind::Little)
            .expect("little cluster");
        let total = self.platform.perf.work_for(
            &spec.profile,
            CoreKind::Little,
            &little.l2,
            1.3,
            ref_duration,
        );
        let behavior = spec.behavior(total, &mut self.rng);
        let hw = Hw {
            platform: &self.platform,
            state: &self.state,
        };
        self.kernel
            .spawn(spec.name, Affinity::Pinned(cpu), behavior, &hw, self.now);
        self.after_kernel_call();
    }

    /// Spawns the utilization microbenchmark pinned to `cpu` with the given
    /// duty cycle; work is sized against the cluster's *current* frequency.
    pub fn spawn_microbench(&mut self, cpu: CpuId, duty: f64, period: SimDuration) {
        let topo = &self.platform.topology;
        let kind = topo.kind_of(cpu);
        let l2 = topo.l2_of(cpu);
        let freq_ghz = self.state.freq_of(topo, cpu) as f64 / 1e6;
        let b = MicroBench::new(&self.platform.perf, kind, l2, freq_ghz, duty, period);
        let hw = Hw {
            platform: &self.platform,
            state: &self.state,
        };
        self.kernel.spawn(
            "microbench",
            Affinity::Pinned(cpu),
            Box::new(b),
            &hw,
            self.now,
        );
        self.after_kernel_call();
    }

    /// Spawns a recorded activity trace (see [`bl_workloads::replay`]): one
    /// task per recorded thread, replayed on the simulated scheduler. The
    /// run's `latency` reflects when the whole trace finished.
    pub fn spawn_trace(&mut self, trace: &RecordedTrace) {
        let hw = Hw {
            platform: &self.platform,
            state: &self.state,
        };
        let tracker = trace.spawn(
            &mut self.kernel,
            &self.platform,
            &hw,
            self.now,
            Affinity::Any,
        );
        self.trackers.push(tracker);
        self.after_kernel_call();
    }

    /// Spawns a raw behavior (advanced usage / tests).
    pub fn spawn_behavior(
        &mut self,
        name: &str,
        affinity: Affinity,
        behavior: Box<dyn TaskBehavior>,
    ) -> TaskId {
        let hw = Hw {
            platform: &self.platform,
            state: &self.state,
        };
        let tid = self.kernel.spawn(name, affinity, behavior, &hw, self.now);
        self.after_kernel_call();
        tid
    }

    // ---- running ------------------------------------------------------------

    /// Runs until `deadline` or until `stop` returns true, reporting
    /// runtime failures as values instead of panicking.
    ///
    /// # Errors
    ///
    /// [`SimError::WatchdogStall`] when simulated time stops advancing
    /// while events keep firing, [`SimError::TaskLost`] when a hotplug
    /// fault loses track of a task (a simulator bug, surfaced rather than
    /// silently dropped).
    pub fn try_run_until_or(
        &mut self,
        deadline: SimTime,
        stop: impl Fn(&Simulation) -> bool,
    ) -> Result<(), SimError> {
        while self.now < deadline && !stop(self) {
            self.try_step(deadline)?;
        }
        Ok(())
    }

    /// Non-panicking [`Simulation::run_until`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulation::try_run_until_or`].
    pub fn try_run_until(&mut self, deadline: SimTime) -> Result<(), SimError> {
        self.try_run_until_or(deadline, |_| false)
    }

    /// Runs an already-spawned app to its natural end: latency apps until
    /// their script completes (capped at `run_for`), FPS apps for exactly
    /// `run_for`. Returns the collected results.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulation::try_run_until_or`].
    pub fn try_run_app(&mut self, app: &AppModel) -> Result<RunResult, SimError> {
        let deadline = self.now + app.run_for;
        match app.metric {
            PerfMetric::Latency => {
                self.try_run_until_or(deadline, |sim| {
                    !sim.trackers.is_empty() && sim.trackers.iter().all(|t| t.is_done())
                })?;
            }
            PerfMetric::Fps => self.try_run_until(deadline)?,
        }
        Ok(self.finish())
    }

    fn try_step(&mut self, deadline: SimTime) -> Result<(), SimError> {
        if self.cfg.skip_ahead && self.kernel.all_idle() {
            self.idle_skip_ahead(deadline);
        }
        let hw = Hw {
            platform: &self.platform,
            state: &self.state,
        };
        let next_event = self.queue.peek_time().unwrap_or(SimTime::MAX);
        let completion = self
            .kernel
            .next_completion_time(&hw, self.now)
            .unwrap_or(SimTime::MAX);
        let target = next_event.min(completion).min(deadline);
        self.kernel.advance_to(&hw, target);
        if target > self.now {
            self.watchdog = 0;
        }
        self.now = target;
        self.kernel.handle_completions(&hw, self.now);

        while self.queue.peek_time() == Some(self.now) {
            self.watchdog += 1;
            if self.watchdog > self.cfg.watchdog_same_time_limit {
                let stuck = match self.queue.peek() {
                    Some((_, _, ev)) => format!("{ev:?}"),
                    None => "<queue empty>".to_string(),
                };
                return Err(SimError::WatchdogStall {
                    at: self.now,
                    iterations: self.watchdog,
                    detail: format!(
                        "{} events still queued; next stuck event: {stuck}",
                        self.queue.len()
                    ),
                });
            }
            let (_, ev) = self.queue.pop().expect("peeked event");
            self.budget.on_event(self.now)?;
            self.events_total += 1;
            match ev {
                Ev::Tick => {
                    let hw = Hw {
                        platform: &self.platform,
                        state: &self.state,
                    };
                    self.kernel.tick(&hw, self.now);
                    self.queue
                        .schedule(self.now + self.kernel.tick_period(), Ev::Tick);
                }
                Ev::Timer(w) => {
                    let hw = Hw {
                        platform: &self.platform,
                        state: &self.state,
                    };
                    self.kernel.timer_wake(w.tid, w.seq, &hw, self.now);
                }
                Ev::GovSample(c) => self.governor_sample(c)?,
                Ev::IdlePromote(cpu, seq) => self.idle_promote(cpu, seq),
                Ev::MetricSample => {
                    self.advance_thermal();
                    self.collector
                        .sample(self.now, self.kernel.accounting(), &self.state);
                    self.record_trace_sample();
                    self.queue
                        .schedule(self.now + self.cfg.metric_period, Ev::MetricSample);
                }
                Ev::Fault(f) => self.apply_fault(f)?,
            }
            if self.audit.as_mut().is_some_and(|g| g.due()) {
                self.run_audit()?;
            }
        }
        self.after_kernel_call();
        Ok(())
    }

    /// One pass of the runtime invariant auditor: conservation-law checks
    /// over the kernel's task census, the power meter and the per-cluster
    /// frequency caps (see [`InvariantGuard`] for the invariant list).
    fn run_audit(&mut self) -> Result<(), SimError> {
        let census = self.kernel.census();
        let reading = self.meter.reading(self.now);
        let guard = self.audit.as_mut().expect("caller checked audit is on");
        guard.check_time(self.now)?;
        guard.check_task_conservation(self.now, census.spawned, census.runnable, census.queued)?;
        guard.check_energy(self.now, reading.energy_mj, reading.current_mw)?;
        for c in self.platform.topology.clusters() {
            let freq = self.state.cluster_freq_khz(c.id);
            let cap = self.state.freq_cap(c.id).unwrap_or(u32::MAX);
            guard.check_freq_cap(self.now, c.id.0, freq, cap)?;
        }
        self.kernel.check_no_lost_tasks()?;
        guard.pass_completed();
        self.resilience.audit_checks += 1;
        Ok(())
    }

    /// When every CPU is idle, elides the leading run of provably-inert
    /// periodic events and replays their re-arming in closed form, so the
    /// next [`Simulation::try_step`] jumps straight to the first event that
    /// can actually change the machine.
    ///
    /// The replay fires the elided chains virtually in exactly the
    /// `(time, seq)` order the ticked loop would pop them, assigning each
    /// re-arm a fresh sequence number just like a real firing — so the
    /// queue's future pop order, and therefore the whole run, stays
    /// bit-identical to `skip_ahead = false` (see DESIGN.md, timing model).
    fn idle_skip_ahead(&mut self, deadline: SimTime) {
        // Peel every leading elidable event off the queue.
        let mut stash = std::mem::take(&mut self.skip_stash);
        loop {
            let elidable = match self.queue.peek() {
                Some((_, _, ev)) => self.event_is_skippable(ev),
                None => false,
            };
            if !elidable {
                break;
            }
            stash.push(self.queue.pop_entry().expect("peeked entry"));
        }
        if stash.is_empty() {
            self.skip_stash = stash;
            return;
        }
        // Nothing before the first real event (or the caller's deadline)
        // can change machine state.
        let horizon = self.queue.peek_time().unwrap_or(SimTime::MAX).min(deadline);
        if horizon == SimTime::MAX {
            // Unbounded run over an otherwise empty queue: no target to
            // skip toward, so keep ticking (matches the non-skip path).
            for e in stash.drain(..) {
                self.queue.restore(e);
            }
            self.skip_stash = stash;
            return;
        }

        let mut metric_fires = 0u64;
        let mut metric_last = SimTime::ZERO;
        let mut gov_fired = std::mem::take(&mut self.gov_fired);
        gov_fired.clear();
        gov_fired.resize(self.platform.topology.n_clusters(), None);
        loop {
            let mut best: Option<usize> = None;
            for (i, e) in stash.iter().enumerate() {
                if e.time() < horizon
                    && best.is_none_or(|b| (e.time(), e.seq()) < (stash[b].time(), stash[b].seq()))
                {
                    best = Some(i);
                }
            }
            let Some(i) = best else { break };
            let t = stash[i].time();
            let period = match stash[i].event() {
                Ev::Tick => self.kernel.tick_period(),
                Ev::MetricSample => {
                    metric_fires += 1;
                    metric_last = t;
                    self.cfg.metric_period
                }
                Ev::GovSample(c) => {
                    gov_fired[c.0] = Some(t);
                    self.governors[c.0].sampling_period()
                }
                _ => unreachable!("only periodic self-rearming events are elided"),
            };
            self.queue.reschedule_entry(&mut stash[i], t + period);
        }
        for e in stash.drain(..) {
            self.queue.restore(e);
        }
        self.skip_stash = stash;

        // Closed-form bookkeeping for what the elided firings would have
        // done: all the idle samples in one addition, and each governor
        // window re-opened at its last elided fire (the counters underneath
        // never moved, so intermediate re-opens are no-ops).
        self.collector
            .skip_idle_samples(metric_fires, metric_last, self.kernel.accounting());
        for (ci, fired) in gov_fired.iter().enumerate() {
            if let Some(t) = fired {
                for cpu in self.state.online_in(&self.platform.topology, ClusterId(ci)) {
                    self.gov_window
                        .take_fraction(self.kernel.accounting(), cpu, *t);
                }
            }
        }
        self.gov_fired = gov_fired;
    }

    /// True when `ev` firing on an all-idle machine would provably leave
    /// every observable unchanged apart from re-arming itself — the events
    /// [`Simulation::idle_skip_ahead`] may elide.
    fn event_is_skippable(&self, ev: &Ev) -> bool {
        match ev {
            // The scheduler tick charges the current task (none), balances
            // and migrates (nothing queued): a strict no-op while idle.
            Ev::Tick => true,
            // An all-idle metric sample only bumps the idle cell and
            // re-opens the busy windows, which `skip_idle_samples` books in
            // closed form. Thermal integration is exponential in the step
            // size and a trace needs one row per sample, so either one pins
            // the sampler to the grid.
            Ev::MetricSample => {
                self.thermal.is_none()
                    && self.trace.is_none()
                    && !self.cfg.metric_period.is_zero()
                    && self.collector.window_is_idle(self.kernel.accounting())
            }
            // A governor sample is elidable only when its window holds no
            // residual busy time (a task may have exited mid-window) and
            // the governor would provably hold its frequency on the
            // all-zero sample it would see.
            Ev::GovSample(c) => {
                self.gov_skip[c.0] == 0
                    && !self.governors[c.0].sampling_period().is_zero()
                    && self.gov_window_is_idle(*c)
                    && self.governor_idle_quiescent(*c)
            }
            // Timers wake tasks, promotions deepen idle states, faults
            // reshape the machine: all are hard horizon bounds.
            Ev::Timer(_) | Ev::IdlePromote(..) | Ev::Fault(_) => false,
        }
    }

    /// True when no online CPU of `cluster` has accrued busy time since the
    /// governor's window was last opened.
    fn gov_window_is_idle(&self, cluster: ClusterId) -> bool {
        self.state
            .online_in(&self.platform.topology, cluster)
            .all(|cpu| {
                self.gov_window
                    .peek_busy(self.kernel.accounting(), cpu)
                    .is_zero()
            })
    }

    /// Whether `cluster`'s governor, fed the all-zero-utilization sample it
    /// would see right now, provably keeps its current frequency.
    fn governor_idle_quiescent(&self, cluster: ClusterId) -> bool {
        const ZEROS: [f64; 16] = [0.0; 16];
        let topo = &self.platform.topology;
        let n = self.state.online_in(topo, cluster).count();
        if n > ZEROS.len() {
            return false;
        }
        let sample = ClusterSample {
            cluster,
            opps: &topo.cluster(cluster).core.opps,
            cur_freq_khz: self.state.cluster_freq_khz(cluster),
            cpu_utils: &ZEROS[..n],
            cap_khz: self.state.freq_cap(cluster).unwrap_or(u32::MAX),
        };
        self.governors[cluster.0].idle_quiescent(&sample)
    }

    /// Applies one fault event. Faults the platform refuses (offlining the
    /// last little CPU) are counted and skipped — resilience means the run
    /// completes in a degraded state rather than dying.
    fn apply_fault(&mut self, ev: FaultEvent) -> Result<(), SimError> {
        match ev.kind {
            FaultKind::CpuOffline { cpu } => {
                let cpu = CpuId(cpu);
                match self.state.set_online(&self.platform.topology, cpu, false) {
                    Ok(changed) => {
                        self.resilience.faults_injected += 1;
                        if changed {
                            let hw = Hw {
                                platform: &self.platform,
                                state: &self.state,
                            };
                            let drained = self.kernel.offline_cpu(cpu, &hw);
                            self.resilience.hotplug_offline += 1;
                            self.resilience.tasks_rehomed += drained.len() as u64;
                            self.kernel.check_no_lost_tasks()?;
                        }
                    }
                    Err(_) => self.resilience.faults_rejected += 1,
                }
            }
            FaultKind::CpuOnline { cpu } => {
                let cpu = CpuId(cpu);
                match self.state.set_online(&self.platform.topology, cpu, true) {
                    Ok(changed) => {
                        self.resilience.faults_injected += 1;
                        if changed {
                            let hw = Hw {
                                platform: &self.platform,
                                state: &self.state,
                            };
                            self.kernel.online_cpu(cpu, &hw);
                            self.resilience.hotplug_online += 1;
                        }
                    }
                    Err(_) => self.resilience.faults_rejected += 1,
                }
            }
            FaultKind::ThermalSpike { cluster, delta_c } => {
                // Integrate up to now first so the spike lands on the
                // current temperature, then let the throttle react.
                self.advance_thermal();
                let rt = self
                    .thermal
                    .as_mut()
                    .expect("plans with thermal spikes force the thermal model on");
                let id = ClusterId(cluster);
                let changed = rt.nodes.inject(cluster, delta_c);
                self.resilience.peak_temp_c[cluster] =
                    self.resilience.peak_temp_c[cluster].max(rt.nodes.temp_c(cluster));
                self.resilience.faults_injected += 1;
                if changed {
                    self.apply_throttle_transition(id);
                }
            }
            FaultKind::GovernorStall {
                cluster,
                missed_samples,
            } => {
                self.gov_skip[cluster] += missed_samples;
                self.resilience.faults_injected += 1;
            }
        }
        Ok(())
    }

    /// Integrates every cluster's thermal node up to `self.now` using its
    /// current power draw, and applies throttle transitions to the
    /// platform's frequency caps.
    ///
    /// The per-cluster powers are gathered into a reused buffer and the
    /// whole bank integrates in one batch pass; the scratch vectors make
    /// the steady state allocation-free.
    fn advance_thermal(&mut self) {
        let Some(rt) = self.thermal.as_mut() else {
            return;
        };
        let dt = self.now.duration_since(rt.last_advance);
        rt.last_advance = self.now;
        if dt.is_zero() {
            return;
        }
        let topo = &self.platform.topology;
        rt.power_scratch.clear();
        for c in topo.clusters() {
            let id = c.id;
            rt.acts_scratch.clear();
            for cpu in self.state.online_in(topo, id) {
                let f = rt
                    .window
                    .take_fraction(self.kernel.accounting(), cpu, self.now);
                rt.acts_scratch.push(f);
            }
            let mw = self.power_model.cluster_mw(
                topo,
                id,
                self.state.cluster_freq_khz(id),
                &rt.acts_scratch,
            );
            rt.power_scratch.push(mw / 1000.0);
        }
        // `advance_all` appends changed indices without clearing (see its
        // buffer contract), so one clear per sample is all the bookkeeping
        // the reused buffer needs; `take` moves the capacity out so the
        // throttle transitions below can re-borrow `self`, and the
        // steady state allocates nothing.
        let mut changed = std::mem::take(&mut rt.changed_scratch);
        changed.clear();
        rt.nodes.advance_all(dt, &rt.power_scratch, &mut changed);
        for i in 0..rt.nodes.len() {
            self.resilience.peak_temp_c[i] = self.resilience.peak_temp_c[i].max(rt.nodes.temp_c(i));
        }
        for &i in &changed {
            self.apply_throttle_transition(ClusterId(i));
        }
        self.thermal
            .as_mut()
            .expect("checked above")
            .changed_scratch = changed;
    }

    /// Propagates one cluster's throttle state change into the platform's
    /// frequency cap and the resilience stats.
    fn apply_throttle_transition(&mut self, cluster: ClusterId) {
        let rt = self.thermal.as_mut().expect("caller checked thermal");
        let cap = rt.nodes.cap_khz(cluster.0);
        self.state
            .set_freq_cap(&self.platform.topology, cluster, cap);
        if cap.is_some() {
            self.resilience.throttle_trips += 1;
            rt.throttle_since[cluster.0] = Some(self.now);
        } else if let Some(since) = rt.throttle_since[cluster.0].take() {
            self.resilience.throttled_time[cluster.0] += self.now.duration_since(since);
        }
    }

    fn governor_sample(&mut self, cluster: ClusterId) -> Result<(), SimError> {
        let gov = &mut self.governors[cluster.0];
        let period = gov.sampling_period();
        // A stalled governor misses the sample entirely: the busy window is
        // left open, so the next live sample integrates over the whole gap
        // instead of losing the history (missed-sample tolerance).
        if self.gov_skip[cluster.0] > 0 {
            self.gov_skip[cluster.0] -= 1;
            self.resilience.gov_samples_missed += 1;
            self.queue
                .schedule(self.now + period, Ev::GovSample(cluster));
            return Ok(());
        }
        let topo = &self.platform.topology;
        let mut utils = std::mem::take(&mut self.utils_scratch);
        utils.clear();
        for cpu in self.state.online_in(topo, cluster) {
            utils.push(
                self.gov_window
                    .take_fraction(self.kernel.accounting(), cpu, self.now),
            );
        }
        let opps = &topo.cluster(cluster).core.opps;
        let cur = self.state.cluster_freq_khz(cluster);
        let sample = ClusterSample {
            cluster,
            opps,
            cur_freq_khz: cur,
            cpu_utils: &utils,
            cap_khz: self.state.freq_cap(cluster).unwrap_or(u32::MAX),
        };
        let next = self.governors[cluster.0].on_sample(&sample);
        self.utils_scratch = utils;
        if next != cur {
            // The platform clamps through the thermal ceiling; a governor
            // returning an off-table rate is surfaced, not panicked.
            self.state.try_set_cluster_freq(topo, cluster, next)?;
        }
        self.queue
            .schedule(self.now + period, Ev::GovSample(cluster));
        Ok(())
    }

    /// Collects wake requests and signals, and refreshes the power meter.
    fn after_kernel_call(&mut self) {
        let mut wakes = std::mem::take(&mut self.wake_scratch);
        self.kernel.drain_wake_requests_into(&mut wakes);
        for w in wakes.drain(..) {
            self.queue.schedule(w.at, Ev::Timer(w));
        }
        self.wake_scratch = wakes;
        let mut signals = std::mem::take(&mut self.signal_scratch);
        self.kernel.drain_signals_into(&mut signals);
        for (t, s) in signals.drain(..) {
            self.collector.on_signal(t, s);
        }
        self.signal_scratch = signals;
        self.record_power();
    }

    fn record_power(&mut self) {
        let mut activity = std::mem::take(&mut self.activity_scratch);
        self.kernel.activity_into(&mut activity);
        self.update_cpuidle(&activity);
        let mw = if let Some(rt) = &self.cpuidle {
            let mut scales = std::mem::take(&mut self.leak_scratch);
            rt.leak_scales_into(&mut scales);
            let mw = self.power_model.instant_mw_with_idle(
                &self.platform.topology,
                &self.state,
                &activity,
                Some(&scales),
            );
            self.leak_scratch = scales;
            mw
        } else {
            self.power_model
                .instant_mw(&self.platform.topology, &self.state, &activity)
        };
        self.activity_scratch = activity;
        self.meter.record(self.now, mw);
    }

    /// Tracks busy/idle transitions and schedules idle-state promotions.
    fn update_cpuidle(&mut self, activity: &[f64]) {
        let Some(rt) = &mut self.cpuidle else { return };
        for (i, a) in activity.iter().enumerate() {
            let busy = *a > 0.0;
            match (busy, rt.state[i]) {
                (true, Some(_)) => {
                    // Wakes invalidate the episode.
                    rt.state[i] = None;
                    rt.seq[i] += 1;
                }
                (false, None) => {
                    // New idle episode: enter the shallowest state and arm
                    // the promotion timer for the next deeper one.
                    rt.state[i] = Some(0);
                    rt.seq[i] += 1;
                    rt.idle_since[i] = self.now;
                    if let Some(res) = rt.tables[i].promotion_residency(0) {
                        self.queue
                            .schedule(self.now + res, Ev::IdlePromote(CpuId(i), rt.seq[i]));
                    }
                }
                _ => {}
            }
        }
    }

    fn idle_promote(&mut self, cpu: CpuId, seq: u64) {
        let Some(rt) = &mut self.cpuidle else { return };
        if rt.seq[cpu.0] != seq {
            return; // the episode ended meanwhile
        }
        let Some(cur) = rt.state[cpu.0] else { return };
        if rt.tables[cpu.0].promotion_residency(cur).is_none() {
            return; // already deepest
        }
        rt.state[cpu.0] = Some(cur + 1);
        if let Some(res) = rt.tables[cpu.0].promotion_residency(cur + 1) {
            // Residencies are measured from the start of the idle episode.
            self.queue
                .schedule(rt.idle_since[cpu.0] + res, Ev::IdlePromote(cpu, seq));
        }
        // Power drops as the core deepens.
        let mut activity = std::mem::take(&mut self.activity_scratch);
        self.kernel.activity_into(&mut activity);
        let mut scales = std::mem::take(&mut self.leak_scratch);
        self.cpuidle
            .as_ref()
            .expect("checked")
            .leak_scales_into(&mut scales);
        let mw = self.power_model.instant_mw_with_idle(
            &self.platform.topology,
            &self.state,
            &activity,
            Some(&scales),
        );
        self.activity_scratch = activity;
        self.leak_scratch = scales;
        self.meter.record(self.now, mw);
    }

    /// Arms an execution budget for the run: wall-clock deadline,
    /// simulated-event cap and/or cancellation token, enforced
    /// cooperatively in the event loop. Call before running; the wall
    /// clock starts now. Replaces any previously armed budget.
    pub fn set_budget(&mut self, budget: &RunBudget) {
        self.budget = budget.arm();
    }

    /// Simulated events booked against the current budget so far.
    pub fn events_processed(&self) -> u64 {
        self.budget.events()
    }

    /// Simulated events processed over the whole simulation lifetime,
    /// including any warm-up prefix inherited from a snapshot parent —
    /// budgets re-arm per run, this counter never resets, so forked and
    /// cold runs of the same scenario agree on it.
    pub fn events_total(&self) -> u64 {
        self.events_total
    }

    /// Number of completed invariant-audit passes (0 when auditing is off).
    pub fn audit_checks(&self) -> u64 {
        self.audit.as_ref().map_or(0, |g| g.checks())
    }

    /// Test-only hook: corrupts the auditor's internal clock so its next
    /// pass fails with [`SimError::InvariantViolated`] — proves broken
    /// accounting is caught rather than silently propagated. No-op when
    /// auditing is off.
    #[doc(hidden)]
    pub fn corrupt_audit_clock_for_test(&mut self) {
        if let Some(g) = self.audit.as_mut() {
            g.skew_clock_for_test();
        }
    }

    /// Enables per-sample time-series tracing (frequencies, active cores,
    /// power, migrations). Call before running; read with
    /// [`Simulation::trace`].
    pub fn enable_tracing(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(Trace::new());
            self.trace_window
                .reset_all(self.kernel.accounting(), self.now);
        }
    }

    /// The recorded trace, if tracing was enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    fn record_trace_sample(&mut self) {
        if self.trace.is_none() {
            return;
        }
        let topo = &self.platform.topology;
        let mut active = [0u32; 2];
        for cpu in topo.cpus() {
            if !self
                .trace_window
                .peek_busy(self.kernel.accounting(), cpu)
                .is_zero()
            {
                match topo.kind_of(cpu) {
                    CoreKind::Little => active[0] += 1,
                    CoreKind::Big => active[1] += 1,
                }
            }
            self.trace_window
                .take_fraction(self.kernel.accounting(), cpu, self.now);
        }
        let (up, down) = self.kernel.migration_counts();
        let row = TraceRow {
            t: self.now,
            little_khz: self
                .state
                .cluster_freq_khz(topo.cluster_of_kind(CoreKind::Little).expect("little").id),
            big_khz: self
                .state
                .cluster_freq_khz(topo.cluster_of_kind(CoreKind::Big).expect("big").id),
            active_little: active[0],
            active_big: active[1],
            power_mw: self.meter.current_mw(),
            migrations_up: up,
            migrations_down: down,
        };
        self.trace.as_mut().expect("checked above").push(row);
    }

    // ---- results ------------------------------------------------------------

    /// Produces the run's results at the current simulated time.
    pub fn finish(&self) -> RunResult {
        let topo = &self.platform.topology;
        let matrix = self.collector.matrix();
        let (n_little_p1, n_big_p1) = matrix.dims();
        let matrix_pct = (0..n_big_p1)
            .map(|b| (0..n_little_p1).map(|l| matrix.cell_pct(b, l)).collect())
            .collect();
        let little = topo.cluster_of_kind(CoreKind::Little).expect("little").id;
        let big = topo.cluster_of_kind(CoreKind::Big).expect("big").id;
        // Close out in-flight throttle episodes in the snapshot (the live
        // state is left untouched — finish() may be called mid-run).
        let mut resilience = self.resilience.clone();
        if let Some(rt) = &self.thermal {
            for (i, since) in rt.throttle_since.iter().enumerate() {
                if let Some(s) = since {
                    resilience.throttled_time[i] += self.now.duration_since(*s);
                }
            }
        }
        RunResult {
            sim_time: self.now.duration_since(SimTime::ZERO),
            avg_power_mw: self.meter.average_mw(self.now),
            energy_mj: self.meter.energy_mj(self.now),
            latency: self.collector.latency(),
            fps: self.collector.fps(self.now),
            tlp: self.collector.tlp_stats(),
            matrix_pct,
            little_residency: self.collector.residency().shares(little),
            big_residency: self.collector.residency().shares(big),
            efficiency_pct: self.collector.efficiency().percentages(),
            migrations: self.kernel.migration_counts(),
            events_processed: self.events_total,
            resilience,
        }
    }

    // ---- accessors ----------------------------------------------------------

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The platform description.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Current hardware state (frequencies, hotplug).
    pub fn state(&self) -> &PlatformState {
        &self.state
    }

    /// The kernel (for inspection in tests/examples).
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// The configuration this run was built with.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Current junction temperature of `cluster` in °C, when the thermal
    /// model is enabled.
    pub fn cluster_temp_c(&self, cluster: ClusterId) -> Option<f64> {
        self.thermal.as_ref().map(|rt| rt.nodes.temp_c(cluster.0))
    }

    /// Whether `cluster` is currently thermally throttled.
    pub fn is_throttled(&self, cluster: ClusterId) -> bool {
        self.thermal
            .as_ref()
            .is_some_and(|rt| rt.nodes.is_throttled(cluster.0))
    }

    // ---- snapshot / fork ----------------------------------------------------

    /// Captures the entire simulation state as a [`SimSnapshot`] that
    /// [`Simulation::fork`] can later turn back into any number of
    /// independent, bit-identical continuations.
    ///
    /// The snapshot is a deep copy: every task behavior, shared workload
    /// handle (job queues, completion trackers, scene synchronizers),
    /// governor, pending event (with its tie-breaking sequence number) and
    /// RNG stream is duplicated, so forks never observe each other or the
    /// original. The armed execution budget is *not* captured — budgets
    /// are per-run; arm one on the fork with [`Simulation::set_budget`].
    ///
    /// # Errors
    ///
    /// [`SimError::SnapshotUnsupported`] when some live state cannot be
    /// duplicated: a task driven by a closure (only structured behaviors
    /// implement `fork_box`) or a governor without `box_clone`.
    pub fn snapshot(&self) -> Result<SimSnapshot, SimError> {
        Ok(SimSnapshot {
            fingerprint: self.fingerprint(),
            sim: self.clone_state()?,
        })
    }

    /// Builds a fresh simulation resuming from `snapshot`. Running the
    /// fork produces bit-identical results to running the original from
    /// the snapshot point — every fork of the same snapshot, too.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulation::snapshot`] (the stored state is
    /// deep-copied again, once per fork).
    pub fn fork(snapshot: &SimSnapshot) -> Result<Simulation, SimError> {
        snapshot.sim.clone_state()
    }

    /// FNV-1a digest of the run's deterministic identity: simulated time,
    /// RNG stream state, event-queue census (pending count and sequence
    /// state), kernel task census, per-task HMP loads, accumulated energy,
    /// cluster frequencies and junction temperatures. Two simulations with
    /// equal fingerprints that were built from the same scenario are in
    /// the same state for all observable purposes; sweep result keys mix
    /// this in so a stale or divergent snapshot can never alias a cold
    /// run's cache entry.
    pub fn fingerprint(&self) -> u64 {
        let mut bytes = Vec::with_capacity(256);
        let mut push = |v: u64| bytes.extend_from_slice(&v.to_le_bytes());
        push(self.now.as_nanos());
        push(self.rng.state_digest());
        push(self.queue.len() as u64);
        push(self.queue.seq_state());
        let census = self.kernel.census();
        push(census.spawned as u64);
        push(census.runnable as u64);
        push(census.queued as u64);
        push(census.exited as u64);
        push(self.meter.energy_mj(self.now).to_bits());
        for c in self.platform.topology.clusters() {
            push(u64::from(self.state.cluster_freq_khz(c.id)));
        }
        for load in self.kernel.task_loads() {
            push(load.to_bits());
        }
        if let Some(rt) = &self.thermal {
            for t in rt.nodes.temps() {
                push(t.to_bits());
            }
        }
        fnv1a(&bytes)
    }

    /// The deep copy behind [`Simulation::snapshot`] / [`Simulation::fork`].
    fn clone_state(&self) -> Result<Simulation, SimError> {
        // One fork context spans the kernel *and* the driver's tracker
        // list, so a tracker shared between a task behavior and
        // `self.trackers` stays shared inside the fork (and only there).
        let mut ctx = ForkCtx::new();
        let kernel = self.kernel.fork(&mut ctx)?;
        let trackers = self
            .trackers
            .iter()
            .map(|t| t.fork_with(&mut ctx))
            .collect();
        let governors = self
            .governors
            .iter()
            .enumerate()
            .map(|(i, g)| {
                g.box_clone().ok_or_else(|| SimError::SnapshotUnsupported {
                    detail: format!("governor on cluster {i} does not support box_clone"),
                })
            })
            .collect::<Result<Vec<_>, SimError>>()?;
        let n_clusters = self.platform.topology.n_clusters();
        let n_cpus = self.platform.topology.n_cpus();
        Ok(Simulation {
            platform: self.platform.clone(),
            state: self.state.clone(),
            kernel,
            governors,
            gov_window: self.gov_window.clone(),
            power_model: self.power_model,
            meter: self.meter.clone(),
            collector: self.collector.clone(),
            queue: self.queue.clone(),
            now: self.now,
            rng: self.rng.clone(),
            trackers,
            cfg: self.cfg.clone(),
            trace: self.trace.clone(),
            trace_window: self.trace_window.clone(),
            cpuidle: self.cpuidle.clone(),
            thermal: self.thermal.clone(),
            gov_skip: self.gov_skip.clone(),
            watchdog: self.watchdog,
            // Budgets are per-run: forks start unbudgeted. The lifetime
            // event counter carries over so forked == cold totals.
            budget: ArmedBudget::default(),
            events_total: self.events_total,
            audit: self.audit.clone(),
            resilience: self.resilience.clone(),
            skip_stash: Vec::new(),
            gov_fired: vec![None; n_clusters],
            activity_scratch: Vec::with_capacity(n_cpus),
            leak_scratch: Vec::with_capacity(n_cpus),
            utils_scratch: Vec::with_capacity(n_cpus),
            wake_scratch: Vec::new(),
            signal_scratch: Vec::new(),
        })
    }

    /// Serializes the entire dynamic state behind [`Simulation::snapshot`]
    /// into a [`SimSaved`], spanning the kernel (tasks, behaviors, loads,
    /// runqueues), governors, event queue, RNG stream, meters, collectors
    /// and resilience telemetry. Static state — the platform description,
    /// power model, idle-state tables — is rebuilt from the platform and
    /// config on restore.
    fn state_save(&self) -> Result<SimSaved, SimError> {
        // One save context spans the kernel and the driver's tracker list,
        // mirroring `clone_state`'s ForkCtx, so shared workload handles
        // keep their sharing topology through the serialized form.
        let mut ctx = SaveCtx::new();
        let kernel = self.kernel.state_save(&mut ctx)?;
        let trackers = self
            .trackers
            .iter()
            .map(|t| t.save_with(&mut ctx))
            .collect();
        let governors = self
            .governors
            .iter()
            .enumerate()
            .map(|(i, g)| {
                g.state_save().ok_or_else(|| SimError::SnapshotUnsupported {
                    detail: format!("governor on cluster {i} does not support state_save"),
                })
            })
            .collect::<Result<Vec<_>, SimError>>()?;
        let queue = self
            .queue
            .sorted_entries()
            .into_iter()
            .map(|(at, seq, ev)| (at, seq, ev.clone()))
            .collect();
        Ok(SimSaved {
            cfg: self.cfg.clone(),
            state: self.state.clone(),
            kernel,
            governors,
            gov_window: self.gov_window.clone(),
            meter: self.meter.clone(),
            collector: self.collector.state_save(),
            queue,
            queue_seq: self.queue.seq_state(),
            now: self.now,
            rng: self.rng.state_save(),
            trackers,
            trace: self.trace.clone(),
            trace_window: self.trace_window.clone(),
            cpuidle: self.cpuidle.as_ref().map(|rt| rt.state_save()),
            thermal: self.thermal.as_ref().map(|rt| rt.state_save()),
            gov_skip: self.gov_skip.clone(),
            watchdog: self.watchdog,
            events_total: self.events_total,
            audit: self.audit.clone(),
            resilience: self.resilience.clone(),
        })
    }

    /// Rebuilds a simulation from [`SimSaved`] against `platform` — the
    /// platform the saved run was built on. The armed budget is not
    /// restored (budgets are per-run), matching `clone_state`.
    fn state_restore(platform: &Platform, saved: &SimSaved) -> Result<Simulation, SimError> {
        let n_clusters = platform.topology.n_clusters();
        let n_cpus = platform.topology.n_cpus();
        if saved.gov_skip.len() != n_clusters || saved.governors.len() != n_clusters {
            return Err(SimError::SnapshotUnsupported {
                detail: format!(
                    "saved state spans {} clusters but the platform has {n_clusters}",
                    saved.governors.len()
                ),
            });
        }
        let mut ctx = RestoreCtx::new();
        let kernel = Kernel::state_restore(&saved.kernel, &mut ctx, |b, ctx| {
            bl_workloads::restore_behavior(b, ctx)
        })?;
        let trackers = saved
            .trackers
            .iter()
            .map(|t| CompletionTracker::restore_from(t, &mut ctx))
            .collect();
        let governors = saved.governors.iter().map(GovernorState::restore).collect();
        let power_model = if saved.cfg.screen_on {
            PowerModel::screen_on()
        } else {
            PowerModel::screen_off()
        };
        Ok(Simulation {
            platform: platform.clone(),
            state: saved.state.clone(),
            kernel,
            governors,
            gov_window: saved.gov_window.clone(),
            power_model,
            meter: saved.meter.clone(),
            collector: MetricsCollector::state_restore(&platform.topology, &saved.collector),
            queue: EventQueue::from_parts(saved.queue.clone(), saved.queue_seq),
            now: saved.now,
            rng: SimRng::state_restore(&saved.rng),
            trackers,
            cfg: saved.cfg.clone(),
            trace: saved.trace.clone(),
            trace_window: saved.trace_window.clone(),
            cpuidle: saved
                .cpuidle
                .as_ref()
                .map(|s| CpuidleRt::state_restore(platform, s)),
            thermal: saved.thermal.as_ref().map(ThermalRt::state_restore),
            gov_skip: saved.gov_skip.clone(),
            watchdog: saved.watchdog,
            budget: ArmedBudget::default(),
            events_total: saved.events_total,
            audit: saved.audit.clone(),
            resilience: saved.resilience.clone(),
            skip_stash: Vec::new(),
            gov_fired: vec![None; n_clusters],
            activity_scratch: Vec::with_capacity(n_cpus),
            leak_scratch: Vec::with_capacity(n_cpus),
            utils_scratch: Vec::with_capacity(n_cpus),
            wake_scratch: Vec::new(),
            signal_scratch: Vec::new(),
        })
    }

    // ---- late bindings ------------------------------------------------------

    /// Replaces every cluster's governor mid-run — the late-binding hook
    /// forked sweep points use to vary governor tunables after a shared
    /// warm-up prefix. The new governors start with fresh internal state
    /// and take over at each cluster's next scheduled sample; the pending
    /// sample chain (and so the event order) is untouched, which is what
    /// keeps a forked run bit-identical to a cold run applying the same
    /// swap at the same instant.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] when the list does not cover every
    /// cluster.
    pub fn replace_governors(&mut self, governors: &[GovernorConfig]) -> Result<(), SimError> {
        if governors.len() != self.platform.topology.n_clusters() {
            return Err(SimError::config(format!(
                "need one governor per cluster: {} governors for {} clusters",
                governors.len(),
                self.platform.topology.n_clusters()
            )));
        }
        self.governors = governors.iter().map(|g| g.build()).collect();
        Ok(())
    }

    /// Schedules an additional fault plan mid-run — the late-binding hook
    /// forked sweep points use to vary fault onsets after a shared warm-up
    /// prefix. Faults dated before `now` fire immediately (at `now`), in
    /// plan order; a plan containing a thermal spike brings up the thermal
    /// model on the spot if the run started without one.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidFaultPlan`] when the plan names CPUs or clusters
    /// the platform does not have.
    pub fn schedule_late_faults(&mut self, plan: &FaultPlan) -> Result<(), SimError> {
        plan.validate(
            self.platform.topology.n_cpus(),
            self.platform.topology.n_clusters(),
        )?;
        if plan
            .events()
            .iter()
            .any(|e| matches!(e.kind, FaultKind::ThermalSpike { .. }))
        {
            self.ensure_thermal();
        }
        for ev in plan.events() {
            let mut ev = *ev;
            ev.at = ev.at.max(self.now);
            self.queue.schedule(ev.at, Ev::Fault(ev));
        }
        Ok(())
    }

    /// Brings up the thermal subsystem mid-run (ambient temperature, no
    /// throttling) if it is not already on. Idempotent.
    fn ensure_thermal(&mut self) {
        if self.thermal.is_some() {
            return;
        }
        let rt = ThermalRt::new(
            &self.platform,
            BusyWindow::open(self.kernel.accounting(), self.now),
            self.now,
        );
        let n_clusters = self.platform.topology.n_clusters();
        self.resilience.throttled_time = vec![SimDuration::ZERO; n_clusters];
        self.resilience.peak_temp_c = rt.nodes.temps().to_vec();
        self.thermal = Some(rt);
    }
}

/// A point-in-time deep copy of a running [`Simulation`], produced by
/// [`Simulation::snapshot`] and consumed (any number of times) by
/// [`Simulation::fork`].
///
/// Sweep points that share a warmed-up prefix and differ only in
/// late-binding parameters — governor tunables, fault onsets, run horizon —
/// fork from one snapshot instead of each replaying the prefix; the forks
/// are bit-identical to cold runs (proven by the snapshot test suite).
///
/// Snapshots hold task-local shared state (`Rc` workload handles), so they
/// are deliberately `!Send`: a snapshot is built and consumed on one worker
/// thread. The [`SimSnapshot::fingerprint`] is the portable half — a stable
/// digest of the captured state that result keys and journals can carry
/// across threads and processes.
pub struct SimSnapshot {
    sim: Simulation,
    fingerprint: u64,
}

/// The serialized form of a [`SimSnapshot`]: every dynamic component of the
/// run, behaviors included, as plain data. Produced by
/// [`SimSnapshot::to_payload`] and consumed by [`SimSnapshot::from_payload`];
/// the persistent snapshot store treats it as an opaque value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct SimSaved {
    cfg: SystemConfig,
    state: PlatformState,
    kernel: KernelSaved,
    governors: Vec<GovernorState>,
    gov_window: BusyWindow,
    meter: PowerMeter,
    collector: MetricsSaved,
    queue: Vec<(SimTime, u64, Ev)>,
    queue_seq: u64,
    now: SimTime,
    rng: RngState,
    trackers: Vec<TrackerSaved>,
    trace: Option<Trace>,
    trace_window: BusyWindow,
    cpuidle: Option<CpuidleRtSaved>,
    thermal: Option<ThermalRtSaved>,
    gov_skip: Vec<u32>,
    watchdog: u64,
    events_total: u64,
    audit: Option<InvariantGuard>,
    resilience: ResilienceStats,
}

impl SimSnapshot {
    /// Digest of the captured state (see [`Simulation::fingerprint`]).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The simulated time the snapshot was taken at.
    pub fn at(&self) -> SimTime {
        self.sim.now()
    }

    /// Serializes the snapshot into an opaque payload the persistent
    /// snapshot store can write to disk. The inverse is
    /// [`SimSnapshot::from_payload`].
    ///
    /// # Errors
    ///
    /// [`SimError::SnapshotUnsupported`] when some captured component has
    /// no serialized form (a closure-driven task, a governor without
    /// `state_save`) — the same states that cannot be forked.
    pub fn to_payload(&self) -> Result<serde::Value, SimError> {
        Ok(self.sim.state_save()?.ser_value())
    }

    /// Rebuilds a snapshot from a payload produced by
    /// [`SimSnapshot::to_payload`], against the same platform the saved
    /// run was built on.
    ///
    /// The restored state's fingerprint is recomputed from scratch and
    /// must equal `expect` — the digest the store recorded at publish
    /// time. Bytes are never trusted: a payload that deserializes cleanly
    /// but reconstructs a different state is rejected, and the caller
    /// falls back to cold simulation.
    ///
    /// # Errors
    ///
    /// [`SimError::SnapshotUnsupported`] for malformed payloads, platform
    /// mismatches, or a recomputed fingerprint differing from `expect`.
    pub fn from_payload(
        platform: &Platform,
        payload: &serde::Value,
        expect: u64,
    ) -> Result<SimSnapshot, SimError> {
        let saved = SimSaved::deser_value(payload).map_err(|e| SimError::SnapshotUnsupported {
            detail: format!("malformed snapshot payload: {e}"),
        })?;
        let sim = Simulation::state_restore(platform, &saved)?;
        let fingerprint = sim.fingerprint();
        if fingerprint != expect {
            return Err(SimError::SnapshotUnsupported {
                detail: format!(
                    "hydrated snapshot fingerprint {fingerprint:016x} does not match \
                     the recorded {expect:016x}; discarding"
                ),
            });
        }
        Ok(SimSnapshot { sim, fingerprint })
    }
}

impl std::fmt::Debug for SimSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimSnapshot")
            .field("at", &self.at())
            .field("fingerprint", &self.fingerprint)
            .finish()
    }
}

/// Fluent construction of a [`Simulation`]: platform, configuration, seed,
/// fault plan, thermal model and tracing in one chain.
///
/// ```
/// use biglittle::{Simulation, SystemConfig};
///
/// let sim = Simulation::builder()
///     .config(SystemConfig::baseline())
///     .seed(42)
///     .tracing(true)
///     .build()
///     .expect("valid config");
/// assert!(sim.trace().is_some());
/// ```
#[derive(Debug, Default)]
pub struct SimulationBuilder {
    platform: Option<Platform>,
    config: SystemConfig,
    tracing: bool,
    budget: RunBudget,
}

impl SimulationBuilder {
    /// Replaces the whole configuration (later `seed`/`faults`/`thermal`
    /// calls still refine it).
    pub fn config(mut self, cfg: SystemConfig) -> Self {
        self.config = cfg;
        self
    }

    /// Simulates `platform` instead of the default Exynos-5422 model
    /// (ablation presets, custom topologies).
    pub fn platform(mut self, platform: Platform) -> Self {
        self.platform = Some(platform);
        self
    }

    /// Sets the RNG seed for the run.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config = self.config.with_seed(seed);
        self
    }

    /// Injects a fault plan into the run.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.config = self.config.with_faults(plan);
        self
    }

    /// Enables or disables the thermal model.
    pub fn thermal(mut self, enabled: bool) -> Self {
        self.config = self.config.with_thermal(enabled);
        self
    }

    /// Enables per-sample time-series tracing from the start of the run.
    pub fn tracing(mut self, enabled: bool) -> Self {
        self.tracing = enabled;
        self
    }

    /// Arms an execution budget (wall-clock deadline, event cap,
    /// cancellation token) for the run. The wall clock starts when the
    /// simulation is built.
    pub fn budget(mut self, budget: RunBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Applies a [`SimOptions`] bundle: execution knobs (skip-ahead,
    /// auditing, watchdog limit) fold into the configuration and the
    /// budget limits (wall-clock deadline, event cap) arm a [`RunBudget`].
    /// The same bundle drives the `repro` binary's command-line flags, so
    /// a flag set and a builder chain cannot drift apart.
    pub fn options(mut self, options: &SimOptions) -> Self {
        options.apply_to(&mut self.config);
        self.budget = options.budget();
        self
    }

    /// Builds the simulation.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulation::try_with_platform`].
    pub fn build(self) -> Result<Simulation, SimError> {
        let platform = self.platform.unwrap_or_else(exynos5422);
        let mut sim = Simulation::try_with_platform(platform, self.config)?;
        if self.tracing {
            sim.enable_tracing();
        }
        if !self.budget.is_unlimited() {
            sim.set_budget(&self.budget);
        }
        Ok(sim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bl_governor::GovernorConfig;
    use bl_workloads::apps::app_by_name;

    #[test]
    fn empty_system_is_idle_at_min_freq() {
        let mut sim = Simulation::try_new(SystemConfig::baseline().screen(false)).unwrap();
        sim.try_run_until(SimTime::from_millis(200)).unwrap();
        let r = sim.finish();
        assert_eq!(r.tlp.idle_pct, 100.0);
        // Idle at min frequencies: power = base + leakage only, well under 600mW.
        assert!(
            r.avg_power_mw > 300.0 && r.avg_power_mw < 600.0,
            "{}",
            r.avg_power_mw
        );
    }

    #[test]
    fn userspace_governor_pins_frequency_immediately() {
        let sim =
            Simulation::try_new(SystemConfig::pinned_frequencies(1_300_000, 1_900_000)).unwrap();
        assert_eq!(sim.state().cluster_freq_khz(ClusterId(0)), 1_300_000);
        assert_eq!(sim.state().cluster_freq_khz(ClusterId(1)), 1_900_000);
    }

    #[test]
    fn spec_run_completes_and_uses_power() {
        let mut sim =
            Simulation::try_new(SystemConfig::pinned_frequencies(1_300_000, 800_000)).unwrap();
        let spec = &SpecKernel::suite()[0];
        sim.spawn_spec(spec, CpuId(0), SimDuration::from_millis(500));
        sim.try_run_until_or(SimTime::from_secs(5), |s| s.kernel().all_exited())
            .unwrap();
        assert!(sim.kernel().all_exited());
        let r = sim.finish();
        // Runtime on little@1.3 should be ~the reference duration.
        assert!((r.latency.unwrap().as_millis_f64() - 500.0).abs() < 20.0);
        assert!(r.avg_power_mw > 400.0);
    }

    #[test]
    fn interactive_governor_raises_frequency_under_load() {
        let mut sim = Simulation::builder()
            .config(
                SystemConfig::baseline()
                    .screen(false)
                    .with_governor(GovernorConfig::platform_default()),
            )
            .build()
            .unwrap();
        let spec = &SpecKernel::suite()[5]; // hmmer: compute-bound
        sim.spawn_spec(spec, CpuId(0), SimDuration::from_secs(2));
        sim.try_run_until(SimTime::from_millis(500)).unwrap();
        // A saturated little core must have been scaled up from 500 MHz.
        assert!(
            sim.state().cluster_freq_khz(ClusterId(0)) > 1_000_000,
            "freq = {}",
            sim.state().cluster_freq_khz(ClusterId(0))
        );
    }

    #[test]
    fn fps_app_produces_frames() {
        let app = app_by_name("Video Player").unwrap();
        let mut sim = Simulation::try_new(SystemConfig::baseline()).unwrap();
        sim.spawn_app(&app);
        sim.try_run_until(SimTime::from_secs(3)).unwrap();
        let r = sim.finish();
        let fps = r.fps.expect("frames were produced");
        assert!(fps.avg_fps > 30.0, "avg fps = {}", fps.avg_fps);
        assert!(r.tlp.tlp >= 1.0);
    }

    #[test]
    fn latency_app_finishes_before_cap() {
        let app = app_by_name("Photo Editor").unwrap();
        let mut sim = Simulation::try_new(SystemConfig::baseline()).unwrap();
        sim.spawn_app(&app);
        let r = sim.try_run_app(&app).unwrap();
        let lat = r.latency.expect("script must finish");
        assert!(lat < app.run_for, "latency {lat}");
        assert!(
            lat > SimDuration::from_secs(1),
            "latency {lat} suspiciously small"
        );
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use crate::config::SystemConfig;
    use bl_workloads::apps::app_by_name;

    #[test]
    fn tracing_records_samples_and_csv() {
        let app = app_by_name("Angry Bird").unwrap();
        let mut sim = Simulation::builder()
            .config(SystemConfig::baseline())
            .tracing(true)
            .build()
            .unwrap();
        sim.spawn_app(&app);
        sim.try_run_until(SimTime::from_secs(2)).unwrap();
        let trace = sim.trace().expect("enabled");
        // ~one row per 10ms metric sample.
        assert!(trace.len() >= 150, "rows = {}", trace.len());
        let csv = sim.trace().unwrap().to_csv();
        assert!(csv.lines().count() == trace.len() + 1);
        // A busy game shows multiple active little cores in some samples.
        assert!(trace.rows().iter().any(|r| r.active_little >= 2));
        // Frequencies stay on the OPP tables.
        let p = sim.platform();
        for row in trace.rows() {
            assert!(p
                .topology
                .cluster(ClusterId(0))
                .core
                .opps
                .index_of(row.little_khz)
                .is_some());
            assert!(p
                .topology
                .cluster(ClusterId(1))
                .core
                .opps
                .index_of(row.big_khz)
                .is_some());
        }
    }

    #[test]
    fn tracing_off_by_default() {
        let sim = Simulation::try_new(SystemConfig::baseline()).unwrap();
        assert!(sim.trace().is_none());
    }
}

#[cfg(test)]
mod cpuidle_tests {
    use super::*;
    use crate::config::SystemConfig;
    use bl_workloads::apps::app_by_name;

    #[test]
    fn deep_idle_lowers_idle_system_power() {
        let run = |cpuidle: bool| {
            let mut sim =
                Simulation::try_new(SystemConfig::baseline().screen(false).with_cpuidle(cpuidle))
                    .unwrap();
            sim.try_run_until(SimTime::from_secs(1)).unwrap();
            sim.finish().avg_power_mw
        };
        let shallow = run(false);
        let deep = run(true);
        assert!(
            deep < shallow - 10.0,
            "cpuidle should cut idle power: {deep:.0} vs {shallow:.0} mW"
        );
        // The floor stays above the non-CPU base power.
        assert!(deep > 350.0);
    }

    #[test]
    fn cpuidle_saves_on_idle_heavy_apps_without_hurting_them() {
        let app = app_by_name("Browser").unwrap();
        let base = {
            let mut sim = Simulation::try_new(SystemConfig::baseline()).unwrap();
            sim.spawn_app(&app);
            sim.try_run_app(&app).unwrap()
        };
        let idle = {
            let mut sim = Simulation::try_new(SystemConfig::baseline().with_cpuidle(true)).unwrap();
            sim.spawn_app(&app);
            sim.try_run_app(&app).unwrap()
        };
        assert!(
            idle.avg_power_mw < base.avg_power_mw,
            "{} vs {}",
            idle.avg_power_mw,
            base.avg_power_mw
        );
        // Timing is untouched (idle power is performance-neutral here).
        assert_eq!(idle.latency, base.latency);
    }
}
