//! Results of one simulation run.

use bl_metrics::{FpsStats, TlpStats};
use bl_simcore::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Everything measured during one run — the raw material for every table
/// and figure.
///
/// Equality compares the *simulated observables* only:
/// [`RunResult::events_processed`] is execution telemetry (how much work
/// the simulator did, which legitimately differs between e.g. the
/// skip-ahead and ticked paths producing identical observables) and is
/// excluded from `PartialEq`. It still serializes, so byte-comparisons of
/// result JSON additionally pin the deterministic event count.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    /// Simulated wall time of the run.
    pub sim_time: SimDuration,
    /// Average full-system power (the Monsoon-meter substitute reading).
    pub avg_power_mw: f64,
    /// Total energy over the run.
    pub energy_mj: f64,
    /// Script completion latency (latency-metric apps; `None` if the
    /// script did not finish within the cap, or for FPS apps).
    pub latency: Option<SimDuration>,
    /// FPS statistics (FPS-metric apps).
    pub fps: Option<FpsStats>,
    /// Table III row: idle/little/big shares and TLP.
    pub tlp: TlpStats,
    /// Table IV matrix: percent of samples per (big, little) active-core
    /// cell; indexed `[big][little]`.
    pub matrix_pct: Vec<Vec<f64>>,
    /// Figure 9 series: share of active time per little-cluster OPP.
    pub little_residency: Vec<f64>,
    /// Figure 10 series: share of active time per big-cluster OPP.
    pub big_residency: Vec<f64>,
    /// Table V row: percentages for Min, <50%, 50–70%, 70–95%, >95%, Full.
    pub efficiency_pct: [f64; 6],
    /// (up, down) HMP migration counts.
    pub migrations: (u64, u64),
    /// Simulator events processed over the *simulation's lifetime* —
    /// including any warm-up prefix a forked run inherited from its
    /// snapshot parent, so cold and forked runs of the same scenario
    /// report the same deterministic count. Divide by wall time for an
    /// events/sec throughput figure (the sweep stats and bench JSONs do).
    #[serde(default)]
    pub events_processed: u64,
    /// What the fault-injection / thermal layer did to the run (all zero
    /// for an undisturbed run; absent fields default when deserializing
    /// results written before this field existed).
    #[serde(default)]
    pub resilience: ResilienceStats,
}

/// Resilience telemetry: faults injected, hotplug churn, thermal
/// throttling and governor stalls observed over one run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ResilienceStats {
    /// Fault events applied from the plan.
    #[serde(default)]
    pub faults_injected: u32,
    /// Fault events the platform refused (e.g. offlining the last online
    /// little CPU). The run continues without them — refusal is the
    /// graceful-degradation path, not an error.
    #[serde(default)]
    pub faults_rejected: u32,
    /// CPUs taken offline by hotplug faults.
    #[serde(default)]
    pub hotplug_offline: u32,
    /// CPUs brought back online by hotplug faults.
    #[serde(default)]
    pub hotplug_online: u32,
    /// Tasks drained off dying CPUs and rehomed elsewhere.
    #[serde(default)]
    pub tasks_rehomed: u64,
    /// Thermal throttle trips (entering the throttled state) summed over
    /// clusters.
    #[serde(default)]
    pub throttle_trips: u32,
    /// Time spent throttled, per cluster (empty when the thermal model is
    /// off).
    #[serde(default)]
    pub throttled_time: Vec<SimDuration>,
    /// Peak junction temperature per cluster in °C (empty when the thermal
    /// model is off).
    #[serde(default)]
    pub peak_temp_c: Vec<f64>,
    /// Governor samples dropped by stall faults.
    #[serde(default)]
    pub gov_samples_missed: u64,
    /// Completed invariant-audit passes (0 when auditing is off).
    #[serde(default)]
    pub audit_checks: u64,
}

impl ResilienceStats {
    /// True when nothing disturbed the run (no faults and no throttling).
    pub fn is_quiet(&self) -> bool {
        self.faults_injected == 0
            && self.faults_rejected == 0
            && self.throttle_trips == 0
            && self.gov_samples_missed == 0
    }

    /// Total throttled time across every cluster.
    pub fn total_throttled(&self) -> SimDuration {
        self.throttled_time
            .iter()
            .fold(SimDuration::ZERO, |acc, d| acc + *d)
    }
}

impl PartialEq for RunResult {
    fn eq(&self, other: &Self) -> bool {
        // Exhaustive destructuring (no `..`): adding a field to RunResult
        // refuses to compile until this impl decides whether it is an
        // observable (compared) or telemetry (ignored).
        let RunResult {
            sim_time,
            avg_power_mw,
            energy_mj,
            latency,
            fps,
            tlp,
            matrix_pct,
            little_residency,
            big_residency,
            efficiency_pct,
            migrations,
            events_processed: _,
            resilience,
        } = self;
        *sim_time == other.sim_time
            && *avg_power_mw == other.avg_power_mw
            && *energy_mj == other.energy_mj
            && *latency == other.latency
            && *fps == other.fps
            && *tlp == other.tlp
            && *matrix_pct == other.matrix_pct
            && *little_residency == other.little_residency
            && *big_residency == other.big_residency
            && *efficiency_pct == other.efficiency_pct
            && *migrations == other.migrations
            && *resilience == other.resilience
    }
}

impl RunResult {
    /// Latency in milliseconds, if the script finished.
    pub fn latency_ms(&self) -> Option<f64> {
        self.latency.map(|d| d.as_millis_f64())
    }

    /// Performance score: higher is better. For latency apps this is
    /// `1/latency` (1/s); for FPS apps, the average FPS.
    ///
    /// Returns `None` when the run produced neither metric.
    pub fn perf_score(&self) -> Option<f64> {
        if let Some(l) = self.latency {
            return Some(1.0 / l.as_secs_f64());
        }
        self.fps.map(|f| f.avg_fps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy() -> RunResult {
        RunResult {
            sim_time: SimDuration::from_secs(1),
            avg_power_mw: 800.0,
            energy_mj: 800.0,
            latency: Some(SimDuration::from_millis(2500)),
            fps: None,
            tlp: TlpStats {
                idle_pct: 10.0,
                little_pct: 90.0,
                big_pct: 10.0,
                tlp: 2.0,
            },
            matrix_pct: vec![vec![0.0; 5]; 5],
            little_residency: vec![0.0; 9],
            big_residency: vec![0.0; 12],
            efficiency_pct: [0.0; 6],
            migrations: (0, 0),
            events_processed: 1234,
            resilience: ResilienceStats::default(),
        }
    }

    #[test]
    fn latency_helpers() {
        let r = dummy();
        assert_eq!(r.latency_ms(), Some(2500.0));
        assert!((r.perf_score().unwrap() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn fps_perf_score() {
        let mut r = dummy();
        r.latency = None;
        r.fps = Some(FpsStats {
            avg_fps: 58.0,
            min_fps: 40.0,
            frames: 100,
        });
        assert_eq!(r.perf_score(), Some(58.0));
        r.fps = None;
        assert_eq!(r.perf_score(), None);
    }

    #[test]
    fn serializes_to_json() {
        let r = dummy();
        let j = serde_json::to_string(&r).unwrap();
        let back: RunResult = serde_json::from_str(&j).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn resilience_stats_helpers() {
        let mut s = ResilienceStats::default();
        assert!(s.is_quiet());
        assert_eq!(s.total_throttled(), SimDuration::ZERO);
        s.throttle_trips = 1;
        s.throttled_time = vec![SimDuration::ZERO, SimDuration::from_millis(250)];
        assert!(!s.is_quiet());
        assert_eq!(s.total_throttled(), SimDuration::from_millis(250));
    }
}
