//! The utilization microbenchmark (paper Figure 6).
//!
//! "We vary the utilization of CPUs by forcing the micro-benchmark to pause
//! periodically to control the CPU utilization" (§II). The benchmark runs a
//! fixed duty cycle on a pinned core at a pinned frequency: compute for
//! `duty × period` of wall time, sleep for the rest, repeat.

use bl_kernel::task::{
    BehaviorCtx, BehaviorSaved, ForkCtx, RestoreCtx, SaveCtx, Step, TaskBehavior,
};
use bl_platform::cache::CacheModel;
use bl_platform::ids::CoreKind;
use bl_platform::perf::{PerfModel, Work, WorkProfile};
use bl_simcore::error::SimError;
use bl_simcore::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Duty-cycle spin/sleep benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MicroBench {
    work_per_period: Work,
    sleep_per_period: SimDuration,
    profile: WorkProfile,
    computing: bool,
}

impl MicroBench {
    /// Builds a microbenchmark that produces `duty` utilization on a core
    /// of `kind` with cache `l2` running at `freq_ghz`.
    ///
    /// # Panics
    ///
    /// Panics if `duty` is outside `[0, 1]` or `period` is zero.
    pub fn new(
        perf: &PerfModel,
        kind: CoreKind,
        l2: &CacheModel,
        freq_ghz: f64,
        duty: f64,
        period: SimDuration,
    ) -> Self {
        assert!((0.0..=1.0).contains(&duty), "duty must be in [0,1]");
        assert!(!period.is_zero(), "period must be positive");
        let profile = WorkProfile::compute_bound();
        let busy = period.mul_f64(duty);
        MicroBench {
            work_per_period: perf.work_for(&profile, kind, l2, freq_ghz, busy),
            sleep_per_period: period - busy,
            profile,
            computing: false,
        }
    }
}

impl TaskBehavior for MicroBench {
    fn next_step(&mut self, _ctx: &mut BehaviorCtx<'_>) -> Step {
        if self.computing {
            self.computing = false;
            if self.sleep_per_period.is_zero() {
                // 100% duty: go straight back to compute via the immediate
                // step loop.
                self.computing = true;
                return Step::Compute {
                    work: self.work_per_period,
                    profile: self.profile,
                };
            }
            Step::Sleep(self.sleep_per_period)
        } else {
            self.computing = true;
            if self.work_per_period.is_done() {
                // 0% duty: pure sleep.
                self.computing = false;
                return Step::Sleep(self.sleep_per_period);
            }
            Step::Compute {
                work: self.work_per_period,
                profile: self.profile,
            }
        }
    }

    fn fork_box(&self, _ctx: &mut ForkCtx) -> Option<Box<dyn TaskBehavior>> {
        Some(Box::new(self.clone()))
    }

    fn save_box(&self, _ctx: &mut SaveCtx) -> Option<BehaviorSaved> {
        Some(BehaviorSaved {
            kind: "microbench".to_string(),
            data: self.ser_value(),
        })
    }
}

pub(crate) fn restore_microbench(
    data: &serde::Value,
    _ctx: &mut RestoreCtx,
) -> Result<Box<dyn TaskBehavior>, SimError> {
    let b =
        MicroBench::deser_value(data).map_err(|e| crate::threads::bad_payload("microbench", e))?;
    Ok(Box::new(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bl_simcore::time::SimTime;

    fn mk(duty: f64) -> MicroBench {
        MicroBench::new(
            &PerfModel::default(),
            CoreKind::Little,
            &CacheModel::new(512, 8, 64),
            1.3,
            duty,
            SimDuration::from_millis(10),
        )
    }

    fn step(b: &mut MicroBench) -> Step {
        let mut wakes = Vec::new();
        let mut signals = Vec::new();
        let mut ctx = BehaviorCtx::new(SimTime::ZERO, &mut wakes, &mut signals);
        b.next_step(&mut ctx)
    }

    #[test]
    fn half_duty_alternates_equal_halves() {
        let mut b = mk(0.5);
        match step(&mut b) {
            Step::Compute { work, .. } => {
                // 5ms of little@1.3 compute-bound work.
                let expected = 1.3e9 / 1.6 * 0.005;
                assert!((work.instructions() - expected).abs() / expected < 1e-9);
            }
            other => panic!("unexpected {other:?}"),
        }
        match step(&mut b) {
            Step::Sleep(d) => assert_eq!(d, SimDuration::from_millis(5)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn full_duty_never_sleeps() {
        let mut b = mk(1.0);
        for _ in 0..10 {
            assert!(matches!(step(&mut b), Step::Compute { .. }));
        }
    }

    #[test]
    fn zero_duty_never_computes() {
        let mut b = mk(0.0);
        for _ in 0..10 {
            assert!(matches!(step(&mut b), Step::Sleep(_)));
        }
    }

    #[test]
    #[should_panic(expected = "duty must be in")]
    fn invalid_duty_rejected() {
        mk(1.5);
    }
}
