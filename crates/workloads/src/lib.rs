//! # bl-workloads
//!
//! Workload models substituting for the paper's benchmark programs:
//!
//! * [`spec`] — twelve SPEC-CPU2006-like single-threaded kernels spanning
//!   compute-bound, cache-sensitive and memory-streaming behavior, used by
//!   the architecture characterization (Figures 2 and 3).
//! * [`microbench`] — the duty-cycle utilization microbenchmark (Figure 6).
//! * [`threads`] — reusable task behaviors: frame loops, periodic workers,
//!   continuous batch work, worker pools fed by a job queue, and scripted
//!   UI threads that model a user interaction sequence.
//! * [`apps`] — the twelve interactive mobile applications of Table II as
//!   generative multi-thread models, with per-app parameters calibrated
//!   against the paper's measured TLP, idle and big-core-usage figures
//!   (Tables III–V).
//!
//! Work amounts are expressed in "milliseconds on a little core at 1.3 GHz"
//! via [`work_ms`], which makes app parameters readable and portable across
//! experiments that change core type and frequency.

#![warn(missing_docs)]

pub mod apps;
pub mod microbench;
pub mod replay;
pub mod spec;
pub mod threads;

use bl_kernel::task::{BehaviorSaved, RestoreCtx, TaskBehavior};
use bl_platform::ids::CoreKind;
use bl_platform::perf::{Work, WorkProfile};
use bl_platform::topology::Platform;
use bl_simcore::error::SimError;
use bl_simcore::time::SimDuration;

/// Converts "milliseconds on a little core at its maximum 1.3 GHz" into an
/// instruction count for `profile` on `platform`.
///
/// ```
/// use bl_platform::exynos::exynos5422;
/// use bl_platform::perf::WorkProfile;
/// let p = exynos5422();
/// let w = bl_workloads::work_ms(&p, &WorkProfile::compute_bound(), 10.0);
/// assert!(w.instructions() > 0.0);
/// ```
pub fn work_ms(platform: &Platform, profile: &WorkProfile, ms: f64) -> Work {
    let little = platform
        .topology
        .cluster_of_kind(CoreKind::Little)
        .expect("platform has little cores");
    platform.perf.work_for(
        profile,
        CoreKind::Little,
        &little.l2,
        little.core.opps.max_khz() as f64 / 1e6,
        SimDuration::from_secs_f64(ms / 1e3),
    )
}

/// Rebuilds a task behavior from its [`BehaviorSaved`] payload, as produced
/// by `TaskBehavior::save_box` on any behavior defined in this crate.
///
/// Shared handles (completion trackers, job queues, scene syncs) are
/// re-linked through `ctx`, reproducing the exact sharing topology of the
/// saved kernel.
///
/// # Errors
///
/// Returns [`SimError::SnapshotUnsupported`] for unknown behavior kinds or
/// malformed payloads.
pub fn restore_behavior(
    saved: &BehaviorSaved,
    ctx: &mut RestoreCtx,
) -> Result<Box<dyn TaskBehavior>, SimError> {
    match saved.kind.as_str() {
        "pool_worker" => threads::restore_pool_worker(&saved.data, ctx),
        "continuous" => threads::restore_continuous(&saved.data, ctx),
        "frame_loop" => threads::restore_frame_loop(&saved.data, ctx),
        "periodic" => threads::restore_periodic(&saved.data, ctx),
        "ui_script" => threads::restore_ui_script(&saved.data, ctx),
        "microbench" => microbench::restore_microbench(&saved.data, ctx),
        "trace_replay" => replay::restore_trace_replay(&saved.data, ctx),
        other => Err(SimError::SnapshotUnsupported {
            detail: format!("unknown behavior kind {other:?}"),
        }),
    }
}

/// How an application's performance is scored (paper Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum PerfMetric {
    /// Time to complete a scripted sequence of user actions.
    Latency,
    /// Frames per second (average and worst 1-second window).
    Fps,
}

impl std::fmt::Display for PerfMetric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PerfMetric::Latency => write!(f, "Latency"),
            PerfMetric::Fps => write!(f, "FPS"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bl_platform::exynos::exynos5422;

    #[test]
    fn work_ms_scales_linearly() {
        let p = exynos5422();
        let prof = WorkProfile::compute_bound();
        let w1 = work_ms(&p, &prof, 1.0);
        let w10 = work_ms(&p, &prof, 10.0);
        assert!((w10.instructions() / w1.instructions() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn metric_display() {
        assert_eq!(PerfMetric::Latency.to_string(), "Latency");
        assert_eq!(PerfMetric::Fps.to_string(), "FPS");
    }
}
