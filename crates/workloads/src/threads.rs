//! Reusable task behaviors that mobile-app models are assembled from.
//!
//! * [`ContinuousTask`] — batch work in chunks with optional I/O pauses
//!   (encoder, virus scanner, SPEC processes).
//! * [`FrameLoop`] — vsync-paced rendering with per-frame work draws and
//!   frame-drop semantics (games, video players).
//! * [`PeriodicTask`] — fixed-period light work (audio, decoder callbacks,
//!   background services).
//! * [`JobQueue`] + [`PoolWorker`] — a work queue with blocked workers
//!   (render/encode helper pools).
//! * [`UiScriptThread`] — the scripted user-interaction sequence of
//!   latency-metric apps: think time, a UI burst, then fan-out jobs.
//! * [`CompletionTracker`] — counts finished pipeline pieces and fires the
//!   `ScriptDone` signal that defines an app's latency.

use bl_kernel::task::{
    AppSignal, BehaviorCtx, BehaviorSaved, ForkCtx, RestoreCtx, SaveCtx, Step, TaskBehavior, TaskId,
};
use bl_platform::perf::{Work, WorkProfile};
use bl_simcore::error::SimError;
use bl_simcore::rng::{RngState, SimRng};
use bl_simcore::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// Maps a behavior-payload decode failure onto the typed snapshot error.
pub(crate) fn bad_payload(kind: &str, e: serde::Error) -> SimError {
    SimError::SnapshotUnsupported {
        detail: format!("malformed {kind} behavior payload: {e}"),
    }
}

// ---------------------------------------------------------------------------
// Completion tracking
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct TrackerInner {
    done: usize,
    target: usize,
    fired: bool,
}

/// Serialized form of a [`CompletionTracker`] handle: the counter state
/// plus the [`SaveCtx`] share id that reunites all holders on restore.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrackerSaved {
    share: u64,
    inner: TrackerInner,
}

/// Shared counter of completed pipeline pieces; fires
/// [`AppSignal::ScriptDone`] when the target is reached.
#[derive(Debug, Clone)]
pub struct CompletionTracker(Rc<RefCell<TrackerInner>>);

impl CompletionTracker {
    /// Creates a tracker expecting `target` completions.
    pub fn new(target: usize) -> Self {
        CompletionTracker(Rc::new(RefCell::new(TrackerInner {
            done: 0,
            target,
            fired: false,
        })))
    }

    /// Registers one completion, signalling `ActionDone` and — at the
    /// target — `ScriptDone`.
    pub fn complete(&self, ctx: &mut BehaviorCtx<'_>) {
        let mut inner = self.0.borrow_mut();
        inner.done += 1;
        ctx.signal(AppSignal::ActionDone);
        if inner.done >= inner.target && !inner.fired {
            inner.fired = true;
            ctx.signal(AppSignal::ScriptDone);
        }
    }

    /// Completions so far.
    pub fn done(&self) -> usize {
        self.0.borrow().done
    }

    /// Whether the target was reached.
    pub fn is_done(&self) -> bool {
        self.0.borrow().fired
    }

    /// Deep-copies the tracker for a forked simulation, deduplicated
    /// through `ctx`: every behavior holding this tracker in the parent
    /// receives the *same* new tracker in the fork, severed from the
    /// parent's counter.
    pub fn fork_with(&self, ctx: &mut ForkCtx) -> CompletionTracker {
        let key = Rc::as_ptr(&self.0) as usize;
        ctx.dedup(key, || {
            CompletionTracker(Rc::new(RefCell::new(self.0.borrow().clone())))
        })
    }

    /// Serializes the tracker through `ctx`, recording its share id so all
    /// holders of this handle reunite on restore (the persistent-snapshot
    /// analog of [`CompletionTracker::fork_with`]).
    pub fn save_with(&self, ctx: &mut SaveCtx) -> TrackerSaved {
        TrackerSaved {
            share: ctx.share_id(Rc::as_ptr(&self.0) as usize),
            inner: self.0.borrow().clone(),
        }
    }

    /// Rebuilds a tracker from its saved form, deduplicated through `ctx`.
    pub fn restore_from(saved: &TrackerSaved, ctx: &mut RestoreCtx) -> CompletionTracker {
        ctx.dedup(saved.share, || {
            CompletionTracker(Rc::new(RefCell::new(saved.inner.clone())))
        })
    }
}

// ---------------------------------------------------------------------------
// Job queue and pool workers
// ---------------------------------------------------------------------------

/// One unit of fan-out work.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Job {
    /// Work amount.
    pub work: Work,
    /// Architectural profile of the job.
    pub profile: WorkProfile,
    /// Whether finishing this job counts toward the completion tracker.
    pub completes: bool,
}

#[derive(Debug, Clone, Default)]
struct QueueInner {
    jobs: VecDeque<Job>,
    workers: Vec<TaskId>,
}

/// A shared FIFO of jobs consumed by [`PoolWorker`]s.
#[derive(Debug, Clone, Default)]
pub struct JobQueue(Rc<RefCell<QueueInner>>);

impl JobQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        JobQueue::default()
    }

    /// Registers a worker to be woken on pushes (call after spawning it).
    pub fn register_worker(&self, tid: TaskId) {
        self.0.borrow_mut().workers.push(tid);
    }

    /// Pushes a job and wakes all registered workers.
    pub fn push_and_wake(&self, job: Job, ctx: &mut BehaviorCtx<'_>) {
        let mut inner = self.0.borrow_mut();
        inner.jobs.push_back(job);
        for w in &inner.workers {
            ctx.wake(*w);
        }
    }

    /// Pops the oldest job.
    pub fn pop(&self) -> Option<Job> {
        self.0.borrow_mut().jobs.pop_front()
    }

    /// Jobs currently queued.
    pub fn len(&self) -> usize {
        self.0.borrow().jobs.len()
    }

    /// True when no jobs are queued.
    pub fn is_empty(&self) -> bool {
        self.0.borrow().jobs.is_empty()
    }

    /// Deep-copies the queue (jobs and worker registrations) for a forked
    /// simulation, deduplicated through `ctx` so all workers of one pool
    /// share one new queue.
    pub fn fork_with(&self, ctx: &mut ForkCtx) -> JobQueue {
        let key = Rc::as_ptr(&self.0) as usize;
        ctx.dedup(key, || {
            JobQueue(Rc::new(RefCell::new(self.0.borrow().clone())))
        })
    }

    pub(crate) fn save_with(&self, ctx: &mut SaveCtx) -> QueueSaved {
        let inner = self.0.borrow();
        QueueSaved {
            share: ctx.share_id(Rc::as_ptr(&self.0) as usize),
            jobs: inner.jobs.iter().copied().collect(),
            workers: inner.workers.clone(),
        }
    }

    pub(crate) fn restore_from(saved: &QueueSaved, ctx: &mut RestoreCtx) -> JobQueue {
        ctx.dedup(saved.share, || {
            JobQueue(Rc::new(RefCell::new(QueueInner {
                jobs: saved.jobs.iter().copied().collect(),
                workers: saved.workers.clone(),
            })))
        })
    }
}

/// Serialized form of a [`JobQueue`] handle (jobs flattened from the
/// in-memory `VecDeque`, FIFO order preserved).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct QueueSaved {
    share: u64,
    jobs: Vec<Job>,
    workers: Vec<TaskId>,
}

/// A worker that drains a [`JobQueue`], blocking when it is empty.
#[derive(Debug)]
pub struct PoolWorker {
    queue: JobQueue,
    tracker: Option<CompletionTracker>,
    pending_complete: bool,
}

impl PoolWorker {
    /// Creates a worker on `queue`; completions are reported to `tracker`
    /// when given.
    pub fn new(queue: JobQueue, tracker: Option<CompletionTracker>) -> Self {
        PoolWorker {
            queue,
            tracker,
            pending_complete: false,
        }
    }
}

impl TaskBehavior for PoolWorker {
    fn next_step(&mut self, ctx: &mut BehaviorCtx<'_>) -> Step {
        if self.pending_complete {
            self.pending_complete = false;
            if let Some(t) = &self.tracker {
                t.complete(ctx);
            }
        }
        match self.queue.pop() {
            Some(job) => {
                self.pending_complete = job.completes;
                Step::Compute {
                    work: job.work,
                    profile: job.profile,
                }
            }
            None => Step::Block,
        }
    }

    fn fork_box(&self, ctx: &mut ForkCtx) -> Option<Box<dyn TaskBehavior>> {
        Some(Box::new(PoolWorker {
            queue: self.queue.fork_with(ctx),
            tracker: self.tracker.as_ref().map(|t| t.fork_with(ctx)),
            pending_complete: self.pending_complete,
        }))
    }

    fn save_box(&self, ctx: &mut SaveCtx) -> Option<BehaviorSaved> {
        let saved = PoolWorkerSaved {
            queue: self.queue.save_with(ctx),
            tracker: self.tracker.as_ref().map(|t| t.save_with(ctx)),
            pending_complete: self.pending_complete,
        };
        Some(BehaviorSaved {
            kind: "pool_worker".to_string(),
            data: saved.ser_value(),
        })
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct PoolWorkerSaved {
    queue: QueueSaved,
    tracker: Option<TrackerSaved>,
    pending_complete: bool,
}

pub(crate) fn restore_pool_worker(
    data: &serde::Value,
    ctx: &mut RestoreCtx,
) -> Result<Box<dyn TaskBehavior>, SimError> {
    let s = PoolWorkerSaved::deser_value(data).map_err(|e| bad_payload("pool_worker", e))?;
    Ok(Box::new(PoolWorker {
        queue: JobQueue::restore_from(&s.queue, ctx),
        tracker: s
            .tracker
            .as_ref()
            .map(|t| CompletionTracker::restore_from(t, ctx)),
        pending_complete: s.pending_complete,
    }))
}

// ---------------------------------------------------------------------------
// Continuous batch work
// ---------------------------------------------------------------------------

/// Executes a fixed budget of work in chunks, optionally pausing for I/O
/// between chunks; exits when the budget drains.
#[derive(Debug)]
pub struct ContinuousTask {
    rng: SimRng,
    remaining: Work,
    chunk: Work,
    profile: WorkProfile,
    io_sleep: SimDuration,
    io_prob: f64,
    signal_done: bool,
    tracker: Option<CompletionTracker>,
    just_computed: bool,
}

impl ContinuousTask {
    /// Creates a batch task.
    ///
    /// `io_prob` is the chance of sleeping `io_sleep` after each chunk;
    /// `signal_done` emits `ScriptDone` directly at budget exhaustion (for
    /// single-process workloads without a tracker).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        rng: SimRng,
        total: Work,
        chunk: Work,
        profile: WorkProfile,
        io_sleep: SimDuration,
        io_prob: f64,
        signal_done: bool,
    ) -> Self {
        assert!(chunk.instructions() > 0.0, "chunk must be positive");
        ContinuousTask {
            rng,
            remaining: total,
            chunk,
            profile,
            io_sleep,
            io_prob,
            signal_done,
            tracker: None,
            just_computed: false,
        }
    }

    /// Reports the budget completion to `tracker` as well.
    pub fn with_tracker(mut self, tracker: CompletionTracker) -> Self {
        self.tracker = Some(tracker);
        self
    }
}

impl TaskBehavior for ContinuousTask {
    fn next_step(&mut self, ctx: &mut BehaviorCtx<'_>) -> Step {
        if self.remaining.is_done() {
            if let Some(t) = &self.tracker {
                t.complete(ctx);
            }
            if self.signal_done {
                ctx.signal(AppSignal::ScriptDone);
            }
            return Step::Exit;
        }
        if self.just_computed && !self.io_sleep.is_zero() && self.rng.chance(self.io_prob) {
            self.just_computed = false;
            return Step::Sleep(self.io_sleep);
        }
        let w = if self.remaining.instructions() < self.chunk.instructions() {
            self.remaining
        } else {
            self.chunk
        };
        self.remaining -= w;
        self.just_computed = true;
        Step::Compute {
            work: w,
            profile: self.profile,
        }
    }

    fn fork_box(&self, ctx: &mut ForkCtx) -> Option<Box<dyn TaskBehavior>> {
        Some(Box::new(ContinuousTask {
            rng: self.rng.clone(),
            remaining: self.remaining,
            chunk: self.chunk,
            profile: self.profile,
            io_sleep: self.io_sleep,
            io_prob: self.io_prob,
            signal_done: self.signal_done,
            tracker: self.tracker.as_ref().map(|t| t.fork_with(ctx)),
            just_computed: self.just_computed,
        }))
    }

    fn save_box(&self, ctx: &mut SaveCtx) -> Option<BehaviorSaved> {
        let saved = ContinuousSaved {
            rng: self.rng.state_save(),
            remaining: self.remaining,
            chunk: self.chunk,
            profile: self.profile,
            io_sleep: self.io_sleep,
            io_prob: self.io_prob,
            signal_done: self.signal_done,
            tracker: self.tracker.as_ref().map(|t| t.save_with(ctx)),
            just_computed: self.just_computed,
        };
        Some(BehaviorSaved {
            kind: "continuous".to_string(),
            data: saved.ser_value(),
        })
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ContinuousSaved {
    rng: RngState,
    remaining: Work,
    chunk: Work,
    profile: WorkProfile,
    io_sleep: SimDuration,
    io_prob: f64,
    signal_done: bool,
    tracker: Option<TrackerSaved>,
    just_computed: bool,
}

pub(crate) fn restore_continuous(
    data: &serde::Value,
    ctx: &mut RestoreCtx,
) -> Result<Box<dyn TaskBehavior>, SimError> {
    let s = ContinuousSaved::deser_value(data).map_err(|e| bad_payload("continuous", e))?;
    Ok(Box::new(ContinuousTask {
        rng: SimRng::state_restore(&s.rng),
        remaining: s.remaining,
        chunk: s.chunk,
        profile: s.profile,
        io_sleep: s.io_sleep,
        io_prob: s.io_prob,
        signal_done: s.signal_done,
        tracker: s
            .tracker
            .as_ref()
            .map(|t| CompletionTracker::restore_from(t, ctx)),
        just_computed: s.just_computed,
    }))
}

// ---------------------------------------------------------------------------
// Scene synchronization (correlated pauses)
// ---------------------------------------------------------------------------

/// Shared pause state for one app's thread family: when the render loop
/// hits a scene-load stall it parks the whole family, producing the
/// correlated idle gaps real games show between levels/menus.
#[derive(Debug, Clone, Default)]
pub struct SceneSync(Rc<std::cell::Cell<SimTime>>);

impl SceneSync {
    /// Creates an un-paused scene.
    pub fn new() -> Self {
        SceneSync::default()
    }

    /// Declares a pause until `t`.
    pub fn pause_until(&self, t: SimTime) {
        if t > self.0.get() {
            self.0.set(t);
        }
    }

    /// If the scene is paused at `now`, the time to sleep until.
    pub fn paused_until(&self, now: SimTime) -> Option<SimTime> {
        let t = self.0.get();
        (t > now).then_some(t)
    }

    /// Deep-copies the scene fence for a forked simulation, deduplicated
    /// through `ctx` so the whole thread family stays synchronized on one
    /// new fence.
    pub fn fork_with(&self, ctx: &mut ForkCtx) -> SceneSync {
        let key = Rc::as_ptr(&self.0) as usize;
        ctx.dedup(key, || {
            SceneSync(Rc::new(std::cell::Cell::new(self.0.get())))
        })
    }

    pub(crate) fn save_with(&self, ctx: &mut SaveCtx) -> SceneSaved {
        SceneSaved {
            share: ctx.share_id(Rc::as_ptr(&self.0) as usize),
            paused_until: self.0.get(),
        }
    }

    pub(crate) fn restore_from(saved: &SceneSaved, ctx: &mut RestoreCtx) -> SceneSync {
        ctx.dedup(saved.share, || {
            SceneSync(Rc::new(std::cell::Cell::new(saved.paused_until)))
        })
    }
}

/// Serialized form of a [`SceneSync`] fence.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub(crate) struct SceneSaved {
    share: u64,
    paused_until: SimTime,
}

// ---------------------------------------------------------------------------
// Frame loop
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
enum FrameState {
    Idle,
    Computed { frame_start: SimTime },
}

/// Vsync-paced render loop: draw a frame's work, emit the frame signal,
/// sleep to the next vsync (skipping missed ones — dropped frames).
/// Optional stalls model scene loads / menu pauses where rendering stops
/// entirely for a while.
#[derive(Debug)]
pub struct FrameLoop {
    rng: SimRng,
    vsync: SimDuration,
    work_median: Work,
    sigma: f64,
    profile: WorkProfile,
    emit_frames: bool,
    stall_prob: f64,
    stall: SimDuration,
    scene: Option<SceneSync>,
    next_vsync: Option<SimTime>,
    state: FrameState,
}

impl FrameLoop {
    /// Creates a frame loop at `fps` with per-frame work drawn log-normally
    /// around `work_median` (shape `sigma`). Only one thread per app should
    /// set `emit_frames` (the one producing visible frames).
    pub fn new(
        rng: SimRng,
        fps: f64,
        work_median: Work,
        sigma: f64,
        profile: WorkProfile,
        emit_frames: bool,
    ) -> Self {
        assert!(fps > 0.0, "fps must be positive");
        FrameLoop {
            rng,
            vsync: SimDuration::from_secs_f64(1.0 / fps),
            work_median,
            sigma,
            profile,
            emit_frames,
            stall_prob: 0.0,
            stall: SimDuration::ZERO,
            scene: None,
            next_vsync: None,
            state: FrameState::Idle,
        }
    }

    /// Joins a scene family: this loop honors (and, if it stalls itself,
    /// declares) family-wide pauses.
    pub fn with_scene(mut self, scene: SceneSync) -> Self {
        self.scene = Some(scene);
        self
    }

    /// Adds scene-load stalls: after each frame, with probability `prob`,
    /// rendering pauses for `stall` before resuming on the vsync grid.
    pub fn with_stalls(mut self, prob: f64, stall: SimDuration) -> Self {
        assert!(
            (0.0..=1.0).contains(&prob),
            "stall probability must be in [0, 1]"
        );
        self.stall_prob = prob;
        self.stall = stall;
        self
    }

    fn draw_work(&mut self) -> Work {
        Work::from_instructions(
            self.rng
                .lognormal(self.work_median.instructions(), self.sigma),
        )
    }
}

impl TaskBehavior for FrameLoop {
    fn next_step(&mut self, ctx: &mut BehaviorCtx<'_>) -> Step {
        match self.state {
            FrameState::Idle => {
                // Honor a family-wide pause before starting a frame.
                if let Some(until) = self.scene.as_ref().and_then(|s| s.paused_until(ctx.now)) {
                    return Step::SleepUntil(until);
                }
                let work = self.draw_work();
                self.state = FrameState::Computed {
                    frame_start: ctx.now,
                };
                Step::Compute {
                    work,
                    profile: self.profile,
                }
            }
            FrameState::Computed { frame_start } => {
                if self.emit_frames {
                    ctx.signal(AppSignal::Frame {
                        frame_time: ctx.now.duration_since(frame_start),
                    });
                }
                let mut resume = ctx.now;
                if self.stall_prob > 0.0 && self.rng.chance(self.stall_prob) {
                    resume += self.stall; // scene load: no frames
                    if let Some(scene) = &self.scene {
                        scene.pause_until(resume); // park the whole family
                    }
                }
                let mut nv = self.next_vsync.unwrap_or(frame_start) + self.vsync;
                while nv <= resume {
                    nv += self.vsync; // missed vsync: frame dropped
                }
                self.next_vsync = Some(nv);
                self.state = FrameState::Idle;
                Step::SleepUntil(nv)
            }
        }
    }

    fn fork_box(&self, ctx: &mut ForkCtx) -> Option<Box<dyn TaskBehavior>> {
        Some(Box::new(FrameLoop {
            rng: self.rng.clone(),
            vsync: self.vsync,
            work_median: self.work_median,
            sigma: self.sigma,
            profile: self.profile,
            emit_frames: self.emit_frames,
            stall_prob: self.stall_prob,
            stall: self.stall,
            scene: self.scene.as_ref().map(|s| s.fork_with(ctx)),
            next_vsync: self.next_vsync,
            state: self.state,
        }))
    }

    fn save_box(&self, ctx: &mut SaveCtx) -> Option<BehaviorSaved> {
        let saved = FrameLoopSaved {
            rng: self.rng.state_save(),
            vsync: self.vsync,
            work_median: self.work_median,
            sigma: self.sigma,
            profile: self.profile,
            emit_frames: self.emit_frames,
            stall_prob: self.stall_prob,
            stall: self.stall,
            scene: self.scene.as_ref().map(|s| s.save_with(ctx)),
            next_vsync: self.next_vsync,
            state: self.state,
        };
        Some(BehaviorSaved {
            kind: "frame_loop".to_string(),
            data: saved.ser_value(),
        })
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct FrameLoopSaved {
    rng: RngState,
    vsync: SimDuration,
    work_median: Work,
    sigma: f64,
    profile: WorkProfile,
    emit_frames: bool,
    stall_prob: f64,
    stall: SimDuration,
    scene: Option<SceneSaved>,
    next_vsync: Option<SimTime>,
    state: FrameState,
}

pub(crate) fn restore_frame_loop(
    data: &serde::Value,
    ctx: &mut RestoreCtx,
) -> Result<Box<dyn TaskBehavior>, SimError> {
    let s = FrameLoopSaved::deser_value(data).map_err(|e| bad_payload("frame_loop", e))?;
    Ok(Box::new(FrameLoop {
        rng: SimRng::state_restore(&s.rng),
        vsync: s.vsync,
        work_median: s.work_median,
        sigma: s.sigma,
        profile: s.profile,
        emit_frames: s.emit_frames,
        stall_prob: s.stall_prob,
        stall: s.stall,
        scene: s.scene.as_ref().map(|sc| SceneSync::restore_from(sc, ctx)),
        next_vsync: s.next_vsync,
        state: s.state,
    }))
}

// ---------------------------------------------------------------------------
// Periodic light work
// ---------------------------------------------------------------------------

/// Fixed-period background work (audio mixers, decoder callbacks, polling
/// services): compute a draw, sleep roughly a period, repeat forever.
#[derive(Debug)]
pub struct PeriodicTask {
    rng: SimRng,
    period: SimDuration,
    jitter_frac: f64,
    work_median: Work,
    sigma: f64,
    profile: WorkProfile,
    scene: Option<SceneSync>,
    computing: bool,
}

impl PeriodicTask {
    /// Creates a periodic task; each cycle sleeps `period ± jitter_frac`
    /// uniformly and computes a log-normal draw around `work_median`.
    pub fn new(
        rng: SimRng,
        period: SimDuration,
        jitter_frac: f64,
        work_median: Work,
        sigma: f64,
        profile: WorkProfile,
    ) -> Self {
        assert!(!period.is_zero(), "period must be positive");
        assert!(
            (0.0..1.0).contains(&jitter_frac),
            "jitter fraction must be in [0, 1)"
        );
        PeriodicTask {
            rng,
            period,
            jitter_frac,
            work_median,
            sigma,
            profile,
            scene: None,
            computing: false,
        }
    }

    /// Joins a scene family: this task sleeps through family-wide pauses.
    pub fn with_scene(mut self, scene: SceneSync) -> Self {
        self.scene = Some(scene);
        self
    }
}

impl TaskBehavior for PeriodicTask {
    fn next_step(&mut self, ctx: &mut BehaviorCtx<'_>) -> Step {
        if let Some(until) = self.scene.as_ref().and_then(|s| s.paused_until(ctx.now)) {
            self.computing = false;
            return Step::SleepUntil(until);
        }
        if self.computing {
            self.computing = false;
            let lo = self.period.mul_f64(1.0 - self.jitter_frac);
            let hi = self.period.mul_f64(1.0 + self.jitter_frac);
            let d = if lo == hi {
                lo
            } else {
                self.rng.uniform_duration(lo, hi)
            };
            Step::Sleep(d)
        } else {
            self.computing = true;
            let work = Work::from_instructions(
                self.rng
                    .lognormal(self.work_median.instructions(), self.sigma),
            );
            let _ = ctx;
            Step::Compute {
                work,
                profile: self.profile,
            }
        }
    }

    fn fork_box(&self, ctx: &mut ForkCtx) -> Option<Box<dyn TaskBehavior>> {
        Some(Box::new(PeriodicTask {
            rng: self.rng.clone(),
            period: self.period,
            jitter_frac: self.jitter_frac,
            work_median: self.work_median,
            sigma: self.sigma,
            profile: self.profile,
            scene: self.scene.as_ref().map(|s| s.fork_with(ctx)),
            computing: self.computing,
        }))
    }

    fn save_box(&self, ctx: &mut SaveCtx) -> Option<BehaviorSaved> {
        let saved = PeriodicSaved {
            rng: self.rng.state_save(),
            period: self.period,
            jitter_frac: self.jitter_frac,
            work_median: self.work_median,
            sigma: self.sigma,
            profile: self.profile,
            scene: self.scene.as_ref().map(|s| s.save_with(ctx)),
            computing: self.computing,
        };
        Some(BehaviorSaved {
            kind: "periodic".to_string(),
            data: saved.ser_value(),
        })
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct PeriodicSaved {
    rng: RngState,
    period: SimDuration,
    jitter_frac: f64,
    work_median: Work,
    sigma: f64,
    profile: WorkProfile,
    scene: Option<SceneSaved>,
    computing: bool,
}

pub(crate) fn restore_periodic(
    data: &serde::Value,
    ctx: &mut RestoreCtx,
) -> Result<Box<dyn TaskBehavior>, SimError> {
    let s = PeriodicSaved::deser_value(data).map_err(|e| bad_payload("periodic", e))?;
    Ok(Box::new(PeriodicTask {
        rng: SimRng::state_restore(&s.rng),
        period: s.period,
        jitter_frac: s.jitter_frac,
        work_median: s.work_median,
        sigma: s.sigma,
        profile: s.profile,
        scene: s.scene.as_ref().map(|sc| SceneSync::restore_from(sc, ctx)),
        computing: s.computing,
    }))
}

// ---------------------------------------------------------------------------
// Scripted UI thread
// ---------------------------------------------------------------------------

/// One user action in a latency script.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScriptAction {
    /// User think time before the action.
    pub think: SimDuration,
    /// The UI thread's own burst of work handling the input.
    pub burst: Work,
    /// Profile of the burst.
    pub burst_profile: WorkProfile,
    /// Jobs fanned out to the worker pool when the burst finishes.
    pub jobs: Vec<Job>,
}

#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
enum UiState {
    NextAction,
    WokeForBurst,
    AfterBurst,
}

/// The UI thread of a latency-metric app: executes a scripted sequence of
/// think → burst → fan-out actions, then exits. The app's latency is the
/// time until the [`CompletionTracker`] target (all bursts + all fan-out
/// jobs) is reached.
#[derive(Debug)]
pub struct UiScriptThread {
    actions: VecDeque<ScriptAction>,
    current: Option<ScriptAction>,
    queue: Option<JobQueue>,
    tracker: CompletionTracker,
    state: UiState,
}

impl UiScriptThread {
    /// Creates the scripted UI thread. `queue` receives fan-out jobs (must
    /// be `Some` when any action has jobs).
    pub fn new(
        actions: Vec<ScriptAction>,
        queue: Option<JobQueue>,
        tracker: CompletionTracker,
    ) -> Self {
        assert!(
            queue.is_some() || actions.iter().all(|a| a.jobs.is_empty()),
            "fan-out jobs require a queue"
        );
        UiScriptThread {
            actions: actions.into(),
            current: None,
            queue,
            tracker,
            state: UiState::NextAction,
        }
    }

    /// The tracker target for a script: one per burst plus one per
    /// tracked fan-out job.
    pub fn tracker_target(actions: &[ScriptAction]) -> usize {
        actions.len()
            + actions
                .iter()
                .map(|a| a.jobs.iter().filter(|j| j.completes).count())
                .sum::<usize>()
    }
}

impl TaskBehavior for UiScriptThread {
    fn next_step(&mut self, ctx: &mut BehaviorCtx<'_>) -> Step {
        loop {
            match self.state {
                UiState::NextAction => {
                    let Some(action) = self.actions.pop_front() else {
                        return Step::Exit;
                    };
                    let think = action.think;
                    self.current = Some(action);
                    self.state = UiState::WokeForBurst;
                    if !think.is_zero() {
                        return Step::Sleep(think);
                    }
                }
                UiState::WokeForBurst => {
                    // Dispatch fan-out jobs *before* the burst: the workers
                    // run concurrently with the UI thread, as on a real
                    // input-handling pipeline.
                    let action = self.current.as_ref().expect("action in flight");
                    if !action.jobs.is_empty() {
                        let q = self.queue.as_ref().expect("queue checked in new");
                        for job in &action.jobs {
                            q.push_and_wake(*job, ctx);
                        }
                    }
                    self.state = UiState::AfterBurst;
                    return Step::Compute {
                        work: action.burst,
                        profile: action.burst_profile,
                    };
                }
                UiState::AfterBurst => {
                    self.current = None;
                    self.tracker.complete(ctx);
                    self.state = UiState::NextAction;
                }
            }
        }
    }

    fn fork_box(&self, ctx: &mut ForkCtx) -> Option<Box<dyn TaskBehavior>> {
        Some(Box::new(UiScriptThread {
            actions: self.actions.clone(),
            current: self.current.clone(),
            queue: self.queue.as_ref().map(|q| q.fork_with(ctx)),
            tracker: self.tracker.fork_with(ctx),
            state: self.state,
        }))
    }

    fn save_box(&self, ctx: &mut SaveCtx) -> Option<BehaviorSaved> {
        let saved = UiScriptSaved {
            actions: self.actions.iter().cloned().collect(),
            current: self.current.clone(),
            queue: self.queue.as_ref().map(|q| q.save_with(ctx)),
            tracker: self.tracker.save_with(ctx),
            state: self.state,
        };
        Some(BehaviorSaved {
            kind: "ui_script".to_string(),
            data: saved.ser_value(),
        })
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct UiScriptSaved {
    actions: Vec<ScriptAction>,
    current: Option<ScriptAction>,
    queue: Option<QueueSaved>,
    tracker: TrackerSaved,
    state: UiState,
}

pub(crate) fn restore_ui_script(
    data: &serde::Value,
    ctx: &mut RestoreCtx,
) -> Result<Box<dyn TaskBehavior>, SimError> {
    let s = UiScriptSaved::deser_value(data).map_err(|e| bad_payload("ui_script", e))?;
    Ok(Box::new(UiScriptThread {
        actions: s.actions.into(),
        current: s.current,
        queue: s.queue.as_ref().map(|q| JobQueue::restore_from(q, ctx)),
        tracker: CompletionTracker::restore_from(&s.tracker, ctx),
        state: s.state,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_parts() -> (Vec<TaskId>, Vec<(SimTime, AppSignal)>) {
        (Vec::new(), Vec::new())
    }

    fn mk_ctx<'a>(
        wakes: &'a mut Vec<TaskId>,
        signals: &'a mut Vec<(SimTime, AppSignal)>,
        now_ms: u64,
    ) -> BehaviorCtx<'a> {
        BehaviorCtx::new(SimTime::from_millis(now_ms), wakes, signals)
    }

    fn w(n: f64) -> Work {
        Work::from_mega(n)
    }

    #[test]
    fn tracker_fires_once_at_target() {
        let (mut wakes, mut signals) = ctx_parts();
        let t = CompletionTracker::new(2);
        {
            let mut ctx = mk_ctx(&mut wakes, &mut signals, 0);
            t.complete(&mut ctx);
            assert!(!t.is_done());
            t.complete(&mut ctx);
            assert!(t.is_done());
            t.complete(&mut ctx); // over-completion: no second ScriptDone
        }
        let dones = signals
            .iter()
            .filter(|(_, s)| matches!(s, AppSignal::ScriptDone))
            .count();
        assert_eq!(dones, 1);
        assert_eq!(t.done(), 3);
    }

    #[test]
    fn job_queue_wakes_registered_workers() {
        let (mut wakes, mut signals) = ctx_parts();
        let q = JobQueue::new();
        q.register_worker(TaskId(7));
        q.register_worker(TaskId(9));
        {
            let mut ctx = mk_ctx(&mut wakes, &mut signals, 0);
            q.push_and_wake(
                Job {
                    work: w(1.0),
                    profile: WorkProfile::default(),
                    completes: true,
                },
                &mut ctx,
            );
        }
        assert_eq!(wakes, vec![TaskId(7), TaskId(9)]);
        assert_eq!(q.len(), 1);
        assert!(q.pop().is_some());
        assert!(q.is_empty());
    }

    #[test]
    fn pool_worker_computes_then_blocks() {
        let (mut wakes, mut signals) = ctx_parts();
        let q = JobQueue::new();
        let tracker = CompletionTracker::new(1);
        let mut worker = PoolWorker::new(q.clone(), Some(tracker.clone()));
        {
            let mut ctx = mk_ctx(&mut wakes, &mut signals, 0);
            q.push_and_wake(
                Job {
                    work: w(2.0),
                    profile: WorkProfile::default(),
                    completes: true,
                },
                &mut ctx,
            );
            let step = worker.next_step(&mut ctx);
            assert!(matches!(step, Step::Compute { .. }));
            // Next call: queue empty -> completion reported, then block.
            let step = worker.next_step(&mut ctx);
            assert!(matches!(step, Step::Block));
        }
        assert!(tracker.is_done());
    }

    #[test]
    fn continuous_task_drains_budget_and_exits() {
        let (mut wakes, mut signals) = ctx_parts();
        let mut t = ContinuousTask::new(
            SimRng::seed_from(1),
            w(10.0),
            w(4.0),
            WorkProfile::default(),
            SimDuration::ZERO,
            0.0,
            true,
        );
        let mut computed = 0.0;
        {
            let mut ctx = mk_ctx(&mut wakes, &mut signals, 0);
            loop {
                match t.next_step(&mut ctx) {
                    Step::Compute { work, .. } => computed += work.instructions(),
                    Step::Exit => break,
                    other => panic!("unexpected step {other:?}"),
                }
            }
        }
        assert!((computed - 10e6).abs() < 1.0);
        assert!(signals
            .iter()
            .any(|(_, s)| matches!(s, AppSignal::ScriptDone)));
    }

    #[test]
    fn continuous_task_inserts_io_sleeps() {
        let (mut wakes, mut signals) = ctx_parts();
        let mut t = ContinuousTask::new(
            SimRng::seed_from(2),
            w(100.0),
            w(1.0),
            WorkProfile::default(),
            SimDuration::from_millis(2),
            1.0, // always sleep between chunks
            false,
        );
        let mut ctx = mk_ctx(&mut wakes, &mut signals, 0);
        assert!(matches!(t.next_step(&mut ctx), Step::Compute { .. }));
        assert!(matches!(t.next_step(&mut ctx), Step::Sleep(_)));
        assert!(matches!(t.next_step(&mut ctx), Step::Compute { .. }));
    }

    #[test]
    fn frame_loop_emits_frames_and_sleeps_to_vsync() {
        let (mut wakes, mut signals) = ctx_parts();
        let mut f = FrameLoop::new(
            SimRng::seed_from(3),
            60.0,
            w(1.0),
            0.0,
            WorkProfile::default(),
            true,
        );
        {
            let mut ctx = mk_ctx(&mut wakes, &mut signals, 0);
            assert!(matches!(f.next_step(&mut ctx), Step::Compute { .. }));
        }
        {
            // Frame finished 5ms in: sleep until ~16.67ms.
            let mut ctx = mk_ctx(&mut wakes, &mut signals, 5);
            match f.next_step(&mut ctx) {
                Step::SleepUntil(t) => {
                    assert!((t.as_millis_f64() - 16.666).abs() < 0.1, "vsync at {t}")
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(matches!(signals[0].1, AppSignal::Frame { .. }));
    }

    #[test]
    fn frame_loop_drops_missed_vsyncs() {
        let (mut wakes, mut signals) = ctx_parts();
        let mut f = FrameLoop::new(
            SimRng::seed_from(4),
            60.0,
            w(1.0),
            0.0,
            WorkProfile::default(),
            false,
        );
        {
            let mut ctx = mk_ctx(&mut wakes, &mut signals, 0);
            f.next_step(&mut ctx);
        }
        {
            // Frame took 40ms (missed two vsyncs): next wake must be the
            // third vsync at 50ms.
            let mut ctx = mk_ctx(&mut wakes, &mut signals, 40);
            match f.next_step(&mut ctx) {
                Step::SleepUntil(t) => {
                    assert!((t.as_millis_f64() - 50.0).abs() < 0.1, "vsync at {t}")
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(signals.is_empty(), "emit_frames=false must not signal");
    }

    #[test]
    fn periodic_task_alternates() {
        let (mut wakes, mut signals) = ctx_parts();
        let mut p = PeriodicTask::new(
            SimRng::seed_from(5),
            SimDuration::from_millis(20),
            0.1,
            w(0.5),
            0.2,
            WorkProfile::default(),
        );
        let mut ctx = mk_ctx(&mut wakes, &mut signals, 0);
        assert!(matches!(p.next_step(&mut ctx), Step::Compute { .. }));
        match p.next_step(&mut ctx) {
            Step::Sleep(d) => {
                let ms = d.as_millis_f64();
                assert!((18.0..=22.0).contains(&ms), "period {ms}ms");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn ui_script_walks_actions_and_fires_done() {
        let (mut wakes, mut signals) = ctx_parts();
        let q = JobQueue::new();
        q.register_worker(TaskId(1));
        let actions = vec![
            ScriptAction {
                think: SimDuration::from_millis(100),
                burst: w(3.0),
                burst_profile: WorkProfile::default(),
                jobs: vec![Job {
                    work: w(5.0),
                    profile: WorkProfile::default(),
                    completes: true,
                }],
            },
            ScriptAction {
                think: SimDuration::from_millis(50),
                burst: w(2.0),
                burst_profile: WorkProfile::default(),
                jobs: vec![],
            },
        ];
        let target = UiScriptThread::tracker_target(&actions);
        assert_eq!(target, 3);
        let tracker = CompletionTracker::new(target);
        let mut ui = UiScriptThread::new(actions, Some(q.clone()), tracker.clone());

        {
            let mut ctx = mk_ctx(&mut wakes, &mut signals, 0);
            assert!(matches!(ui.next_step(&mut ctx), Step::Sleep(_))); // think 1
            assert!(matches!(ui.next_step(&mut ctx), Step::Compute { .. })); // burst 1
                                                                             // After burst 1: fan-out then think 2 (internal loop).
            assert!(matches!(ui.next_step(&mut ctx), Step::Sleep(_)));
            assert_eq!(q.len(), 1);
            assert!(matches!(ui.next_step(&mut ctx), Step::Compute { .. })); // burst 2
            assert!(matches!(ui.next_step(&mut ctx), Step::Exit));
        }
        assert_eq!(wakes, vec![TaskId(1)]);
        // Bursts completed: 2 of the 3 targets.
        assert_eq!(tracker.done(), 2);
        assert!(!tracker.is_done());
    }

    #[test]
    fn fork_severs_from_parent_but_shares_within_fork() {
        let (mut wakes, mut signals) = ctx_parts();
        let q = JobQueue::new();
        q.register_worker(TaskId(1));
        let tracker = CompletionTracker::new(2);
        let w1 = PoolWorker::new(q.clone(), Some(tracker.clone()));
        let w2 = PoolWorker::new(q.clone(), Some(tracker.clone()));

        let mut fctx = ForkCtx::new();
        let fq1 = w1.queue.fork_with(&mut fctx);
        let fq2 = w2.queue.fork_with(&mut fctx);
        let ft = tracker.fork_with(&mut fctx);
        // Within the fork the pool shares one queue...
        assert!(Rc::ptr_eq(&fq1.0, &fq2.0));
        // ...which is severed from the parent's.
        assert!(!Rc::ptr_eq(&fq1.0, &q.0));
        assert!(!Rc::ptr_eq(&ft.0, &tracker.0));

        // Mutating the fork leaves the parent untouched, and vice versa.
        {
            let mut ctx = mk_ctx(&mut wakes, &mut signals, 0);
            fq1.push_and_wake(
                Job {
                    work: w(1.0),
                    profile: WorkProfile::default(),
                    completes: false,
                },
                &mut ctx,
            );
            ft.complete(&mut ctx);
        }
        assert_eq!(fq2.len(), 1);
        assert!(q.is_empty());
        assert_eq!(ft.done(), 1);
        assert_eq!(tracker.done(), 0);
    }

    #[test]
    fn behaviors_fork_deeply() {
        // Every stock behavior must offer fork_box, and forked RNG streams
        // must replay identically to the parent's.
        let (mut wakes, mut signals) = ctx_parts();
        let scene = SceneSync::new();
        let f = FrameLoop::new(
            SimRng::seed_from(11),
            60.0,
            w(1.0),
            0.3,
            WorkProfile::default(),
            true,
        )
        .with_stalls(0.01, SimDuration::from_millis(300))
        .with_scene(scene.clone());
        let mut forked = f.fork_box(&mut ForkCtx::new()).expect("FrameLoop forks");
        let mut original = FrameLoop {
            rng: f.rng.clone(),
            scene: Some(scene),
            ..FrameLoop::new(
                SimRng::seed_from(11),
                60.0,
                w(1.0),
                0.3,
                WorkProfile::default(),
                true,
            )
        }
        .with_stalls(0.01, SimDuration::from_millis(300));
        for i in 0..20u64 {
            let mut ctx = mk_ctx(&mut wakes, &mut signals, i * 17);
            let a = original.next_step(&mut ctx);
            let b = forked.next_step(&mut ctx);
            assert_eq!(a, b, "step {i}");
        }
    }

    #[test]
    #[should_panic(expected = "fan-out jobs require a queue")]
    fn ui_script_without_queue_rejects_jobs() {
        let actions = vec![ScriptAction {
            think: SimDuration::ZERO,
            burst: w(1.0),
            burst_profile: WorkProfile::default(),
            jobs: vec![Job {
                work: w(1.0),
                profile: WorkProfile::default(),
                completes: true,
            }],
        }];
        UiScriptThread::new(actions, None, CompletionTracker::new(1));
    }
}
