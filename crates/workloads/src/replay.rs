//! Trace replay: drive the simulator from a recorded activity trace.
//!
//! The paper's measurements are taken from live devices; this module closes
//! the loop in the other direction — a per-thread activity trace captured
//! on real hardware (e.g. distilled from systrace/perfetto) replays inside
//! the simulator, where schedulers, governors and core configurations can
//! then be varied freely.
//!
//! A trace is a set of named threads, each a time-ordered list of
//! `(start, busy)` segments. Busy time is expressed against the little
//! core at 1.3 GHz (the same reference as all workload parameters), so the
//! simulated duration stretches or shrinks with the core type and
//! frequency the scheduler actually chooses — exactly the counterfactual a
//! replay exists to explore.

use crate::threads::{CompletionTracker, TrackerSaved};
use crate::work_ms;
use bl_kernel::kernel::{Hw, Kernel};
use bl_kernel::task::{
    Affinity, BehaviorCtx, BehaviorSaved, ForkCtx, RestoreCtx, SaveCtx, Step, TaskBehavior,
};
use bl_platform::perf::{Work, WorkProfile};
use bl_platform::topology::Platform;
use bl_simcore::error::SimError;
use bl_simcore::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// One recorded activity burst.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceSegment {
    /// Burst start, milliseconds from trace start.
    pub at_ms: f64,
    /// Work in the burst, as milliseconds on a little core at 1.3 GHz.
    pub busy_ms: f64,
}

/// The recorded activity of one thread.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThreadTrace {
    /// Thread name.
    pub name: String,
    /// Bursts in nondecreasing start order.
    pub segments: Vec<TraceSegment>,
}

/// A full recorded trace: several threads replayed together.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecordedTrace {
    /// Trace name (for reports).
    pub name: String,
    /// Per-thread activity.
    pub threads: Vec<ThreadTrace>,
}

/// Error validating a [`RecordedTrace`].
#[derive(Debug, Clone, PartialEq)]
pub enum TraceError {
    /// A thread's segments were not sorted by start time.
    UnsortedSegments {
        /// The offending thread.
        thread: String,
    },
    /// A segment had negative timing.
    NegativeTiming {
        /// The offending thread.
        thread: String,
    },
    /// The JSON failed to parse.
    Parse(String),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::UnsortedSegments { thread } => {
                write!(f, "thread {thread:?} has unsorted segments")
            }
            TraceError::NegativeTiming { thread } => {
                write!(f, "thread {thread:?} has negative timing")
            }
            TraceError::Parse(e) => write!(f, "trace parse error: {e}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl RecordedTrace {
    /// Parses and validates a trace from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError`] for malformed JSON, unsorted segments or
    /// negative timings.
    pub fn from_json(json: &str) -> Result<RecordedTrace, TraceError> {
        let trace: RecordedTrace =
            serde_json::from_str(json).map_err(|e| TraceError::Parse(e.to_string()))?;
        trace.validate()?;
        Ok(trace)
    }

    /// Serializes the trace to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("traces always serialize")
    }

    /// Checks segment ordering and sign.
    ///
    /// # Errors
    ///
    /// See [`TraceError`].
    pub fn validate(&self) -> Result<(), TraceError> {
        for t in &self.threads {
            if t.segments.windows(2).any(|w| w[0].at_ms > w[1].at_ms) {
                return Err(TraceError::UnsortedSegments {
                    thread: t.name.clone(),
                });
            }
            if t.segments.iter().any(|s| s.at_ms < 0.0 || s.busy_ms < 0.0) {
                return Err(TraceError::NegativeTiming {
                    thread: t.name.clone(),
                });
            }
        }
        Ok(())
    }

    /// Total recorded busy time across threads (little-core-reference ms).
    pub fn total_busy_ms(&self) -> f64 {
        self.threads
            .iter()
            .flat_map(|t| t.segments.iter())
            .map(|s| s.busy_ms)
            .sum()
    }

    /// The time of the last segment start, ms.
    pub fn span_ms(&self) -> f64 {
        self.threads
            .iter()
            .flat_map(|t| t.segments.iter())
            .map(|s| s.at_ms + s.busy_ms)
            .fold(0.0, f64::max)
    }

    /// Spawns one task per thread into `kernel`; the returned tracker
    /// fires `ScriptDone` when every thread finishes its trace.
    pub fn spawn(
        &self,
        kernel: &mut Kernel,
        platform: &Platform,
        hw: &Hw<'_>,
        now: SimTime,
        affinity: Affinity,
    ) -> CompletionTracker {
        let tracker = CompletionTracker::new(self.threads.len());
        let profile = WorkProfile::compute_bound();
        for t in &self.threads {
            let segments: Vec<(SimTime, Work)> = t
                .segments
                .iter()
                .map(|s| {
                    (
                        now + SimDuration::from_secs_f64(s.at_ms / 1e3),
                        work_ms(platform, &profile, s.busy_ms),
                    )
                })
                .collect();
            let b = TraceReplayThread {
                segments: segments.into_iter(),
                profile,
                tracker: tracker.clone(),
                waiting_for: None,
            };
            kernel.spawn(
                format!("{}-{}", self.name, t.name),
                affinity,
                Box::new(b),
                hw,
                now,
            );
        }
        tracker
    }
}

/// Replays one thread's trace: sleep to each burst's start, run its work,
/// repeat; report completion at the end.
#[derive(Debug)]
struct TraceReplayThread {
    segments: std::vec::IntoIter<(SimTime, Work)>,
    profile: WorkProfile,
    tracker: CompletionTracker,
    waiting_for: Option<Work>,
}

impl TaskBehavior for TraceReplayThread {
    fn next_step(&mut self, ctx: &mut BehaviorCtx<'_>) -> Step {
        if let Some(work) = self.waiting_for.take() {
            if !work.is_done() {
                return Step::Compute {
                    work,
                    profile: self.profile,
                };
            }
        }
        match self.segments.next() {
            Some((at, work)) => {
                self.waiting_for = Some(work);
                if at > ctx.now {
                    Step::SleepUntil(at)
                } else if work.is_done() {
                    // Degenerate empty burst: skip via the immediate loop.
                    Step::Sleep(SimDuration::ZERO)
                } else {
                    self.waiting_for = None;
                    Step::Compute {
                        work,
                        profile: self.profile,
                    }
                }
            }
            None => {
                self.tracker.complete(ctx);
                Step::Exit
            }
        }
    }

    fn fork_box(&self, ctx: &mut ForkCtx) -> Option<Box<dyn TaskBehavior>> {
        Some(Box::new(TraceReplayThread {
            segments: self.segments.clone(),
            profile: self.profile,
            tracker: self.tracker.fork_with(ctx),
            waiting_for: self.waiting_for,
        }))
    }

    fn save_box(&self, ctx: &mut SaveCtx) -> Option<BehaviorSaved> {
        let saved = ReplaySaved {
            segments: self.segments.as_slice().to_vec(),
            profile: self.profile,
            tracker: self.tracker.save_with(ctx),
            waiting_for: self.waiting_for,
        };
        Some(BehaviorSaved {
            kind: "trace_replay".to_string(),
            data: saved.ser_value(),
        })
    }
}

/// Serialized form of a [`TraceReplayThread`]: the *unconsumed* tail of
/// the segment iterator, so replay resumes exactly where the save left it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ReplaySaved {
    segments: Vec<(SimTime, Work)>,
    profile: WorkProfile,
    tracker: TrackerSaved,
    waiting_for: Option<Work>,
}

pub(crate) fn restore_trace_replay(
    data: &serde::Value,
    ctx: &mut RestoreCtx,
) -> Result<Box<dyn TaskBehavior>, SimError> {
    let s = ReplaySaved::deser_value(data)
        .map_err(|e| crate::threads::bad_payload("trace_replay", e))?;
    Ok(Box::new(TraceReplayThread {
        segments: s.segments.into_iter(),
        profile: s.profile,
        tracker: CompletionTracker::restore_from(&s.tracker, ctx),
        waiting_for: s.waiting_for,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_trace() -> RecordedTrace {
        RecordedTrace {
            name: "demo".to_string(),
            threads: vec![
                ThreadTrace {
                    name: "ui".to_string(),
                    segments: vec![
                        TraceSegment {
                            at_ms: 0.0,
                            busy_ms: 5.0,
                        },
                        TraceSegment {
                            at_ms: 50.0,
                            busy_ms: 10.0,
                        },
                    ],
                },
                ThreadTrace {
                    name: "worker".to_string(),
                    segments: vec![TraceSegment {
                        at_ms: 20.0,
                        busy_ms: 30.0,
                    }],
                },
            ],
        }
    }

    #[test]
    fn json_round_trip_and_validation() {
        let t = demo_trace();
        let back = RecordedTrace::from_json(&t.to_json()).unwrap();
        assert_eq!(back, t);
        assert_eq!(t.total_busy_ms(), 45.0);
        assert_eq!(t.span_ms(), 60.0);
    }

    #[test]
    fn unsorted_trace_rejected() {
        let mut t = demo_trace();
        t.threads[0].segments.reverse();
        assert!(matches!(
            t.validate(),
            Err(TraceError::UnsortedSegments { .. })
        ));
    }

    #[test]
    fn negative_timing_rejected() {
        let mut t = demo_trace();
        t.threads[0].segments[0].busy_ms = -1.0;
        assert!(matches!(
            t.validate(),
            Err(TraceError::NegativeTiming { .. })
        ));
        assert!(t.validate().unwrap_err().to_string().contains("negative"));
    }

    #[test]
    fn parse_error_is_reported() {
        assert!(matches!(
            RecordedTrace::from_json("not json"),
            Err(TraceError::Parse(_))
        ));
    }
}
