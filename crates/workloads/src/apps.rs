//! The twelve interactive mobile applications of paper Table II, as
//! generative multi-thread models.
//!
//! Each app is assembled from the building blocks in [`crate::threads`]:
//!
//! * **Latency apps** (PDF reader, video editor, photo editor, BBench,
//!   virus scanner, browser, encoder) run a scripted user-interaction
//!   sequence — think time, a UI burst, fan-out jobs to a worker pool,
//!   plus app-specific continuous/background threads. Their latency is the
//!   time until every burst and job completes.
//! * **FPS apps** (Angry Bird, Eternity Warriors 2, FIFA 15, video player,
//!   YouTube) run vsync-paced frame loops plus periodic helper threads
//!   (physics, audio, decoder callbacks, network).
//!
//! The per-app parameters are calibrated so the default system (L4+B4, HMP,
//! interactive governor) approximately reproduces the paper's Table III
//! (idle %, big-core share of active cycles, TLP); see EXPERIMENTS.md for
//! measured-vs-paper values. Work amounts are "milliseconds on a little
//! core at 1.3 GHz" ([`crate::work_ms`]).

use crate::threads::{
    CompletionTracker, ContinuousTask, FrameLoop, Job, JobQueue, PeriodicTask, PoolWorker,
    SceneSync, ScriptAction, UiScriptThread,
};
use crate::{work_ms, PerfMetric};
use bl_kernel::kernel::{Hw, Kernel};
use bl_kernel::task::Affinity;
use bl_platform::perf::WorkProfile;
use bl_platform::topology::Platform;
use bl_simcore::error::SimError;
use bl_simcore::rng::SimRng;
use bl_simcore::time::{SimDuration, SimTime};

/// A periodic helper thread specification.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct PeriodicSpec {
    /// Thread name.
    pub name: String,
    /// Cycle period in ms.
    pub period_ms: f64,
    /// Median work per cycle, in little-core ms.
    pub work_ms: f64,
    /// Log-normal shape of the work draw.
    pub sigma: f64,
}

/// A continuous (batch) thread specification.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ContinuousSpec {
    /// Thread name.
    pub name: String,
    /// Number of identical threads.
    pub count: usize,
    /// Total work budget per thread, in little-core ms.
    pub total_ms: f64,
    /// Chunk size in little-core ms.
    pub chunk_ms: f64,
    /// I/O pause between chunks in ms (0 = none).
    pub io_sleep_ms: f64,
    /// Probability of pausing after a chunk.
    pub io_prob: f64,
}

/// Scripted-interaction (latency) app parameters.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ScriptedSpec {
    /// Number of user actions in the script.
    pub n_actions: usize,
    /// Uniform think-time range between actions, ms.
    pub think_ms: (f64, f64),
    /// Median UI-burst work per action, little-core ms.
    pub burst_ms: f64,
    /// Log-normal shape of the burst draw.
    pub burst_sigma: f64,
    /// Fan-out jobs per action.
    pub jobs_per_action: usize,
    /// Median job work, little-core ms.
    pub job_ms: f64,
    /// Log-normal shape of the job draw.
    pub job_sigma: f64,
    /// Worker pool size.
    pub n_workers: usize,
    /// Background periodic threads.
    pub background: Vec<PeriodicSpec>,
    /// Batch threads (encoder/scanner engines).
    pub continuous: Vec<ContinuousSpec>,
}

/// Frame-driven (FPS) app parameters.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct StreamingSpec {
    /// Target frame rate of the visible render loop.
    pub fps: f64,
    /// Median per-frame work, little-core ms.
    pub frame_ms: f64,
    /// Log-normal shape of the frame draw.
    pub frame_sigma: f64,
    /// Additional non-visible frame loops (physics etc.): (name, fps,
    /// work ms, sigma).
    pub helper_loops: Vec<(String, f64, f64, f64)>,
    /// Periodic helper threads.
    pub periodic: Vec<PeriodicSpec>,
    /// Probability of a scene-load stall after a frame.
    pub stall_prob: f64,
    /// Stall length in ms.
    pub stall_ms: f64,
}

/// App structure: scripted (latency) or streaming (FPS).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub enum AppKind {
    /// Latency-metric app.
    Scripted(ScriptedSpec),
    /// FPS-metric app.
    Streaming(StreamingSpec),
}

/// One of the twelve Table II applications (or a user-defined model, see
/// [`AppModel::from_json`]).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct AppModel {
    /// Application name as in Table II.
    pub name: String,
    /// Performance metric (Table II).
    pub metric: PerfMetric,
    /// Measurement horizon: FPS apps run exactly this long; latency apps
    /// are capped at it.
    pub run_for: SimDuration,
    /// The generative structure.
    pub kind: AppKind,
}

/// Handles to a built app instance.
#[derive(Debug)]
pub struct AppInstance {
    /// Completion tracker (latency apps only).
    pub tracker: Option<CompletionTracker>,
}

impl AppModel {
    /// Spawns the app's tasks into `kernel` with [`Affinity::Any`] —
    /// placement and migration are the scheduler's job.
    pub fn build(
        &self,
        kernel: &mut Kernel,
        platform: &Platform,
        hw: &Hw<'_>,
        rng: &mut SimRng,
        now: SimTime,
    ) -> AppInstance {
        self.build_with_affinity(kernel, platform, hw, rng, now, Affinity::Any)
    }

    /// Spawns the app's tasks with a forced affinity — used by the
    /// architecture experiments that restrict an app to one core type
    /// (paper Figures 4 and 5: "running on either 4 little cores or 4 big
    /// cores").
    pub fn build_with_affinity(
        &self,
        kernel: &mut Kernel,
        platform: &Platform,
        hw: &Hw<'_>,
        rng: &mut SimRng,
        now: SimTime,
        affinity: Affinity,
    ) -> AppInstance {
        let ui_profile = WorkProfile {
            cpi_little: 1.7,
            cpi_big: 0.9,
            mpki_ref: 6.0,
            cache_beta: 0.5,
            energy_intensity: 1.0,
        };
        match &self.kind {
            AppKind::Scripted(s) => {
                let queue = JobQueue::new();
                // One tracked completion per burst and per job.
                let mut actions = Vec::with_capacity(s.n_actions);
                let mut script_rng = rng.fork(1);
                for _ in 0..s.n_actions {
                    let think = script_rng.uniform(s.think_ms.0, s.think_ms.1);
                    let burst = script_rng.lognormal(s.burst_ms, s.burst_sigma);
                    let jobs = (0..s.jobs_per_action)
                        .map(|_| Job {
                            work: work_ms(
                                platform,
                                &ui_profile,
                                script_rng.lognormal(s.job_ms, s.job_sigma),
                            ),
                            profile: ui_profile,
                            completes: true,
                        })
                        .collect();
                    actions.push(ScriptAction {
                        think: SimDuration::from_secs_f64(think / 1e3),
                        burst: work_ms(platform, &ui_profile, burst),
                        burst_profile: ui_profile,
                        jobs,
                    });
                }
                let target = UiScriptThread::tracker_target(&actions)
                    + s.continuous.iter().map(|c| c.count).sum::<usize>();
                let tracker = CompletionTracker::new(target);

                for i in 0..s.n_workers {
                    let worker = PoolWorker::new(queue.clone(), Some(tracker.clone()));
                    let tid = kernel.spawn(
                        format!("{}-worker{}", self.name, i),
                        affinity,
                        Box::new(worker),
                        hw,
                        now,
                    );
                    queue.register_worker(tid);
                }
                for c in &s.continuous {
                    for i in 0..c.count {
                        let t = ContinuousTask::new(
                            rng.fork(100 + i as u64),
                            work_ms(platform, &ui_profile, c.total_ms),
                            work_ms(platform, &ui_profile, c.chunk_ms),
                            ui_profile,
                            SimDuration::from_secs_f64(c.io_sleep_ms / 1e3),
                            c.io_prob,
                            false,
                        )
                        .with_tracker(tracker.clone());
                        kernel.spawn(
                            format!("{}-{}{}", self.name, c.name, i),
                            affinity,
                            Box::new(t),
                            hw,
                            now,
                        );
                    }
                }
                for (i, b) in s.background.iter().enumerate() {
                    spawn_periodic(
                        kernel,
                        platform,
                        hw,
                        rng,
                        now,
                        &self.name,
                        b,
                        200 + i as u64,
                        affinity,
                    );
                }
                let ui = UiScriptThread::new(actions, Some(queue.clone()), tracker.clone());
                kernel.spawn(format!("{}-ui", self.name), affinity, Box::new(ui), hw, now);
                AppInstance {
                    tracker: Some(tracker),
                }
            }
            AppKind::Streaming(s) => {
                let frame_profile = WorkProfile {
                    cpi_little: 1.6,
                    cpi_big: 0.9,
                    mpki_ref: 4.0,
                    cache_beta: 0.4,
                    energy_intensity: 1.0,
                };
                let scene = SceneSync::new();
                let render = FrameLoop::new(
                    rng.fork(2),
                    s.fps,
                    work_ms(platform, &frame_profile, s.frame_ms),
                    s.frame_sigma,
                    frame_profile,
                    true,
                )
                .with_stalls(s.stall_prob, SimDuration::from_secs_f64(s.stall_ms / 1e3))
                .with_scene(scene.clone());
                kernel.spawn(
                    format!("{}-render", self.name),
                    affinity,
                    Box::new(render),
                    hw,
                    now,
                );
                for (i, (name, fps, ms, sigma)) in s.helper_loops.iter().enumerate() {
                    let helper = FrameLoop::new(
                        rng.fork(3 + i as u64),
                        *fps,
                        work_ms(platform, &frame_profile, *ms),
                        *sigma,
                        frame_profile,
                        false,
                    )
                    .with_scene(scene.clone());
                    kernel.spawn(
                        format!("{}-{}", self.name, name),
                        affinity,
                        Box::new(helper),
                        hw,
                        now,
                    );
                }
                for (i, p) in s.periodic.iter().enumerate() {
                    spawn_periodic_scene(
                        kernel,
                        platform,
                        hw,
                        rng,
                        now,
                        &self.name,
                        p,
                        300 + i as u64,
                        affinity,
                        Some(scene.clone()),
                    );
                }
                AppInstance { tracker: None }
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn spawn_periodic(
    kernel: &mut Kernel,
    platform: &Platform,
    hw: &Hw<'_>,
    rng: &mut SimRng,
    now: SimTime,
    app: &str,
    spec: &PeriodicSpec,
    salt: u64,
    affinity: Affinity,
) {
    spawn_periodic_scene(
        kernel, platform, hw, rng, now, app, spec, salt, affinity, None,
    );
}

#[allow(clippy::too_many_arguments)]
fn spawn_periodic_scene(
    kernel: &mut Kernel,
    platform: &Platform,
    hw: &Hw<'_>,
    rng: &mut SimRng,
    now: SimTime,
    app: &str,
    spec: &PeriodicSpec,
    salt: u64,
    affinity: Affinity,
    scene: Option<SceneSync>,
) {
    let profile = WorkProfile {
        cpi_little: 1.6,
        cpi_big: 0.95,
        mpki_ref: 2.0,
        cache_beta: 0.3,
        energy_intensity: 1.0,
    };
    let mut t = PeriodicTask::new(
        rng.fork(salt),
        SimDuration::from_secs_f64(spec.period_ms / 1e3),
        0.15,
        work_ms(platform, &profile, spec.work_ms),
        spec.sigma,
        profile,
    );
    if let Some(sc) = scene {
        t = t.with_scene(sc);
    }
    kernel.spawn(
        format!("{app}-{}", spec.name),
        affinity,
        Box::new(t),
        hw,
        now,
    );
}

/// Convenience constructor for [`PeriodicSpec`].
fn periodic(name: &str, period_ms: f64, work_ms: f64, sigma: f64) -> PeriodicSpec {
    PeriodicSpec {
        name: name.to_string(),
        period_ms,
        work_ms,
        sigma,
    }
}

/// The twelve Table II applications with calibrated parameters.
///
/// Per-app tuning targets (paper Table III: idle %, big share of active
/// cycles, TLP) are noted on each entry.
pub fn mobile_apps() -> Vec<AppModel> {
    vec![
        // Paper row: idle 16.1, big 13.1, TLP 2.06. Page turns trigger long
        // concurrent render/prefetch jobs; a redraw helper runs per-vsync.
        AppModel {
            name: "PDF Reader".to_string(),
            metric: PerfMetric::Latency,
            run_for: SimDuration::from_secs(20),
            kind: AppKind::Scripted(ScriptedSpec {
                n_actions: 8,
                think_ms: (350.0, 750.0),
                burst_ms: 45.0,
                burst_sigma: 0.6,
                jobs_per_action: 2,
                job_ms: 160.0,
                job_sigma: 0.5,
                n_workers: 2,
                background: vec![
                    periodic("render-helper", 16.7, 2.0, 0.5),
                    periodic("service", 50.0, 1.0, 0.4),
                ],
                continuous: vec![],
            }),
        },
        // idle 19.4, big 10.4, TLP 2.25: three-way export jobs per edit.
        AppModel {
            name: "Video Editor".to_string(),
            metric: PerfMetric::Latency,
            run_for: SimDuration::from_secs(25),
            kind: AppKind::Scripted(ScriptedSpec {
                n_actions: 6,
                think_ms: (450.0, 900.0),
                burst_ms: 40.0,
                burst_sigma: 0.6,
                jobs_per_action: 3,
                job_ms: 170.0,
                job_sigma: 0.45,
                n_workers: 3,
                background: vec![
                    periodic("preview", 33.0, 3.0, 0.4),
                    periodic("audio", 21.0, 1.0, 0.3),
                ],
                continuous: vec![],
            }),
        },
        // idle 9.1, big 7.5, TLP 1.40: one little core does nearly
        // everything (paper: 64.8% of samples are exactly one little core).
        AppModel {
            name: "Photo Editor".to_string(),
            metric: PerfMetric::Latency,
            run_for: SimDuration::from_secs(20),
            kind: AppKind::Scripted(ScriptedSpec {
                n_actions: 12,
                think_ms: (120.0, 260.0),
                burst_ms: 120.0,
                burst_sigma: 0.35,
                jobs_per_action: 0,
                job_ms: 0.0,
                job_sigma: 0.0,
                n_workers: 0,
                background: vec![
                    periodic("ui-render", 16.7, 3.0, 0.4),
                    periodic("service", 45.0, 1.0, 0.4),
                ],
                continuous: vec![],
            }),
        },
        // idle 0.1, big 47.8, TLP 3.95: the dense automated browser bench.
        AppModel {
            name: "BBench".to_string(),
            metric: PerfMetric::Latency,
            run_for: SimDuration::from_secs(30),
            kind: AppKind::Scripted(ScriptedSpec {
                n_actions: 15,
                think_ms: (60.0, 160.0),
                burst_ms: 50.0,
                burst_sigma: 0.5,
                jobs_per_action: 3,
                job_ms: 40.0,
                job_sigma: 0.5,
                n_workers: 4,
                background: vec![
                    periodic("compositor", 16.7, 3.0, 0.4),
                    periodic("raster", 16.7, 2.5, 0.4),
                    periodic("network", 20.0, 2.5, 0.6),
                    // JS/layout engines: alternating heavy phases that ride
                    // a big core while active, idle little in between.
                    periodic("engine0", 400.0, 260.0, 0.25),
                    periodic("engine1", 440.0, 260.0, 0.25),
                ],
                continuous: vec![],
            }),
        },
        // idle 2.9, big 22.7, TLP 2.44: two always-on light I/O-bound scan
        // pipelines plus a heavy signature-matching burst that visits a big
        // core periodically.
        AppModel {
            name: "Virus Scanner".to_string(),
            metric: PerfMetric::Latency,
            run_for: SimDuration::from_secs(25),
            kind: AppKind::Scripted(ScriptedSpec {
                n_actions: 4,
                think_ms: (200.0, 400.0),
                burst_ms: 15.0,
                burst_sigma: 0.5,
                jobs_per_action: 0,
                job_ms: 0.0,
                job_sigma: 0.0,
                n_workers: 0,
                background: vec![periodic("match", 600.0, 380.0, 0.25)],
                continuous: vec![ContinuousSpec {
                    name: "scan".to_string(),
                    count: 2,
                    total_ms: 3000.0,
                    chunk_ms: 3.0,
                    io_sleep_ms: 6.0,
                    io_prob: 1.0,
                }],
            }),
        },
        // idle 52.9, big 5.4, TLP 1.86: long reading pauses between loads.
        AppModel {
            name: "Browser".to_string(),
            metric: PerfMetric::Latency,
            run_for: SimDuration::from_secs(30),
            kind: AppKind::Scripted(ScriptedSpec {
                n_actions: 6,
                think_ms: (1400.0, 2800.0),
                burst_ms: 90.0,
                burst_sigma: 0.6,
                jobs_per_action: 3,
                job_ms: 150.0,
                job_sigma: 0.5,
                n_workers: 3,
                background: vec![
                    periodic("spinner", 30.0, 1.0, 0.3),
                    periodic("net-poll", 80.0, 1.5, 0.5),
                ],
                continuous: vec![],
            }),
        },
        // idle 0.6, big 62.2, TLP 1.78: one hot encode thread that lives on
        // a big core, stalling on I/O between macroblock batches.
        AppModel {
            name: "Encoder".to_string(),
            metric: PerfMetric::Latency,
            run_for: SimDuration::from_secs(30),
            kind: AppKind::Scripted(ScriptedSpec {
                n_actions: 2,
                think_ms: (100.0, 200.0),
                burst_ms: 10.0,
                burst_sigma: 0.4,
                jobs_per_action: 0,
                job_ms: 0.0,
                job_sigma: 0.0,
                n_workers: 0,
                background: vec![
                    periodic("io", 18.0, 1.1, 0.4),
                    periodic("muxer", 30.0, 0.8, 0.4),
                ],
                continuous: vec![ContinuousSpec {
                    name: "encode".to_string(),
                    count: 1,
                    total_ms: 9000.0,
                    chunk_ms: 25.0,
                    io_sleep_ms: 14.0,
                    io_prob: 0.5,
                }],
            }),
        },
        // idle 4.4, big 0.1, TLP 2.34: light threads that never need big.
        AppModel {
            name: "Angry Bird".to_string(),
            metric: PerfMetric::Fps,
            run_for: SimDuration::from_secs(20),
            kind: AppKind::Streaming(StreamingSpec {
                fps: 60.0,
                frame_ms: 4.0,
                frame_sigma: 0.3,
                helper_loops: vec![("physics".to_string(), 60.0, 3.0, 0.3)],
                periodic: vec![periodic("audio", 20.0, 1.5, 0.3)],
                stall_prob: 0.006,
                stall_ms: 130.0,
            }),
        },
        // idle 3.7, big 27.4, TLP 2.85: the CPU-intensive game whose frame
        // spikes and asset loads spill onto a big core.
        AppModel {
            name: "Eternity Warriors 2".to_string(),
            metric: PerfMetric::Fps,
            run_for: SimDuration::from_secs(20),
            kind: AppKind::Streaming(StreamingSpec {
                fps: 60.0,
                frame_ms: 10.5,
                frame_sigma: 0.55,
                helper_loops: vec![("physics".to_string(), 60.0, 5.0, 0.4)],
                periodic: vec![
                    periodic("audio", 20.0, 1.5, 0.3),
                    periodic("loader", 400.0, 110.0, 0.4),
                ],
                stall_prob: 0.004,
                stall_ms: 150.0,
            }),
        },
        // idle 9.3, big 14.4, TLP 2.37.
        AppModel {
            name: "FIFA 15".to_string(),
            metric: PerfMetric::Fps,
            run_for: SimDuration::from_secs(20),
            kind: AppKind::Streaming(StreamingSpec {
                fps: 60.0,
                frame_ms: 8.0,
                frame_sigma: 0.5,
                helper_loops: vec![("physics".to_string(), 60.0, 4.0, 0.35)],
                periodic: vec![
                    periodic("audio", 20.0, 1.5, 0.3),
                    periodic("ai", 450.0, 110.0, 0.4),
                ],
                stall_prob: 0.01,
                stall_ms: 160.0,
            }),
        },
        // idle 14.2, big 0.6, TLP 2.29: HW decode leaves CPUs nearly idle;
        // UI + compositor redraw per vsync, decode callbacks at 30fps.
        AppModel {
            name: "Video Player".to_string(),
            metric: PerfMetric::Fps,
            run_for: SimDuration::from_secs(20),
            kind: AppKind::Streaming(StreamingSpec {
                fps: 60.0,
                frame_ms: 2.0,
                frame_sigma: 0.3,
                helper_loops: vec![("compositor".to_string(), 60.0, 1.5, 0.3)],
                periodic: vec![
                    periodic("decoder", 33.0, 2.0, 0.3),
                    periodic("audio", 31.0, 1.0, 0.3),
                ],
                stall_prob: 0.0018,
                stall_ms: 600.0,
            }),
        },
        // idle 12.7, big 0.1, TLP 2.29: like Video Player plus networking.
        AppModel {
            name: "Youtube".to_string(),
            metric: PerfMetric::Fps,
            run_for: SimDuration::from_secs(20),
            kind: AppKind::Streaming(StreamingSpec {
                fps: 60.0,
                frame_ms: 2.0,
                frame_sigma: 0.3,
                helper_loops: vec![("compositor".to_string(), 60.0, 1.5, 0.3)],
                periodic: vec![
                    periodic("decoder", 33.0, 2.0, 0.3),
                    periodic("network", 80.0, 3.0, 0.7),
                    periodic("audio", 31.0, 1.0, 0.3),
                ],
                stall_prob: 0.0015,
                stall_ms: 600.0,
            }),
        },
    ]
}

impl AppModel {
    /// Loads a user-defined app model from its JSON representation — the
    /// same schema the built-in catalog serializes to, so
    /// `serde_json::to_string(&app)` of any catalog entry is a valid
    /// starting template.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for malformed JSON, schema
    /// mismatches, or parameter values the thread behaviors would reject at
    /// spawn time (non-positive rates/periods, probabilities outside
    /// `[0, 1]`) — catching them here turns a mid-run panic into a typed
    /// error at the load boundary.
    ///
    /// ```
    /// use bl_workloads::apps::{app_by_name, AppModel};
    /// let template = serde_json::to_string(&app_by_name("Video Player").unwrap()).unwrap();
    /// let custom = AppModel::from_json(&template).unwrap();
    /// assert_eq!(custom.name, "Video Player");
    /// ```
    pub fn from_json(json: &str) -> Result<AppModel, SimError> {
        let app: AppModel = serde_json::from_str(json)
            .map_err(|e| SimError::config(format!("app model JSON: {e}")))?;
        app.validate()?;
        Ok(app)
    }

    /// Checks every parameter the thread behaviors assert on, so invalid
    /// models are rejected before any task is spawned.
    pub fn validate(&self) -> Result<(), SimError> {
        let err = |what: &str| Err(SimError::config(format!("app {:?}: {what}", self.name)));
        let prob = |p: f64| (0.0..=1.0).contains(&p);
        let periodic_ok =
            |specs: &[PeriodicSpec]| specs.iter().all(|p| p.period_ms > 0.0 && p.work_ms >= 0.0);
        match &self.kind {
            AppKind::Scripted(s) => {
                if s.think_ms.0 > s.think_ms.1 || s.think_ms.0 < 0.0 {
                    return err("think-time range must be ascending and non-negative");
                }
                if s.jobs_per_action > 0 && s.n_workers == 0 {
                    return err("fan-out jobs require at least one pool worker");
                }
                if !periodic_ok(&s.background) {
                    return err("background threads need a positive period");
                }
                if s.continuous.iter().any(|c| c.chunk_ms <= 0.0) {
                    return err("continuous threads need a positive chunk");
                }
                if s.continuous.iter().any(|c| !prob(c.io_prob)) {
                    return err("io_prob must be in [0, 1]");
                }
            }
            AppKind::Streaming(s) => {
                if s.fps <= 0.0 || s.helper_loops.iter().any(|(_, fps, _, _)| *fps <= 0.0) {
                    return err("frame loops need a positive fps");
                }
                if !periodic_ok(&s.periodic) {
                    return err("periodic threads need a positive period");
                }
                if !prob(s.stall_prob) || s.stall_ms < 0.0 {
                    return err("stall_prob must be in [0, 1] and stall_ms non-negative");
                }
            }
        }
        Ok(())
    }

    /// Serializes the model to pretty JSON (a template for custom apps).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("app models always serialize")
    }
}

/// Looks up an app by (case-insensitive) name.
pub fn app_by_name(name: &str) -> Option<AppModel> {
    mobile_apps()
        .into_iter()
        .find(|a| a.name.eq_ignore_ascii_case(name))
}

/// The seven latency-metric apps (paper Figure 4 population).
pub fn latency_apps() -> Vec<AppModel> {
    mobile_apps()
        .into_iter()
        .filter(|a| a.metric == PerfMetric::Latency)
        .collect()
}

/// The five FPS-metric apps (paper Figure 5 population).
pub fn fps_apps() -> Vec<AppModel> {
    mobile_apps()
        .into_iter()
        .filter(|a| a.metric == PerfMetric::Fps)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_apps_matching_table_ii() {
        let apps = mobile_apps();
        assert_eq!(apps.len(), 12);
        assert_eq!(latency_apps().len(), 7);
        assert_eq!(fps_apps().len(), 5);
        let mut names: Vec<_> = apps.iter().map(|a| a.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 12, "app names must be unique");
    }

    #[test]
    fn lookup_by_name_is_case_insensitive() {
        assert!(app_by_name("encoder").is_some());
        assert!(app_by_name("BBENCH").is_some());
        assert!(app_by_name("does-not-exist").is_none());
    }

    #[test]
    fn metrics_match_table_ii() {
        for a in mobile_apps() {
            let expected = match a.name.as_str() {
                "Angry Bird" | "Eternity Warriors 2" | "FIFA 15" | "Video Player" | "Youtube" => {
                    PerfMetric::Fps
                }
                _ => PerfMetric::Latency,
            };
            assert_eq!(a.metric, expected, "{}", a.name);
        }
    }
}

#[cfg(test)]
mod json_tests {
    use super::*;

    #[test]
    fn catalog_round_trips_through_json() {
        for app in mobile_apps() {
            let json = app.to_json();
            let back = AppModel::from_json(&json).unwrap();
            assert_eq!(back.name, app.name);
            assert_eq!(back.metric, app.metric);
            assert_eq!(back.run_for, app.run_for);
        }
    }

    #[test]
    fn custom_app_from_handwritten_json() {
        let json = r#"{
            "name": "My Widget",
            "metric": "Fps",
            "run_for": 5000000000,
            "kind": {
                "Streaming": {
                    "fps": 30.0,
                    "frame_ms": 3.0,
                    "frame_sigma": 0.2,
                    "helper_loops": [],
                    "periodic": [
                        {"name": "audio", "period_ms": 20.0, "work_ms": 1.0, "sigma": 0.3}
                    ],
                    "stall_prob": 0.0,
                    "stall_ms": 0.0
                }
            }
        }"#;
        let app = AppModel::from_json(json).unwrap();
        assert_eq!(app.name, "My Widget");
        assert_eq!(app.metric, PerfMetric::Fps);
        assert!(matches!(app.kind, AppKind::Streaming(_)));
    }

    #[test]
    fn malformed_json_is_an_error() {
        let err = AppModel::from_json("{\"name\": 12}").unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig { .. }));
    }

    #[test]
    fn invalid_parameters_are_rejected_at_load_not_spawn() {
        // A zero-fps frame loop would panic inside FrameLoop::new at spawn
        // time; from_json must refuse it up front with a typed error.
        let mut app = app_by_name("Video Player").unwrap();
        if let AppKind::Streaming(s) = &mut app.kind {
            s.fps = 0.0;
        }
        let err = AppModel::from_json(&app.to_json()).unwrap_err();
        assert!(err.to_string().contains("positive fps"), "{err}");

        let mut app = app_by_name("Browser").unwrap();
        if let AppKind::Scripted(s) = &mut app.kind {
            s.n_workers = 0;
        }
        assert!(AppModel::from_json(&app.to_json()).is_err());

        // The whole catalog passes its own validation.
        for app in mobile_apps() {
            app.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", app.name));
        }
    }
}
