//! SPEC-CPU2006-like single-threaded kernels (paper Figures 2 and 3).
//!
//! The paper runs SPECCPU2006 to expose the *architectural* gap between the
//! core types. We model each benchmark as a [`WorkProfile`] whose CPI and
//! miss-curve parameters are chosen to span the behavior classes SPEC
//! contains:
//!
//! * compute-bound, ILP-rich code (hmmer, h264ref) — speedup ≈ the
//!   microarchitectural gap;
//! * cache-sensitive code (mcf, omnetpp, xalancbmk) — speedup amplified by
//!   the 2 MB vs 512 KB L2 gap, up to ~4.5× at iso-frequency (paper §III.A);
//! * memory-streaming code (libquantum, lbm-like) — capacity-insensitive,
//!   sub-linear frequency scaling.

use crate::threads::ContinuousTask;
use bl_kernel::task::TaskBehavior;
use bl_platform::perf::{Work, WorkProfile};
use bl_simcore::rng::SimRng;
use bl_simcore::time::SimDuration;
use serde::{Deserialize, Serialize};

/// One modeled SPEC benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpecKernel {
    /// Benchmark name (SPEC CPU2006 integer/floating-point suite).
    pub name: &'static str,
    /// Architectural character.
    pub profile: WorkProfile,
}

impl SpecKernel {
    /// The twelve-kernel suite used by the architecture experiments.
    pub fn suite() -> Vec<SpecKernel> {
        fn p(cpi_l: f64, cpi_b: f64, mpki: f64, beta: f64, ei: f64) -> WorkProfile {
            WorkProfile {
                cpi_little: cpi_l,
                cpi_big: cpi_b,
                mpki_ref: mpki,
                cache_beta: beta,
                energy_intensity: ei,
            }
        }
        vec![
            // Compute-bound integer codes: modest memory traffic.
            SpecKernel {
                name: "perlbench",
                profile: p(1.7, 0.9, 3.0, 0.6, 1.02),
            },
            // Branchy, hard-to-speculate codes: the OoO window buys little,
            // so at the minimum big frequency a 1.3 GHz little core wins —
            // the paper's "three applications" slower at big@0.8.
            SpecKernel {
                name: "bzip2",
                profile: p(1.55, 1.22, 4.0, 0.25, 0.97),
            },
            SpecKernel {
                name: "gcc",
                profile: p(1.8, 1.0, 8.0, 0.7, 1.0),
            },
            // Cache-sensitive: the L2 gap dominates.
            SpecKernel {
                name: "mcf",
                profile: p(2.0, 1.1, 42.0, 1.0, 0.82),
            },
            SpecKernel {
                name: "gobmk",
                profile: p(1.6, 1.15, 2.5, 0.3, 0.96),
            },
            // ILP-rich compute kernels: big OoO core shines on CPI alone.
            SpecKernel {
                name: "hmmer",
                profile: p(1.5, 0.7, 0.5, 0.1, 1.12),
            },
            SpecKernel {
                name: "sjeng",
                profile: p(1.6, 1.1, 1.5, 0.25, 0.98),
            },
            // Streaming: misses that no cache capacity fixes.
            SpecKernel {
                name: "libquantum",
                profile: p(1.5, 0.85, 18.0, 0.05, 0.85),
            },
            SpecKernel {
                name: "h264ref",
                profile: p(1.5, 0.72, 1.0, 0.2, 1.1),
            },
            // Pointer-chasing, capacity-sensitive C++ codes.
            SpecKernel {
                name: "omnetpp",
                profile: p(1.9, 1.05, 30.0, 0.9, 0.88),
            },
            SpecKernel {
                name: "astar",
                profile: p(1.8, 1.0, 12.0, 0.6, 0.92),
            },
            SpecKernel {
                name: "xalancbmk",
                profile: p(1.9, 1.0, 25.0, 0.85, 0.9),
            },
        ]
    }

    /// A behavior that executes `total` work in scheduler-friendly chunks
    /// and signals `ScriptDone` at the end — the single-threaded benchmark
    /// process.
    pub fn behavior(&self, total: Work, rng: &mut SimRng) -> Box<dyn TaskBehavior> {
        // ~400 chunks per run: large enough to amortize event handling,
        // small enough that sampling sees smooth progress.
        let chunk = Work::from_instructions((total.instructions() / 400.0).max(1e6));
        Box::new(ContinuousTask::new(
            rng.fork(0xC0FF_EE00),
            total,
            chunk,
            self.profile,
            SimDuration::ZERO,
            0.0,
            true,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bl_platform::cache::CacheModel;
    use bl_platform::perf::PerfModel;

    #[test]
    fn suite_has_twelve_unique_kernels() {
        let suite = SpecKernel::suite();
        assert_eq!(suite.len(), 12);
        let mut names: Vec<_> = suite.iter().map(|k| k.name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 12);
    }

    #[test]
    fn speedup_range_matches_paper_fig2() {
        // At iso-frequency 1.3 GHz, big-over-little speedups must span
        // roughly 1.4x (compute-bound floor) to ~4.5x (cache-sensitive
        // ceiling) — paper §III.A: "up-to 4.5 times with the same 1.3GHz".
        let perf = PerfModel::default();
        let little_l2 = CacheModel::new(512, 8, 64);
        let big_l2 = CacheModel::new(2048, 16, 64);
        let speedups: Vec<f64> = SpecKernel::suite()
            .iter()
            .map(|k| perf.iso_freq_speedup(&k.profile, &little_l2, &big_l2, 1.3))
            .collect();
        let max = speedups.iter().cloned().fold(0.0, f64::max);
        let min = speedups.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!((1.2..=2.2).contains(&min), "min speedup {min:.2}");
        assert!((3.8..=5.0).contains(&max), "max speedup {max:.2}");
        // All big-core speedups exceed 1 (the paper: big always wins here).
        assert!(speedups.iter().all(|s| *s > 1.0));
    }

    #[test]
    fn mcf_like_kernels_lead_the_ranking() {
        let perf = PerfModel::default();
        let little_l2 = CacheModel::new(512, 8, 64);
        let big_l2 = CacheModel::new(2048, 16, 64);
        let suite = SpecKernel::suite();
        let speedup = |name: &str| {
            let k = suite.iter().find(|k| k.name == name).unwrap();
            perf.iso_freq_speedup(&k.profile, &little_l2, &big_l2, 1.3)
        };
        assert!(speedup("mcf") > speedup("hmmer"));
        assert!(speedup("omnetpp") > speedup("bzip2"));
        assert!(speedup("xalancbmk") > speedup("sjeng"));
    }
}
