//! Cross-process tests for the serve daemon: submitting to the daemon
//! must be byte-identical to a one-shot sweep, a SIGKILLed and restarted
//! daemon must converge reconnecting clients on the same bytes (also
//! with two clients overlapping), malformed input must draw typed
//! rejections without poisoning the connection, and a second batch
//! sharing a warm-up prefix must hydrate trunks from the daemon's
//! persistent snapshot store.

use std::io::{Read, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use serde_json::Value;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

fn temp_dir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("bl-serve-cli-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Runs the demo sweep one-shot (no daemon) in its own directory and
/// returns the report bytes — the byte-identity reference.
fn oneshot_reference(name: &str, seed: u64) -> Vec<u8> {
    let cwd = temp_dir(name);
    let status = repro()
        .args([
            "--demo-sweep",
            "ref.json",
            "--no-cache",
            "--jobs",
            "1",
            "--seed",
            &seed.to_string(),
        ])
        .current_dir(&cwd)
        .stderr(Stdio::null())
        .status()
        .expect("spawn one-shot reference sweep");
    assert!(status.success());
    let bytes = std::fs::read(cwd.join("ref.json")).expect("reference report exists");
    let _ = std::fs::remove_dir_all(&cwd);
    bytes
}

/// A daemon child that is SIGKILLed when dropped — a panicking test must
/// not leak a live daemon (an orphan holding the harness's stdout pipe
/// open hangs the whole test run).
struct Daemon(Child);

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Spawns a daemon on `socket` with its state under `state`.
fn spawn_daemon(socket: &Path, state: &Path, extra: &[&str]) -> Daemon {
    let mut cmd = repro();
    cmd.args([
        "serve",
        "--socket",
        socket.to_str().unwrap(),
        "--serve-dir",
        state.to_str().unwrap(),
        "--snap-store-dir",
        state.join("snapshots").to_str().unwrap(),
        "--heartbeat-ms",
        "100",
    ]);
    cmd.args(extra);
    Daemon(
        cmd.stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn serve daemon"),
    )
}

fn wait_for_socket(socket: &Path) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while Instant::now() < deadline {
        if UnixStream::connect(socket).is_ok() {
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    panic!("daemon socket never came up at {}", socket.display());
}

/// A `repro submit --demo` invocation wired for fast reconnects.
fn submit_demo(socket: &Path, out: &Path, seed: u64, client: &str) -> Command {
    let mut cmd = repro();
    cmd.args([
        "submit",
        "--socket",
        socket.to_str().unwrap(),
        "--demo",
        out.to_str().unwrap(),
        "--seed",
        &seed.to_string(),
        "--client",
        client,
        "--reconnects",
        "60",
        "--backoff-ms",
        "100",
        "--quiet",
    ]);
    cmd
}

/// Completed-scenario records across the daemon's per-run sweep journals.
fn journal_done_records(state: &Path) -> usize {
    let Ok(entries) = std::fs::read_dir(state.join("journal")) else {
        return 0;
    };
    entries
        .flatten()
        .filter(|e| e.path().extension().is_some_and(|x| x == "jsonl"))
        .map(|e| {
            std::fs::read_to_string(e.path())
                .map(|t| t.lines().filter(|l| l.contains("\"done\"")).count())
                .unwrap_or(0)
        })
        .sum()
}

/// Reads one newline-terminated answer off a raw connection.
fn read_line(stream: &mut UnixStream, within: Duration) -> Option<String> {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let deadline = Instant::now() + within;
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        if let Some(nl) = buf.iter().position(|b| *b == b'\n') {
            let line: Vec<u8> = buf.drain(..=nl).collect();
            return Some(String::from_utf8_lossy(&line[..line.len() - 1]).to_string());
        }
        if Instant::now() >= deadline {
            return None;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return None,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => return None,
        }
    }
}

#[test]
fn submit_demo_matches_oneshot_reference() {
    let reference = oneshot_reference("submit-ref", 42);
    let dir = temp_dir("submit");
    let socket = dir.join("serve.sock");
    let state = dir.join("state");
    let daemon = spawn_daemon(&socket, &state, &[]);
    wait_for_socket(&socket);

    let out = dir.join("out.json");
    let status = submit_demo(&socket, &out, 42, "t1")
        .stderr(Stdio::null())
        .status()
        .expect("spawn submit");
    assert!(status.success(), "submit must exit 0");
    let served = std::fs::read(&out).expect("submit report exists");
    assert_eq!(
        served, reference,
        "served demo report differs from the one-shot reference"
    );

    drop(daemon);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn daemon_sigkill_restart_resubmit_is_byte_identical() {
    let reference = oneshot_reference("kill-ref", 43);
    let dir = temp_dir("kill");
    let socket = dir.join("serve.sock");
    let state = dir.join("state");
    let mut daemon = spawn_daemon(&socket, &state, &[]);
    wait_for_socket(&socket);

    let out = dir.join("out.json");
    let mut client = submit_demo(&socket, &out, 43, "chaos")
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn submit");

    // SIGKILL the daemon once the run is observably mid-flight.
    let poll_deadline = Instant::now() + Duration::from_secs(120);
    while journal_done_records(&state) < 1 {
        assert!(
            Instant::now() < poll_deadline,
            "no journaled progress before the kill deadline"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    daemon.0.kill().expect("SIGKILL daemon");
    let _ = daemon.0.wait();
    std::thread::sleep(Duration::from_millis(300));

    // Restart on the same socket and state; the client reconnects,
    // resubmits, and the journal replays completed scenarios.
    let daemon = spawn_daemon(&socket, &state, &[]);
    wait_for_socket(&socket);
    let status = client.wait().expect("wait for submit client");
    assert!(status.success(), "reconnecting submit must exit 0");
    let served = std::fs::read(&out).expect("submit report exists");
    assert_eq!(
        served, reference,
        "post-SIGKILL report differs from the one-shot reference"
    );

    drop(daemon);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_clients_resume_byte_identically_after_sigkill() {
    let ref_a = oneshot_reference("pair-ref-a", 50);
    let ref_b = oneshot_reference("pair-ref-b", 51);
    let dir = temp_dir("pair");
    let socket = dir.join("serve.sock");
    let state = dir.join("state");
    let mut daemon = spawn_daemon(&socket, &state, &["--max-active", "2"]);
    wait_for_socket(&socket);

    // Two clients with overlapping, distinct batches.
    let out_a = dir.join("a.json");
    let out_b = dir.join("b.json");
    let mut client_a = submit_demo(&socket, &out_a, 50, "alice")
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn client a");
    let mut client_b = submit_demo(&socket, &out_b, 51, "bob")
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn client b");

    // Kill the daemon while both batches are in flight.
    let poll_deadline = Instant::now() + Duration::from_secs(120);
    while journal_done_records(&state) < 1 {
        assert!(
            Instant::now() < poll_deadline,
            "no journaled progress before the kill deadline"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    daemon.0.kill().expect("SIGKILL daemon");
    let _ = daemon.0.wait();
    std::thread::sleep(Duration::from_millis(300));

    // The restarted daemon adopts the service journal and both clients
    // converge on the one-shot bytes.
    let daemon = spawn_daemon(&socket, &state, &["--max-active", "2"]);
    wait_for_socket(&socket);
    let status_a = client_a.wait().expect("wait client a");
    let status_b = client_b.wait().expect("wait client b");
    assert!(status_a.success(), "client a must exit 0");
    assert!(status_b.success(), "client b must exit 0");
    assert_eq!(
        std::fs::read(&out_a).expect("report a exists"),
        ref_a,
        "client a's post-restart report differs from its reference"
    );
    assert_eq!(
        std::fs::read(&out_b).expect("report b exists"),
        ref_b,
        "client b's post-restart report differs from its reference"
    );

    drop(daemon);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn malformed_requests_draw_typed_rejections_and_spare_the_connection() {
    let dir = temp_dir("malformed");
    let socket = dir.join("serve.sock");
    let state = dir.join("state");
    let daemon = spawn_daemon(&socket, &state, &[]);
    wait_for_socket(&socket);

    let mut conn = UnixStream::connect(&socket).expect("connect");
    for (line, reason) in [
        ("truncated json {\"op\":", "malformed"),
        ("{\"op\":\"submit\",\"scenarios\":[]}", "empty-batch"),
        ("{\"op\":\"submit\",\"scenarios\":[1,2]}", "malformed"),
        ("{\"op\":\"ping\",\"surprise\":true}", "malformed"),
    ] {
        conn.write_all(format!("{line}\n").as_bytes())
            .expect("send malformed request");
        let answer = read_line(&mut conn, Duration::from_secs(5))
            .unwrap_or_else(|| panic!("no answer to {line:?}"));
        assert!(
            answer.contains("\"rejected\"") && answer.contains(reason),
            "expected a typed {reason} rejection for {line:?}, got {answer}"
        );
    }

    // A zero budget on an otherwise well-formed batch draws the typed
    // bad-budget rejection (scenario decoding happens first, so the
    // scenarios must be real).
    let zero_budget = bl_served::proto::submit_line(
        "hardening",
        &demo_scenarios(61, 2, 100),
        &bl_served::SubmitOptions {
            deadline_ms: Some(0),
            ..Default::default()
        },
    );
    conn.write_all(format!("{zero_budget}\n").as_bytes())
        .expect("send zero-budget submit");
    let answer = read_line(&mut conn, Duration::from_secs(5)).expect("bad-budget answer");
    assert!(
        answer.contains("\"rejected\"") && answer.contains("bad-budget"),
        "expected a typed bad-budget rejection, got {answer}"
    );

    // The same connection still serves real work: a valid submission is
    // admitted and runs to completion.
    let batch = bl_served::proto::submit_line(
        "hardening",
        &demo_scenarios(60, 1, 200),
        &bl_served::SubmitOptions::default(),
    );
    conn.write_all(format!("{batch}\n").as_bytes())
        .expect("send valid submit");
    let answer = read_line(&mut conn, Duration::from_secs(10)).expect("admission answer");
    assert!(
        answer.contains("\"admitted\""),
        "valid submission after rejections must be admitted, got {answer}"
    );
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut done = false;
    while Instant::now() < deadline {
        let Some(line) = read_line(&mut conn, Duration::from_secs(5)) else {
            break;
        };
        if line.contains("\"ev\":\"done\"") {
            done = true;
            break;
        }
    }
    assert!(done, "the post-rejection submission must run to completion");

    drop(daemon);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Tiny deterministic scenarios for the socket-level tests.
fn demo_scenarios(seed: u64, salt: u64, sim_ms: u64) -> Vec<Value> {
    use biglittle::{Scenario, SystemConfig};
    use bl_platform::ids::CpuId;
    use bl_simcore::time::SimDuration;

    (0..2u64)
        .map(|i| {
            let sc = Scenario::microbench(
                format!("serve-cli-{salt}-{i}"),
                CpuId((i % 4) as usize),
                0.25 + 0.1 * i as f64,
                SimDuration::from_millis(10),
                SimDuration::from_millis(sim_ms),
                SystemConfig::baseline().with_seed(seed ^ (salt << 8) ^ i),
            );
            serde_json::to_value(&sc).expect("scenario serializes")
        })
        .collect()
}

/// Scenarios sharing one warm-up prefix (same config, seed, workload
/// shape, warm-up point) but with batch-distinct labels and run lengths —
/// the shape that exercises cross-batch trunk reuse through the
/// persistent snapshot store.
fn warmup_scenarios(tag: &str, run_ms: u64) -> Vec<Value> {
    use biglittle::{Scenario, SystemConfig};
    use bl_platform::ids::CpuId;
    use bl_simcore::time::SimDuration;

    (0..2u64)
        .map(|i| {
            let sc = Scenario::microbench(
                format!("hydrate-{tag}-{i}"),
                CpuId(i as usize),
                0.3 + 0.2 * i as f64,
                SimDuration::from_millis(10),
                SimDuration::from_millis(run_ms),
                SystemConfig::baseline().with_seed(7_000 + i),
            )
            .with_warmup(SimDuration::from_millis(100));
            serde_json::to_value(&sc).expect("scenario serializes")
        })
        .collect()
}

fn submit_batch(socket: &Path, input: &Path, output: &Path) {
    let status = repro()
        .args([
            "submit",
            "--socket",
            socket.to_str().unwrap(),
            "--batch",
            input.to_str().unwrap(),
            output.to_str().unwrap(),
            "--reconnects",
            "20",
            "--backoff-ms",
            "100",
            "--quiet",
        ])
        .stderr(Stdio::null())
        .status()
        .expect("spawn submit --batch");
    assert!(status.success(), "submit --batch must exit 0");
}

fn stats_counter(report_path: &Path, key: &str) -> u64 {
    let text = std::fs::read_to_string(report_path).expect("report exists");
    let v: Value = serde_json::from_str(&text).expect("report is JSON");
    v.get("stats")
        .and_then(|s| s.get(key))
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("no stats.{key} in {}", report_path.display()))
}

#[test]
fn second_batch_hydrates_warm_trunks_from_the_daemon_store() {
    let dir = temp_dir("hydrate");
    let socket = dir.join("serve.sock");
    let state = dir.join("state");
    let daemon = spawn_daemon(&socket, &state, &[]);
    wait_for_socket(&socket);

    let in_a = dir.join("a.batch.json");
    let in_b = dir.join("b.batch.json");
    std::fs::write(
        &in_a,
        serde_json::to_string(&Value::Array(warmup_scenarios("a", 300))).unwrap(),
    )
    .unwrap();
    std::fs::write(
        &in_b,
        serde_json::to_string(&Value::Array(warmup_scenarios("b", 400))).unwrap(),
    )
    .unwrap();

    // Batch A builds the warm trunks and publishes them to the store.
    let out_a = dir.join("a.json");
    submit_batch(&socket, &in_a, &out_a);
    assert!(
        stats_counter(&out_a, "published") >= 1,
        "the first warm-up batch must publish trunk snapshots"
    );

    // Batch B shares the warm-up prefix: its streamed stats must show
    // trunks hydrated from the store instead of re-simulated.
    let out_b = dir.join("b.json");
    submit_batch(&socket, &in_b, &out_b);
    assert!(
        stats_counter(&out_b, "hydrated") >= 1,
        "the second batch must hydrate the shared trunks from the store"
    );

    drop(daemon);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn smoke_serve_exits_zero_with_all_checks_passing() {
    let cwd = temp_dir("smoke");
    let output = repro()
        .args(["--smoke-serve", "smoke.json"])
        .current_dir(&cwd)
        .output()
        .expect("spawn serve smoke");
    assert!(
        output.status.success(),
        "serve smoke failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let report = std::fs::read_to_string(cwd.join("smoke.json")).expect("smoke report exists");
    assert!(
        report.contains("\"checks_failed\": 0"),
        "every smoke expectation must hold: {report}"
    );
    let _ = std::fs::remove_dir_all(&cwd);
}
