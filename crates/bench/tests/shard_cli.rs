//! Cross-process tests for the sharded sweep: a worker fleet must produce
//! byte-identical reports to a serial run, survive wedged workers through
//! lease expiry, resume fleet-wide after the *coordinator* is SIGKILLed,
//! and pass the chaos smoke that kills a worker mid-batch.

use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::{Duration, Instant};

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

fn temp_cwd(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("bl-shard-cli-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Runs the demo sweep serially (no fleet) in its own directory and
/// returns the report bytes — the byte-identity reference for every
/// fleet run below.
fn serial_reference(name: &str) -> Vec<u8> {
    let cwd = temp_cwd(name);
    let status = repro()
        .args(["--demo-sweep", "ref.json", "--no-cache", "--jobs", "1"])
        .current_dir(&cwd)
        .status()
        .expect("spawn serial reference sweep");
    assert!(status.success());
    let bytes = std::fs::read(cwd.join("ref.json")).expect("reference report exists");
    let _ = std::fs::remove_dir_all(&cwd);
    bytes
}

/// Number of completed-scenario ("done") records across every journal —
/// merged and per-worker — under `<cwd>/results/.sweep-journal/`.
fn journal_done_records(cwd: &Path) -> usize {
    let dir = cwd.join("results/.sweep-journal");
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    entries
        .flatten()
        .filter(|e| e.path().extension().is_some_and(|x| x == "jsonl"))
        .map(|e| {
            std::fs::read_to_string(e.path())
                .map(|t| t.lines().filter(|l| l.contains("\"done\"")).count())
                .unwrap_or(0)
        })
        .sum()
}

/// Extracts the integer following `key=` in the coordinator's stderr
/// diagnostics line.
fn stderr_counter(stderr: &str, key: &str) -> u64 {
    let tail = stderr
        .split(&format!("{key}="))
        .nth(1)
        .unwrap_or_else(|| panic!("no {key}= in stderr:\n{stderr}"));
    tail.chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("unparsable {key}= in stderr:\n{stderr}"))
}

#[test]
fn fleet_demo_sweep_matches_serial_byte_identically() {
    let reference = serial_reference("fleet-ref");

    let cwd = temp_cwd("fleet");
    let output = repro()
        .args(["--demo-sweep", "out.json", "--no-cache", "--workers", "4"])
        .current_dir(&cwd)
        .output()
        .expect("spawn fleet demo sweep");
    assert!(
        output.status.success(),
        "fleet sweep failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let fleet = std::fs::read(cwd.join("out.json")).expect("fleet report exists");
    assert_eq!(
        fleet, reference,
        "4-worker report differs from the serial reference"
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert_eq!(stderr_counter(&stderr, "workers"), 4);
    let _ = std::fs::remove_dir_all(&cwd);
}

#[test]
fn wedged_worker_lease_expires_and_batch_completes() {
    let reference = serial_reference("wedge-ref");

    // Worker 1 wedges on its first lease (never heartbeats, never
    // finishes); with a short TTL the coordinator must reclaim its lease,
    // kill it, and re-lease the range to a survivor.
    let cwd = temp_cwd("wedge");
    let output = repro()
        .args([
            "--demo-sweep",
            "out.json",
            "--no-cache",
            "--workers",
            "3",
            "--lease-ms",
            "500",
            "--heartbeat-ms",
            "100",
        ])
        .env("BL_SHARD_TEST_WEDGE_WORKER", "1")
        .current_dir(&cwd)
        .output()
        .expect("spawn wedged fleet sweep");
    assert!(
        output.status.success(),
        "wedged fleet sweep failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let fleet = std::fs::read(cwd.join("out.json")).expect("fleet report exists");
    assert_eq!(
        fleet, reference,
        "wedged-fleet report differs from the serial reference"
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr_counter(&stderr, "reclaimed_expired") >= 1,
        "the wedged worker's lease must expire and be reclaimed:\n{stderr}"
    );
    assert!(
        stderr_counter(&stderr, "re-leased") >= 1,
        "the reclaimed range must be re-leased:\n{stderr}"
    );
    assert!(
        stderr_counter(&stderr, "workers_lost") >= 1,
        "the wedged worker must be counted lost:\n{stderr}"
    );
    let _ = std::fs::remove_dir_all(&cwd);
}

#[test]
fn coordinator_sigkill_then_fleet_resume_is_byte_identical() {
    let reference = serial_reference("coord-kill-ref");

    // Victim fleet: worker 1 wedges under a long lease so the batch is
    // guaranteed to still be in flight when the coordinator is SIGKILLed,
    // while the healthy workers publish completed ranges to their
    // journals first.
    let cwd = temp_cwd("coord-kill");
    let mut child = repro()
        .args([
            "--demo-sweep",
            "out.json",
            "--no-cache",
            "--workers",
            "3",
            "--lease-ms",
            "60000",
            "--heartbeat-ms",
            "100",
        ])
        .env("BL_SHARD_TEST_WEDGE_WORKER", "1")
        .current_dir(&cwd)
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn victim fleet sweep");
    let poll_deadline = Instant::now() + Duration::from_secs(120);
    loop {
        if journal_done_records(&cwd) >= 1 {
            child.kill().expect("kill coordinator");
            let _ = child.wait();
            break;
        }
        assert!(
            child.try_wait().expect("poll coordinator").is_none(),
            "the wedged fleet must not settle before the kill"
        );
        assert!(
            Instant::now() < poll_deadline,
            "no worker journal progress within the poll deadline"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(
        !cwd.join("out.json").exists(),
        "killed mid-batch, before the report was written"
    );
    // The orphaned workers see stdin EOF and exit on their own; give them
    // a moment so the resume below reads settled journals.
    std::thread::sleep(Duration::from_secs(1));

    // Fleet-wide resume: completed ranges are absorbed from the dead
    // fleet's per-worker journals, the remainder re-runs (no wedge this
    // time), and the report matches the serial reference byte for byte.
    let output = repro()
        .args([
            "--demo-sweep",
            "out.json",
            "--no-cache",
            "--workers",
            "3",
            "--resume",
        ])
        .current_dir(&cwd)
        .output()
        .expect("spawn resume fleet sweep");
    assert!(
        output.status.success(),
        "fleet resume failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let resumed = std::fs::read(cwd.join("out.json")).expect("resumed report exists");
    assert_eq!(
        resumed, reference,
        "fleet-resumed report differs from the serial reference"
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    let resumed_count = stderr
        .split(" scenarios, ")
        .nth(1)
        .and_then(|t| t.split(" resumed").next())
        .and_then(|n| n.parse::<u64>().ok())
        .unwrap_or_else(|| panic!("no resumed count in stderr:\n{stderr}"));
    assert!(
        resumed_count >= 1,
        "at least one scenario must be absorbed from the dead fleet's journals:\n{stderr}"
    );
    let _ = std::fs::remove_dir_all(&cwd);
}

#[test]
fn smoke_shard_exits_zero_with_bit_identity() {
    let cwd = temp_cwd("smoke");
    let output = repro()
        .args(["--smoke-shard", "smoke.json"])
        .current_dir(&cwd)
        .output()
        .expect("spawn shard smoke");
    assert!(
        output.status.success(),
        "shard smoke failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let report = std::fs::read_to_string(cwd.join("smoke.json")).expect("smoke report exists");
    assert!(
        report.contains("\"bit_identical\": true"),
        "chaos fleet must merge to the serial bytes: {report}"
    );
    assert!(
        report.contains("\"checks_failed\": 0"),
        "every smoke expectation must hold: {report}"
    );
    let _ = std::fs::remove_dir_all(&cwd);
}
