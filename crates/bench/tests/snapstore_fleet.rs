//! Cross-process snapshot-store test: a sharded worker fleet — real
//! `repro --worker` child processes — must populate the persistent
//! snapshot store on its first pass and hydrate warm trunks from it on
//! the next, producing results byte-identical to a serial cold sweep
//! both times.

use biglittle::{sweep, LateBindings, Scenario, StopWhen, SweepOptions, SystemConfig};
use bl_governor::GovernorConfig;
use bl_simcore::fault::{FaultKind, FaultPlan};
use bl_simcore::time::{SimDuration, SimTime};
use bl_workloads::apps::app_by_name;
use std::path::PathBuf;
use std::process::Command;

/// The shared warm-up ladder (nested prefixes) the fleet members fork from.
const LADDER_MS: [u64; 3] = [200, 320, 400];

fn ladder_point(label: &str, level: usize, late: LateBindings) -> Scenario {
    let cfg = SystemConfig::baseline().with_seed(23).with_skip_ahead(true);
    let app = app_by_name("Angry Bird").unwrap();
    let via: Vec<SimDuration> = LADDER_MS[..level]
        .iter()
        .map(|&ms| SimDuration::from_millis(ms))
        .collect();
    Scenario::app(label, app, cfg)
        .with_stop(StopWhen::Deadline(SimDuration::from_millis(
            LADDER_MS[level] + 150,
        )))
        .with_warmup(SimDuration::from_millis(LADDER_MS[level]))
        .with_warmup_via(via)
        .with_late(late)
}

fn late_variant(idx: usize) -> LateBindings {
    match idx % 3 {
        0 => LateBindings::default(),
        1 => LateBindings {
            governors: Some(vec![GovernorConfig::Performance, GovernorConfig::Powersave]),
            faults: FaultPlan::new(),
        },
        _ => LateBindings {
            governors: None,
            faults: FaultPlan::new().with(
                SimTime::from_millis(LADDER_MS[0] + 50),
                FaultKind::ThermalSpike {
                    cluster: 0,
                    delta_c: 6.0,
                },
            ),
        },
    }
}

fn batch() -> Vec<Scenario> {
    [0usize, 1, 1, 2, 2, 2]
        .iter()
        .enumerate()
        .map(|(i, &lv)| ladder_point(&format!("fleet-{i}"), lv, late_variant(i)))
        .collect()
}

fn result_bytes(report: &sweep::SweepReport) -> Vec<String> {
    report
        .results
        .iter()
        .map(|r| serde_json::to_string(r.as_ref().unwrap()).unwrap())
        .collect()
}

fn temp_dir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("bl-snapstore-fleet-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

#[test]
fn fleet_populates_and_hydrates_the_store_across_processes() {
    // The coordinator runs in this test process; workers are real child
    // processes of the compiled `repro` binary, each opening the same
    // on-disk store independently.
    sweep::shard::set_worker_launcher(|spec| {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_repro"));
        cmd.args(sweep::shard::worker_cli_args(spec));
        cmd
    });

    let scenarios = batch();
    let base = temp_dir("hydrate");
    let store = base.join("snapshots");
    let fleet = |journal: &str| {
        sweep::run_with(
            &scenarios,
            &SweepOptions::serial()
                .sharded(2)
                .journaled(base.join(journal))
                .snap_stored(&store),
        )
    };

    let cold = sweep::run_with(&scenarios, &SweepOptions::serial().prefix_sharing(false));

    // Pass 1, empty store: at least one worker cold-builds the trunk and
    // publishes every rung. The coordinator learns the fleet's counters
    // from the workers' journals.
    let first = fleet("j1");
    assert!(first.stats.snapshot.trunk_runs >= 1);
    assert!(first.stats.snapshot.published >= LADDER_MS.len() as u64);
    assert_eq!(first.stats.snapshot.forks, scenarios.len() as u64);
    assert_eq!(result_bytes(&cold), result_bytes(&first));

    // Pass 2, warm store: every worker hydrates its trunks from disk —
    // zero trunk re-simulation anywhere in the fleet — and the merged
    // results are still byte-identical to the serial cold sweep.
    let second = fleet("j2");
    assert_eq!(second.stats.snapshot.trunk_runs, 0);
    assert!(second.stats.snapshot.hydrated > 0);
    assert!(second.stats.snapshot.trunk_ms_saved > 0.0);
    assert_eq!(result_bytes(&cold), result_bytes(&second));

    let _ = std::fs::remove_dir_all(&base);
}
