//! Cross-process supervision tests for the `repro` binary: a sweep killed
//! with SIGKILL mid-batch must resume from its write-ahead journal to a
//! byte-identical report, and the chaos smoke must exit 0 while reporting
//! the batch as degraded.

use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::{Duration, Instant};

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

fn temp_cwd(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("bl-cli-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Number of completed-scenario ("done") records in the batch journal the
/// demo sweep writes under `<cwd>/results/.sweep-journal/`.
fn journal_done_records(cwd: &Path) -> usize {
    let dir = cwd.join("results/.sweep-journal");
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    entries
        .flatten()
        .filter(|e| e.path().extension().is_some_and(|x| x == "jsonl"))
        .map(|e| {
            std::fs::read_to_string(e.path())
                .map(|t| t.lines().filter(|l| l.contains("\"done\"")).count())
                .unwrap_or(0)
        })
        .sum()
}

#[test]
fn sigkilled_demo_sweep_resumes_byte_identically() {
    // Reference: the same batch run uninterrupted in its own directory.
    let ref_cwd = temp_cwd("ref");
    let status = repro()
        .args(["--demo-sweep", "ref.json", "--no-cache", "--jobs", "1"])
        .current_dir(&ref_cwd)
        .status()
        .expect("spawn reference demo sweep");
    assert!(status.success());
    let reference = std::fs::read(ref_cwd.join("ref.json")).expect("reference report exists");

    // Victim: same batch, killed (SIGKILL — no cleanup handlers run) once
    // the journal shows at least one completed scenario.
    let kill_cwd = temp_cwd("kill");
    let mut child = repro()
        .args(["--demo-sweep", "out.json", "--no-cache", "--jobs", "1"])
        .current_dir(&kill_cwd)
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn victim demo sweep");
    let poll_deadline = Instant::now() + Duration::from_secs(120);
    let interrupted = loop {
        if journal_done_records(&kill_cwd) >= 1 {
            child.kill().expect("kill victim");
            let _ = child.wait();
            break true;
        }
        if child.try_wait().expect("poll victim").is_some() {
            // The batch outran the poll loop on this machine; the resume
            // below still exercises a full-journal replay.
            break false;
        }
        if Instant::now() >= poll_deadline {
            let _ = child.kill();
            let _ = child.wait();
            panic!("victim sweep made no journal progress within the poll deadline");
        }
        std::thread::sleep(Duration::from_millis(2));
    };
    if interrupted {
        assert!(
            !kill_cwd.join("out.json").exists(),
            "killed mid-batch, before the report was written"
        );
    }
    let done_at_kill = journal_done_records(&kill_cwd);
    assert!(
        done_at_kill >= 1,
        "the journal recorded completed scenarios"
    );

    // Resume: completed scenarios replay from the journal, the remainder
    // runs, and the report matches the uninterrupted one byte for byte.
    let status = repro()
        .args([
            "--demo-sweep",
            "out.json",
            "--no-cache",
            "--jobs",
            "1",
            "--resume",
        ])
        .current_dir(&kill_cwd)
        .status()
        .expect("spawn resume demo sweep");
    assert!(status.success());
    let resumed = std::fs::read(kill_cwd.join("out.json")).expect("resumed report exists");
    assert_eq!(
        resumed, reference,
        "resumed report differs from the uninterrupted reference"
    );

    let _ = std::fs::remove_dir_all(&ref_cwd);
    let _ = std::fs::remove_dir_all(&kill_cwd);
}

#[test]
fn smoke_supervision_exits_zero_and_reports_degraded() {
    let cwd = temp_cwd("smoke");
    let output = repro()
        .args(["--smoke-supervision", "smoke.json"])
        .current_dir(&cwd)
        .output()
        .expect("spawn smoke supervision");
    assert!(
        output.status.success(),
        "smoke supervision failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let report = std::fs::read_to_string(cwd.join("smoke.json")).expect("smoke report exists");
    assert!(
        report.contains("\"degraded\": true"),
        "the chaos batch must be reported degraded: {report}"
    );
    assert!(
        report.contains("\"checks_failed\": 0"),
        "every smoke expectation must hold: {report}"
    );
    let _ = std::fs::remove_dir_all(&cwd);
}
