//! Criterion benches — one target per paper table/figure.
//!
//! These measure the *simulator's* throughput regenerating each artifact at
//! reduced scale (Criterion needs many iterations; paper-scale runs live in
//! the `repro` binary).

use bl_bench::run_experiment;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_experiments(c: &mut Criterion) {
    let mut g = c.benchmark_group("paper");
    g.sample_size(10);
    for id in [
        "table1", "table2", "fig2", "fig3", "fig6", "table3", "table4", "fig9", "fig10",
        "table5",
    ] {
        g.bench_function(id, |b| b.iter(|| run_experiment(id, 42, true)));
    }
    g.finish();
}

criterion_group!(benches, bench_experiments);
criterion_main!(benches);
