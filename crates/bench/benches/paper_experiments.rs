//! Timing benches — one target per paper table/figure.
//!
//! These measure the *simulator's* throughput regenerating each artifact at
//! reduced scale with a plain `std::time::Instant` harness (`harness =
//! false`, no external bench framework); paper-scale runs live in the
//! `repro` binary. Run with `cargo bench -p bl-bench`.

use std::time::Instant;

use bl_bench::run_experiment;

const SAMPLES: u32 = 10;

fn main() {
    println!("{:<10} {:>12} {:>12} {:>12}", "bench", "min", "mean", "max");
    for id in [
        "table1", "table2", "fig2", "fig3", "fig6", "table3", "table4", "fig9", "fig10", "table5",
    ] {
        // One warm-up run so lazy setup does not skew the first sample.
        run_experiment(id, 42, true);
        let mut times = Vec::with_capacity(SAMPLES as usize);
        for _ in 0..SAMPLES {
            let t0 = Instant::now();
            let out = run_experiment(id, 42, true);
            times.push(t0.elapsed());
            std::hint::black_box(out);
        }
        let min = times.iter().min().expect("SAMPLES > 0");
        let max = times.iter().max().expect("SAMPLES > 0");
        let mean = times.iter().sum::<std::time::Duration>() / SAMPLES;
        println!("{id:<10} {min:>12.3?} {mean:>12.3?} {max:>12.3?}");
    }
}
