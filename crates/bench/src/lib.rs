//! Shared helpers for the `repro` binary and the Criterion benches.

#![warn(missing_docs)]

use biglittle::experiments::{ablation, appchar, arch, coreconfig, dvfs, resilience, tables};
use bl_simcore::time::SimDuration;

/// Default seed used by the reproduction runs.
pub const SEED: u64 = 42;

/// All experiment identifiers accepted by `repro --exp`. The `ablation-*`
/// and `resilience-*` entries go beyond the paper (see DESIGN.md §7 and
/// the fault-model section).
pub const EXPERIMENTS: [&str; 23] = [
    "table1",
    "table2",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "table3",
    "table4",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "table5",
    "table3-compare",
    "fig11-13",
    "ablation-tiny",
    "ablation-cache",
    "ablation-governors",
    "ablation-schedulers",
    "ablation-cpuidle",
    "resilience-outage",
    "resilience-thermal",
];

/// Runs one experiment by id and returns its rendered report.
///
/// `seed` drives every stochastic draw; `fast` shrinks run lengths for
/// smoke tests (the repro binary uses paper scale).
pub fn run_experiment(id: &str, seed: u64, fast: bool) -> String {
    let spec_ref = if fast {
        SimDuration::from_millis(200)
    } else {
        SimDuration::from_secs(2)
    };
    let micro_run = if fast {
        SimDuration::from_millis(300)
    } else {
        SimDuration::from_secs(2)
    };
    match id {
        "table1" => tables::table1(),
        "table2" => tables::table2(),
        "fig2" => arch::render_fig2(&arch::fig2_spec_speedup(spec_ref, seed)),
        "fig3" => arch::render_fig3(&arch::fig3_spec_power(spec_ref, seed)),
        "fig4" => appchar::render_fig4(&appchar::fig4_latency_big_vs_little(seed)),
        "fig5" => appchar::render_fig5(&appchar::fig5_fps_big_vs_little(seed)),
        "fig6" => arch::render_fig6(&arch::fig6_power_vs_utilization(micro_run, seed)),
        "table3" => appchar::render_table3(&appchar::default_runs(seed)),
        "table3-compare" => appchar::render_table3_comparison(&appchar::default_runs(seed)),
        "table4" => appchar::render_table4(&appchar::default_runs(seed)),
        "fig7" => coreconfig::render_fig7(&coreconfig::fig7_performance(seed)),
        "fig8" => coreconfig::render_fig8(&coreconfig::fig8_power_saving(seed)),
        "fig9" => dvfs::render_residency(
            &appchar::default_runs(seed),
            bl_platform::ids::CoreKind::Little,
        ),
        "fig10" => dvfs::render_residency(
            &appchar::default_runs(seed),
            bl_platform::ids::CoreKind::Big,
        ),
        "table5" => dvfs::render_table5(&appchar::default_runs(seed)),
        "fig11-13" => {
            let s = dvfs::fig11_12_13_parameter_sweep(seed);
            format!(
                "{}\n{}\n{}",
                dvfs::render_fig11(&s),
                dvfs::render_fig12(&s),
                dvfs::render_fig13(&s)
            )
        }
        "ablation-tiny" => ablation::render_tiny_floor(&ablation::tiny_floor_full(seed)),
        "ablation-cache" => ablation::render_equal_l2(&ablation::equal_l2_ablation(spec_ref, seed)),
        "ablation-governors" => ablation::render_governor_comparison(
            &ablation::governor_comparison(bl_workloads::apps::mobile_apps(), seed),
        ),
        "ablation-schedulers" => ablation::render_scheduler_comparison(
            &ablation::scheduler_comparison(bl_workloads::apps::mobile_apps(), seed),
        ),
        "ablation-cpuidle" => ablation::render_cpuidle(&ablation::cpuidle_ablation(
            bl_workloads::apps::mobile_apps(),
            seed,
        )),
        "resilience-outage" => resilience::render_outage(&resilience::outage_comparison(
            bl_workloads::apps::mobile_apps(),
            seed,
        )),
        "resilience-thermal" => {
            let len = if fast {
                SimDuration::from_secs(15)
            } else {
                SimDuration::from_secs(60)
            };
            resilience::render_throttle(&resilience::thermal_throttle(len, seed))
        }
        other => panic!("unknown experiment {other:?}; known: {EXPERIMENTS:?}"),
    }
}

/// Runs one experiment and returns its results as structured JSON (the
/// text tables are for humans; this is for scripts and plotting).
///
/// Static tables (`table1`, `table2`) return their rendered text wrapped in
/// a JSON string.
pub fn run_experiment_json(id: &str, seed: u64, fast: bool) -> serde_json::Value {
    let spec_ref = if fast {
        SimDuration::from_millis(200)
    } else {
        SimDuration::from_secs(2)
    };
    let micro_run = if fast {
        SimDuration::from_millis(300)
    } else {
        SimDuration::from_secs(2)
    };
    fn j<T: serde::Serialize>(v: T) -> serde_json::Value {
        serde_json::to_value(v).expect("experiment results serialize")
    }
    match id {
        "table1" => serde_json::Value::String(tables::table1()),
        "table2" => serde_json::Value::String(tables::table2()),
        "fig2" | "fig3" => j(arch::run_spec_matrix(spec_ref, seed)),
        "fig4" => j(appchar::fig4_latency_big_vs_little(seed)),
        "fig5" => j(appchar::fig5_fps_big_vs_little(seed)),
        "fig6" => j(arch::fig6_power_vs_utilization(micro_run, seed)),
        "table3" | "table3-compare" | "table4" | "fig9" | "fig10" | "table5" => {
            let runs = appchar::default_runs(seed);
            let named: Vec<(String, &biglittle::RunResult)> =
                runs.iter().map(|(a, r)| (a.name.clone(), r)).collect();
            j(named)
        }
        "fig7" | "fig8" => j(coreconfig::fig7_performance(seed)),
        "fig11-13" => j(dvfs::fig11_12_13_parameter_sweep(seed)),
        "ablation-tiny" => j(ablation::tiny_floor_full(seed)),
        "ablation-cache" => j(ablation::equal_l2_ablation(spec_ref, seed)),
        "ablation-governors" => j(ablation::governor_comparison(
            bl_workloads::apps::mobile_apps(),
            seed,
        )),
        "ablation-schedulers" => j(ablation::scheduler_comparison(
            bl_workloads::apps::mobile_apps(),
            seed,
        )),
        "ablation-cpuidle" => j(ablation::cpuidle_ablation(
            bl_workloads::apps::mobile_apps(),
            seed,
        )),
        "resilience-outage" => j(resilience::outage_comparison(
            bl_workloads::apps::mobile_apps(),
            seed,
        )),
        "resilience-thermal" => {
            let len = if fast {
                SimDuration::from_secs(15)
            } else {
                SimDuration::from_secs(60)
            };
            j(resilience::thermal_throttle(len, seed))
        }
        other => panic!("unknown experiment {other:?}; known: {EXPERIMENTS:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_tables_run_instantly() {
        assert!(run_experiment("table1", SEED, true).contains("Cortex"));
        assert!(run_experiment("table2", SEED, true).contains("BBench"));
    }

    #[test]
    #[should_panic(expected = "unknown experiment")]
    fn unknown_id_panics() {
        run_experiment("fig99", SEED, true);
    }

    #[test]
    fn every_experiment_id_renders_in_fast_mode() {
        for id in EXPERIMENTS {
            let text = run_experiment(id, SEED, true);
            assert!(!text.trim().is_empty(), "{id} rendered empty");
            let json = run_experiment_json(id, SEED, true);
            assert!(!json.is_null(), "{id} produced null JSON");
        }
    }
}
