//! Shared helpers for the `repro` binary and the Criterion benches.

#![warn(missing_docs)]

use biglittle::experiments::{ablation, appchar, arch, coreconfig, dvfs, resilience, tables};
use biglittle::SweepOptions;
use bl_simcore::time::SimDuration;

/// Default seed used by the reproduction runs.
pub const SEED: u64 = 42;

/// All experiment identifiers accepted by `repro --exp`. The `ablation-*`
/// and `resilience-*` entries go beyond the paper (see DESIGN.md §7 and
/// the fault-model section).
pub const EXPERIMENTS: [&str; 23] = [
    "table1",
    "table2",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "table3",
    "table4",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "table5",
    "table3-compare",
    "fig11-13",
    "ablation-tiny",
    "ablation-cache",
    "ablation-governors",
    "ablation-schedulers",
    "ablation-cpuidle",
    "resilience-outage",
    "resilience-thermal",
];

fn spec_ref(fast: bool) -> SimDuration {
    if fast {
        SimDuration::from_millis(200)
    } else {
        SimDuration::from_secs(2)
    }
}

fn micro_run(fast: bool) -> SimDuration {
    if fast {
        SimDuration::from_millis(300)
    } else {
        SimDuration::from_secs(2)
    }
}

fn thermal_len(fast: bool) -> SimDuration {
    if fast {
        SimDuration::from_secs(15)
    } else {
        SimDuration::from_secs(60)
    }
}

/// Runs one experiment by id and returns its rendered report, with the
/// serial no-cache defaults. See [`run_experiment_with`].
pub fn run_experiment(id: &str, seed: u64, fast: bool) -> String {
    run_experiment_with(id, seed, fast, &SweepOptions::default())
}

/// Runs one experiment by id and returns its rendered report.
///
/// `seed` drives every stochastic draw; `fast` shrinks run lengths for
/// smoke tests (the repro binary uses paper scale); `opts` sets sweep
/// parallelism and the result cache.
pub fn run_experiment_with(id: &str, seed: u64, fast: bool, opts: &SweepOptions) -> String {
    match id {
        "table1" => tables::table1(),
        "table2" => tables::table2(),
        "fig2" => arch::render_fig2(&arch::fig2_spec_speedup(spec_ref(fast), seed, opts)),
        "fig3" => arch::render_fig3(&arch::fig3_spec_power(spec_ref(fast), seed, opts)),
        "fig4" => appchar::render_fig4(&appchar::fig4_latency_big_vs_little(seed, opts)),
        "fig5" => appchar::render_fig5(&appchar::fig5_fps_big_vs_little(seed, opts)),
        "fig6" => arch::render_fig6(&arch::fig6_power_vs_utilization(
            micro_run(fast),
            seed,
            opts,
        )),
        "table3" => appchar::render_table3(&appchar::default_runs(seed, opts)),
        "table3-compare" => appchar::render_table3_comparison(&appchar::default_runs(seed, opts)),
        "table4" => appchar::render_table4(&appchar::default_runs(seed, opts)),
        "fig7" => coreconfig::render_fig7(&coreconfig::fig7_performance(seed, opts)),
        "fig8" => coreconfig::render_fig8(&coreconfig::fig8_power_saving(seed, opts)),
        "fig9" => dvfs::render_residency(
            &appchar::default_runs(seed, opts),
            bl_platform::ids::CoreKind::Little,
        ),
        "fig10" => dvfs::render_residency(
            &appchar::default_runs(seed, opts),
            bl_platform::ids::CoreKind::Big,
        ),
        "table5" => dvfs::render_table5(&appchar::default_runs(seed, opts)),
        "fig11-13" => {
            let s = dvfs::fig11_12_13_parameter_sweep(seed, opts);
            format!(
                "{}\n{}\n{}",
                dvfs::render_fig11(&s),
                dvfs::render_fig12(&s),
                dvfs::render_fig13(&s)
            )
        }
        "ablation-tiny" => ablation::render_tiny_floor(&ablation::tiny_floor_full(seed, opts)),
        "ablation-cache" => {
            ablation::render_equal_l2(&ablation::equal_l2_ablation(spec_ref(fast), seed, opts))
        }
        "ablation-governors" => ablation::render_governor_comparison(
            &ablation::governor_comparison(bl_workloads::apps::mobile_apps(), seed, opts),
        ),
        "ablation-schedulers" => ablation::render_scheduler_comparison(
            &ablation::scheduler_comparison(bl_workloads::apps::mobile_apps(), seed, opts),
        ),
        "ablation-cpuidle" => ablation::render_cpuidle(&ablation::cpuidle_ablation(
            bl_workloads::apps::mobile_apps(),
            seed,
            opts,
        )),
        "resilience-outage" => resilience::render_outage(&resilience::outage_comparison(
            bl_workloads::apps::mobile_apps(),
            seed,
            opts,
        )),
        "resilience-thermal" => resilience::render_throttle(&resilience::thermal_throttle(
            thermal_len(fast),
            seed,
            opts,
        )),
        other => panic!("unknown experiment {other:?}; known: {EXPERIMENTS:?}"),
    }
}

/// Runs one experiment and returns its results as structured JSON, with
/// the serial no-cache defaults. See [`run_experiment_json_with`].
pub fn run_experiment_json(id: &str, seed: u64, fast: bool) -> serde_json::Value {
    run_experiment_json_with(id, seed, fast, &SweepOptions::default())
}

/// Runs one experiment and returns its results as structured JSON (the
/// text tables are for humans; this is for scripts and plotting).
///
/// Static tables (`table1`, `table2`) return their rendered text wrapped in
/// a JSON string.
pub fn run_experiment_json_with(
    id: &str,
    seed: u64,
    fast: bool,
    opts: &SweepOptions,
) -> serde_json::Value {
    fn j<T: serde::Serialize>(v: T) -> serde_json::Value {
        serde_json::to_value(v).expect("experiment results serialize")
    }
    match id {
        "table1" => serde_json::Value::String(tables::table1()),
        "table2" => serde_json::Value::String(tables::table2()),
        "fig2" | "fig3" => j(arch::run_spec_matrix(spec_ref(fast), seed, opts)),
        "fig4" => j(appchar::fig4_latency_big_vs_little(seed, opts)),
        "fig5" => j(appchar::fig5_fps_big_vs_little(seed, opts)),
        "fig6" => j(arch::fig6_power_vs_utilization(micro_run(fast), seed, opts)),
        "table3" | "table3-compare" | "table4" | "fig9" | "fig10" | "table5" => {
            let runs = appchar::default_runs(seed, opts);
            let named: Vec<(String, &biglittle::RunResult)> =
                runs.iter().map(|(a, r)| (a.name.clone(), r)).collect();
            j(named)
        }
        "fig7" | "fig8" => j(coreconfig::fig7_performance(seed, opts)),
        "fig11-13" => j(dvfs::fig11_12_13_parameter_sweep(seed, opts)),
        "ablation-tiny" => j(ablation::tiny_floor_full(seed, opts)),
        "ablation-cache" => j(ablation::equal_l2_ablation(spec_ref(fast), seed, opts)),
        "ablation-governors" => j(ablation::governor_comparison(
            bl_workloads::apps::mobile_apps(),
            seed,
            opts,
        )),
        "ablation-schedulers" => j(ablation::scheduler_comparison(
            bl_workloads::apps::mobile_apps(),
            seed,
            opts,
        )),
        "ablation-cpuidle" => j(ablation::cpuidle_ablation(
            bl_workloads::apps::mobile_apps(),
            seed,
            opts,
        )),
        "resilience-outage" => j(resilience::outage_comparison(
            bl_workloads::apps::mobile_apps(),
            seed,
            opts,
        )),
        "resilience-thermal" => j(resilience::thermal_throttle(thermal_len(fast), seed, opts)),
        other => panic!("unknown experiment {other:?}; known: {EXPERIMENTS:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_tables_run_instantly() {
        assert!(run_experiment("table1", SEED, true).contains("Cortex"));
        assert!(run_experiment("table2", SEED, true).contains("BBench"));
    }

    #[test]
    #[should_panic(expected = "unknown experiment")]
    fn unknown_id_panics() {
        run_experiment("fig99", SEED, true);
    }

    #[test]
    fn every_experiment_id_renders_in_fast_mode() {
        for id in EXPERIMENTS {
            let text = run_experiment(id, SEED, true);
            assert!(!text.trim().is_empty(), "{id} rendered empty");
            let json = run_experiment_json(id, SEED, true);
            assert!(!json.is_null(), "{id} produced null JSON");
        }
    }
}
