//! `repro` — regenerate every table and figure of the paper.
//!
//! ```sh
//! repro                     # run everything at paper scale
//! repro --exp table3        # one experiment
//! repro --fast              # shortened runs (CI smoke)
//! repro --seed 7            # different stochastic draws
//! repro --jobs 4            # sweep parallelism (0 or omitted = all cores)
//! repro --no-cache          # bypass the on-disk result cache
//! repro --cache-clear       # drop the cache before running
//! repro --bench-sweep f.json # serial-vs-parallel wall-time comparison
//! repro --list              # experiment ids
//! ```

use std::time::Instant;

use biglittle::{sweep, SweepOptions};
use bl_bench::{run_experiment_json_with, run_experiment_with, EXPERIMENTS, SEED};
use serde::Value;

/// Default cache location, relative to the working directory.
const CACHE_DIR: &str = biglittle::sweep::DEFAULT_CACHE_DIR;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut exp: Option<String> = None;
    let mut seed = SEED;
    let mut fast = false;
    let mut json = false;
    let mut out_dir: Option<String> = None;
    let mut jobs: usize = 0; // 0 = all available cores
    let mut cache = true;
    let mut bench_sweep: Option<String> = None;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--exp" => exp = it.next().cloned(),
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--seed takes an integer")
            }
            "--fast" => fast = true,
            "--json" => json = true,
            "--out" => out_dir = it.next().cloned(),
            "--jobs" => {
                jobs = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--jobs takes an integer (0 = all cores)")
            }
            "--no-cache" => cache = false,
            "--cache-clear" => {
                if std::fs::remove_dir_all(CACHE_DIR).is_ok() {
                    eprintln!("cleared {CACHE_DIR}");
                }
            }
            "--bench-sweep" => bench_sweep = it.next().cloned(),
            "--list" => {
                for e in EXPERIMENTS {
                    println!("{e}");
                }
                return;
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [--exp <id>] [--seed <n>] [--fast] [--json] [--out <dir>]\n\
                     \x20            [--jobs <n>] [--no-cache] [--cache-clear]\n\
                     \x20            [--bench-sweep <file>] [--list]\n\
                     ids: {}",
                    EXPERIMENTS.join(", ")
                );
                return;
            }
            other => {
                eprintln!("unknown flag {other:?} (try --help)");
                std::process::exit(2);
            }
        }
    }

    let opts = {
        let mut o = SweepOptions::with_jobs(jobs);
        if cache {
            o = o.cached(CACHE_DIR);
        }
        o
    };

    if let Some(path) = bench_sweep {
        run_bench_sweep(&path, seed);
        return;
    }

    let render = |id: &str| -> String {
        if json {
            let _ = sweep::take_stats(); // drop stats from previous experiments
            let t0 = Instant::now();
            let data = run_experiment_json_with(id, seed, fast, &opts);
            let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
            let stats = sweep::take_stats();
            let wrapped = Value::Object(vec![
                ("experiment".into(), Value::String(id.to_string())),
                ("wall_ms".into(), Value::Float(wall_ms)),
                ("scenarios".into(), Value::UInt(stats.scenarios)),
                ("cache_hits".into(), Value::UInt(stats.cache_hits)),
                (
                    "per_scenario".into(),
                    serde_json::to_value(&stats.per_scenario).expect("stats serialize"),
                ),
                ("data".into(), data),
            ]);
            serde_json::to_string_pretty(&wrapped).expect("results serialize")
        } else {
            run_experiment_with(id, seed, fast, &opts)
        }
    };
    let emit = |id: &str, body: String| match &out_dir {
        Some(dir) => {
            std::fs::create_dir_all(dir).expect("create --out directory");
            let ext = if json { "json" } else { "txt" };
            let path = format!("{dir}/{id}.{ext}");
            std::fs::write(&path, body).expect("write result file");
            eprintln!("wrote {path}");
        }
        None => println!("{body}\n"),
    };

    match exp {
        Some(id) => emit(&id, render(&id)),
        None => {
            for id in EXPERIMENTS {
                eprintln!(">>> running {id} ...");
                emit(id, render(id));
            }
        }
    }
}

/// Times the full `--fast` suite serially and at `--jobs 4` (both without
/// the cache, so the comparison is honest) and writes a machine-readable
/// record to `path`.
fn run_bench_sweep(path: &str, seed: u64) {
    let mut runs = Vec::new();
    for jobs in [1usize, 4] {
        let opts = SweepOptions::with_jobs(jobs);
        let _ = sweep::take_stats();
        let t0 = Instant::now();
        for id in EXPERIMENTS {
            std::hint::black_box(run_experiment_with(id, seed, true, &opts));
        }
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        let stats = sweep::take_stats();
        eprintln!(
            "jobs={jobs}: {wall_ms:.0} ms over {} scenarios ({} cache hits)",
            stats.scenarios, stats.cache_hits
        );
        runs.push(Value::Object(vec![
            ("jobs".into(), Value::UInt(jobs as u64)),
            ("wall_ms".into(), Value::Float(wall_ms)),
            ("scenarios".into(), Value::UInt(stats.scenarios)),
            ("cache_hits".into(), Value::UInt(stats.cache_hits)),
        ]));
    }
    let report = Value::Object(vec![
        ("suite".into(), Value::String("repro --fast".into())),
        ("seed".into(), Value::UInt(seed)),
        (
            "host_parallelism".into(),
            Value::UInt(bl_simcore::pool::available_jobs() as u64),
        ),
        (
            "note".into(),
            Value::String(
                "speedup is bounded by host_parallelism; regenerate with \
                 `repro --fast --bench-sweep <file>` on the target machine"
                    .into(),
            ),
        ),
        ("runs".into(), Value::Array(runs)),
    ]);
    let body = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(path, body + "\n").expect("write bench-sweep file");
    eprintln!("wrote {path}");
}
