//! `repro` — regenerate every table and figure of the paper.
//!
//! ```sh
//! repro                 # run everything at paper scale
//! repro --exp table3    # one experiment
//! repro --fast          # shortened runs (CI smoke)
//! repro --seed 7        # different stochastic draws
//! repro --list          # experiment ids
//! ```

use bl_bench::{run_experiment, run_experiment_json, EXPERIMENTS, SEED};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut exp: Option<String> = None;
    let mut seed = SEED;
    let mut fast = false;
    let mut json = false;
    let mut out_dir: Option<String> = None;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--exp" => exp = it.next().cloned(),
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--seed takes an integer")
            }
            "--fast" => fast = true,
            "--json" => json = true,
            "--out" => out_dir = it.next().cloned(),
            "--list" => {
                for e in EXPERIMENTS {
                    println!("{e}");
                }
                return;
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [--exp <id>] [--seed <n>] [--fast] [--json] [--out <dir>] [--list]\n\
                     ids: {}",
                    EXPERIMENTS.join(", ")
                );
                return;
            }
            other => {
                eprintln!("unknown flag {other:?} (try --help)");
                std::process::exit(2);
            }
        }
    }

    let render = |id: &str| -> String {
        if json {
            serde_json::to_string_pretty(&run_experiment_json(id, seed, fast))
                .expect("results serialize")
        } else {
            run_experiment(id, seed, fast)
        }
    };
    let emit = |id: &str, body: String| match &out_dir {
        Some(dir) => {
            std::fs::create_dir_all(dir).expect("create --out directory");
            let ext = if json { "json" } else { "txt" };
            let path = format!("{dir}/{id}.{ext}");
            std::fs::write(&path, body).expect("write result file");
            eprintln!("wrote {path}");
        }
        None => println!("{body}\n"),
    };

    match exp {
        Some(id) => emit(&id, render(&id)),
        None => {
            for id in EXPERIMENTS {
                eprintln!(">>> running {id} ...");
                emit(id, render(id));
            }
        }
    }
}
