//! `repro` — regenerate every table and figure of the paper.
//!
//! ```sh
//! repro                     # run everything at paper scale
//! repro --exp table3        # one experiment
//! repro --fast              # shortened runs (CI smoke)
//! repro --seed 7            # different stochastic draws
//! repro --jobs 4            # sweep parallelism (0 or omitted = all cores)
//! repro --no-cache          # bypass the on-disk result cache
//! repro --cache-clear       # drop the cache (and snapshot store) before running
//! repro --no-snap-store     # disable the persistent warm-snapshot store
//! repro --snap-store-dir d  # persistent snapshot store location (default results/.snapshots)
//! repro --deadline-ms 60000 # per-scenario wall-clock budget
//! repro --max-events 50000000 # per-scenario simulated-event budget
//! repro --retries 2         # retry failed scenarios with a reseed
//! repro --audit             # runtime invariant auditor on every scenario
//! repro --resume            # replay completed scenarios from the journal
//! repro --no-journal        # disable the write-ahead sweep journal
//! repro --workers 4         # shard the batch across 4 worker processes
//! repro --lease-ms 10000    # lease TTL before a silent worker is reclaimed
//! repro --heartbeat-ms 1000 # worker heartbeat cadence
//! repro --bench-sweep f.json # serial-vs-parallel wall-time comparison
//! repro --bench-hotloop f.json # ticked-vs-skip-ahead hot-loop microbench
//! repro --bench-snapshot f.json # cold-vs-forked prefix-sharing sweep bench
//! repro --bench-kernels f.json # scalar-vs-batch-kernel microbench (bit-identity gate)
//! repro --demo-sweep f.json # deterministic journaled batch (kill/resume demo)
//! repro --smoke-supervision f.json # chaos batch: quarantine + self-heal smoke
//! repro --smoke-shard f.json # chaos fleet: kill a worker mid-batch, verify merge
//! repro --smoke-serve f.json # chaos service: kill the daemon mid-batch, flood it,
//!                            # starve it — assert degraded-not-dead + bit-identity
//! repro --list              # experiment ids
//! ```
//!
//! Service mode (see `DESIGN.md` §3.7):
//!
//! ```sh
//! repro serve --socket s.sock   # crash-only daemon serving scenario batches
//! repro submit --socket s.sock --demo out.json # submit a batch, stream results
//! repro submit --socket s.sock --status        # one-line daemon status
//! repro submit --socket s.sock --drain         # graceful drain
//! ```
//!
//! `repro --worker ...` is the internal worker mode sharded sweeps spawn;
//! it is not meant to be invoked by hand.

use std::path::Path;
use std::time::{Duration, Instant};

use biglittle::{sweep, SimOptions, SweepOptions};
use bl_bench::{run_experiment_json_with, run_experiment_with, EXPERIMENTS, SEED};
use bl_simcore::snapstore::{clean_stale_snapshots, SnapStore};
use serde::Value;

/// Default cache location, relative to the working directory.
const CACHE_DIR: &str = biglittle::sweep::DEFAULT_CACHE_DIR;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    // Worker mode: sharded sweeps re-spawn this binary with `--worker` as
    // the first argument. Dispatch before normal flag parsing — worker
    // flags are a separate, stricter grammar.
    if args.first().is_some_and(|a| a == "--worker") {
        std::process::exit(sweep::shard::worker_main(&args));
    }
    // Service mode: `repro serve` runs the crash-only daemon, `repro
    // submit` the reconnecting client. Both are their own flag grammars.
    if args.first().is_some_and(|a| a == "serve") {
        std::process::exit(serve_cli(&args[1..]));
    }
    if args.first().is_some_and(|a| a == "submit") {
        std::process::exit(submit_cli(&args[1..]));
    }
    // Teach the sharding layer how to spawn workers: re-exec ourselves.
    sweep::shard::set_worker_launcher(|spec| {
        let exe = std::env::current_exe().expect("current_exe for worker spawn");
        let mut cmd = std::process::Command::new(exe);
        cmd.args(sweep::shard::worker_cli_args(spec));
        cmd
    });

    let mut exp: Option<String> = None;
    let mut seed = SEED;
    let mut fast = false;
    let mut json = false;
    let mut out_dir: Option<String> = None;
    let mut jobs: usize = 0; // 0 = all available cores
    let mut cache = true;
    let mut cache_clear = false;
    let mut journal = true;
    let mut snap_store = true;
    let mut snap_dir: String = sweep::DEFAULT_SNAP_DIR.to_string();
    // Execution knobs (budgets, auditing) funnel through the same
    // serializable bundle `SimulationBuilder::options` consumes, so the
    // CLI and programmatic front ends share one source of truth.
    let mut sim_opts = SimOptions::default();
    let mut retries: u32 = 0;
    let mut resume = false;
    let mut workers: usize = 0;
    let mut lease_ms: Option<u64> = None;
    let mut heartbeat_ms: Option<u64> = None;
    let mut bench_sweep: Option<String> = None;
    let mut bench_hotloop: Option<String> = None;
    let mut bench_snapshot: Option<String> = None;
    let mut bench_kernels: Option<String> = None;
    let mut demo_sweep: Option<String> = None;
    let mut smoke_supervision: Option<String> = None;
    let mut smoke_shard: Option<String> = None;
    let mut smoke_serve: Option<String> = None;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--exp" => exp = it.next().cloned(),
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--seed takes an integer")
            }
            "--fast" => fast = true,
            "--json" => json = true,
            "--out" => out_dir = it.next().cloned(),
            "--jobs" => {
                jobs = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--jobs takes an integer (0 = all cores)")
            }
            "--no-cache" => cache = false,
            "--no-journal" => journal = false,
            // Deferred until after parsing so it also clears the snapshot
            // store at whatever directory `--snap-store-dir` names.
            "--cache-clear" => cache_clear = true,
            "--no-snap-store" => snap_store = false,
            "--snap-store-dir" => {
                snap_dir = it.next().cloned().expect("--snap-store-dir takes a path")
            }
            "--deadline-ms" => {
                sim_opts.deadline_ms = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .expect("--deadline-ms takes an integer (milliseconds)"),
                )
            }
            "--max-events" => {
                sim_opts.max_events = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .expect("--max-events takes an integer"),
                )
            }
            "--retries" => {
                retries = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--retries takes an integer")
            }
            "--audit" => sim_opts.audit = true,
            "--resume" => resume = true,
            "--workers" => {
                workers = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--workers takes an integer (worker process count)")
            }
            "--lease-ms" => {
                lease_ms = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .expect("--lease-ms takes an integer (milliseconds)"),
                )
            }
            "--heartbeat-ms" => {
                heartbeat_ms = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .expect("--heartbeat-ms takes an integer (milliseconds)"),
                )
            }
            "--bench-sweep" => bench_sweep = it.next().cloned(),
            "--bench-hotloop" => bench_hotloop = it.next().cloned(),
            "--bench-snapshot" => bench_snapshot = it.next().cloned(),
            "--bench-kernels" => bench_kernels = it.next().cloned(),
            "--demo-sweep" => demo_sweep = it.next().cloned(),
            "--smoke-supervision" => smoke_supervision = it.next().cloned(),
            "--smoke-shard" => smoke_shard = it.next().cloned(),
            "--smoke-serve" => smoke_serve = it.next().cloned(),
            "--list" => {
                for e in EXPERIMENTS {
                    println!("{e}");
                }
                return;
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [--exp <id>] [--seed <n>] [--fast] [--json] [--out <dir>]\n\
                     \x20            [--jobs <n>] [--no-cache] [--cache-clear] [--no-journal]\n\
                     \x20            [--no-snap-store] [--snap-store-dir <dir>]\n\
                     \x20            [--deadline-ms <n>] [--max-events <n>] [--retries <n>]\n\
                     \x20            [--audit] [--resume]\n\
                     \x20            [--workers <n>] [--lease-ms <n>] [--heartbeat-ms <n>]\n\
                     \x20            [--bench-sweep <file>] [--bench-hotloop <file>]\n\
                     \x20            [--bench-snapshot <file>] [--bench-kernels <file>]\n\
                     \x20            [--demo-sweep <file>] [--smoke-supervision <file>]\n\
                     \x20            [--smoke-shard <file>] [--smoke-serve <file>] [--list]\n\
                     \x20     repro serve --socket <path> [--serve-dir <dir>] ...\n\
                     \x20     repro submit --socket <path> (--demo <out>|--status|--drain) ...\n\
                     ids: {}",
                    EXPERIMENTS.join(", ")
                );
                return;
            }
            other => {
                eprintln!("unknown flag {other:?} (try --help)");
                std::process::exit(2);
            }
        }
    }

    if cache_clear {
        if std::fs::remove_dir_all(CACHE_DIR).is_ok() {
            eprintln!("cleared {CACHE_DIR}");
        }
        let removed = SnapStore::open(snap_dir.clone()).clear();
        if removed > 0 {
            eprintln!("cleared {removed} snapshot(s) from {snap_dir}");
        }
    }
    // Startup hygiene: debris of killed publishers — orphaned `.tmp`
    // files and unkeyed `.snap` files — ages out of the store directory,
    // mirroring the journal directory's stale-artifact sweep.
    if snap_store {
        let stale_after = std::env::var(sweep::shard::STALE_ENV)
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .map_or(Duration::from_secs(24 * 3600), Duration::from_millis);
        let removed = clean_stale_snapshots(Path::new(&snap_dir), stale_after);
        if removed > 0 {
            eprintln!("snapshot hygiene: removed {removed} stale file(s) from {snap_dir}");
        }
    }

    let opts = {
        let mut o = SweepOptions::with_jobs(jobs)
            .with_retries(retries)
            .with_sim_options(&sim_opts);
        if cache {
            o = o.cached(CACHE_DIR);
        }
        if snap_store {
            o = o.snap_stored(snap_dir.clone());
        }
        if journal {
            o = o.journaled(sweep::DEFAULT_JOURNAL_DIR).resuming(resume);
        }
        if workers > 0 {
            o = o.sharded(workers);
        }
        if let Some(ms) = lease_ms {
            o = o.with_lease(Duration::from_millis(ms));
        }
        if let Some(ms) = heartbeat_ms {
            o = o.with_heartbeat(Duration::from_millis(ms));
        }
        o
    };

    if let Some(path) = bench_sweep {
        run_bench_sweep(&path, seed);
        return;
    }
    if let Some(path) = bench_hotloop {
        run_bench_hotloop(&path, seed, fast);
        return;
    }
    if let Some(path) = bench_snapshot {
        run_bench_snapshot(&path, seed, fast);
        return;
    }
    if let Some(path) = bench_kernels {
        run_bench_kernels(&path, seed, fast);
        return;
    }
    if let Some(path) = demo_sweep {
        run_demo_sweep(&path, seed, &opts);
        return;
    }
    if let Some(path) = smoke_supervision {
        run_smoke_supervision(&path, seed, jobs);
        return;
    }
    if let Some(path) = smoke_shard {
        run_smoke_shard(&path, seed, jobs);
        return;
    }
    if let Some(path) = smoke_serve {
        run_smoke_serve(&path, seed, jobs);
        return;
    }

    let render = |id: &str| -> String {
        if json {
            let _ = sweep::take_stats(); // drop stats from previous experiments
            let t0 = Instant::now();
            let data = run_experiment_json_with(id, seed, fast, &opts);
            let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
            let stats = sweep::take_stats();
            let mut fields = vec![
                ("experiment".into(), Value::String(id.to_string())),
                ("wall_ms".into(), Value::Float(wall_ms)),
                ("scenarios".into(), Value::UInt(stats.scenarios)),
                ("cache_hits".into(), Value::UInt(stats.cache_hits)),
                ("resumed".into(), Value::UInt(stats.resumed)),
                ("retries".into(), Value::UInt(stats.retries)),
                ("quarantined".into(), Value::UInt(stats.quarantined)),
                ("events".into(), Value::UInt(stats.events)),
                (
                    "events_per_sec".into(),
                    Value::Float(if wall_ms > 0.0 {
                        stats.events as f64 / (wall_ms / 1e3)
                    } else {
                        0.0
                    }),
                ),
                ("degraded".into(), Value::Bool(stats.degraded)),
                (
                    "snapshot".into(),
                    serde_json::to_value(stats.snapshot).expect("snapshot stats serialize"),
                ),
                (
                    "per_scenario".into(),
                    serde_json::to_value(&stats.per_scenario).expect("stats serialize"),
                ),
            ];
            if let Some(shard) = &stats.shard {
                fields.push((
                    "shard".into(),
                    serde_json::to_value(shard).expect("shard stats serialize"),
                ));
            }
            fields.push(("data".into(), data));
            serde_json::to_string_pretty(&Value::Object(fields)).expect("results serialize")
        } else {
            run_experiment_with(id, seed, fast, &opts)
        }
    };
    let emit = |id: &str, body: String| match &out_dir {
        Some(dir) => {
            std::fs::create_dir_all(dir).expect("create --out directory");
            let ext = if json { "json" } else { "txt" };
            let path = format!("{dir}/{id}.{ext}");
            std::fs::write(&path, body).expect("write result file");
            eprintln!("wrote {path}");
        }
        None => println!("{body}\n"),
    };

    match exp {
        Some(id) => emit(&id, render(&id)),
        None => {
            for id in EXPERIMENTS {
                eprintln!(">>> running {id} ...");
                emit(id, render(id));
            }
        }
    }
}

/// Times the event hot loop with and without idle skip-ahead on four
/// scenario classes — an all-idle system, a user-paced idle-heavy
/// interactive app, the timer-fragmented Browser model and a TLP-heavy
/// game, plus a utilization duty sweep — verifies the two paths produce
/// bit-identical results, and writes a machine-readable record to `path`.
fn run_bench_hotloop(path: &str, seed: u64, fast: bool) {
    use biglittle::{RunResult, Simulation, SystemConfig};
    use bl_platform::ids::CpuId;
    use bl_simcore::time::{SimDuration, SimTime};
    use bl_workloads::apps::{app_by_name, AppKind, AppModel, ScriptedSpec};
    use bl_workloads::PerfMetric;

    /// The paper's §IV gap structure distilled: the user thinks for
    /// seconds between actions, each action is a short UI burst plus a
    /// couple of fan-out jobs, and nothing keeps a short-period timer
    /// armed through the gaps. The script is sized to span the whole
    /// measurement window so the ratio reflects interactive use, not an
    /// idle tail.
    fn interactive_idle_heavy(run_for: SimDuration) -> AppModel {
        let cycle_ms = 2_400.0; // ~2.1 s mean think + ~0.3 s busy work
        let n_actions = (run_for.as_millis_f64() / cycle_ms).ceil() as usize;
        AppModel {
            name: "interactive-idle-heavy".into(),
            metric: PerfMetric::Latency,
            run_for,
            kind: AppKind::Scripted(ScriptedSpec {
                n_actions,
                think_ms: (1_600.0, 2_600.0),
                burst_ms: 40.0,
                burst_sigma: 0.3,
                jobs_per_action: 2,
                job_ms: 60.0,
                job_sigma: 0.3,
                n_workers: 2,
                background: vec![],
                continuous: vec![],
            }),
        }
    }

    struct Case {
        name: &'static str,
        cfg: SystemConfig,
        run_for: SimDuration,
        spawn: Box<dyn Fn(&mut Simulation)>,
    }

    let secs = |full: u64, quick: u64| SimDuration::from_secs(if fast { quick } else { full });
    let interactive_run_for = secs(30, 2);
    let mut cases = vec![
        Case {
            name: "idle_system",
            cfg: SystemConfig::baseline().screen(false),
            run_for: secs(30, 2),
            spawn: Box::new(|_| {}),
        },
        Case {
            name: "interactive_idle_heavy",
            cfg: SystemConfig::baseline(),
            run_for: interactive_run_for,
            spawn: Box::new(move |sim| {
                let app = interactive_idle_heavy(interactive_run_for);
                sim.spawn_app(&app);
            }),
        },
        Case {
            name: "browser_idle_heavy",
            cfg: SystemConfig::baseline(),
            run_for: secs(30, 2),
            spawn: Box::new(|sim| {
                let app = app_by_name("Browser").expect("known app");
                sim.spawn_app(&app);
            }),
        },
        Case {
            name: "angry_bird_tlp_heavy",
            cfg: SystemConfig::baseline(),
            run_for: secs(10, 1),
            spawn: Box::new(|sim| {
                let app = app_by_name("Angry Bird").expect("known app");
                sim.spawn_app(&app);
            }),
        },
    ];
    for (name, duty) in [
        ("microbench_duty_20", 0.2f64),
        ("microbench_duty_50", 0.5),
        ("microbench_duty_80", 0.8),
    ] {
        cases.push(Case {
            name,
            cfg: SystemConfig::baseline().screen(false),
            run_for: secs(2, 1),
            spawn: Box::new(move |sim| {
                sim.spawn_microbench(CpuId(0), duty, SimDuration::from_millis(100));
            }),
        });
    }

    let mut records = Vec::new();
    let mut all_identical = true;
    for case in &cases {
        let run = |skip: bool| -> (RunResult, f64) {
            let cfg = case.cfg.clone().with_seed(seed).with_skip_ahead(skip);
            let mut sim = Simulation::try_new(cfg).expect("valid config");
            (case.spawn)(&mut sim);
            let t0 = Instant::now();
            sim.try_run_until(SimTime::ZERO + case.run_for)
                .expect("run completes");
            let wall_ns = t0.elapsed().as_nanos() as f64;
            (sim.finish(), wall_ns)
        };
        let (ticked_result, ticked_ns) = run(false);
        let (skip_result, skip_ns) = run(true);
        let identical = serde_json::to_string(&ticked_result).expect("serialize")
            == serde_json::to_string(&skip_result).expect("serialize");
        all_identical &= identical;
        let sim_ms = case.run_for.as_millis_f64();
        let speedup = ticked_ns / skip_ns;
        eprintln!(
            "{:<22} sim={:>6.0}ms ticked={:>8.0}ns/sim-ms skip={:>8.0}ns/sim-ms \
             speedup={:>5.1}x identical={}",
            case.name,
            sim_ms,
            ticked_ns / sim_ms,
            skip_ns / sim_ms,
            speedup,
            identical,
        );
        records.push(Value::Object(vec![
            ("scenario".into(), Value::String(case.name.into())),
            ("sim_ms".into(), Value::Float(sim_ms)),
            ("ticked_wall_ms".into(), Value::Float(ticked_ns / 1e6)),
            ("skip_wall_ms".into(), Value::Float(skip_ns / 1e6)),
            (
                "ticked_ns_per_sim_ms".into(),
                Value::Float(ticked_ns / sim_ms),
            ),
            ("skip_ns_per_sim_ms".into(), Value::Float(skip_ns / sim_ms)),
            ("speedup".into(), Value::Float(speedup)),
            ("bit_identical".into(), Value::Bool(identical)),
        ]));
    }

    let report = Value::Object(vec![
        ("suite".into(), Value::String("hot-loop skip-ahead".into())),
        ("seed".into(), Value::UInt(seed)),
        ("fast".into(), Value::Bool(fast)),
        (
            "host_parallelism".into(),
            Value::UInt(bl_simcore::pool::available_jobs() as u64),
        ),
        (
            "note".into(),
            Value::String(
                "single-threaded microbench; wall times move with the host, \
                 speedup and bit_identical should not. Regenerate with \
                 `repro --bench-hotloop <file>`."
                    .into(),
            ),
        ),
        ("cases".into(), Value::Array(records)),
    ]);
    let body = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(path, body + "\n").expect("write bench-hotloop file");
    eprintln!("wrote {path}");
    if !all_identical {
        eprintln!("ERROR: skip-ahead diverged from the ticked path");
        std::process::exit(1);
    }
}

/// Times a TLP-heavy sweep grid whose points differ only in late-bound
/// parameters — a governor swap and a fault onset applied after a shared
/// warm-up — twice: cold (`prefix_sharing(false)`, every point replays
/// its warm-up prefix) and shared (the prefix is simulated once per fork
/// group and each point forks the snapshot). Both runs are serial and
/// uncached so the ratio isolates prefix sharing. Verifies the two grids
/// are bit-identical point by point and writes a machine-readable record
/// to `path`; exits 1 on any divergence.
fn run_bench_snapshot(path: &str, seed: u64, fast: bool) {
    use biglittle::{LateBindings, Scenario, StopWhen, SystemConfig};
    use bl_governor::GovernorConfig;
    use bl_simcore::fault::{FaultKind, FaultPlan};
    use bl_simcore::time::{SimDuration, SimTime};
    use bl_workloads::apps::app_by_name;

    let warmup = if fast {
        SimDuration::from_millis(300)
    } else {
        SimDuration::from_secs(2)
    };
    let tail = if fast {
        SimDuration::from_millis(100)
    } else {
        SimDuration::from_millis(250)
    };
    let at_warmup = SimTime::ZERO + warmup;

    // Late-bound governor swaps: one entry per cluster (big, LITTLE).
    let governors: Vec<(&str, Option<Vec<GovernorConfig>>)> = vec![
        ("keep", None),
        (
            "performance",
            Some(vec![
                GovernorConfig::Performance,
                GovernorConfig::Performance,
            ]),
        ),
        (
            "powersave",
            Some(vec![GovernorConfig::Powersave, GovernorConfig::Powersave]),
        ),
    ];
    // Late-bound fault onsets, all at or after the warm-up point.
    let faults: Vec<(&str, FaultPlan)> = vec![
        ("none", FaultPlan::new()),
        (
            "spike",
            FaultPlan::new().with(
                at_warmup,
                FaultKind::ThermalSpike {
                    cluster: 0,
                    delta_c: 8.0,
                },
            ),
        ),
        (
            "outage",
            FaultPlan::new().with_outage(at_warmup, SimDuration::from_millis(50), &[1]),
        ),
        (
            "gov_stall",
            FaultPlan::new().with(
                at_warmup,
                FaultKind::GovernorStall {
                    cluster: 1,
                    missed_samples: 3,
                },
            ),
        ),
    ];
    let (n_gov, n_fault) = if fast { (2, 2) } else { (3, 4) };

    let app = app_by_name("Angry Bird").expect("known app");
    let mut scenarios: Vec<Scenario> = Vec::new();
    for (gname, govs) in &governors[..n_gov] {
        for (fname, plan) in &faults[..n_fault] {
            scenarios.push(
                Scenario::app(
                    format!("ab-{gname}-{fname}"),
                    app.clone(),
                    SystemConfig::baseline().with_seed(seed),
                )
                .with_stop(StopWhen::Deadline(warmup + tail))
                .with_warmup(warmup)
                .with_late(LateBindings {
                    governors: govs.clone(),
                    faults: plan.clone(),
                }),
            );
        }
    }
    let groups: usize = {
        let mut keys: Vec<String> = scenarios
            .iter()
            .filter_map(|sc| sweep::SnapshotSpec::of(sc).map(|spec| spec.key()))
            .collect();
        keys.sort();
        keys.dedup();
        keys.len()
    };

    let run = |share: bool| {
        let opts = SweepOptions::serial().prefix_sharing(share);
        let _ = sweep::take_stats();
        let t0 = Instant::now();
        let out = sweep::run_with(&scenarios, &opts);
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        (out.results, sweep::take_stats(), wall_ms)
    };
    let (cold, _, cold_ms) = run(false);
    let (shared, shared_stats, shared_ms) = run(true);

    let mut records = Vec::new();
    let mut all_identical = true;
    for (i, sc) in scenarios.iter().enumerate() {
        let identical = match (&cold[i], &shared[i]) {
            (Ok(a), Ok(b)) => {
                serde_json::to_string(a).expect("serialize")
                    == serde_json::to_string(b).expect("serialize")
            }
            _ => false,
        };
        all_identical &= identical;
        let forked = shared_stats.per_scenario.get(i).is_some_and(|s| s.forked);
        records.push(Value::Object(vec![
            ("scenario".into(), Value::String(sc.label.clone())),
            ("bit_identical".into(), Value::Bool(identical)),
            ("forked".into(), Value::Bool(forked)),
        ]));
    }
    let speedup = cold_ms / shared_ms;
    eprintln!(
        "bench-snapshot: {} points in {groups} fork group(s), {} forked \
         cold={cold_ms:.0}ms shared={shared_ms:.0}ms speedup={speedup:.1}x identical={all_identical}",
        scenarios.len(),
        shared_stats.forked,
    );

    // ---- Nested ladder: a grid varying warm-up *length*, so snapshot
    // keys form a prefix tree rather than one flat fork group. The
    // deepest member's checkpoint chain covers every rung, so the planner
    // simulates the trunk once and forks all points — shallow rungs
    // included — from its per-level snapshots.
    let ladder_ms: &[u64] = if fast {
        &[250, 400]
    } else {
        &[800, 1600, 2400]
    };
    let make_ladder = |ms: &[u64]| -> Vec<Scenario> {
        let mut ladder = Vec::new();
        for (level, &wu_ms) in ms.iter().enumerate() {
            for (gname, govs) in &governors[..2] {
                let wu = SimDuration::from_millis(wu_ms);
                ladder.push(
                    Scenario::app(
                        format!("ab-ladder-l{level}-{gname}"),
                        app.clone(),
                        SystemConfig::baseline().with_seed(seed),
                    )
                    .with_stop(StopWhen::Deadline(wu + tail))
                    .with_warmup(wu)
                    .with_warmup_via(
                        ms[..level]
                            .iter()
                            .map(|&ms| SimDuration::from_millis(ms))
                            .collect(),
                    )
                    .with_late(LateBindings {
                        governors: govs.clone(),
                        faults: FaultPlan::new(),
                    }),
                );
            }
        }
        ladder
    };
    let ladder = make_ladder(ladder_ms);
    let run_ladder = |scs: &[Scenario], share: bool| {
        let opts = SweepOptions::serial().prefix_sharing(share);
        let _ = sweep::take_stats();
        let t0 = Instant::now();
        let out = sweep::run_with(scs, &opts);
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        (out.results, sweep::take_stats(), wall_ms)
    };
    let (ncold, _, ncold_ms) = run_ladder(&ladder, false);
    let (nshared, nstats, nshared_ms) = run_ladder(&ladder, true);
    let mut nested_identical = true;
    let mut nested_detail = Vec::new();
    for (i, sc) in ladder.iter().enumerate() {
        let identical = match (&ncold[i], &nshared[i]) {
            (Ok(a), Ok(b)) => {
                serde_json::to_string(a).expect("serialize")
                    == serde_json::to_string(b).expect("serialize")
            }
            _ => false,
        };
        nested_identical &= identical;
        let forked = nstats.per_scenario.get(i).is_some_and(|s| s.forked);
        nested_detail.push(Value::Object(vec![
            ("scenario".into(), Value::String(sc.label.clone())),
            (
                "chain_len".into(),
                Value::UInt(sc.chain_points().len() as u64),
            ),
            ("bit_identical".into(), Value::Bool(identical)),
            ("forked".into(), Value::Bool(forked)),
        ]));
    }
    all_identical &= nested_identical;
    // Distinct prefix depths that actually forked from the trunk chain.
    let levels_forked: usize = {
        let mut lens: Vec<usize> = ladder
            .iter()
            .enumerate()
            .filter(|(i, _)| nstats.per_scenario.get(*i).is_some_and(|s| s.forked))
            .map(|(_, sc)| sc.chain_points().len())
            .collect();
        lens.sort_unstable();
        lens.dedup();
        lens.len()
    };
    let nspeed = ncold_ms / nshared_ms;
    eprintln!(
        "bench-snapshot nested: {} points over {} ladder rungs, {} forked at \
         {levels_forked} level(s) cold={ncold_ms:.0}ms shared={nshared_ms:.0}ms \
         speedup={nspeed:.1}x identical={nested_identical}",
        ladder.len(),
        ladder_ms.len(),
        nstats.forked,
    );
    // ---- Persistent store: the same ladder shape with 10× deeper
    // warm-ups (persistence earns its keep when trunks are expensive)
    // against an on-disk snapshot store in a fresh temp directory. The
    // first run simulates the trunk once and publishes every rung; the
    // second run hydrates all rungs from disk and simulates no trunk at
    // all. Hydration must beat the cold replay *and* the same-process
    // trunk re-simulation while staying byte-identical to the cold
    // reference.
    let persist_ms: Vec<u64> = ladder_ms.iter().map(|&ms| ms * 10).collect();
    let pladder = make_ladder(&persist_ms);
    let (pcold, _, pcold_ms) = run_ladder(&pladder, false);
    let (_, _, preplay_ms) = run_ladder(&pladder, true);
    let store_dir = std::env::temp_dir().join(format!("bl-bench-snapstore-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let run_persist = || {
        let opts = SweepOptions::serial().snap_stored(store_dir.clone());
        let _ = sweep::take_stats();
        let t0 = Instant::now();
        let out = sweep::run_with(&pladder, &opts);
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        (out.results, sweep::take_stats(), wall_ms)
    };
    let (pres, pstats, publish_ms) = run_persist();
    let (hres, hstats, hydrate_ms) = run_persist();
    let _ = std::fs::remove_dir_all(&store_dir);
    let mut persist_identical = true;
    for i in 0..pladder.len() {
        let cold_body = match &pcold[i] {
            Ok(a) => serde_json::to_string(a).expect("serialize"),
            Err(_) => {
                persist_identical = false;
                continue;
            }
        };
        for r in [&pres[i], &hres[i]] {
            match r {
                Ok(b) => {
                    persist_identical &= cold_body == serde_json::to_string(b).expect("serialize");
                }
                Err(_) => persist_identical = false,
            }
        }
    }
    all_identical &= persist_identical;
    let vs_cold = pcold_ms / hydrate_ms;
    let vs_replay = preplay_ms / hydrate_ms;
    eprintln!(
        "bench-snapshot persist: publish={publish_ms:.0}ms ({} rungs published) \
         hydrate={hydrate_ms:.0}ms ({} rungs hydrated, {} trunk runs) \
         vs_cold={vs_cold:.1}x vs_replay={vs_replay:.1}x identical={persist_identical}",
        pstats.snapshot.published, hstats.snapshot.hydrated, hstats.snapshot.trunk_runs,
    );
    let persist = Value::Object(vec![
        ("points".into(), Value::UInt(pladder.len() as u64)),
        ("rungs".into(), Value::UInt(persist_ms.len() as u64)),
        (
            "ladder_ms".into(),
            Value::Array(persist_ms.iter().map(|&ms| Value::UInt(ms)).collect()),
        ),
        ("publish_ms".into(), Value::Float(publish_ms)),
        ("published".into(), Value::UInt(pstats.snapshot.published)),
        (
            "trunk_runs_publish".into(),
            Value::UInt(pstats.snapshot.trunk_runs),
        ),
        ("hydrate_ms".into(), Value::Float(hydrate_ms)),
        ("hydrated".into(), Value::UInt(hstats.snapshot.hydrated)),
        (
            "trunk_runs_hydrate".into(),
            Value::UInt(hstats.snapshot.trunk_runs),
        ),
        (
            "trunk_ms_saved".into(),
            Value::Float(hstats.snapshot.trunk_ms_saved),
        ),
        ("cold_ms".into(), Value::Float(pcold_ms)),
        ("replay_ms".into(), Value::Float(preplay_ms)),
        ("speedup_vs_cold".into(), Value::Float(vs_cold)),
        ("speedup_vs_replay".into(), Value::Float(vs_replay)),
        ("bit_identical".into(), Value::Bool(persist_identical)),
    ]);

    let nested = Value::Object(vec![
        ("points".into(), Value::UInt(ladder.len() as u64)),
        (
            "ladder_ms".into(),
            Value::Array(ladder_ms.iter().map(|&ms| Value::UInt(ms)).collect()),
        ),
        ("forked".into(), Value::UInt(nstats.forked)),
        ("levels_forked".into(), Value::UInt(levels_forked as u64)),
        ("cold_ms".into(), Value::Float(ncold_ms)),
        ("shared_ms".into(), Value::Float(nshared_ms)),
        ("speedup".into(), Value::Float(nspeed)),
        ("bit_identical".into(), Value::Bool(nested_identical)),
        ("points_detail".into(), Value::Array(nested_detail)),
    ]);

    let report = Value::Object(vec![
        (
            "suite".into(),
            Value::String("snapshot prefix-sharing".into()),
        ),
        ("seed".into(), Value::UInt(seed)),
        ("fast".into(), Value::Bool(fast)),
        ("points".into(), Value::UInt(scenarios.len() as u64)),
        ("groups".into(), Value::UInt(groups as u64)),
        ("forked".into(), Value::UInt(shared_stats.forked)),
        ("warmup_ms".into(), Value::Float(warmup.as_millis_f64())),
        ("tail_ms".into(), Value::Float(tail.as_millis_f64())),
        ("cold_ms".into(), Value::Float(cold_ms)),
        ("shared_ms".into(), Value::Float(shared_ms)),
        ("speedup".into(), Value::Float(speedup)),
        ("bit_identical".into(), Value::Bool(all_identical)),
        ("nested".into(), nested),
        ("persist".into(), persist),
        (
            "note".into(),
            Value::String(
                "serial, uncached; wall times move with the host, speedup and \
                 bit_identical should not. `nested` is the ladder grid whose \
                 checkpoint chains form a prefix tree forked from one trunk \
                 run; `persist` drives the same ladder shape with 10x deeper \
                 warm-ups against an on-disk snapshot store (publish, then \
                 hydrate instead of simulating the trunk). \
                 Regenerate with `repro --bench-snapshot <file>`."
                    .into(),
            ),
        ),
        ("points_detail".into(), Value::Array(records)),
    ]);
    let body = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(path, body + "\n").expect("write bench-snapshot file");
    eprintln!("wrote {path}");
    if !all_identical {
        eprintln!("ERROR: forked runs diverged from cold runs");
        std::process::exit(1);
    }
}

/// Microbenchmarks every scalar-reference vs batch-kernel pair — PELT
/// decay (per-index `LoadSet::update` vs `update_batch_with`), cluster
/// power (`instant_mw_with_idle_ref` vs the gathered-lane kernel path)
/// and the thermal RC step (a `ClusterThermal` loop vs
/// `ThermalBank::advance_all`) — plus an end-to-end scenario timed for
/// events/sec. Each pair runs the same deterministic input schedule on
/// both paths, verifies the outputs are bit-identical, and writes a
/// machine-readable record to `path`; exits 1 on any divergence.
fn run_bench_kernels(path: &str, seed: u64, fast: bool) {
    use biglittle::{Scenario, StopWhen, SystemConfig};
    use bl_kernel::LoadSet;
    use bl_platform::exynos::{exynos5422, BIG_CLUSTER};
    use bl_platform::{CoreConfig, PlatformState};
    use bl_power::{ClusterThermal, PowerModel, ThermalBank, ThermalParams};
    use bl_simcore::budget::RunBudget;
    use bl_simcore::time::{SimDuration, SimTime};
    use bl_workloads::apps::app_by_name;
    use std::hint::black_box;

    /// splitmix64: a tiny deterministic stream so both paths replay the
    /// exact same input schedule.
    fn next(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    let mut records: Vec<Value> = Vec::new();
    let mut all_identical = true;

    // ---- PELT decay: per-index scalar updates vs the fused batch kernel.
    // The schedule mirrors the simulator's regime: all lanes share each
    // tick's `now`, most are runnable every tick (so elapsed intervals —
    // and the decay `exp` — repeat across lanes), a few sleep. Generated
    // up front so the timed region measures only the update paths.
    {
        const LANES: usize = 16;
        let steps = if fast { 20_000 } else { 400_000 };
        let schedule: Vec<(u64, [Option<f64>; LANES])> = {
            let mut rng = seed ^ 0xD1B5_4A32_D192_ED03;
            (0..steps)
                .map(|_| {
                    let dt = 1 + next(&mut rng) % 4;
                    let mut contribs = [None; LANES];
                    for c in contribs.iter_mut() {
                        let draw = next(&mut rng);
                        *c = (draw & 7 != 0).then(|| ((draw >> 8) % 1000) as f64 / 1000.0);
                    }
                    (dt, contribs)
                })
                .collect()
        };
        let run = |batch: bool| -> (Vec<f64>, f64) {
            let mut set = LoadSet::new(32.0);
            for _ in 0..LANES {
                set.push(SimTime::ZERO);
            }
            let mut now = SimTime::ZERO;
            let t0 = Instant::now();
            for (dt_ms, contribs) in &schedule {
                now += SimDuration::from_millis(*dt_ms);
                if batch {
                    set.update_batch_with(now, |i| contribs[i]);
                } else {
                    for (i, c) in contribs.iter().enumerate() {
                        if let Some(r) = c {
                            set.update(i, now, *r);
                        }
                    }
                }
                black_box(set.value(0));
            }
            (set.values().to_vec(), t0.elapsed().as_secs_f64() * 1e3)
        };
        let (scalar_vals, scalar_ms) = run(false);
        let (kernel_vals, kernel_ms) = run(true);
        let identical = scalar_vals
            .iter()
            .zip(&kernel_vals)
            .all(|(a, b)| a.to_bits() == b.to_bits());
        all_identical &= identical;
        eprintln!(
            "pelt_decay       scalar={scalar_ms:>8.1}ms kernel={kernel_ms:>8.1}ms \
             speedup={:>5.2}x identical={identical}",
            scalar_ms / kernel_ms
        );
        records.push(Value::Object(vec![
            ("case".into(), Value::String("pelt_decay".into())),
            ("scalar_wall_ms".into(), Value::Float(scalar_ms)),
            ("kernel_wall_ms".into(), Value::Float(kernel_ms)),
            ("speedup".into(), Value::Float(scalar_ms / kernel_ms)),
            ("bit_identical".into(), Value::Bool(identical)),
        ]));
    }

    // ---- Cluster power: branchy reference loop vs gathered-lane kernel.
    {
        let p = exynos5422();
        let model = PowerModel::screen_on();
        let mut state = PlatformState::new(&p.topology);
        state
            .apply_core_config(&p.topology, CoreConfig::new(3, 4))
            .expect("valid core config");
        state.set_cluster_freq(&p.topology, BIG_CLUSTER, 1_600_000);
        let n = p.topology.n_cpus();
        let iters = if fast { 50_000 } else { 1_000_000 };
        // A bank of pregenerated activity/idle-scale rows cycled through
        // the timed loops, so both sides pay only the model evaluation.
        let rows: Vec<(Vec<f64>, Vec<f64>)> = {
            let mut rng = seed ^ 0x8CB9_2BA7_2F3D_8DD7;
            (0..512)
                .map(|_| {
                    let mut activity = vec![0.0f64; n];
                    let mut scales = vec![1.0f64; n];
                    for i in 0..n {
                        let d = next(&mut rng);
                        activity[i] = if d & 3 == 0 {
                            0.0
                        } else {
                            ((d >> 8) % 1500) as f64 / 1000.0
                        };
                        scales[i] = ((d >> 24) % 1000) as f64 / 1000.0;
                    }
                    (activity, scales)
                })
                .collect()
        };
        let run = |kernel: bool| -> (f64, f64) {
            let mut acc = 0.0f64;
            let t0 = Instant::now();
            for it in 0..iters {
                let (activity, scales) = &rows[it % rows.len()];
                acc += if kernel {
                    model.instant_mw_with_idle(&p.topology, &state, activity, Some(scales))
                } else {
                    model.instant_mw_with_idle_ref(&p.topology, &state, activity, Some(scales))
                };
            }
            (black_box(acc), t0.elapsed().as_secs_f64() * 1e3)
        };
        let (scalar_sum, scalar_ms) = run(false);
        let (kernel_sum, kernel_ms) = run(true);
        let identical = scalar_sum.to_bits() == kernel_sum.to_bits();
        all_identical &= identical;
        eprintln!(
            "power_idle       scalar={scalar_ms:>8.1}ms kernel={kernel_ms:>8.1}ms \
             speedup={:>5.2}x identical={identical}",
            scalar_ms / kernel_ms
        );
        records.push(Value::Object(vec![
            ("case".into(), Value::String("power_idle".into())),
            ("scalar_wall_ms".into(), Value::Float(scalar_ms)),
            ("kernel_wall_ms".into(), Value::Float(kernel_ms)),
            ("speedup".into(), Value::Float(scalar_ms / kernel_ms)),
            ("bit_identical".into(), Value::Bool(identical)),
        ]));
    }

    // ---- Thermal RC: scalar node loop vs the bank's lane kernel.
    {
        let params = vec![
            ThermalParams::exynos5422_little(),
            ThermalParams::exynos5422_big(),
        ];
        let steps = if fast { 100_000 } else { 2_000_000 };
        // Variable step widths (as the event-driven sampler produces) so
        // neither side can hoist the decay `exp` out of the loop;
        // pregenerated so the timed region is only the RC step.
        let schedule: Vec<(SimDuration, [f64; 2])> = {
            let mut rng = seed ^ 0x94D0_49BB_1331_11EB;
            (0..steps)
                .map(|_| {
                    let dt = SimDuration::from_millis(1 + next(&mut rng) % 20);
                    let powers = [
                        (next(&mut rng) % 700) as f64 / 100.0,
                        (next(&mut rng) % 700) as f64 / 100.0,
                    ];
                    (dt, powers)
                })
                .collect()
        };
        let scalar = {
            let mut nodes: Vec<ClusterThermal> =
                params.iter().map(|p| ClusterThermal::new(*p)).collect();
            let t0 = Instant::now();
            for (dt, powers) in &schedule {
                for (i, node) in nodes.iter_mut().enumerate() {
                    black_box(node.advance(*dt, powers[i]));
                }
            }
            let temps: Vec<f64> = nodes.iter().map(ClusterThermal::temp_c).collect();
            (temps, t0.elapsed().as_secs_f64() * 1e3)
        };
        let kernel = {
            let mut bank = ThermalBank::new(params);
            let mut changed = Vec::new();
            let t0 = Instant::now();
            for (dt, powers) in &schedule {
                changed.clear();
                bank.advance_all(*dt, powers, &mut changed);
                black_box(changed.len());
            }
            (bank.temps().to_vec(), t0.elapsed().as_secs_f64() * 1e3)
        };
        let (scalar_temps, scalar_ms) = scalar;
        let (kernel_temps, kernel_ms) = kernel;
        let identical = scalar_temps
            .iter()
            .zip(&kernel_temps)
            .all(|(a, b)| a.to_bits() == b.to_bits());
        all_identical &= identical;
        eprintln!(
            "thermal_rc       scalar={scalar_ms:>8.1}ms kernel={kernel_ms:>8.1}ms \
             speedup={:>5.2}x identical={identical}",
            scalar_ms / kernel_ms
        );
        records.push(Value::Object(vec![
            ("case".into(), Value::String("thermal_rc".into())),
            ("scalar_wall_ms".into(), Value::Float(scalar_ms)),
            ("kernel_wall_ms".into(), Value::Float(kernel_ms)),
            ("speedup".into(), Value::Float(scalar_ms / kernel_ms)),
            ("bit_identical".into(), Value::Bool(identical)),
        ]));
    }

    // ---- End-to-end: a TLP-heavy scenario on the fully kernel-ported
    // simulator, run twice for run-to-run determinism and events/sec.
    {
        let run_for = if fast {
            SimDuration::from_millis(500)
        } else {
            SimDuration::from_secs(5)
        };
        let sc = Scenario::app(
            "bench-kernels-e2e",
            app_by_name("Angry Bird").expect("known app"),
            SystemConfig::baseline().with_seed(seed),
        )
        .with_stop(StopWhen::Deadline(run_for));
        let budget = RunBudget::unlimited();
        let t0 = Instant::now();
        let first = sc.run_with_budget(&budget).expect("scenario runs");
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        let second = sc.run_with_budget(&budget).expect("scenario runs");
        let identical = serde_json::to_string(&first).expect("serialize")
            == serde_json::to_string(&second).expect("serialize");
        all_identical &= identical;
        let events_per_sec = first.events_processed as f64 / (wall_ms / 1e3);
        eprintln!(
            "end_to_end       wall={wall_ms:>8.1}ms events={} \
             events/s={events_per_sec:>10.0} identical={identical}",
            first.events_processed
        );
        records.push(Value::Object(vec![
            ("case".into(), Value::String("end_to_end".into())),
            ("wall_ms".into(), Value::Float(wall_ms)),
            ("sim_ms".into(), Value::Float(run_for.as_millis_f64())),
            ("events".into(), Value::UInt(first.events_processed)),
            ("events_per_sec".into(), Value::Float(events_per_sec)),
            ("bit_identical".into(), Value::Bool(identical)),
        ]));
    }

    let report = Value::Object(vec![
        (
            "suite".into(),
            Value::String("batch kernels vs scalar references".into()),
        ),
        ("seed".into(), Value::UInt(seed)),
        ("fast".into(), Value::Bool(fast)),
        (
            "host_parallelism".into(),
            Value::UInt(bl_simcore::pool::available_jobs() as u64),
        ),
        (
            "note".into(),
            Value::String(
                "single-threaded microbench at real platform sizes (16 tasks, \
                 8 CPUs, 2 thermal nodes); both paths replay one pregenerated \
                 deterministic schedule. The gate is bit_identical — the \
                 kernel paths must reproduce their scalar references exactly; \
                 at these lane counts the wall-clock contract is parity or \
                 better (the fused paths' structural wins — SoA snapshot \
                 cloning, allocation-free advances, the memoised decay exp — \
                 show up in the end-to-end and snapshot suites). Wall times \
                 move with the host; bit_identical must not. Regenerate with \
                 `repro --bench-kernels <file>`."
                    .into(),
            ),
        ),
        ("cases".into(), Value::Array(records)),
    ]);
    let body = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(path, body + "\n").expect("write bench-kernels file");
    eprintln!("wrote {path}");
    if !all_identical {
        eprintln!("ERROR: a kernel path diverged from its scalar reference");
        std::process::exit(1);
    }
}

/// Times the full `--fast` suite serially and at `--jobs 4` (both without
/// the cache, so the comparison is honest) and writes a machine-readable
/// record to `path`.
fn run_bench_sweep(path: &str, seed: u64) {
    let mut runs = Vec::new();
    for jobs in [1usize, 4] {
        let opts = SweepOptions::with_jobs(jobs);
        let _ = sweep::take_stats();
        let t0 = Instant::now();
        for id in EXPERIMENTS {
            std::hint::black_box(run_experiment_with(id, seed, true, &opts));
        }
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        let stats = sweep::take_stats();
        eprintln!(
            "jobs={jobs}: {wall_ms:.0} ms over {} scenarios ({} cache hits)",
            stats.scenarios, stats.cache_hits
        );
        runs.push(Value::Object(vec![
            ("jobs".into(), Value::UInt(jobs as u64)),
            ("wall_ms".into(), Value::Float(wall_ms)),
            ("scenarios".into(), Value::UInt(stats.scenarios)),
            ("cache_hits".into(), Value::UInt(stats.cache_hits)),
        ]));
    }
    let report = Value::Object(vec![
        ("suite".into(), Value::String("repro --fast".into())),
        ("seed".into(), Value::UInt(seed)),
        (
            "host_parallelism".into(),
            Value::UInt(bl_simcore::pool::available_jobs() as u64),
        ),
        (
            "note".into(),
            Value::String(
                "speedup is bounded by host_parallelism; regenerate with \
                 `repro --fast --bench-sweep <file>` on the target machine"
                    .into(),
            ),
        ),
        ("runs".into(), Value::Array(runs)),
    ]);
    let body = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(path, body + "\n").expect("write bench-sweep file");
    eprintln!("wrote {path}");
}

/// Builds the deterministic demo batch: microbench duty steps seeded
/// positionally from `seed`.
fn demo_batch(seed: u64) -> Vec<biglittle::Scenario> {
    use biglittle::{Scenario, SystemConfig};
    use bl_platform::ids::CpuId;
    use bl_simcore::time::SimDuration;

    let mut scenarios: Vec<Scenario> = (0..6u64)
        .map(|i| {
            Scenario::microbench(
                format!("demo-{i}"),
                CpuId((i % 4) as usize),
                0.15 + 0.1 * i as f64,
                SimDuration::from_millis(10),
                // Long enough that a whole batch takes visible wall time,
                // so the kill-and-resume test can interrupt it mid-flight.
                SimDuration::from_secs(60),
                SystemConfig::baseline(),
            )
        })
        .collect();
    sweep::seed_scenarios(&mut scenarios, seed);
    scenarios
}

/// Runs a fixed, deterministic batch under the caller's sweep options and
/// writes only reproducible content (results, quarantine state) to `path`
/// — so an interrupted run finished with `--resume` produces a
/// byte-identical file to an uninterrupted one. The kill-and-resume
/// integration test drives this mode.
fn run_demo_sweep(path: &str, seed: u64, opts: &SweepOptions) {
    let scenarios = demo_batch(seed);
    let out = sweep::run_with(&scenarios, opts);
    eprintln!(
        "demo-sweep: {} scenarios, {} resumed, {} cache hits, degraded={}",
        out.stats.scenarios, out.stats.resumed, out.stats.cache_hits, out.stats.degraded
    );
    // Warm-snapshot traffic, stderr only for the same reason as the shard
    // block: hydrated/published counts depend on what earlier invocations
    // left in the store, the report file must not.
    let snap = &out.stats.snapshot;
    eprintln!(
        "demo-sweep snapshot: trunk_runs={} forks={} hydrated={} published={} \
         trunk_ms_saved={:.0}",
        snap.trunk_runs, snap.forks, snap.hydrated, snap.published, snap.trunk_ms_saved
    );
    // Fleet diagnostics go to stderr only: the report file below must stay
    // byte-identical across worker counts and chaos, counters do not.
    if let Some(shard) = &out.stats.shard {
        eprintln!(
            "demo-sweep shard: workers={} ranges={} leases={} reclaimed_expired={} \
             reclaimed_dead={} re-leased={} quarantined_ranges={} workers_lost={}",
            shard.workers,
            shard.ranges,
            shard.leases_granted,
            shard.reclaimed_expired,
            shard.reclaimed_dead,
            shard.releases,
            shard.ranges_quarantined,
            shard.workers_lost,
        );
    }
    let results: Vec<Value> = out
        .results
        .iter()
        .map(|r| match r {
            Ok(res) => serde_json::to_value(res).expect("result serializes"),
            Err(e) => Value::Object(vec![("error".into(), Value::String(e.to_string()))]),
        })
        .collect();
    let body = demo_report_body(seed, out.degraded, out.quarantined.len() as u64, results);
    std::fs::write(path, body).expect("write demo-sweep file");
    eprintln!("wrote {path}");
}

/// Renders the demo-sweep report from already-serialized per-scenario
/// results. Shared by the in-process path ([`run_demo_sweep`]) and the
/// served path (`repro submit --demo`), so "submit to the daemon" and
/// "run one-shot" write byte-identical files — the serve layer's
/// bit-identity gate compares exactly these bytes.
fn demo_report_body(seed: u64, degraded: bool, quarantined: u64, results: Vec<Value>) -> String {
    let report = Value::Object(vec![
        ("suite".into(), Value::String("demo-sweep".into())),
        ("seed".into(), Value::UInt(seed)),
        ("degraded".into(), Value::Bool(degraded)),
        ("quarantined".into(), Value::UInt(quarantined)),
        ("results".into(), Value::Array(results)),
    ]);
    serde_json::to_string_pretty(&report).expect("report serializes") + "\n"
}

/// Chaos smoke for the sweep supervisor: a batch holding a healthy
/// scenario, an always-panicking scenario (microbench duty out of range)
/// and a same-time-stalling scenario (zero metric period under a lowered
/// watchdog limit) runs to completion with the failers retried and
/// quarantined; then the healthy scenario's cache entry is corrupted on
/// disk and the batch re-runs to prove the cache self-heals. Exits 0 when
/// every expectation holds (the *sweep* being degraded is the expected
/// outcome), 1 otherwise.
fn run_smoke_supervision(path: &str, seed: u64, jobs: usize) {
    use biglittle::{Scenario, SystemConfig};
    use bl_platform::ids::CpuId;
    use bl_simcore::error::SimError;
    use bl_simcore::time::SimDuration;

    let mut failures: Vec<String> = Vec::new();
    let mut check = |ok: bool, what: &str| {
        if ok {
            eprintln!("ok: {what}");
        } else {
            eprintln!("FAILED: {what}");
            failures.push(what.to_string());
        }
    };

    // A short run processes only a few hundred events, so tighten the
    // audit cadence to guarantee several full passes.
    let healthy = Scenario::microbench(
        "healthy",
        CpuId(0),
        0.4,
        SimDuration::from_millis(10),
        SimDuration::from_millis(300),
        SystemConfig::baseline()
            .with_seed(seed)
            .with_audit_cadence(32),
    );
    // duty = 2.0 violates the microbenchmark's input contract and panics
    // at spawn time, on every attempt.
    let panicker = Scenario::microbench(
        "panicker",
        CpuId(1),
        2.0,
        SimDuration::from_millis(10),
        SimDuration::from_millis(300),
        SystemConfig::baseline().with_seed(seed),
    );
    // A zero metric period reschedules MetricSample at the same instant
    // forever; the (lowered) same-time watchdog converts the hang into a
    // typed stall.
    let mut stall_cfg = SystemConfig::baseline()
        .with_seed(seed)
        .with_watchdog_limit(2_000);
    stall_cfg.metric_period = SimDuration::ZERO;
    let staller = Scenario::microbench(
        "staller",
        CpuId(2),
        0.3,
        SimDuration::from_millis(10),
        SimDuration::from_millis(300),
        stall_cfg,
    );

    let cache_dir = std::env::temp_dir().join(format!("bl-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let batch = vec![healthy, panicker, staller];
    let opts = SweepOptions::with_jobs(jobs)
        .cached(&cache_dir)
        .with_retries(1)
        .with_deadline(Duration::from_secs(60))
        .audited(true);

    let first = sweep::run_with(&batch, &opts);
    check(first.results[0].is_ok(), "healthy scenario succeeds");
    check(
        matches!(first.results[1], Err(SimError::ScenarioPanicked { .. })),
        "panicking scenario surfaces as ScenarioPanicked",
    );
    check(
        matches!(first.results[2], Err(SimError::WatchdogStall { .. })),
        "stalling scenario surfaces as WatchdogStall",
    );
    check(first.degraded, "sweep reports degraded");
    check(first.quarantined.len() == 2, "both failers are quarantined");
    check(
        first.attempts[1].len() == 2 && first.attempts[2].len() == 2,
        "failers were retried once with a reseed",
    );
    let audit_checks = first.results[0]
        .as_ref()
        .map(|r| r.resilience.audit_checks)
        .unwrap_or(0);
    check(audit_checks > 0, "invariant auditor ran on the healthy run");

    // Corrupt every cache entry in place; the re-run must detect the bad
    // checksums, recompute, and still agree with the first run.
    let mut corrupted = 0;
    if let Ok(entries) = std::fs::read_dir(&cache_dir) {
        for e in entries.flatten() {
            if e.path().extension().is_some_and(|x| x == "json") {
                let _ = std::fs::write(e.path(), b"{\"truncated\": tru");
                corrupted += 1;
            }
        }
    }
    check(corrupted > 0, "cache entries existed to corrupt");
    let second = sweep::run_with(&batch, &opts);
    check(
        second.stats.cache_hits == 0,
        "corrupt cache entries do not hit",
    );
    check(
        second.results[0].as_ref().ok() == first.results[0].as_ref().ok(),
        "healed result is bit-identical to the original",
    );
    let _ = std::fs::remove_dir_all(&cache_dir);

    let report = Value::Object(vec![
        ("suite".into(), Value::String("smoke-supervision".into())),
        ("seed".into(), Value::UInt(seed)),
        ("degraded".into(), Value::Bool(first.degraded)),
        (
            "quarantined".into(),
            serde_json::to_value(&first.quarantined).expect("quarantine serializes"),
        ),
        ("audit_checks".into(), Value::UInt(audit_checks)),
        ("checks_failed".into(), Value::UInt(failures.len() as u64)),
    ]);
    let body = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(path, body + "\n").expect("write smoke-supervision file");
    eprintln!("wrote {path}");
    if !failures.is_empty() {
        eprintln!(
            "smoke-supervision: {} expectation(s) failed",
            failures.len()
        );
        std::process::exit(1);
    }
}

/// Chaos smoke for the sharded sweep: runs the deterministic demo batch
/// across a 3-worker fleet with the coordinator's chaos hook armed — the
/// first worker to finish a range is handed a fresh lease and then
/// SIGKILLed, so an *active* lease must be reclaimed from a dead process
/// and re-leased to a survivor. The merged fleet output must be
/// bit-identical to an in-process `jobs=1` reference run. Exits 0 when
/// every expectation holds, 1 otherwise.
fn run_smoke_shard(path: &str, seed: u64, jobs: usize) {
    let mut failures: Vec<String> = Vec::new();
    let mut check = |ok: bool, what: &str| {
        if ok {
            eprintln!("ok: {what}");
        } else {
            eprintln!("FAILED: {what}");
            failures.push(what.to_string());
        }
    };

    let scenarios = demo_batch(seed);

    // Serial in-process reference: no cache, no journal, no fleet.
    let serial = sweep::run_with(&scenarios, &SweepOptions::with_jobs(1));

    // Sharded chaos run. Uncached so the workers really execute, journaled
    // into a private directory so the smoke cannot disturb real sweeps.
    let dir = std::env::temp_dir().join(format!("bl-shard-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut opts = SweepOptions::with_jobs(jobs)
        .journaled(&dir)
        .sharded(3)
        .with_lease(Duration::from_secs(10))
        .with_heartbeat(Duration::from_millis(200));
    opts.chaos_kill_one_worker = true;
    let chaos = sweep::run_with(&scenarios, &opts);

    check(
        chaos.results.iter().all(Result::is_ok),
        "every scenario completed despite the worker kill",
    );
    check(
        !chaos.degraded,
        "fleet run is not degraded (reclaim != retry)",
    );
    let bit_identical = serial
        .results
        .iter()
        .zip(chaos.results.iter())
        .all(|(a, b)| match (a, b) {
            (Ok(x), Ok(y)) => {
                serde_json::to_string(x).expect("result serializes")
                    == serde_json::to_string(y).expect("result serializes")
            }
            _ => false,
        });
    check(
        bit_identical,
        "merged fleet output is bit-identical to the jobs=1 reference",
    );
    let shard = chaos.stats.shard.clone().unwrap_or_default();
    check(chaos.stats.shard.is_some(), "shard stats were recorded");
    check(shard.workers == 3, "fleet size recorded as 3 workers");
    check(
        shard.reclaimed_dead >= 1,
        "at least one lease was reclaimed from the killed worker",
    );
    check(shard.releases >= 1, "the reclaimed range was re-leased");
    check(shard.workers_lost >= 1, "the killed worker counted as lost");
    let _ = std::fs::remove_dir_all(&dir);

    let report = Value::Object(vec![
        ("suite".into(), Value::String("smoke-shard".into())),
        ("seed".into(), Value::UInt(seed)),
        ("degraded".into(), Value::Bool(chaos.degraded)),
        ("bit_identical".into(), Value::Bool(bit_identical)),
        (
            "shard".into(),
            serde_json::to_value(&shard).expect("shard stats serialize"),
        ),
        ("checks_failed".into(), Value::UInt(failures.len() as u64)),
    ]);
    let body = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(path, body + "\n").expect("write smoke-shard file");
    eprintln!("wrote {path}");
    if !failures.is_empty() {
        eprintln!("smoke-shard: {} expectation(s) failed", failures.len());
        std::process::exit(1);
    }
}

/// `repro serve`: parse the daemon's flag grammar and run it until
/// drained. See `DESIGN.md` §3.7 for the protocol and lifecycle rules.
fn serve_cli(args: &[String]) -> i32 {
    use bl_served::{serve, ServeConfig};

    let mut cfg = ServeConfig::default();
    let mut snap = true;
    let mut socket_set = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--socket" => {
                cfg.socket = it.next().expect("--socket takes a path").into();
                socket_set = true;
            }
            "--serve-dir" => cfg.serve_dir = it.next().expect("--serve-dir takes a path").into(),
            "--jobs" => {
                cfg.jobs = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--jobs takes an integer (0 = all cores)")
            }
            "--max-queued" => {
                cfg.limits.max_queued = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--max-queued takes an integer")
            }
            "--max-pending" => {
                cfg.limits.max_pending_scenarios = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--max-pending takes an integer (scenario count)")
            }
            "--max-active" => {
                cfg.limits.max_active = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--max-active takes an integer")
            }
            "--heartbeat-ms" => {
                cfg.heartbeat = Duration::from_millis(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .expect("--heartbeat-ms takes an integer (milliseconds)"),
                )
            }
            "--wedge-timeout-ms" => {
                cfg.wedge_timeout = Duration::from_millis(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .expect("--wedge-timeout-ms takes an integer (milliseconds)"),
                )
            }
            "--stall-timeout-ms" => {
                cfg.stall_timeout = Duration::from_millis(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .expect("--stall-timeout-ms takes an integer (milliseconds)"),
                )
            }
            "--default-deadline-ms" => {
                cfg.default_deadline = Duration::from_millis(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .expect("--default-deadline-ms takes an integer (milliseconds)"),
                )
            }
            "--no-snap-store" => snap = false,
            "--snap-store-dir" => {
                cfg.snap_dir = Some(it.next().expect("--snap-store-dir takes a path").into())
            }
            other => {
                eprintln!("serve: unknown flag {other:?}");
                return 2;
            }
        }
    }
    if !socket_set {
        eprintln!("serve: --socket <path> is required");
        return 2;
    }
    if !snap {
        cfg.snap_dir = None;
    }
    match serve(cfg) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("serve: {e}");
            1
        }
    }
}

/// `repro submit`: the reconnecting client. `--demo <out>` submits the
/// deterministic demo batch and writes the same report `--demo-sweep`
/// writes (byte-identical by construction); `--batch <in> <out>` submits
/// scenarios read from a JSON file; `--status`/`--ping`/`--drain` are
/// one-line control operations.
fn submit_cli(args: &[String]) -> i32 {
    use bl_served::{control, submit, SubmitConfig};

    let mut cfg = SubmitConfig::default();
    let mut seed = SEED;
    let mut demo_out: Option<String> = None;
    let mut batch_io: Option<(String, String)> = None;
    let mut op: Option<&str> = None;
    let mut socket_set = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--socket" => {
                cfg.socket = it.next().expect("--socket takes a path").into();
                socket_set = true;
            }
            "--client" => cfg.client = it.next().expect("--client takes a name").clone(),
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--seed takes an integer")
            }
            "--reconnects" => {
                cfg.reconnects = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--reconnects takes an integer")
            }
            "--backoff-ms" => {
                cfg.backoff = Duration::from_millis(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .expect("--backoff-ms takes an integer (milliseconds)"),
                )
            }
            "--retries" => {
                cfg.options.retries = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--retries takes an integer")
            }
            "--deadline-ms" => {
                cfg.options.deadline_ms = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .expect("--deadline-ms takes an integer (milliseconds)"),
                )
            }
            "--max-events" => {
                cfg.options.max_events = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .expect("--max-events takes an integer"),
                )
            }
            "--audit" => cfg.options.audit = true,
            "--quiet" => cfg.quiet = true,
            "--demo" => demo_out = it.next().cloned(),
            "--batch" => {
                let input = it
                    .next()
                    .expect("--batch takes <in.json> <out.json>")
                    .clone();
                let output = it
                    .next()
                    .expect("--batch takes <in.json> <out.json>")
                    .clone();
                batch_io = Some((input, output));
            }
            "--status" => op = Some("status"),
            "--ping" => op = Some("ping"),
            "--drain" => op = Some("drain"),
            other => {
                eprintln!("submit: unknown flag {other:?}");
                return 2;
            }
        }
    }
    if !socket_set {
        eprintln!("submit: --socket <path> is required");
        return 2;
    }
    if let Some(op) = op {
        return match control(&cfg.socket, op) {
            Ok(line) => {
                println!("{line}");
                0
            }
            Err(e) => {
                eprintln!("submit: {op} failed: {e}");
                1
            }
        };
    }
    let (scenarios, out_path, is_demo) = if let Some(out) = demo_out {
        let values: Vec<Value> = demo_batch(seed)
            .iter()
            .map(|sc| serde_json::to_value(sc).expect("scenario serializes"))
            .collect();
        (values, out, true)
    } else if let Some((input, output)) = batch_io {
        let text = std::fs::read_to_string(&input).expect("read --batch input file");
        let v: Value = serde_json::from_str(&text).expect("--batch input is JSON");
        let arr = match v.get("scenarios") {
            Some(s) => s.as_array().expect("\"scenarios\" is an array").to_vec(),
            None => v
                .as_array()
                .expect("--batch input is a scenario array")
                .to_vec(),
        };
        (arr, output, false)
    } else {
        eprintln!("submit: one of --demo <out>, --batch <in> <out>, --status, --ping, --drain");
        return 2;
    };

    match submit(&cfg, &scenarios) {
        Ok(report) => {
            // The hydrated/published counts ride in the streamed per-batch
            // stats; surface them like the one-shot CLI does — stderr only,
            // so the report file stays byte-stable.
            let stat = |k: &str| report.stats.get(k).and_then(Value::as_u64).unwrap_or(0);
            eprintln!(
                "submit: run {} done — {} scenarios, {} resumed, {} hydrated, {} published, \
                 {} reconnect(s), {} heartbeat(s), {} checkpoint(s), {} rejection(s)",
                report.run,
                stat("scenarios"),
                stat("resumed"),
                stat("hydrated"),
                stat("published"),
                report.reconnects,
                report.heartbeats,
                report.checkpoints,
                report.rejections,
            );
            let results: Vec<Value> = report
                .results
                .iter()
                .map(|r| match r {
                    Ok(v) => v.clone(),
                    Err(e) => Value::Object(vec![("error".into(), Value::String(e.clone()))]),
                })
                .collect();
            let body = if is_demo {
                demo_report_body(seed, report.degraded, report.quarantined, results)
            } else {
                let full = Value::Object(vec![
                    ("suite".into(), Value::String("submit".into())),
                    ("run".into(), Value::String(report.run.clone())),
                    ("degraded".into(), Value::Bool(report.degraded)),
                    ("quarantined".into(), Value::UInt(report.quarantined)),
                    ("stats".into(), report.stats.clone()),
                    ("results".into(), Value::Array(results)),
                ]);
                serde_json::to_string_pretty(&full).expect("report serializes") + "\n"
            };
            std::fs::write(&out_path, body).expect("write submit report");
            eprintln!("wrote {out_path}");
            0
        }
        Err(e) => {
            eprintln!("submit: {e}");
            1
        }
    }
}

/// A tiny deterministic batch, distinct per `salt` — flood and
/// fair-share phases of the serve smoke need many *different* batch keys
/// (identical batches would dedup-attach instead of queueing).
fn serve_smoke_batch(seed: u64, salt: u64, sim_ms: u64) -> Vec<Value> {
    use biglittle::{Scenario, SystemConfig};
    use bl_platform::ids::CpuId;
    use bl_simcore::time::SimDuration;

    (0..2u64)
        .map(|i| {
            let sc = Scenario::microbench(
                format!("serve-smoke-{salt}-{i}"),
                CpuId((i % 4) as usize),
                0.2 + 0.1 * i as f64,
                SimDuration::from_millis(10),
                SimDuration::from_millis(sim_ms),
                SystemConfig::baseline().with_seed(seed ^ (salt << 8) ^ i),
            );
            serde_json::to_value(&sc).expect("scenario serializes")
        })
        .collect()
}

/// Chaos smoke for the serve layer: proves the daemon degrades instead
/// of dying under every abuse the protocol can see — malformed and
/// oversized requests, slow-trickle senders, admission floods, wedged
/// runs — and that a SIGKILL mid-batch plus restart plus client
/// reconnect still converges on results byte-identical to a one-shot
/// sweep. Exits 0 when every expectation holds, 1 otherwise.
fn run_smoke_serve(path: &str, seed: u64, jobs: usize) {
    use bl_served::{control, proto, submit, SubmitConfig, SubmitOptions};
    use std::io::{Read, Write};
    use std::os::unix::net::UnixStream;

    let mut failures: Vec<String> = Vec::new();
    let mut check = |ok: bool, what: &str| {
        if ok {
            eprintln!("ok: {what}");
        } else {
            eprintln!("FAILED: {what}");
            failures.push(what.to_string());
        }
    };

    let dir = std::env::temp_dir().join(format!("bl-serve-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create smoke dir");
    let socket = dir.join("serve.sock");
    let serve_dir = dir.join("state");
    let snap_dir = dir.join("snapshots");

    // In-process references: what a one-shot sweep of each demo batch
    // produces. Every served run below must match these bytes.
    let reference = |seed: u64| -> String {
        let scenarios = demo_batch(seed);
        let out = sweep::run_with(&scenarios, &SweepOptions::with_jobs(1));
        let results: Vec<Value> = out
            .results
            .iter()
            .map(|r| match r {
                Ok(res) => serde_json::to_value(res).expect("result serializes"),
                Err(e) => Value::Object(vec![("error".into(), Value::String(e.to_string()))]),
            })
            .collect();
        demo_report_body(seed, out.degraded, out.quarantined.len() as u64, results)
    };
    let reference_a = reference(seed);
    let reference_b = reference(seed + 1);

    let spawn_daemon = |wedge: bool, state: &Path| -> std::process::Child {
        let exe = std::env::current_exe().expect("current_exe for daemon spawn");
        let mut cmd = std::process::Command::new(exe);
        cmd.args([
            "serve",
            "--socket",
            socket.to_str().expect("socket path is UTF-8"),
            "--serve-dir",
            state.to_str().expect("serve dir is UTF-8"),
            "--snap-store-dir",
            snap_dir.to_str().expect("snap dir is UTF-8"),
            "--jobs",
            &jobs.to_string(),
            "--max-queued",
            "2",
            "--max-active",
            "1",
            "--heartbeat-ms",
            "100",
            "--stall-timeout-ms",
            "600",
            "--wedge-timeout-ms",
            "800",
        ]);
        if wedge {
            cmd.env(bl_served::WEDGE_ENV, "1");
        }
        cmd.spawn().expect("spawn serve daemon")
    };
    let wait_for_socket = || -> bool {
        let deadline = Instant::now() + Duration::from_secs(20);
        while Instant::now() < deadline {
            if UnixStream::connect(&socket).is_ok() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        false
    };
    // Reads one event line off a raw connection, bounded by `within`.
    let read_line = |stream: &mut UnixStream, within: Duration| -> Option<String> {
        let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
        let deadline = Instant::now() + within;
        let mut buf: Vec<u8> = Vec::new();
        let mut chunk = [0u8; 4096];
        loop {
            if let Some(nl) = buf.iter().position(|b| *b == b'\n') {
                let line: Vec<u8> = buf.drain(..=nl).collect();
                return Some(String::from_utf8_lossy(&line[..line.len() - 1]).to_string());
            }
            if Instant::now() >= deadline {
                return None;
            }
            match stream.read(&mut chunk) {
                Ok(0) => return None,
                Ok(n) => buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut => {}
                Err(_) => return None,
            }
        }
    };
    let submit_cfg = |client: &str| SubmitConfig {
        socket: socket.clone(),
        client: client.to_string(),
        reconnects: 40,
        backoff: Duration::from_millis(100),
        backoff_cap: Duration::from_secs(1),
        quiet_timeout: Duration::from_secs(30),
        options: SubmitOptions::default(),
        quiet: true,
    };
    let demo_values = |seed: u64| -> Vec<Value> {
        demo_batch(seed)
            .iter()
            .map(|sc| serde_json::to_value(sc).expect("scenario serializes"))
            .collect()
    };
    let report_bytes = |seed: u64, report: &bl_served::SubmitReport| -> String {
        let results: Vec<Value> = report
            .results
            .iter()
            .map(|r| match r {
                Ok(v) => v.clone(),
                Err(e) => Value::Object(vec![("error".into(), Value::String(e.clone()))]),
            })
            .collect();
        demo_report_body(seed, report.degraded, report.quarantined, results)
    };

    // ---- phase 1: healthy daemon -----------------------------------------
    let mut daemon = spawn_daemon(false, &serve_dir);
    check(wait_for_socket(), "daemon came up and accepts connections");

    // Submit-vs-oneshot byte identity on a live daemon.
    match submit(&submit_cfg("smoke"), &demo_values(seed)) {
        Ok(report) => {
            check(
                report_bytes(seed, &report) == reference_a,
                "served demo batch is byte-identical to the one-shot sweep",
            );
        }
        Err(e) => {
            eprintln!("submit failed: {e}");
            check(
                false,
                "served demo batch is byte-identical to the one-shot sweep",
            );
        }
    }

    // Malformed requests get typed rejections and the connection stays
    // usable (the ping on the same socket must still answer).
    if let Ok(mut conn) = UnixStream::connect(&socket) {
        for (line, want) in [
            ("this is not json", "malformed"),
            ("{\"op\":\"submit\",\"scenarios\":[]}", "empty-batch"),
            ("{\"op\":\"launch-missiles\"}", "malformed"),
        ] {
            let _ = conn.write_all(format!("{line}\n").as_bytes());
            let answer = read_line(&mut conn, Duration::from_secs(5)).unwrap_or_default();
            check(
                answer.contains("\"rejected\"") && answer.contains(want),
                &format!("malformed request {line:?} draws a typed {want} rejection"),
            );
        }
        let _ = conn.write_all(b"{\"op\":\"ping\"}\n");
        let answer = read_line(&mut conn, Duration::from_secs(5)).unwrap_or_default();
        check(
            answer.contains("\"pong\""),
            "connection survives malformed requests (ping still answers)",
        );
    } else {
        check(
            false,
            "connection survives malformed requests (ping still answers)",
        );
    }

    // Oversized request: typed too-large rejection, connection usable.
    if let Ok(mut conn) = UnixStream::connect(&socket) {
        let huge = vec![b'x'; 2 * proto::MAX_LINE_BYTES];
        let mut sent = conn.write_all(&huge).is_ok();
        sent &= conn.write_all(b"\n").is_ok();
        check(sent, "oversized request could be sent in full");
        let answer = read_line(&mut conn, Duration::from_secs(10)).unwrap_or_default();
        check(
            answer.contains("too-large"),
            "oversized request draws a typed too-large rejection",
        );
        let _ = conn.write_all(b"{\"op\":\"ping\"}\n");
        let answer = read_line(&mut conn, Duration::from_secs(5)).unwrap_or_default();
        check(
            answer.contains("\"pong\""),
            "connection survives an oversized request (ping still answers)",
        );
    } else {
        check(false, "oversized request draws a typed too-large rejection");
    }

    // Slow trickle: a partial line going nowhere gets the *connection*
    // dropped, not the daemon.
    if let Ok(mut conn) = UnixStream::connect(&socket) {
        let _ = conn.write_all(b"{\"op\":");
        std::thread::sleep(Duration::from_millis(1_500));
        check(
            read_line(&mut conn, Duration::from_secs(2)).is_none(),
            "slow-trickle connection is dropped after the stall timeout",
        );
    }
    check(
        control(&socket, "ping").is_ok(),
        "daemon survives the slow-trickle client",
    );

    // Fair-share: two clients with distinct batches both complete.
    let (cfg_a, cfg_b) = (submit_cfg("alice"), submit_cfg("bob"));
    let (batch_a, batch_b) = (
        serve_smoke_batch(seed, 1, 500),
        serve_smoke_batch(seed, 2, 500),
    );
    let ta = std::thread::spawn(move || submit(&cfg_a, &batch_a));
    let tb = std::thread::spawn(move || submit(&cfg_b, &batch_b));
    let (ra, rb) = (ta.join().expect("join alice"), tb.join().expect("join bob"));
    check(
        ra.is_ok() && rb.is_ok(),
        "two competing clients both complete their batches",
    );

    // ---- phase 2: SIGKILL mid-batch, restart, reconnect ------------------
    let chaos_cfg = submit_cfg("chaos");
    let chaos_values = demo_values(seed + 1);
    let chaos_client = std::thread::spawn(move || submit(&chaos_cfg, &chaos_values));
    // Kill once the run is observably mid-flight (its sweep journal has
    // at least one completed scenario), mirroring the shard chaos test.
    let journal_dir = serve_dir.join("journal");
    let poll_deadline = Instant::now() + Duration::from_secs(120);
    let mut saw_progress = false;
    while Instant::now() < poll_deadline {
        let done_records: usize = std::fs::read_dir(&journal_dir)
            .map(|entries| {
                entries
                    .flatten()
                    .filter(|e| e.path().extension().is_some_and(|x| x == "jsonl"))
                    .map(|e| {
                        std::fs::read_to_string(e.path())
                            .map(|t| t.lines().filter(|l| l.contains("\"done\"")).count())
                            .unwrap_or(0)
                    })
                    .sum()
            })
            .unwrap_or(0);
        if done_records >= 1 {
            saw_progress = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    check(
        saw_progress,
        "chaos run made journaled progress before the kill",
    );
    daemon.kill().expect("SIGKILL the daemon");
    let _ = daemon.wait();
    std::thread::sleep(Duration::from_millis(300));
    let mut daemon = spawn_daemon(false, &serve_dir);
    check(
        wait_for_socket(),
        "restarted daemon came up on the same socket",
    );
    match chaos_client.join().expect("join chaos client") {
        Ok(report) => {
            check(
                report_bytes(seed + 1, &report) == reference_b,
                "post-SIGKILL reconnect converges on byte-identical results",
            );
            check(
                report.reconnects >= 1,
                "the chaos client really did reconnect",
            );
        }
        Err(e) => {
            eprintln!("chaos submit failed: {e}");
            check(
                false,
                "post-SIGKILL reconnect converges on byte-identical results",
            );
        }
    }

    // Graceful drain: the daemon acknowledges, finishes, and exits 0.
    match control(&socket, "drain") {
        Ok(line) => check(line.contains("draining"), "drain is acknowledged"),
        Err(e) => {
            eprintln!("drain failed: {e}");
            check(false, "drain is acknowledged");
        }
    }
    let drain_deadline = Instant::now() + Duration::from_secs(30);
    let mut drain_code: Option<i32> = None;
    while Instant::now() < drain_deadline {
        if let Some(status) = daemon.try_wait().expect("poll draining daemon") {
            drain_code = status.code();
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    // Reap unconditionally: a no-op after a clean drain (the status is
    // cached), and the kill switch if the drain never completed.
    let _ = daemon.kill();
    let _ = daemon.wait();
    check(drain_code == Some(0), "drained daemon exits 0");

    // ---- phase 3: flood a wedged daemon ----------------------------------
    // Every executor wedges, so admission capacity (1 active + 2 queued)
    // fills deterministically: of 6 distinct batches, exactly 3 admit and
    // 3 draw typed backpressure rejections. The wedge timeout then
    // quarantines the stuck runs one by one.
    let wedge_state = dir.join("wedge-state");
    let mut wedged_daemon = spawn_daemon(true, &wedge_state);
    check(wait_for_socket(), "wedge-mode daemon came up");
    let mut flood_conns: Vec<UnixStream> = Vec::new();
    let mut admitted = 0;
    let mut rejected = 0;
    for salt in 0..6u64 {
        let batch = serve_smoke_batch(seed, 100 + salt, 200);
        let line = proto::submit_line("flood", &batch, &SubmitOptions::default());
        let mut conn = UnixStream::connect(&socket).expect("flood connection");
        conn.write_all(format!("{line}\n").as_bytes())
            .expect("send flood submit");
        flood_conns.push(conn);
    }
    let mut admitted_conn: Option<usize> = None;
    for (i, conn) in flood_conns.iter_mut().enumerate() {
        let answer = read_line(conn, Duration::from_secs(10)).unwrap_or_default();
        if answer.contains("\"admitted\"") {
            admitted += 1;
            admitted_conn.get_or_insert(i);
        } else if answer.contains("queue-full") || answer.contains("overloaded") {
            rejected += 1;
        }
    }
    check(
        admitted == 3,
        &format!("flood: exactly capacity admits (3), got {admitted}"),
    );
    check(
        rejected == 3,
        &format!("flood: the overflow draws typed rejections (3), got {rejected}"),
    );
    match control(&socket, "status") {
        Ok(line) => check(
            line.contains("\"queued\""),
            "daemon answers status mid-flood",
        ),
        Err(e) => {
            eprintln!("status failed: {e}");
            check(false, "daemon answers status mid-flood");
        }
    }
    // The first admitted run heartbeats while wedged, then the server
    // cancels and quarantines it.
    if let Some(i) = admitted_conn {
        let conn = &mut flood_conns[i];
        let mut heartbeats = 0;
        let mut quarantined = false;
        let deadline = Instant::now() + Duration::from_secs(20);
        while Instant::now() < deadline {
            let Some(line) = read_line(conn, Duration::from_secs(5)) else {
                break;
            };
            if line.contains("\"heartbeat\"") {
                heartbeats += 1;
            }
            if line.contains("\"quarantined\"") {
                quarantined = true;
                break;
            }
        }
        check(heartbeats >= 1, "wedged run heartbeats while stuck");
        check(quarantined, "wedged run is cancelled and quarantined");
    } else {
        check(false, "wedged run heartbeats while stuck");
        check(false, "wedged run is cancelled and quarantined");
    }
    let _ = wedged_daemon.kill();
    let _ = wedged_daemon.wait();

    let report = Value::Object(vec![
        ("suite".into(), Value::String("smoke-serve".into())),
        ("seed".into(), Value::UInt(seed)),
        ("flood_admitted".into(), Value::UInt(admitted)),
        ("flood_rejected".into(), Value::UInt(rejected)),
        ("checks_failed".into(), Value::UInt(failures.len() as u64)),
    ]);
    let body = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(path, body + "\n").expect("write smoke-serve file");
    eprintln!("wrote {path}");
    let _ = std::fs::remove_dir_all(&dir);
    if !failures.is_empty() {
        eprintln!("smoke-serve: {} expectation(s) failed", failures.len());
        std::process::exit(1);
    }
}
