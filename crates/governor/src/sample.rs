//! The governor interface.

use bl_platform::ids::ClusterId;
use bl_platform::opp::OppTable;
use bl_simcore::time::SimDuration;

/// One sampling-period observation of a frequency domain.
#[derive(Debug, Clone, Copy)]
pub struct ClusterSample<'a> {
    /// Which cluster this is.
    pub cluster: ClusterId,
    /// The cluster's OPP table (for rounding targets onto real steps).
    pub opps: &'a OppTable,
    /// Frequency that was in effect during the window, in kHz.
    pub cur_freq_khz: u32,
    /// Busy fraction (`[0,1]`) of each *online* CPU in the domain over the
    /// window. Empty when the whole cluster is hotplugged off.
    pub cpu_utils: &'a [f64],
    /// Frequency ceiling currently imposed on the domain (thermal
    /// throttling), in kHz. `u32::MAX` means uncapped. Governors must not
    /// request above [`ClusterSample::effective_max`].
    pub cap_khz: u32,
}

impl ClusterSample<'_> {
    /// The domain utilization the stock governors act on: the maximum
    /// per-CPU busy fraction (the domain must be fast enough for its
    /// busiest CPU). Reduced by [`bl_simcore::kernels::max_or_zero`],
    /// the same `fold(0.0, f64::max)` every governor sample shares.
    pub fn max_util(&self) -> f64 {
        bl_simcore::kernels::max_or_zero(self.cpu_utils)
    }

    /// The highest OPP the domain may run at under the current ceiling:
    /// the cap rounded down onto the table, but never below the minimum
    /// OPP (a cluster cannot be capped out of existence).
    pub fn effective_max(&self) -> u32 {
        if self.cap_khz >= self.opps.max_khz() {
            return self.opps.max_khz();
        }
        self.opps.round_down(self.cap_khz).freq_khz
    }

    /// Clamps a raw frequency choice through the ceiling. The result is an
    /// exact OPP as long as `freq_khz` was one.
    pub fn clamp(&self, freq_khz: u32) -> u32 {
        freq_khz.min(self.effective_max())
    }
}

/// A per-cluster DVFS policy.
///
/// Implementations must return an exact OPP frequency of `sample.opps`.
pub trait CpufreqGovernor {
    /// Human-readable governor name (e.g. `"interactive"`).
    fn name(&self) -> &'static str;

    /// How often the driver should sample this governor.
    fn sampling_period(&self) -> SimDuration;

    /// Decides the next frequency for the domain from the last window's
    /// utilization.
    fn on_sample(&mut self, sample: &ClusterSample<'_>) -> u32;

    /// Returns true when a sample over an *all-idle* window (every
    /// utilization zero) is guaranteed to be a no-op: `on_sample` would
    /// return `sample.cur_freq_khz` and leave no internal state changed.
    ///
    /// Drivers use this to elide governor samples across idle gaps; the
    /// `false` default is always safe (the sample simply fires normally).
    /// Implementations must keep this exactly in sync with `on_sample` —
    /// the event-driven loop's bit-for-bit equivalence depends on it.
    fn idle_quiescent(&self, _sample: &ClusterSample<'_>) -> bool {
        false
    }

    /// Deep-copies this governor *including its accumulated internal state*
    /// (hispeed timers, sample history) for a forked simulation.
    ///
    /// Returning `None` (the default) declares the governor opaque and
    /// makes simulations using it unsnapshottable. Every governor shipped
    /// by this crate implements it.
    fn box_clone(&self) -> Option<Box<dyn CpufreqGovernor>> {
        None
    }

    /// Captures this governor's full runtime state as a serializable
    /// [`GovernorState`](crate::config::GovernorState), the persistent
    /// counterpart of [`CpufreqGovernor::box_clone`]:
    /// `state.restore()` must behave bit-identically to the live instance.
    ///
    /// Returning `None` (the default) declares the governor opaque to
    /// persistence; simulations using it cannot be written to the snapshot
    /// store and fall back to cold runs. Every governor shipped by this
    /// crate implements it.
    fn state_save(&self) -> Option<crate::config::GovernorState> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bl_platform::opp::OppTable;

    #[test]
    fn max_util_of_domain() {
        let opps = OppTable::linear(500_000, 1_300_000, 9, 900, 1_100);
        let s = ClusterSample {
            cluster: ClusterId(0),
            opps: &opps,
            cur_freq_khz: 500_000,
            cpu_utils: &[0.2, 0.9, 0.1],
            cap_khz: u32::MAX,
        };
        assert_eq!(s.max_util(), 0.9);
    }

    #[test]
    fn empty_domain_has_zero_util() {
        let opps = OppTable::linear(500_000, 1_300_000, 9, 900, 1_100);
        let s = ClusterSample {
            cluster: ClusterId(0),
            opps: &opps,
            cur_freq_khz: 500_000,
            cpu_utils: &[],
            cap_khz: u32::MAX,
        };
        assert_eq!(s.max_util(), 0.0);
    }

    #[test]
    fn effective_max_rounds_the_cap_onto_the_table() {
        let opps = OppTable::linear(500_000, 1_300_000, 9, 900, 1_100);
        let mut s = ClusterSample {
            cluster: ClusterId(0),
            opps: &opps,
            cur_freq_khz: 500_000,
            cpu_utils: &[1.0],
            cap_khz: u32::MAX,
        };
        assert_eq!(s.effective_max(), 1_300_000);
        s.cap_khz = 1_050_000; // between OPPs: round down
        assert_eq!(s.effective_max(), 1_000_000);
        assert_eq!(s.clamp(1_300_000), 1_000_000);
        assert_eq!(s.clamp(700_000), 700_000);
        s.cap_khz = 100_000; // below the ladder: pinned to min
        assert_eq!(s.effective_max(), 500_000);
    }
}
