//! # bl-governor
//!
//! CPU-frequency (DVFS) governors for the asymmetric platform.
//!
//! The centerpiece is the [`interactive::InteractiveGovernor`], a faithful
//! implementation of the paper's Algorithm 2 — the governor shipped on the
//! target device. Classic Linux governors (ondemand, conservative,
//! performance, powersave, userspace) are provided as baselines for
//! comparison experiments.
//!
//! Governors are per-cluster: each frequency domain gets its own instance,
//! sampled every `sampling_period` with the busy fraction of each online
//! CPU in the domain. The returned frequency is always an exact OPP of the
//! cluster's table.
//!
//! ```
//! use bl_governor::{ClusterSample, CpufreqGovernor, GovernorConfig};
//! use bl_platform::opp::OppTable;
//! use bl_platform::ids::ClusterId;
//!
//! let opps = OppTable::linear(500_000, 1_300_000, 9, 900, 1_100);
//! let mut gov = GovernorConfig::Performance.build();
//! let f = gov.on_sample(&ClusterSample {
//!     cluster: ClusterId(0),
//!     opps: &opps,
//!     cur_freq_khz: 500_000,
//!     cpu_utils: &[0.1],
//!     cap_khz: u32::MAX, // no thermal ceiling in force
//! });
//! assert_eq!(f, 1_300_000);
//! ```

#![warn(missing_docs)]

pub mod classic;
pub mod config;
pub mod interactive;
pub mod sample;

pub use config::{GovernorConfig, GovernorState};
pub use interactive::{InteractiveGovernor, InteractiveParams};
pub use sample::{ClusterSample, CpufreqGovernor};
