//! The `interactive` governor — paper Algorithm 2.
//!
//! ```text
//! for every sampling rate do
//!   util ← current utilization since last check
//!   freq ← current frequency since last check
//!   target_freq ← freq * util / TARGET_LOAD
//!   if util > UP_THRESHOLD
//!     if freq < HISPEED_FREQ then set frequency to HISPEED_FREQ
//!     else set frequency to target_freq
//!   if util < DOWN_THRESHOLD then set frequency to target_freq
//! end for
//! ```
//!
//! Frequencies between the thresholds are held — the governor leaves a
//! utilization margin for unpredicted load increases (paper §VI.B). The
//! default sampling period is 20 ms and the default target load 70%
//! (paper §VI.C); the parameter sweep of Figures 11–13 varies the sampling
//! period (60, 100 ms) and target load (60, 80).

use crate::sample::{ClusterSample, CpufreqGovernor};
use bl_simcore::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Tunables of the interactive governor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InteractiveParams {
    /// Sampling period (default 20 ms on the target platform).
    pub sampling_period: SimDuration,
    /// The utilization the governor steers toward (default 0.70).
    pub target_load: f64,
    /// Utilization above which the hispeed jump fires (default 0.85).
    pub up_threshold: f64,
    /// Utilization below which the frequency is allowed to drop
    /// (default 0.50); between the thresholds the frequency holds.
    pub down_threshold: f64,
    /// Fraction of the cluster's max frequency used as the hispeed jump
    /// point (default 0.8).
    pub hispeed_fraction: f64,
}

impl InteractiveParams {
    /// Platform defaults (20 ms sampling, target load 70).
    pub fn default_platform() -> Self {
        InteractiveParams {
            sampling_period: SimDuration::from_millis(20),
            target_load: 0.70,
            up_threshold: 0.85,
            down_threshold: 0.50,
            hispeed_fraction: 0.8,
        }
    }

    /// Paper §VI.C variant: 60 ms sampling interval.
    pub fn sampling_60ms() -> Self {
        InteractiveParams {
            sampling_period: SimDuration::from_millis(60),
            ..Self::default_platform()
        }
    }

    /// Paper §VI.C variant: 100 ms sampling interval.
    pub fn sampling_100ms() -> Self {
        InteractiveParams {
            sampling_period: SimDuration::from_millis(100),
            ..Self::default_platform()
        }
    }

    /// Paper §VI.C variant: high (80) target load.
    pub fn target_load_high() -> Self {
        InteractiveParams {
            target_load: 0.80,
            ..Self::default_platform()
        }
    }

    /// Paper §VI.C variant: low (60) target load.
    pub fn target_load_low() -> Self {
        InteractiveParams {
            target_load: 0.60,
            ..Self::default_platform()
        }
    }

    /// Validates parameter ordering.
    ///
    /// # Panics
    ///
    /// Panics when thresholds are outside `(0,1]` or inverted.
    pub fn assert_valid(&self) {
        assert!(self.target_load > 0.0 && self.target_load <= 1.0);
        assert!(self.up_threshold > 0.0 && self.up_threshold <= 1.0);
        assert!(self.down_threshold >= 0.0 && self.down_threshold < self.up_threshold);
        assert!(self.hispeed_fraction > 0.0 && self.hispeed_fraction <= 1.0);
        assert!(!self.sampling_period.is_zero());
    }
}

impl Default for InteractiveParams {
    fn default() -> Self {
        InteractiveParams::default_platform()
    }
}

/// The interactive governor instance for one cluster.
#[derive(Debug, Clone)]
pub struct InteractiveGovernor {
    params: InteractiveParams,
}

impl InteractiveGovernor {
    /// Creates a governor with the given tunables.
    pub fn new(params: InteractiveParams) -> Self {
        params.assert_valid();
        InteractiveGovernor { params }
    }

    /// The governor's tunables.
    pub fn params(&self) -> &InteractiveParams {
        &self.params
    }
}

impl CpufreqGovernor for InteractiveGovernor {
    fn name(&self) -> &'static str {
        "interactive"
    }

    fn sampling_period(&self) -> SimDuration {
        self.params.sampling_period
    }

    fn on_sample(&mut self, sample: &ClusterSample<'_>) -> u32 {
        let util = sample.max_util();
        let cur = sample.cur_freq_khz;
        // The hispeed jump point scales with the *available* ceiling, so a
        // thermally capped cluster keeps the algorithm's shape within its
        // shrunken ladder instead of slamming into the cap.
        let hispeed = sample.clamp(
            sample
                .opps
                .round_up((sample.effective_max() as f64 * self.params.hispeed_fraction) as u32)
                .freq_khz,
        );
        let target = (cur as f64 * util / self.params.target_load) as u32;

        if util > self.params.up_threshold {
            if cur < hispeed {
                return hispeed;
            }
            return sample.clamp(sample.opps.round_up(target).freq_khz);
        }
        if util < self.params.down_threshold {
            return sample.clamp(sample.opps.round_up(target).freq_khz);
        }
        sample.clamp(cur) // hold inside the margin band
    }

    fn idle_quiescent(&self, sample: &ClusterSample<'_>) -> bool {
        // Stateless governor: probing a clone with the caller's all-idle
        // sample computes exactly what a real sample would decide.
        self.clone().on_sample(sample) == sample.cur_freq_khz
    }

    fn box_clone(&self) -> Option<Box<dyn CpufreqGovernor>> {
        Some(Box::new(self.clone()))
    }

    fn state_save(&self) -> Option<crate::config::GovernorState> {
        Some(crate::config::GovernorState::Interactive(self.params))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bl_platform::ids::ClusterId;
    use bl_platform::opp::OppTable;
    use proptest::prelude::*;

    fn opps() -> OppTable {
        OppTable::linear(500_000, 1_300_000, 9, 900, 1_100)
    }

    fn sample<'a>(opps: &'a OppTable, cur: u32, utils: &'a [f64]) -> ClusterSample<'a> {
        ClusterSample {
            cluster: ClusterId(0),
            opps,
            cur_freq_khz: cur,
            cpu_utils: utils,
            cap_khz: u32::MAX,
        }
    }

    #[test]
    fn hispeed_jump_from_low_frequency() {
        let t = opps();
        let mut g = InteractiveGovernor::new(InteractiveParams::default());
        // util 0.95 > up threshold, current below hispeed (0.8*1.3 = 1.04 → 1.1 GHz)
        let f = g.on_sample(&sample(&t, 500_000, &[0.95]));
        assert_eq!(f, 1_100_000);
    }

    #[test]
    fn proportional_scaling_above_hispeed() {
        let t = opps();
        let mut g = InteractiveGovernor::new(InteractiveParams::default());
        // Already at hispeed; full load scales proportionally: 1.1 GHz * 1.0/0.7 = 1.57 → max.
        let f = g.on_sample(&sample(&t, 1_100_000, &[1.0]));
        assert_eq!(f, 1_300_000);
    }

    #[test]
    fn holds_inside_margin_band() {
        let t = opps();
        let mut g = InteractiveGovernor::new(InteractiveParams::default());
        let f = g.on_sample(&sample(&t, 900_000, &[0.6]));
        assert_eq!(f, 900_000, "60% util between thresholds must hold");
    }

    #[test]
    fn scales_down_below_down_threshold() {
        let t = opps();
        let mut g = InteractiveGovernor::new(InteractiveParams::default());
        // util 0.2 at 1.3 GHz: target = 1.3*0.2/0.7 = 371 MHz → round up to 500 MHz.
        let f = g.on_sample(&sample(&t, 1_300_000, &[0.2]));
        assert_eq!(f, 500_000);
    }

    #[test]
    fn idle_domain_falls_to_minimum() {
        let t = opps();
        let mut g = InteractiveGovernor::new(InteractiveParams::default());
        let f = g.on_sample(&sample(&t, 1_300_000, &[0.0, 0.0]));
        assert_eq!(f, t.min_khz());
    }

    #[test]
    fn busiest_cpu_governs_the_domain() {
        let t = opps();
        let mut g = InteractiveGovernor::new(InteractiveParams::default());
        let steady = g.on_sample(&sample(&t, 800_000, &[0.1, 0.95, 0.0, 0.3]));
        assert!(steady >= 800_000, "one busy CPU must hold/raise the domain");
    }

    #[test]
    fn target_load_low_raises_frequencies() {
        let t = opps();
        let mut hi = InteractiveGovernor::new(InteractiveParams::target_load_low());
        let mut def = InteractiveGovernor::new(InteractiveParams::default());
        // Same downscale decision: lower target load yields a higher floor.
        let f_low_target = hi.on_sample(&sample(&t, 1_300_000, &[0.4]));
        let f_default = def.on_sample(&sample(&t, 1_300_000, &[0.4]));
        assert!(f_low_target >= f_default);
    }

    #[test]
    fn ceiling_caps_the_hispeed_jump_and_targets() {
        let t = opps();
        let mut g = InteractiveGovernor::new(InteractiveParams::default());
        let mut s = sample(&t, 500_000, &[0.95]);
        s.cap_khz = 900_000;
        // Uncapped this would jump to 1.1 GHz (hispeed); capped it lands
        // within the ceiling: hispeed = round_up(0.8 * 900k) = 800 MHz.
        let f = g.on_sample(&s);
        assert_eq!(f, 800_000);
        // Sustained saturation at the capped hispeed never exceeds the cap.
        let mut s2 = sample(&t, 800_000, &[1.0]);
        s2.cap_khz = 900_000;
        assert_eq!(g.on_sample(&s2), 900_000);
    }

    #[test]
    fn idle_quiescent_only_at_the_zero_util_fixed_point() {
        let t = opps();
        let zeros = [0.0, 0.0];
        let g = InteractiveGovernor::new(InteractiveParams::default());
        // The only frequency a zero-util sample holds is the minimum OPP.
        assert!(g.idle_quiescent(&sample(&t, t.min_khz(), &zeros)));
        for idx in 1..9 {
            let cur = t.get(idx).freq_khz;
            let s = sample(&t, cur, &zeros);
            assert!(!g.idle_quiescent(&s), "{cur} must not be quiescent");
            // Mirror contract: quiescent ⇔ on_sample is an identity.
            let decided = g.clone().on_sample(&s);
            assert_ne!(decided, cur);
        }
    }

    #[test]
    fn sampling_variants() {
        assert_eq!(
            InteractiveParams::sampling_60ms().sampling_period,
            SimDuration::from_millis(60)
        );
        assert_eq!(
            InteractiveParams::sampling_100ms().sampling_period,
            SimDuration::from_millis(100)
        );
        assert_eq!(InteractiveParams::target_load_high().target_load, 0.80);
        assert_eq!(InteractiveParams::target_load_low().target_load, 0.60);
    }

    proptest! {
        #[test]
        fn always_returns_a_table_frequency(cur_idx in 0usize..9, util in 0.0f64..1.0) {
            let t = opps();
            let cur = t.get(cur_idx).freq_khz;
            let mut g = InteractiveGovernor::new(InteractiveParams::default());
            let utils = [util];
            let f = g.on_sample(&sample(&t, cur, &utils));
            prop_assert!(t.index_of(f).is_some(), "governor returned off-table {f}");
        }

        #[test]
        fn never_drops_frequency_in_margin_or_up_band(cur_idx in 0usize..9, util in 0.5f64..1.0) {
            let t = opps();
            let cur = t.get(cur_idx).freq_khz;
            let mut g = InteractiveGovernor::new(InteractiveParams::default());
            let utils = [util];
            let f = g.on_sample(&sample(&t, cur, &utils));
            prop_assert!(f >= cur, "util {util} must not reduce {cur} -> {f}");
        }
    }
}

#[cfg(test)]
mod dynamics_tests {
    use super::*;
    use crate::sample::{ClusterSample, CpufreqGovernor};
    use bl_platform::ids::ClusterId;
    use bl_platform::opp::OppTable;
    use proptest::prelude::*;

    /// Simulates the closed loop: a fixed *absolute* demand (cycles per
    /// second a task wants) produces utilization = demand / freq, and the
    /// governor reacts. The loop must reach a fixed point — no limit-cycle
    /// oscillation — and that fixed point must carry the demand.
    fn settle(demand_khz: f64) -> Vec<u32> {
        let opps = OppTable::linear(500_000, 1_300_000, 9, 900, 1_100);
        let mut g = InteractiveGovernor::new(InteractiveParams::default());
        let mut freq = opps.min_khz();
        let mut history = Vec::new();
        for _ in 0..50 {
            let util = (demand_khz / freq as f64).min(1.0);
            let utils = [util];
            freq = g.on_sample(&ClusterSample {
                cluster: ClusterId(0),
                opps: &opps,
                cur_freq_khz: freq,
                cpu_utils: &utils,
                cap_khz: u32::MAX,
            });
            history.push(freq);
        }
        history
    }

    proptest! {
        #[test]
        fn closed_loop_settles_without_oscillation(demand in 50_000.0f64..1_250_000.0) {
            let history = settle(demand);
            // The last 10 samples must be a single frequency (fixed point).
            let tail = &history[history.len() - 10..];
            prop_assert!(
                tail.iter().all(|f| *f == tail[0]),
                "limit cycle at demand {demand}: {tail:?}"
            );
            // And the settled frequency carries the demand below 100% util
            // (unless the demand exceeds the hardware ceiling).
            let settled = tail[0] as f64;
            if demand < 1_300_000.0 {
                prop_assert!(settled >= demand.min(1_300_000.0) * 0.99,
                    "settled {settled} below demand {demand}");
            }
        }

        #[test]
        fn settled_frequency_is_monotone_in_demand(
            d1 in 100_000.0f64..1_200_000.0,
            d2 in 100_000.0f64..1_200_000.0)
        {
            let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
            let f_lo = *settle(lo).last().unwrap();
            let f_hi = *settle(hi).last().unwrap();
            prop_assert!(f_hi >= f_lo, "demand {lo}->{hi} but freq {f_lo}->{f_hi}");
        }
    }
}
