//! Governor selection and construction.

use crate::classic::{
    ConservativeGovernor, ConservativeParams, OndemandGovernor, OndemandParams,
    PerformanceGovernor, PowersaveGovernor, UserspaceGovernor,
};
use crate::interactive::{InteractiveGovernor, InteractiveParams};
use crate::sample::CpufreqGovernor;
use serde::{Deserialize, Serialize};

/// Declarative governor choice, turned into a per-cluster instance with
/// [`GovernorConfig::build`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum GovernorConfig {
    /// The platform's default governor (paper Algorithm 2).
    Interactive(InteractiveParams),
    /// Jump-to-max / walk-down baseline.
    Ondemand(OndemandParams),
    /// One-OPP-step-at-a-time baseline.
    Conservative(ConservativeParams),
    /// Pin at maximum frequency.
    Performance,
    /// Pin at minimum frequency.
    Powersave,
    /// Hold a fixed frequency (kHz, rounded up to an OPP).
    Userspace(u32),
}

impl GovernorConfig {
    /// The platform default: interactive with stock tunables.
    pub fn platform_default() -> Self {
        GovernorConfig::Interactive(InteractiveParams::default_platform())
    }

    /// Builds a fresh governor instance for one cluster.
    pub fn build(&self) -> Box<dyn CpufreqGovernor> {
        match *self {
            GovernorConfig::Interactive(p) => Box::new(InteractiveGovernor::new(p)),
            GovernorConfig::Ondemand(p) => Box::new(OndemandGovernor { params: p }),
            GovernorConfig::Conservative(p) => Box::new(ConservativeGovernor { params: p }),
            GovernorConfig::Performance => Box::new(PerformanceGovernor),
            GovernorConfig::Powersave => Box::new(PowersaveGovernor),
            GovernorConfig::Userspace(khz) => Box::new(UserspaceGovernor { setpoint_khz: khz }),
        }
    }

    /// Short label for reports.
    pub fn label(&self) -> String {
        match self {
            GovernorConfig::Interactive(p) => format!(
                "interactive({}ms,tl={})",
                p.sampling_period.as_millis_f64(),
                p.target_load
            ),
            GovernorConfig::Ondemand(_) => "ondemand".to_string(),
            GovernorConfig::Conservative(_) => "conservative".to_string(),
            GovernorConfig::Performance => "performance".to_string(),
            GovernorConfig::Powersave => "powersave".to_string(),
            GovernorConfig::Userspace(khz) => format!("userspace({khz}kHz)"),
        }
    }
}

impl Default for GovernorConfig {
    fn default() -> Self {
        GovernorConfig::platform_default()
    }
}

/// Serializable runtime state of a governor instance, captured by
/// [`CpufreqGovernor::state_save`] and turned back into a live governor
/// with [`GovernorState::restore`].
///
/// Every shipped governor is currently parameter-only (its decisions
/// depend solely on the sample and its tunables), so each variant carries
/// exactly the construction parameters. The type is distinct from
/// [`GovernorConfig`] on purpose: a future stateful governor (hispeed
/// timers, sample history) extends its variant here without disturbing the
/// declarative config format, and the persisted snapshot format names this
/// enum, not the config.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum GovernorState {
    /// State of an [`InteractiveGovernor`](crate::interactive::InteractiveGovernor).
    Interactive(InteractiveParams),
    /// State of an [`OndemandGovernor`](crate::classic::OndemandGovernor).
    Ondemand(OndemandParams),
    /// State of a [`ConservativeGovernor`](crate::classic::ConservativeGovernor).
    Conservative(ConservativeParams),
    /// State of a [`PerformanceGovernor`](crate::classic::PerformanceGovernor).
    Performance,
    /// State of a [`PowersaveGovernor`](crate::classic::PowersaveGovernor).
    Powersave,
    /// State of a [`UserspaceGovernor`](crate::classic::UserspaceGovernor)
    /// (the set-point in kHz).
    Userspace(u32),
}

impl GovernorState {
    /// Rebuilds a live governor from the saved state. The result behaves
    /// bit-identically to the instance the state was saved from.
    pub fn restore(&self) -> Box<dyn CpufreqGovernor> {
        match *self {
            GovernorState::Interactive(p) => Box::new(InteractiveGovernor::new(p)),
            GovernorState::Ondemand(p) => Box::new(OndemandGovernor { params: p }),
            GovernorState::Conservative(p) => Box::new(ConservativeGovernor { params: p }),
            GovernorState::Performance => Box::new(PerformanceGovernor),
            GovernorState::Powersave => Box::new(PowersaveGovernor),
            GovernorState::Userspace(khz) => Box::new(UserspaceGovernor { setpoint_khz: khz }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_every_variant() {
        let configs = [
            GovernorConfig::platform_default(),
            GovernorConfig::Ondemand(OndemandParams::default()),
            GovernorConfig::Conservative(ConservativeParams::default()),
            GovernorConfig::Performance,
            GovernorConfig::Powersave,
            GovernorConfig::Userspace(1_000_000),
        ];
        for c in configs {
            let g = c.build();
            assert!(!g.name().is_empty());
            assert!(!g.sampling_period().is_zero());
            assert!(!c.label().is_empty());
        }
    }

    #[test]
    fn default_is_interactive() {
        assert_eq!(GovernorConfig::default().build().name(), "interactive");
    }

    #[test]
    fn every_governor_state_saves_and_restores() {
        let configs = [
            GovernorConfig::platform_default(),
            GovernorConfig::Ondemand(OndemandParams::default()),
            GovernorConfig::Conservative(ConservativeParams::default()),
            GovernorConfig::Performance,
            GovernorConfig::Powersave,
            GovernorConfig::Userspace(1_000_000),
        ];
        for c in configs {
            let g = c.build();
            let state = g
                .state_save()
                .unwrap_or_else(|| panic!("{} must be state-saveable", g.name()));
            // Survive a JSON round trip, then restore to the same governor.
            let json = serde_json::to_string(&state).unwrap();
            let back: GovernorState = serde_json::from_str(&json).unwrap();
            assert_eq!(back, state);
            let restored = back.restore();
            assert_eq!(restored.name(), g.name());
            assert_eq!(restored.sampling_period(), g.sampling_period());
            assert_eq!(restored.state_save(), Some(state));
        }
    }
}
