//! Classic Linux cpufreq governors, used as baselines.

use crate::config::GovernorState;
use crate::sample::{ClusterSample, CpufreqGovernor};
use bl_simcore::time::SimDuration;
use serde::{Deserialize, Serialize};

/// `performance`: pin the domain at its maximum OPP. Used by the paper's
/// fixed-frequency architecture experiments (and as an upper bound).
#[derive(Debug, Clone, Copy, Default)]
pub struct PerformanceGovernor;

impl CpufreqGovernor for PerformanceGovernor {
    fn name(&self) -> &'static str {
        "performance"
    }
    fn sampling_period(&self) -> SimDuration {
        SimDuration::from_millis(100) // nothing to react to
    }
    fn on_sample(&mut self, sample: &ClusterSample<'_>) -> u32 {
        sample.effective_max()
    }
    fn idle_quiescent(&self, sample: &ClusterSample<'_>) -> bool {
        // Stateless governor: probing a copy with the caller's all-idle
        // sample computes exactly what a real sample would decide.
        let mut probe = *self;
        probe.on_sample(sample) == sample.cur_freq_khz
    }
    fn box_clone(&self) -> Option<Box<dyn CpufreqGovernor>> {
        Some(Box::new(*self))
    }
    fn state_save(&self) -> Option<GovernorState> {
        Some(GovernorState::Performance)
    }
}

/// `powersave`: pin the domain at its minimum OPP.
#[derive(Debug, Clone, Copy, Default)]
pub struct PowersaveGovernor;

impl CpufreqGovernor for PowersaveGovernor {
    fn name(&self) -> &'static str {
        "powersave"
    }
    fn sampling_period(&self) -> SimDuration {
        SimDuration::from_millis(100)
    }
    fn on_sample(&mut self, sample: &ClusterSample<'_>) -> u32 {
        sample.opps.min_khz()
    }
    fn idle_quiescent(&self, sample: &ClusterSample<'_>) -> bool {
        // Stateless governor: probing a copy with the caller's all-idle
        // sample computes exactly what a real sample would decide.
        let mut probe = *self;
        probe.on_sample(sample) == sample.cur_freq_khz
    }
    fn box_clone(&self) -> Option<Box<dyn CpufreqGovernor>> {
        Some(Box::new(*self))
    }
    fn state_save(&self) -> Option<GovernorState> {
        Some(GovernorState::Powersave)
    }
}

/// `userspace`: hold a fixed set-point (rounded up onto the table). Used to
/// run single-frequency sweeps like the paper's Figures 2, 3 and 6.
#[derive(Debug, Clone, Copy)]
pub struct UserspaceGovernor {
    /// Requested frequency in kHz.
    pub setpoint_khz: u32,
}

impl CpufreqGovernor for UserspaceGovernor {
    fn name(&self) -> &'static str {
        "userspace"
    }
    fn sampling_period(&self) -> SimDuration {
        SimDuration::from_millis(100)
    }
    fn on_sample(&mut self, sample: &ClusterSample<'_>) -> u32 {
        sample.clamp(sample.opps.round_up(self.setpoint_khz).freq_khz)
    }
    fn idle_quiescent(&self, sample: &ClusterSample<'_>) -> bool {
        // Stateless governor: probing a copy with the caller's all-idle
        // sample computes exactly what a real sample would decide.
        let mut probe = *self;
        probe.on_sample(sample) == sample.cur_freq_khz
    }
    fn box_clone(&self) -> Option<Box<dyn CpufreqGovernor>> {
        Some(Box::new(*self))
    }
    fn state_save(&self) -> Option<GovernorState> {
        Some(GovernorState::Userspace(self.setpoint_khz))
    }
}

/// Tunables for the `ondemand` governor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OndemandParams {
    /// Sampling period (default 20 ms, matching the platform tick).
    pub sampling_period: SimDuration,
    /// Utilization that triggers the jump to max (default 0.95).
    pub up_threshold: f64,
    /// Target utilization when scaling down (default 0.80).
    pub down_target: f64,
}

impl Default for OndemandParams {
    fn default() -> Self {
        OndemandParams {
            sampling_period: SimDuration::from_millis(20),
            up_threshold: 0.95,
            down_target: 0.80,
        }
    }
}

/// `ondemand`: jump straight to max on saturation, otherwise scale to keep
/// utilization at `down_target`.
#[derive(Debug, Clone, Copy, Default)]
pub struct OndemandGovernor {
    /// Governor tunables.
    pub params: OndemandParams,
}

impl CpufreqGovernor for OndemandGovernor {
    fn name(&self) -> &'static str {
        "ondemand"
    }
    fn sampling_period(&self) -> SimDuration {
        self.params.sampling_period
    }
    fn on_sample(&mut self, sample: &ClusterSample<'_>) -> u32 {
        let util = sample.max_util();
        if util > self.params.up_threshold {
            return sample.effective_max();
        }
        let target = (sample.cur_freq_khz as f64 * util / self.params.down_target) as u32;
        let next = sample.opps.round_up(target).freq_khz;
        sample.clamp(next.min(sample.cur_freq_khz)) // ondemand only jumps up, walks down
    }
    fn idle_quiescent(&self, sample: &ClusterSample<'_>) -> bool {
        // Stateless governor: probing a copy with the caller's all-idle
        // sample computes exactly what a real sample would decide.
        let mut probe = *self;
        probe.on_sample(sample) == sample.cur_freq_khz
    }
    fn box_clone(&self) -> Option<Box<dyn CpufreqGovernor>> {
        Some(Box::new(*self))
    }
    fn state_save(&self) -> Option<GovernorState> {
        Some(GovernorState::Ondemand(self.params))
    }
}

/// Tunables for the `conservative` governor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConservativeParams {
    /// Sampling period (default 20 ms).
    pub sampling_period: SimDuration,
    /// Step up when utilization exceeds this (default 0.80).
    pub up_threshold: f64,
    /// Step down when utilization falls below this (default 0.20).
    pub down_threshold: f64,
}

impl Default for ConservativeParams {
    fn default() -> Self {
        ConservativeParams {
            sampling_period: SimDuration::from_millis(20),
            up_threshold: 0.80,
            down_threshold: 0.20,
        }
    }
}

/// `conservative`: move one OPP step at a time toward the load.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConservativeGovernor {
    /// Governor tunables.
    pub params: ConservativeParams,
}

impl CpufreqGovernor for ConservativeGovernor {
    fn name(&self) -> &'static str {
        "conservative"
    }
    fn sampling_period(&self) -> SimDuration {
        self.params.sampling_period
    }
    fn on_sample(&mut self, sample: &ClusterSample<'_>) -> u32 {
        let util = sample.max_util();
        let idx = sample
            .opps
            .index_of(sample.cur_freq_khz)
            .expect("current frequency must be an OPP");
        if util > self.params.up_threshold && idx + 1 < sample.opps.len() {
            return sample.clamp(sample.opps.get(idx + 1).freq_khz);
        }
        if util < self.params.down_threshold && idx > 0 {
            return sample.opps.get(idx - 1).freq_khz;
        }
        sample.clamp(sample.cur_freq_khz)
    }
    fn idle_quiescent(&self, sample: &ClusterSample<'_>) -> bool {
        // Stateless governor: probing a copy with the caller's all-idle
        // sample computes exactly what a real sample would decide.
        let mut probe = *self;
        probe.on_sample(sample) == sample.cur_freq_khz
    }
    fn box_clone(&self) -> Option<Box<dyn CpufreqGovernor>> {
        Some(Box::new(*self))
    }
    fn state_save(&self) -> Option<GovernorState> {
        Some(GovernorState::Conservative(self.params))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bl_platform::ids::ClusterId;
    use bl_platform::opp::OppTable;

    fn opps() -> OppTable {
        OppTable::linear(500_000, 1_300_000, 9, 900, 1_100)
    }

    fn sample<'a>(opps: &'a OppTable, cur: u32, utils: &'a [f64]) -> ClusterSample<'a> {
        ClusterSample {
            cluster: ClusterId(0),
            opps,
            cur_freq_khz: cur,
            cpu_utils: utils,
            cap_khz: u32::MAX,
        }
    }

    fn capped<'a>(opps: &'a OppTable, cur: u32, utils: &'a [f64], cap: u32) -> ClusterSample<'a> {
        ClusterSample {
            cap_khz: cap,
            ..sample(opps, cur, utils)
        }
    }

    #[test]
    fn performance_pins_max() {
        let t = opps();
        assert_eq!(
            PerformanceGovernor.on_sample(&sample(&t, 500_000, &[0.0])),
            1_300_000
        );
        assert_eq!(PerformanceGovernor.name(), "performance");
    }

    #[test]
    fn powersave_pins_min() {
        let t = opps();
        assert_eq!(
            PowersaveGovernor.on_sample(&sample(&t, 1_300_000, &[1.0])),
            500_000
        );
    }

    #[test]
    fn userspace_holds_setpoint() {
        let t = opps();
        let mut g = UserspaceGovernor {
            setpoint_khz: 850_000,
        };
        assert_eq!(g.on_sample(&sample(&t, 500_000, &[1.0])), 900_000); // rounds up
    }

    #[test]
    fn ondemand_jumps_to_max_on_saturation() {
        let t = opps();
        let mut g = OndemandGovernor::default();
        assert_eq!(g.on_sample(&sample(&t, 600_000, &[0.99])), 1_300_000);
    }

    #[test]
    fn ondemand_walks_down_with_low_load() {
        let t = opps();
        let mut g = OndemandGovernor::default();
        let f = g.on_sample(&sample(&t, 1_300_000, &[0.3]));
        assert!(f < 1_300_000);
        assert!(t.index_of(f).is_some());
    }

    #[test]
    fn ondemand_never_partially_raises() {
        let t = opps();
        let mut g = OndemandGovernor::default();
        // util 0.9 < up threshold: must not raise above current.
        let f = g.on_sample(&sample(&t, 600_000, &[0.9]));
        assert!(f <= 600_000);
    }

    #[test]
    fn conservative_steps_one_opp() {
        let t = opps();
        let mut g = ConservativeGovernor::default();
        assert_eq!(g.on_sample(&sample(&t, 600_000, &[0.9])), 700_000);
        assert_eq!(g.on_sample(&sample(&t, 600_000, &[0.1])), 500_000);
        assert_eq!(g.on_sample(&sample(&t, 600_000, &[0.5])), 600_000);
    }

    #[test]
    fn governors_respect_a_thermal_ceiling() {
        let t = opps();
        // performance pegs at the ceiling, not the table max.
        assert_eq!(
            PerformanceGovernor.on_sample(&capped(&t, 500_000, &[0.0], 900_000)),
            900_000
        );
        // userspace setpoints above the cap are clamped.
        let mut u = UserspaceGovernor {
            setpoint_khz: 1_300_000,
        };
        assert_eq!(
            u.on_sample(&capped(&t, 500_000, &[1.0], 1_000_000)),
            1_000_000
        );
        // ondemand's saturation jump lands on the ceiling.
        let mut o = OndemandGovernor::default();
        assert_eq!(o.on_sample(&capped(&t, 600_000, &[0.99], 800_000)), 800_000);
        // conservative steps never climb past the ceiling, even when the
        // current frequency is already above a freshly lowered cap.
        let mut c = ConservativeGovernor::default();
        assert_eq!(c.on_sample(&capped(&t, 700_000, &[0.9], 700_000)), 700_000);
    }

    #[test]
    fn idle_quiescent_mirrors_a_zero_util_sample() {
        let t = opps();
        let zeros = [0.0, 0.0, 0.0, 0.0];
        let mut govs: Vec<Box<dyn CpufreqGovernor>> = vec![
            Box::new(PerformanceGovernor),
            Box::new(PowersaveGovernor),
            Box::new(UserspaceGovernor {
                setpoint_khz: 850_000,
            }),
            Box::new(OndemandGovernor::default()),
            Box::new(ConservativeGovernor::default()),
        ];
        for g in &mut govs {
            for idx in 0..t.len() {
                for cap in [u32::MAX, 1_050_000] {
                    let s = capped(&t, t.get(idx).freq_khz, &zeros, cap);
                    let quiescent = g.idle_quiescent(&s);
                    let decided = g.on_sample(&s);
                    assert_eq!(
                        quiescent,
                        decided == s.cur_freq_khz,
                        "{} at {} cap {}: quiescent={} but on_sample -> {}",
                        g.name(),
                        s.cur_freq_khz,
                        cap,
                        quiescent,
                        decided
                    );
                }
            }
        }
        // Spot-check the expected fixed points.
        assert!(PowersaveGovernor.idle_quiescent(&sample(&t, 500_000, &zeros)));
        assert!(!PowersaveGovernor.idle_quiescent(&sample(&t, 600_000, &zeros)));
        assert!(PerformanceGovernor.idle_quiescent(&sample(&t, 1_300_000, &zeros)));
        assert!(!PerformanceGovernor.idle_quiescent(&sample(&t, 500_000, &zeros)));
        assert!(OndemandGovernor::default().idle_quiescent(&sample(&t, 500_000, &zeros)));
        assert!(!ConservativeGovernor::default().idle_quiescent(&sample(&t, 600_000, &zeros)));
    }

    #[test]
    fn conservative_saturates_at_table_edges() {
        let t = opps();
        let mut g = ConservativeGovernor::default();
        assert_eq!(g.on_sample(&sample(&t, 1_300_000, &[1.0])), 1_300_000);
        assert_eq!(g.on_sample(&sample(&t, 500_000, &[0.0])), 500_000);
    }
}
