//! Frequency residency over active periods (paper Figures 9 and 10).
//!
//! For each cluster, accumulates how much *active* time (≥1 core in the
//! cluster busy during the sampling window) was spent at each OPP. Idle
//! windows are excluded, matching the paper: "the distribution only
//! includes active periods for each core".

use bl_platform::ids::ClusterId;
use bl_platform::topology::Topology;
use bl_simcore::stats::WeightedHistogram;
use bl_simcore::time::SimDuration;

/// Per-cluster active-time-at-OPP accumulator.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FreqResidency {
    /// One weighted histogram per cluster, bucket per OPP index.
    per_cluster: Vec<WeightedHistogram>,
    freqs: Vec<Vec<u32>>,
}

impl FreqResidency {
    /// Creates residency tracking for every cluster of `topo`.
    pub fn new(topo: &Topology) -> Self {
        let per_cluster = topo
            .clusters()
            .iter()
            .map(|c| WeightedHistogram::new(c.core.opps.len()))
            .collect();
        let freqs = topo
            .clusters()
            .iter()
            .map(|c| c.core.opps.iter().map(|o| o.freq_khz).collect())
            .collect();
        FreqResidency { per_cluster, freqs }
    }

    /// Records that `cluster` spent `window` at `freq_khz` with at least one
    /// busy core. Call only for active windows.
    ///
    /// # Panics
    ///
    /// Panics if `freq_khz` is not an OPP of the cluster.
    pub fn record_active(&mut self, cluster: ClusterId, freq_khz: u32, window: SimDuration) {
        let idx = self.freqs[cluster.0]
            .iter()
            .position(|f| *f == freq_khz)
            .unwrap_or_else(|| panic!("{freq_khz} kHz not an OPP of {cluster}"));
        self.per_cluster[cluster.0].record(idx, window.as_secs_f64());
    }

    /// The OPP frequencies (kHz) of a cluster, ascending — the bucket
    /// labels for [`FreqResidency::shares`].
    pub fn freqs_khz(&self, cluster: ClusterId) -> &[u32] {
        &self.freqs[cluster.0]
    }

    /// Fraction of active time per OPP (ascending frequency); all zeros if
    /// the cluster never went active.
    pub fn shares(&self, cluster: ClusterId) -> Vec<f64> {
        self.per_cluster[cluster.0].shares()
    }

    /// Total active seconds recorded for a cluster.
    pub fn active_secs(&self, cluster: ClusterId) -> f64 {
        self.per_cluster[cluster.0].total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bl_platform::exynos::{exynos5422, BIG_CLUSTER, LITTLE_CLUSTER};

    #[test]
    fn shares_reflect_recorded_time() {
        let topo = exynos5422().topology;
        let mut r = FreqResidency::new(&topo);
        r.record_active(LITTLE_CLUSTER, 500_000, SimDuration::from_millis(30));
        r.record_active(LITTLE_CLUSTER, 1_300_000, SimDuration::from_millis(10));
        let shares = r.shares(LITTLE_CLUSTER);
        assert!((shares[0] - 0.75).abs() < 1e-9);
        assert!((shares[8] - 0.25).abs() < 1e-9);
        assert!((r.active_secs(LITTLE_CLUSTER) - 0.040).abs() < 1e-12);
    }

    #[test]
    fn clusters_are_independent() {
        let topo = exynos5422().topology;
        let mut r = FreqResidency::new(&topo);
        r.record_active(BIG_CLUSTER, 1_900_000, SimDuration::from_millis(10));
        assert_eq!(r.shares(LITTLE_CLUSTER), vec![0.0; 9]);
        let big = r.shares(BIG_CLUSTER);
        assert!((big[11] - 1.0).abs() < 1e-9);
        assert_eq!(r.freqs_khz(BIG_CLUSTER).len(), 12);
    }

    #[test]
    #[should_panic(expected = "not an OPP")]
    fn off_table_frequency_panics() {
        let topo = exynos5422().topology;
        let mut r = FreqResidency::new(&topo);
        r.record_active(LITTLE_CLUSTER, 123, SimDuration::from_millis(1));
    }
}
