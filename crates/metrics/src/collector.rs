//! The 10 ms sampling harness feeding all per-run metrics.
//!
//! Mirrors the paper's methodology: "the CPU states are checked at every
//! 10ms ... presenting only how many cores have a non-zero utilization
//! during each sampling interval" (§V.B), and "we measure the utilization
//! at every 10ms" for the Table V decomposition (§VI.B).

use crate::efficiency::{EfficiencyBreakdown, UtilClass};
use crate::frames::{FpsStats, FrameRecorder};
use crate::residency::FreqResidency;
use crate::tlp::{CoreTypeMatrix, TlpStats};
use bl_kernel::accounting::{BusyWindow, CpuAccounting};
use bl_kernel::task::AppSignal;
use bl_platform::ids::{ClusterId, CoreKind};
use bl_platform::state::PlatformState;
use bl_platform::topology::Topology;
use bl_simcore::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Default sampling period used by the paper.
pub const SAMPLE_PERIOD: SimDuration = SimDuration::from_millis(10);

/// Collects every per-run metric from periodic samples and app signals.
///
/// `Clone` produces an independent deep copy — the measurement half of a
/// simulation snapshot.
#[derive(Debug, Clone)]
pub struct MetricsCollector {
    topo: Topology,
    busy_window: BusyWindow,
    matrix: CoreTypeMatrix,
    residency: FreqResidency,
    efficiency: EfficiencyBreakdown,
    frames: FrameRecorder,
    script_done_at: Option<SimTime>,
    action_times: Vec<SimTime>,
    start: SimTime,
    last_sample: SimTime,
    /// Reused by `sample` so the 10 ms hot path never allocates.
    cluster_active: Vec<bool>,
}

impl MetricsCollector {
    /// Creates a collector; `acct` must be the kernel's accounting at
    /// `start`.
    pub fn new(topo: &Topology, acct: &CpuAccounting, start: SimTime) -> Self {
        let n_little = topo.cpus_of_kind(CoreKind::Little).count();
        let n_big = topo.cpus_of_kind(CoreKind::Big).count();
        MetricsCollector {
            topo: topo.clone(),
            busy_window: BusyWindow::open(acct, start),
            matrix: CoreTypeMatrix::new(n_little, n_big),
            residency: FreqResidency::new(topo),
            efficiency: EfficiencyBreakdown::new(),
            frames: FrameRecorder::new(),
            script_done_at: None,
            action_times: Vec::new(),
            start,
            last_sample: start,
            cluster_active: vec![false; topo.n_clusters()],
        }
    }

    /// Takes one sample at `now`, closing the window since the previous
    /// sample.
    pub fn sample(&mut self, now: SimTime, acct: &CpuAccounting, state: &PlatformState) {
        let window = now.duration_since(self.last_sample);
        if window.is_zero() {
            return;
        }
        let mut active_little = 0usize;
        let mut active_big = 0usize;
        let mut cluster_active = std::mem::take(&mut self.cluster_active);
        cluster_active.fill(false);

        for cpu in self.topo.cpus() {
            let busy = self.busy_window.peek_busy(acct, cpu);
            let util = self.busy_window.take_fraction(acct, cpu, now);
            if busy.is_zero() {
                continue;
            }
            match self.topo.kind_of(cpu) {
                CoreKind::Little => active_little += 1,
                CoreKind::Big => active_big += 1,
            }
            let cluster = self.topo.cluster_of(cpu);
            cluster_active[cluster.0] = true;

            // Table V classification for this active core-sample.
            let opps = &self.topo.cluster(cluster).core.opps;
            let freq = state.cluster_freq_khz(cluster);
            self.efficiency.record(UtilClass::classify(
                util,
                self.topo.kind_of(cpu),
                freq == opps.min_khz(),
                freq == opps.max_khz(),
            ));
        }

        self.matrix.record(active_little, active_big);
        for (ci, active) in cluster_active.iter().enumerate() {
            if *active {
                let cluster = ClusterId(ci);
                self.residency
                    .record_active(cluster, state.cluster_freq_khz(cluster), window);
            }
        }
        self.cluster_active = cluster_active;
        self.last_sample = now;
    }

    /// True when no CPU has accrued busy time since the last sample — the
    /// precondition for [`MetricsCollector::skip_idle_samples`]: each
    /// elided sample would have been a pure idle sample.
    pub fn window_is_idle(&self, acct: &CpuAccounting) -> bool {
        self.topo
            .cpus()
            .all(|c| self.busy_window.peek_busy(acct, c).is_zero())
    }

    /// Books `samples` elided all-idle sample points ending at `last`, as
    /// the idle skip-ahead path does in one call instead of firing the
    /// sampler repeatedly over a gap where every CPU is provably idle.
    ///
    /// Equivalent to calling [`MetricsCollector::sample`] at each elided
    /// point: every per-CPU busy delta would be zero, so each call would
    /// record an idle sample and re-open every window — exactly
    /// `record_idle(samples)` plus one `reset_all` at the final point. The
    /// bookkeeping is integer arithmetic, so the equivalence is exact.
    pub fn skip_idle_samples(&mut self, samples: u64, last: SimTime, acct: &CpuAccounting) {
        if samples == 0 {
            return;
        }
        debug_assert!(
            self.topo
                .cpus()
                .all(|c| self.busy_window.peek_busy(acct, c).is_zero()),
            "skip_idle_samples: a CPU accrued busy time during the skipped gap"
        );
        self.matrix.record_idle(samples);
        self.busy_window.reset_all(acct, last);
        self.last_sample = last;
    }

    /// Feeds an application signal (frames, script completion).
    pub fn on_signal(&mut self, at: SimTime, signal: AppSignal) {
        match signal {
            AppSignal::Frame { frame_time } => self.frames.record(at, frame_time),
            AppSignal::ScriptDone => self.script_done_at = Some(at),
            AppSignal::ActionDone => self.action_times.push(at),
            AppSignal::Marker(_) => {}
        }
    }

    /// Table III row for this run.
    pub fn tlp_stats(&self) -> TlpStats {
        self.matrix.tlp_stats()
    }

    /// Table IV matrix for this run.
    pub fn matrix(&self) -> &CoreTypeMatrix {
        &self.matrix
    }

    /// Figures 9/10 residency shares for a cluster (ascending OPP order).
    pub fn residency(&self) -> &FreqResidency {
        &self.residency
    }

    /// Table V decomposition for this run.
    pub fn efficiency(&self) -> &EfficiencyBreakdown {
        &self.efficiency
    }

    /// FPS statistics up to `end` (None for latency-only runs).
    pub fn fps(&self, end: SimTime) -> Option<FpsStats> {
        self.frames.stats(end.duration_since(self.start))
    }

    /// Script completion latency, if the script finished.
    pub fn latency(&self) -> Option<SimDuration> {
        self.script_done_at.map(|t| t.duration_since(self.start))
    }

    /// Times at which individual scripted actions completed.
    pub fn action_times(&self) -> &[SimTime] {
        &self.action_times
    }

    /// Serializes the collector's dynamic state. The topology is static
    /// per run and is rebuilt from the platform on restore.
    pub fn state_save(&self) -> MetricsSaved {
        MetricsSaved {
            busy_window: self.busy_window.clone(),
            matrix: self.matrix.clone(),
            residency: self.residency.clone(),
            efficiency: self.efficiency.clone(),
            frames: self.frames.clone(),
            script_done_at: self.script_done_at,
            action_times: self.action_times.clone(),
            start: self.start,
            last_sample: self.last_sample,
        }
    }

    /// Rebuilds a collector from [`MetricsSaved`] against `topo` — the same
    /// topology the saved collector ran on.
    pub fn state_restore(topo: &Topology, saved: &MetricsSaved) -> MetricsCollector {
        MetricsCollector {
            topo: topo.clone(),
            busy_window: saved.busy_window.clone(),
            matrix: saved.matrix.clone(),
            residency: saved.residency.clone(),
            efficiency: saved.efficiency.clone(),
            frames: saved.frames.clone(),
            script_done_at: saved.script_done_at,
            action_times: saved.action_times.clone(),
            start: saved.start,
            last_sample: saved.last_sample,
            cluster_active: vec![false; topo.n_clusters()],
        }
    }
}

/// Serialized dynamic state of a [`MetricsCollector`] (everything except
/// the static topology and the allocation-free sampling scratch).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSaved {
    busy_window: BusyWindow,
    matrix: CoreTypeMatrix,
    residency: FreqResidency,
    efficiency: EfficiencyBreakdown,
    frames: FrameRecorder,
    script_done_at: Option<SimTime>,
    action_times: Vec<SimTime>,
    start: SimTime,
    last_sample: SimTime,
}

#[cfg(test)]
mod tests {
    use super::*;
    use bl_platform::exynos::{exynos5422, LITTLE_CLUSTER};
    use bl_platform::ids::CpuId;

    fn setup() -> (Topology, CpuAccounting, PlatformState, MetricsCollector) {
        let p = exynos5422();
        let acct = CpuAccounting::new(p.topology.n_cpus());
        let state = PlatformState::new(&p.topology);
        let c = MetricsCollector::new(&p.topology, &acct, SimTime::ZERO);
        (p.topology, acct, state, c)
    }

    #[test]
    fn idle_sample_counts_as_idle() {
        let (_t, acct, state, mut c) = setup();
        c.sample(SimTime::from_millis(10), &acct, &state);
        let s = c.tlp_stats();
        assert_eq!(s.idle_pct, 100.0);
        assert_eq!(c.efficiency().total_samples(), 0);
    }

    #[test]
    fn busy_little_core_is_sampled() {
        let (_t, mut acct, state, mut c) = setup();
        acct.add_busy(CpuId(0), SimDuration::from_millis(4));
        c.sample(SimTime::from_millis(10), &acct, &state);
        let s = c.tlp_stats();
        assert_eq!(s.idle_pct, 0.0);
        assert_eq!(s.little_pct, 100.0);
        assert!((s.tlp - 1.0).abs() < 1e-9);
        // 40% util on a little core at min freq -> Min class.
        assert!((c.efficiency().pct(UtilClass::Min) - 100.0).abs() < 1e-9);
        // Little cluster was active for the window at 500 MHz.
        assert!((c.residency().shares(LITTLE_CLUSTER)[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn big_usage_flips_big_pct() {
        let (_t, mut acct, state, mut c) = setup();
        acct.add_busy(CpuId(5), SimDuration::from_millis(10));
        acct.add_busy(CpuId(0), SimDuration::from_millis(10));
        c.sample(SimTime::from_millis(10), &acct, &state);
        let s = c.tlp_stats();
        assert_eq!(s.big_pct, 100.0);
        assert!((s.tlp - 2.0).abs() < 1e-9);
        assert_eq!(c.matrix().cell_pct(1, 1), 100.0);
    }

    #[test]
    fn signals_feed_fps_and_latency() {
        let (_t, acct, state, mut c) = setup();
        c.on_signal(
            SimTime::from_millis(16),
            AppSignal::Frame {
                frame_time: SimDuration::from_millis(8),
            },
        );
        c.on_signal(
            SimTime::from_millis(33),
            AppSignal::Frame {
                frame_time: SimDuration::from_millis(9),
            },
        );
        c.on_signal(SimTime::from_millis(500), AppSignal::ScriptDone);
        c.on_signal(SimTime::from_millis(100), AppSignal::ActionDone);
        c.sample(SimTime::from_millis(10), &acct, &state);
        assert_eq!(c.latency(), Some(SimDuration::from_millis(500)));
        assert_eq!(c.action_times().len(), 1);
        let fps = c.fps(SimTime::from_secs(1)).unwrap();
        assert_eq!(fps.frames, 2);
    }

    #[test]
    fn skip_idle_samples_matches_repeated_idle_sampling() {
        let (_t, acct, state, mut ticked) = setup();
        let (_t2, _a2, _s2, mut skipped) = setup();
        for i in 1..=12u64 {
            ticked.sample(SimTime::from_millis(10 * i), &acct, &state);
        }
        skipped.skip_idle_samples(12, SimTime::from_millis(120), &acct);
        assert_eq!(ticked.matrix(), skipped.matrix());
        assert_eq!(ticked.tlp_stats().idle_pct, 100.0);
        assert_eq!(ticked.last_sample, skipped.last_sample);
        // A later busy sample sees identical windows in both collectors.
        let mut acct2 = acct.clone();
        acct2.add_busy(CpuId(0), SimDuration::from_millis(5));
        ticked.sample(SimTime::from_millis(130), &acct2, &state);
        skipped.sample(SimTime::from_millis(130), &acct2, &state);
        assert_eq!(ticked.matrix(), skipped.matrix());
        assert_eq!(ticked.efficiency(), skipped.efficiency());
    }

    #[test]
    fn zero_length_sample_is_ignored() {
        let (_t, acct, state, mut c) = setup();
        c.sample(SimTime::ZERO, &acct, &state);
        assert_eq!(c.matrix().total_samples(), 0);
    }
}
