//! Time-series tracing: per-sample snapshots of the system state, suitable
//! for plotting the paper's figures or debugging scheduler behavior.

use bl_platform::ids::CoreKind;
use bl_simcore::time::SimTime;
use serde::{Deserialize, Serialize};

/// One snapshot row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceRow {
    /// Sample time.
    pub t: SimTime,
    /// Little-cluster frequency, kHz.
    pub little_khz: u32,
    /// Big-cluster frequency, kHz.
    pub big_khz: u32,
    /// Active little cores in the sample window.
    pub active_little: u32,
    /// Active big cores in the sample window.
    pub active_big: u32,
    /// Instantaneous full-system power, mW.
    pub power_mw: f64,
    /// Cumulative HMP up-migrations.
    pub migrations_up: u64,
    /// Cumulative HMP down-migrations.
    pub migrations_down: u64,
}

/// A recorded run trace.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    rows: Vec<TraceRow>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends a snapshot.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if time goes backwards.
    pub fn push(&mut self, row: TraceRow) {
        debug_assert!(
            self.rows.last().is_none_or(|last| last.t <= row.t),
            "trace time went backwards"
        );
        self.rows.push(row);
    }

    /// All rows in time order.
    pub fn rows(&self) -> &[TraceRow] {
        &self.rows
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Frequency values over time for one cluster kind.
    pub fn freq_series(&self, kind: CoreKind) -> impl Iterator<Item = (SimTime, u32)> + '_ {
        self.rows.iter().map(move |r| {
            (
                r.t,
                match kind {
                    CoreKind::Little => r.little_khz,
                    CoreKind::Big => r.big_khz,
                },
            )
        })
    }

    /// Streams the trace as CSV (header row first) into `w`, row by row —
    /// dumping a big trace to a file never materializes a second copy in
    /// memory.
    ///
    /// # Errors
    ///
    /// Propagates any error from the underlying writer.
    pub fn write_csv(&self, w: &mut impl std::io::Write) -> std::io::Result<()> {
        w.write_all(
            b"t_ms,little_khz,big_khz,active_little,active_big,power_mw,mig_up,mig_down\n",
        )?;
        for r in &self.rows {
            writeln!(
                w,
                "{:.3},{},{},{},{},{:.1},{},{}",
                r.t.as_millis_f64(),
                r.little_khz,
                r.big_khz,
                r.active_little,
                r.active_big,
                r.power_mw,
                r.migrations_up,
                r.migrations_down,
            )?;
        }
        Ok(())
    }

    /// Renders the trace as CSV with a header row. Thin wrapper over
    /// [`Trace::write_csv`]; prefer that for large traces.
    pub fn to_csv(&self) -> String {
        let mut out = Vec::new();
        self.write_csv(&mut out)
            .expect("writing to a Vec cannot fail");
        String::from_utf8(out).expect("CSV rendering is ASCII")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(ms: u64, power: f64) -> TraceRow {
        TraceRow {
            t: SimTime::from_millis(ms),
            little_khz: 500_000,
            big_khz: 800_000,
            active_little: 1,
            active_big: 0,
            power_mw: power,
            migrations_up: 0,
            migrations_down: 0,
        }
    }

    #[test]
    fn push_and_read() {
        let mut t = Trace::new();
        assert!(t.is_empty());
        t.push(row(10, 500.0));
        t.push(row(20, 600.0));
        assert_eq!(t.len(), 2);
        assert_eq!(t.rows()[1].power_mw, 600.0);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut t = Trace::new();
        t.push(row(10, 500.0));
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("t_ms,"));
        assert!(lines[1].starts_with("10.000,500000,800000,1,0,500.0"));
    }

    #[test]
    fn write_csv_streams_the_same_bytes() {
        let mut t = Trace::new();
        t.push(row(10, 500.0));
        t.push(row(20, 612.5));
        let mut streamed = Vec::new();
        t.write_csv(&mut streamed).unwrap();
        assert_eq!(String::from_utf8(streamed).unwrap(), t.to_csv());
    }

    #[test]
    fn freq_series_selects_cluster() {
        let mut t = Trace::new();
        t.push(row(10, 500.0));
        let little: Vec<_> = t.freq_series(CoreKind::Little).collect();
        assert_eq!(little[0].1, 500_000);
        let big: Vec<_> = t.freq_series(CoreKind::Big).collect();
        assert_eq!(big[0].1, 800_000);
    }

    #[test]
    fn json_round_trip() {
        let mut t = Trace::new();
        t.push(row(5, 432.1));
        let s = serde_json::to_string(&t).unwrap();
        let back: Trace = serde_json::from_str(&s).unwrap();
        assert_eq!(t, back);
    }
}
