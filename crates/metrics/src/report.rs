//! Plain-text table rendering for the `repro` binary and EXPERIMENTS.md.

/// A simple column-aligned text table.
///
/// ```
/// use bl_metrics::report::TextTable;
/// let mut t = TextTable::new(vec!["App".into(), "TLP".into()]);
/// t.row(vec!["PDF Reader".into(), "2.06".into()]);
/// let s = t.render();
/// assert!(s.contains("PDF Reader"));
/// assert!(s.contains("TLP"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    title: Option<String>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<String>) -> Self {
        assert!(!headers.is_empty(), "table needs at least one column");
        TextTable {
            headers,
            rows: Vec::new(),
            title: None,
        }
    }

    /// Sets a title printed above the table.
    pub fn with_title(mut self, title: impl Into<String>) -> Self {
        self.title = Some(title.into());
        self
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        if let Some(t) = &self.title {
            out.push_str(t);
            out.push('\n');
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[i];
                // Right-align numeric-looking cells, left-align text.
                let numeric = cell
                    .chars()
                    .all(|ch| ch.is_ascii_digit() || ".-+%x".contains(ch));
                if numeric && !cell.is_empty() {
                    line.push_str(&" ".repeat(widths[i] - cell.len()));
                    line.push_str(cell);
                } else {
                    line.push_str(cell);
                    line.push_str(&" ".repeat(widths[i] - cell.len()));
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with `prec` decimals.
pub fn fnum(x: f64, prec: usize) -> String {
    format!("{x:.prec$}")
}

/// Formats a percentage with two decimals.
pub fn pct(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["Name".into(), "Value".into()]).with_title("T");
        t.row(vec!["a".into(), "1.5".into()]);
        t.row(vec!["longer".into(), "10.25".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "T");
        assert!(lines[1].starts_with("Name"));
        assert!(lines[2].starts_with("---"));
        assert_eq!(t.n_rows(), 2);
        // Numeric column right-aligned: "1.5" ends at same column as "10.25".
        let a = lines[3];
        let b = lines[4];
        assert_eq!(a.len(), b.len());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = TextTable::new(vec!["A".into()]);
        t.row(vec!["x".into(), "y".into()]);
    }

    #[test]
    fn helpers() {
        assert_eq!(fnum(1.23456, 2), "1.23");
        assert_eq!(pct(99.999), "100.00");
    }
}
