//! Efficiency decomposition of scheduler/governor settings (paper Table V).
//!
//! Every 10 ms, each *active* core-sample is classified by how well the
//! chosen core type and frequency matched the load:
//!
//! * **Full** — a big core at maximum frequency, still ≥99% utilized: the
//!   load exceeds the platform's maximum capacity.
//! * **>95%** — utilization above 95% (under-provisioned setting).
//! * **70–95%** — the intended operating band (target load + margin).
//! * **50–70%** — over-provisioned.
//! * **<50%** — heavily over-provisioned (wasted capacity).
//! * **Min** — utilization below 50% but the core is already a little core
//!   at its minimum frequency: the hardware cannot scale lower (the paper's
//!   motivation for a hypothetical "tiny" core).

use bl_platform::ids::CoreKind;
use serde::{Deserialize, Serialize};

/// Classification of one active core-sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UtilClass {
    /// Little core at minimum frequency with <50% utilization.
    Min,
    /// Utilization below 50% (scalable).
    Under50,
    /// Utilization in [50%, 70%).
    From50To70,
    /// Utilization in [70%, 95%].
    From70To95,
    /// Utilization above 95% (but capacity remains).
    Over95,
    /// Big core at maximum frequency, ≥99% utilized.
    Full,
}

impl UtilClass {
    /// All classes in the paper's column order.
    pub const ALL: [UtilClass; 6] = [
        UtilClass::Min,
        UtilClass::Under50,
        UtilClass::From50To70,
        UtilClass::From70To95,
        UtilClass::Over95,
        UtilClass::Full,
    ];

    /// Paper column header.
    pub fn label(&self) -> &'static str {
        match self {
            UtilClass::Min => "Min",
            UtilClass::Under50 => "<50%",
            UtilClass::From50To70 => "<70%",
            UtilClass::From70To95 => "70-95%",
            UtilClass::Over95 => ">95%",
            UtilClass::Full => "Full",
        }
    }

    /// Classifies one active core-sample.
    pub fn classify(util: f64, kind: CoreKind, at_min_freq: bool, at_max_freq: bool) -> UtilClass {
        if kind == CoreKind::Big && at_max_freq && util >= 0.99 {
            return UtilClass::Full;
        }
        if util > 0.95 {
            return UtilClass::Over95;
        }
        if util >= 0.70 {
            return UtilClass::From70To95;
        }
        if util >= 0.50 {
            return UtilClass::From50To70;
        }
        if kind == CoreKind::Little && at_min_freq {
            return UtilClass::Min;
        }
        UtilClass::Under50
    }
}

/// Accumulated Table-V row: percentage of active core-samples per class.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EfficiencyBreakdown {
    counts: [u64; 6],
    total: u64,
}

impl EfficiencyBreakdown {
    /// Creates an empty breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one classified sample.
    pub fn record(&mut self, class: UtilClass) {
        let idx = UtilClass::ALL.iter().position(|c| *c == class).unwrap();
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Percentage of samples in `class`.
    pub fn pct(&self, class: UtilClass) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let idx = UtilClass::ALL.iter().position(|c| *c == class).unwrap();
        self.counts[idx] as f64 / self.total as f64 * 100.0
    }

    /// All percentages in the paper's column order.
    pub fn percentages(&self) -> [f64; 6] {
        let mut out = [0.0; 6];
        for (i, c) in UtilClass::ALL.iter().enumerate() {
            out[i] = self.pct(*c);
        }
        out
    }

    /// Number of samples recorded.
    pub fn total_samples(&self) -> u64 {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn classification_rules() {
        use UtilClass::*;
        // Big core maxed out and saturated -> Full.
        assert_eq!(UtilClass::classify(1.0, CoreKind::Big, false, true), Full);
        // Big at max but not saturated -> by utilization.
        assert_eq!(
            UtilClass::classify(0.97, CoreKind::Big, false, true),
            Over95
        );
        // Little at min with low load -> Min (can't scale lower).
        assert_eq!(UtilClass::classify(0.3, CoreKind::Little, true, false), Min);
        // Little at higher OPP with low load -> Under50 (could scale down).
        assert_eq!(
            UtilClass::classify(0.3, CoreKind::Little, false, false),
            Under50
        );
        // Big core idle-ish is Under50, never Min.
        assert_eq!(
            UtilClass::classify(0.1, CoreKind::Big, true, false),
            Under50
        );
        assert_eq!(
            UtilClass::classify(0.6, CoreKind::Little, false, false),
            From50To70
        );
        assert_eq!(
            UtilClass::classify(0.8, CoreKind::Big, false, false),
            From70To95
        );
        assert_eq!(
            UtilClass::classify(0.96, CoreKind::Little, true, true),
            Over95
        );
    }

    #[test]
    fn breakdown_percentages() {
        let mut b = EfficiencyBreakdown::new();
        b.record(UtilClass::Min);
        b.record(UtilClass::Min);
        b.record(UtilClass::Under50);
        b.record(UtilClass::Full);
        assert!((b.pct(UtilClass::Min) - 50.0).abs() < 1e-9);
        assert!((b.pct(UtilClass::Under50) - 25.0).abs() < 1e-9);
        assert!((b.pct(UtilClass::Full) - 25.0).abs() < 1e-9);
        assert_eq!(b.pct(UtilClass::Over95), 0.0);
        assert_eq!(b.total_samples(), 4);
    }

    #[test]
    fn empty_breakdown_is_zero() {
        let b = EfficiencyBreakdown::new();
        assert_eq!(b.percentages(), [0.0; 6]);
    }

    proptest! {
        #[test]
        fn percentages_sum_to_hundred(classes in proptest::collection::vec(0usize..6, 1..100)) {
            let mut b = EfficiencyBreakdown::new();
            for c in classes {
                b.record(UtilClass::ALL[c]);
            }
            let sum: f64 = b.percentages().iter().sum();
            prop_assert!((sum - 100.0).abs() < 1e-6);
        }

        #[test]
        fn classify_is_total(util in 0.0f64..1.0, big in proptest::bool::ANY,
                             at_min in proptest::bool::ANY, at_max in proptest::bool::ANY) {
            let kind = if big { CoreKind::Big } else { CoreKind::Little };
            // Must never panic and always produce one of the six classes.
            let c = UtilClass::classify(util, kind, at_min, at_max);
            prop_assert!(UtilClass::ALL.contains(&c));
        }
    }
}
