//! FPS statistics from frame signals (paper Figures 5 and 13).
//!
//! The paper reports both the *average* FPS and the *minimum* FPS — the
//! worst 1-second window — because "the worst FPS can be affected by core
//! types ... although such occasional slowdowns do not change the average
//! FPS results significantly" (§III.A).

use bl_simcore::stats::TimeSeries;
use bl_simcore::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Aggregated FPS results for one run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FpsStats {
    /// Mean frames per second over the whole run.
    pub avg_fps: f64,
    /// Frames per second of the worst 1-second window.
    pub min_fps: f64,
    /// Total frames produced.
    pub frames: u64,
}

/// Collects frame completion times and produces [`FpsStats`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FrameRecorder {
    completions: TimeSeries,
}

impl FrameRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        FrameRecorder::default()
    }

    /// Records a frame completed at `now` with the given production time.
    pub fn record(&mut self, now: SimTime, frame_time: SimDuration) {
        self.completions.push(now, frame_time.as_millis_f64());
    }

    /// Number of frames recorded.
    pub fn frames(&self) -> u64 {
        self.completions.len() as u64
    }

    /// Computes FPS statistics over a run that lasted `total`.
    ///
    /// Returns `None` when no frames were produced.
    pub fn stats(&self, total: SimDuration) -> Option<FpsStats> {
        if self.completions.is_empty() || total.is_zero() {
            return None;
        }
        let avg_fps = self.completions.len() as f64 / total.as_secs_f64();
        // Worst 1-second window by completion count.
        let per_window = self
            .completions
            .window_aggregate(SimDuration::from_secs(1), |v| v.len() as f64);
        let min_fps = per_window.iter().cloned().fold(f64::INFINITY, f64::min);
        Some(FpsStats {
            avg_fps,
            min_fps: if min_fps.is_finite() {
                min_fps
            } else {
                avg_fps
            },
            frames: self.completions.len() as u64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_sixty_fps() {
        let mut r = FrameRecorder::new();
        for i in 0..120 {
            r.record(
                SimTime::from_millis(i * 1000 / 60),
                SimDuration::from_millis(5),
            );
        }
        let s = r.stats(SimDuration::from_secs(2)).unwrap();
        assert!((s.avg_fps - 60.0).abs() < 1.0, "avg = {}", s.avg_fps);
        assert!((s.min_fps - 60.0).abs() <= 1.0, "min = {}", s.min_fps);
        assert_eq!(s.frames, 120);
    }

    #[test]
    fn hiccup_lowers_min_not_avg_much() {
        let mut r = FrameRecorder::new();
        let mut t = 0u64;
        for i in 0..180 {
            // One bad second in the middle: 20 fps instead of 60.
            let period = if (60..80).contains(&i) { 50 } else { 1000 / 60 };
            t += period;
            r.record(SimTime::from_millis(t), SimDuration::from_millis(5));
        }
        let total = SimDuration::from_millis(t);
        let s = r.stats(total).unwrap();
        assert!(s.min_fps < 30.0, "min = {}", s.min_fps);
        assert!(s.avg_fps > 40.0, "avg = {}", s.avg_fps);
        assert!(s.min_fps < s.avg_fps);
    }

    #[test]
    fn empty_recorder_yields_none() {
        let r = FrameRecorder::new();
        assert!(r.stats(SimDuration::from_secs(1)).is_none());
        assert_eq!(r.frames(), 0);
    }
}
