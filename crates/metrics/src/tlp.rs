//! Thread-level parallelism statistics (paper Tables III and IV).
//!
//! The TLP metric follows Blake et al. (ISCA 2010), as the paper does: the
//! average number of simultaneously active cores over the samples where at
//! least one core is active. A core is "active" in a sample when it had
//! non-zero busy time in the 10 ms window (paper §V.B).

use serde::{Deserialize, Serialize};

/// Joint distribution of (active little cores, active big cores) across
/// samples — one of the paper's Table IV matrices.
///
/// `cell(b, l)` is the fraction of samples with exactly `b` big and `l`
/// little cores active; `cell(0, 0)` is the fully idle fraction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoreTypeMatrix {
    counts: Vec<Vec<u64>>, // [big][little]
    total: u64,
}

impl CoreTypeMatrix {
    /// Creates a matrix for up to `n_little` little and `n_big` big cores.
    pub fn new(n_little: usize, n_big: usize) -> Self {
        CoreTypeMatrix {
            counts: vec![vec![0; n_little + 1]; n_big + 1],
            total: 0,
        }
    }

    /// Records one sample with the given active-core counts.
    ///
    /// # Panics
    ///
    /// Panics if counts exceed the configured core counts.
    pub fn record(&mut self, active_little: usize, active_big: usize) {
        self.counts[active_big][active_little] += 1;
        self.total += 1;
    }

    /// Records `n` fully idle samples at once — what an idle skip-ahead
    /// over `n` elided sample points contributes, in one addition.
    pub fn record_idle(&mut self, n: u64) {
        self.counts[0][0] += n;
        self.total += n;
    }

    /// Number of samples recorded.
    pub fn total_samples(&self) -> u64 {
        self.total
    }

    /// Fraction (percent) of samples in cell `(big, little)`.
    pub fn cell_pct(&self, big: usize, little: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.counts[big][little] as f64 / self.total as f64 * 100.0
        }
    }

    /// Matrix dimensions as (n_little+1, n_big+1).
    pub fn dims(&self) -> (usize, usize) {
        (self.counts[0].len(), self.counts.len())
    }

    /// Derives the scalar TLP statistics from the matrix.
    pub fn tlp_stats(&self) -> TlpStats {
        let mut idle = 0u64;
        let mut little_only = 0u64;
        let mut big_any = 0u64;
        let mut weighted_active = 0f64;
        let mut active_samples = 0u64;
        for (b, row) in self.counts.iter().enumerate() {
            for (l, n) in row.iter().enumerate() {
                if b == 0 && l == 0 {
                    idle += n;
                    continue;
                }
                active_samples += n;
                weighted_active += (*n as f64) * (b + l) as f64;
                if b == 0 {
                    little_only += n;
                } else {
                    big_any += n;
                }
            }
        }
        let pct = |x: u64, d: u64| {
            if d == 0 {
                0.0
            } else {
                x as f64 / d as f64 * 100.0
            }
        };
        TlpStats {
            idle_pct: pct(idle, self.total),
            little_pct: pct(little_only, active_samples),
            big_pct: pct(big_any, active_samples),
            tlp: if active_samples == 0 {
                0.0
            } else {
                weighted_active / active_samples as f64
            },
        }
    }
}

/// One row of the paper's Table III.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TlpStats {
    /// Percent of all samples with no core active.
    pub idle_pct: f64,
    /// Percent of *active* samples where only little cores are active.
    pub little_pct: f64,
    /// Percent of *active* samples where at least one big core is active.
    pub big_pct: f64,
    /// Average active core count over active samples (Blake et al.).
    pub tlp: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_matrix_zeroes() {
        let m = CoreTypeMatrix::new(4, 4);
        let s = m.tlp_stats();
        assert_eq!(s.idle_pct, 0.0);
        assert_eq!(s.tlp, 0.0);
        assert_eq!(m.cell_pct(0, 0), 0.0);
        assert_eq!(m.dims(), (5, 5));
    }

    #[test]
    fn known_distribution() {
        let mut m = CoreTypeMatrix::new(4, 4);
        // 2 idle, 4 little-only (2 cores), 2 with one big + one little.
        for _ in 0..2 {
            m.record(0, 0);
        }
        for _ in 0..4 {
            m.record(2, 0);
        }
        for _ in 0..2 {
            m.record(1, 1);
        }
        let s = m.tlp_stats();
        assert!((s.idle_pct - 25.0).abs() < 1e-9);
        assert!((s.little_pct - 4.0 / 6.0 * 100.0).abs() < 1e-9);
        assert!((s.big_pct - 2.0 / 6.0 * 100.0).abs() < 1e-9);
        assert!((s.tlp - (4.0 * 2.0 + 2.0 * 2.0) / 6.0).abs() < 1e-9);
        assert!((m.cell_pct(0, 2) - 50.0).abs() < 1e-9);
        assert_eq!(m.total_samples(), 8);
    }

    #[test]
    fn little_and_big_shares_sum_to_hundred_when_active() {
        let mut m = CoreTypeMatrix::new(4, 4);
        m.record(1, 0);
        m.record(0, 3);
        m.record(4, 2);
        let s = m.tlp_stats();
        assert!((s.little_pct + s.big_pct - 100.0).abs() < 1e-9);
    }

    proptest! {
        #[test]
        fn cells_sum_to_hundred(samples in proptest::collection::vec((0usize..5, 0usize..5), 1..200)) {
            let mut m = CoreTypeMatrix::new(4, 4);
            for (l, b) in samples {
                m.record(l, b);
            }
            let mut sum = 0.0;
            for b in 0..5 {
                for l in 0..5 {
                    sum += m.cell_pct(b, l);
                }
            }
            prop_assert!((sum - 100.0).abs() < 1e-6);
        }

        #[test]
        fn tlp_bounded_by_core_count(samples in proptest::collection::vec((0usize..5, 0usize..5), 1..200)) {
            let mut m = CoreTypeMatrix::new(4, 4);
            for (l, b) in samples {
                m.record(l, b);
            }
            let s = m.tlp_stats();
            prop_assert!(s.tlp >= 0.0 && s.tlp <= 8.0);
            prop_assert!(s.idle_pct >= 0.0 && s.idle_pct <= 100.0);
        }
    }
}
