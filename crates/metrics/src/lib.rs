//! # bl-metrics
//!
//! The measurement layer of the reproduction: everything the paper's tables
//! and figures report is computed here from periodic samples of the kernel
//! and platform state.
//!
//! * [`tlp`] — thread-level parallelism (Blake et al. metric, paper Table
//!   III) and the little×big active-core joint distribution (Table IV).
//! * [`residency`] — per-cluster frequency residency over active periods
//!   (Figures 9 and 10).
//! * [`efficiency`] — the six-way utilization decomposition of Table V
//!   (Full, >95%, 70–95%, 50–70%, <50%, Min).
//! * [`frames`] — FPS statistics (average and worst 1-second window) from
//!   frame signals (Figures 5, 13).
//! * [`collector`] — the 10 ms sampling harness that feeds all of the
//!   above, mirroring the paper's measurement methodology ("the CPU states
//!   are checked at every 10ms").
//! * [`report`] — plain-text table rendering for the `repro` binary.

#![warn(missing_docs)]

pub mod collector;
pub mod efficiency;
pub mod frames;
pub mod report;
pub mod residency;
pub mod tlp;
pub mod trace;

pub use collector::{MetricsCollector, MetricsSaved};
pub use efficiency::{EfficiencyBreakdown, UtilClass};
pub use frames::FpsStats;
pub use tlp::{CoreTypeMatrix, TlpStats};
pub use trace::{Trace, TraceRow};
