//! Behavioral tests for the kernel: completion timing, fairness, HMP
//! migration, balancing, sleep/wake and blocking semantics. A miniature
//! event-loop driver stands in for the full simulator.

use bl_kernel::kernel::{Hw, Kernel, KernelConfig, WakeRequest};
use bl_kernel::task::{Affinity, AppSignal, BehaviorCtx, Step, TaskId};
use bl_platform::exynos::{exynos5422, LITTLE_CLUSTER};
use bl_platform::ids::{CoreKind, CpuId};
use bl_platform::perf::{Work, WorkProfile};
use bl_platform::state::PlatformState;
use bl_platform::topology::Platform;
use bl_simcore::event::EventQueue;
use bl_simcore::time::{SimDuration, SimTime};

enum Ev {
    Tick,
    Timer(WakeRequest),
}

struct MiniSim {
    platform: Platform,
    state: PlatformState,
    kernel: Kernel,
    queue: EventQueue<Ev>,
    now: SimTime,
}

impl MiniSim {
    fn new() -> Self {
        let platform = exynos5422();
        let mut state = PlatformState::new(&platform.topology);
        // Fixed max frequencies: these tests isolate scheduler behavior.
        state.set_all_max(&platform.topology);
        let kernel = Kernel::new(
            platform.topology.n_cpus(),
            KernelConfig::default(),
            SimTime::ZERO,
        );
        let mut queue = EventQueue::new();
        queue.schedule(SimTime::from_millis(4), Ev::Tick);
        MiniSim {
            platform,
            state,
            kernel,
            queue,
            now: SimTime::ZERO,
        }
    }

    fn spawn<B>(&mut self, name: &str, affinity: Affinity, behavior: B) -> TaskId
    where
        B: FnMut(&mut BehaviorCtx<'_>) -> Step + 'static,
    {
        let hw = Hw {
            platform: &self.platform,
            state: &self.state,
        };
        let tid = self
            .kernel
            .spawn(name, affinity, Box::new(behavior), &hw, self.now);
        self.collect_wakes();
        tid
    }

    fn collect_wakes(&mut self) {
        for w in self.kernel.drain_wake_requests() {
            self.queue.schedule(w.at, Ev::Timer(w));
        }
    }

    fn run_until(&mut self, until: SimTime) {
        while self.now < until {
            let hw = Hw {
                platform: &self.platform,
                state: &self.state,
            };
            let next_event = self.queue.peek_time().unwrap_or(SimTime::MAX);
            let completion = self
                .kernel
                .next_completion_time(&hw, self.now)
                .unwrap_or(SimTime::MAX);
            let target = next_event.min(completion).min(until);
            self.kernel.advance_to(&hw, target);
            self.now = target;
            if self.now >= until {
                break;
            }
            self.kernel.handle_completions(&hw, self.now);
            while self.queue.peek_time() == Some(self.now) {
                let (_, ev) = self.queue.pop().unwrap();
                match ev {
                    Ev::Tick => {
                        self.kernel.tick(&hw, self.now);
                        self.queue
                            .schedule(self.now + SimDuration::from_millis(4), Ev::Tick);
                    }
                    Ev::Timer(w) => self.kernel.timer_wake(w.tid, w.seq, &hw, self.now),
                }
            }
            self.collect_wakes();
        }
    }

    /// Work equal to `ms` milliseconds on a little core at max frequency.
    fn little_ms(&self, ms: u64) -> Work {
        let p = WorkProfile::compute_bound();
        let l2 = self.platform.topology.cluster(LITTLE_CLUSTER).l2;
        self.platform
            .perf
            .work_for(&p, CoreKind::Little, &l2, 1.3, SimDuration::from_millis(ms))
    }
}

/// A behavior that computes once and exits.
fn one_shot(work: Work) -> impl FnMut(&mut BehaviorCtx<'_>) -> Step {
    let mut fired = false;
    move |_ctx| {
        if fired {
            Step::Exit
        } else {
            fired = true;
            Step::Compute {
                work,
                profile: WorkProfile::compute_bound(),
            }
        }
    }
}

#[test]
fn single_task_completes_on_schedule() {
    let mut sim = MiniSim::new();
    let work = sim.little_ms(10);
    let tid = sim.spawn("worker", Affinity::Pinned(CpuId(0)), one_shot(work));
    sim.run_until(SimTime::from_millis(50));
    assert!(sim.kernel.all_exited());
    let t = sim.kernel.task_cpu_time(tid);
    assert!(
        (t.as_millis_f64() - 10.0).abs() < 0.01,
        "cpu time = {t} (expected ~10ms)"
    );
}

#[test]
fn big_core_finishes_compute_bound_work_faster() {
    let mut sim = MiniSim::new();
    let work = sim.little_ms(20);
    let little = sim.spawn("on-little", Affinity::Pinned(CpuId(0)), one_shot(work));
    let big = sim.spawn("on-big", Affinity::Pinned(CpuId(4)), one_shot(work));
    sim.run_until(SimTime::from_millis(100));
    let tl = sim.kernel.task_cpu_time(little).as_millis_f64();
    let tb = sim.kernel.task_cpu_time(big).as_millis_f64();
    // Same instruction count: big core at 1.9 GHz with lower CPI is faster.
    let speedup = tl / tb;
    assert!(speedup > 2.0, "speedup = {speedup:.2}");
}

#[test]
fn two_tasks_share_one_cpu_fairly() {
    let mut sim = MiniSim::new();
    let work = sim.little_ms(20);
    let a = sim.spawn("a", Affinity::Pinned(CpuId(0)), one_shot(work));
    let b = sim.spawn("b", Affinity::Pinned(CpuId(0)), one_shot(work));
    // After 20ms of wall time sharing one CPU, each should have ~10ms.
    sim.run_until(SimTime::from_millis(20));
    let ta = sim.kernel.task_cpu_time(a).as_millis_f64();
    let tb = sim.kernel.task_cpu_time(b).as_millis_f64();
    assert!((ta - tb).abs() <= 4.1, "unfair: a={ta:.1}ms b={tb:.1}ms");
    assert!((ta + tb - 20.0).abs() < 0.1, "total {:.2}", ta + tb);
}

#[test]
fn hmp_migrates_sustained_load_to_big_core() {
    let mut sim = MiniSim::new();
    // 500ms of continuous work placed unpinned: starts on a little core,
    // saturates its load, must migrate to the big cluster.
    let work = sim.little_ms(500);
    let tid = sim.spawn("hog", Affinity::Any, one_shot(work));
    assert_eq!(
        sim.platform
            .topology
            .kind_of(sim.kernel.task_cpu(tid).unwrap()),
        CoreKind::Little,
        "initial placement is little"
    );
    sim.run_until(SimTime::from_millis(200));
    let cpu = sim.kernel.task_cpu(tid).expect("still running");
    assert_eq!(
        sim.platform.topology.kind_of(cpu),
        CoreKind::Big,
        "should have migrated up"
    );
    let (up, _) = sim.kernel.migration_counts();
    assert!(up >= 1);
}

#[test]
fn hmp_migrates_light_load_back_down() {
    let mut sim = MiniSim::new();
    // Phase 1: heavy burst (goes big). Phase 2: light periodic work
    // (0.5ms every 20ms => ~2.5% load) must return to little.
    let heavy = sim.little_ms(150);
    let light_work = sim.little_ms(1);
    let mut phase = 0u32;
    let tid = sim.spawn("bursty", Affinity::Any, move |_ctx| {
        phase += 1;
        match phase {
            1 => Step::Compute {
                work: heavy,
                profile: WorkProfile::compute_bound(),
            },
            p if p % 2 == 0 => Step::Sleep(SimDuration::from_millis(40)),
            _ => Step::Compute {
                work: light_work,
                profile: WorkProfile::compute_bound(),
            },
        }
    });
    sim.run_until(SimTime::from_millis(1500));
    let (up, down) = sim.kernel.migration_counts();
    assert!(up >= 1, "no up migration");
    assert!(down >= 1, "no down migration");
    // In steady light phase the task should live on the little side.
    if let Some(cpu) = sim.kernel.task_cpu(tid) {
        assert_eq!(sim.platform.topology.kind_of(cpu), CoreKind::Little);
    } else {
        assert!(sim.kernel.task_load(tid) < 300.0);
    }
}

#[test]
fn load_balancer_spreads_tasks_within_cluster() {
    let mut sim = MiniSim::new();
    let work = sim.little_ms(100);
    let a = sim.spawn("a", Affinity::Kind(CoreKind::Little), one_shot(work));
    let b = sim.spawn("b", Affinity::Kind(CoreKind::Little), one_shot(work));
    let c = sim.spawn("c", Affinity::Kind(CoreKind::Little), one_shot(work));
    sim.run_until(SimTime::from_millis(30));
    let cpus: Vec<_> = [a, b, c]
        .iter()
        .filter_map(|t| sim.kernel.task_cpu(*t))
        .collect();
    let mut unique = cpus.clone();
    unique.sort();
    unique.dedup();
    assert_eq!(
        unique.len(),
        3,
        "tasks should spread to distinct CPUs: {cpus:?}"
    );
}

#[test]
fn sleep_wake_cycle_and_signals() {
    let mut sim = MiniSim::new();
    let work = sim.little_ms(1);
    let mut n = 0u32;
    sim.spawn("periodic", Affinity::Pinned(CpuId(0)), move |ctx| {
        n += 1;
        match n {
            1 | 3 | 5 => Step::Compute {
                work,
                profile: WorkProfile::compute_bound(),
            },
            2 | 4 => {
                ctx.signal(AppSignal::Marker(n));
                Step::Sleep(SimDuration::from_millis(10))
            }
            _ => {
                ctx.signal(AppSignal::ScriptDone);
                Step::Exit
            }
        }
    });
    sim.run_until(SimTime::from_millis(100));
    assert!(sim.kernel.all_exited());
    let signals = sim.kernel.drain_signals();
    let markers: Vec<_> = signals
        .iter()
        .filter(|(_, s)| matches!(s, AppSignal::Marker(_)))
        .collect();
    assert_eq!(markers.len(), 2);
    assert!(signals
        .iter()
        .any(|(_, s)| matches!(s, AppSignal::ScriptDone)));
    // Completion near 1ms + 10ms + 1ms + 10ms + 1ms = ~23ms.
    let done_at = signals
        .iter()
        .find(|(_, s)| matches!(s, AppSignal::ScriptDone))
        .unwrap()
        .0;
    assert!(
        (done_at.as_millis_f64() - 23.0).abs() < 1.0,
        "done at {done_at}"
    );
}

#[test]
fn blocked_task_woken_by_peer() {
    let mut sim = MiniSim::new();
    let work = sim.little_ms(2);
    // Worker: blocks, computes when woken, then exits.
    let mut worker_phase = 0u32;
    let worker = sim.spawn("worker", Affinity::Pinned(CpuId(1)), move |_ctx| {
        worker_phase += 1;
        match worker_phase {
            1 => Step::Block,
            2 => Step::Compute {
                work,
                profile: WorkProfile::compute_bound(),
            },
            _ => Step::Exit,
        }
    });
    // Producer: computes, wakes worker, exits.
    let mut producer_phase = 0u32;
    sim.spawn("producer", Affinity::Pinned(CpuId(0)), move |ctx| {
        producer_phase += 1;
        match producer_phase {
            1 => Step::Compute {
                work,
                profile: WorkProfile::compute_bound(),
            },
            2 => {
                ctx.wake(worker);
                Step::Exit
            }
            _ => Step::Exit,
        }
    });
    sim.run_until(SimTime::from_millis(50));
    assert!(sim.kernel.all_exited());
    assert!(sim.kernel.task_cpu_time(worker) > SimDuration::from_millis(1));
}

#[test]
fn wake_while_runnable_is_remembered() {
    let mut sim = MiniSim::new();
    let long = sim.little_ms(10);
    let short = sim.little_ms(1);
    // Consumer computes 10ms, then blocks; a wake arriving during the
    // compute must be consumed at block time (pending-event semantics).
    let mut phase = 0u32;
    let consumer = sim.spawn("consumer", Affinity::Pinned(CpuId(0)), move |_| {
        phase += 1;
        match phase {
            1 => Step::Compute {
                work: long,
                profile: WorkProfile::compute_bound(),
            },
            2 => Step::Block, // should fall straight through
            3 => Step::Compute {
                work: short,
                profile: WorkProfile::compute_bound(),
            },
            _ => Step::Exit,
        }
    });
    let mut p = 0u32;
    sim.spawn("poker", Affinity::Pinned(CpuId(1)), move |ctx| {
        p += 1;
        match p {
            1 => Step::Sleep(SimDuration::from_millis(2)),
            2 => {
                ctx.wake(consumer); // consumer is mid-compute
                Step::Exit
            }
            _ => Step::Exit,
        }
    });
    sim.run_until(SimTime::from_millis(100));
    assert!(sim.kernel.all_exited(), "consumer must not stay blocked");
    assert!(sim.kernel.task_cpu_time(consumer).as_millis_f64() > 10.5);
}

#[test]
fn offline_cpus_never_receive_tasks() {
    let mut sim = MiniSim::new();
    sim.state
        .apply_core_config(
            &sim.platform.topology,
            bl_platform::config::CoreConfig::new(2, 0),
        )
        .unwrap();
    let work = sim.little_ms(50);
    let mut tids = Vec::new();
    for i in 0..4 {
        tids.push(sim.spawn(&format!("t{i}"), Affinity::Any, one_shot(work)));
    }
    sim.run_until(SimTime::from_millis(30));
    for t in &tids {
        if let Some(cpu) = sim.kernel.task_cpu(*t) {
            assert!(cpu.0 < 2, "task on offline cpu {cpu}");
        }
    }
}

#[test]
fn accounting_matches_wall_time_for_saturated_cpu() {
    let mut sim = MiniSim::new();
    let work = sim.little_ms(100);
    sim.spawn("hog", Affinity::Pinned(CpuId(0)), one_shot(work));
    sim.run_until(SimTime::from_millis(50));
    let busy = sim.kernel.accounting().cumulative_busy(CpuId(0));
    assert!((busy.as_millis_f64() - 50.0).abs() < 0.01, "busy = {busy}");
}

#[test]
fn stale_timer_does_not_wake_rescheduled_sleeper() {
    let mut sim = MiniSim::new();
    let work = sim.little_ms(1);
    // Task sleeps 10ms; at 2ms an external wake cuts the sleep short and it
    // re-sleeps for 50ms. The stale 10ms timer must not end the second sleep.
    let mut phase = 0u32;
    let sleeper = sim.spawn("sleeper", Affinity::Pinned(CpuId(0)), move |_| {
        phase += 1;
        match phase {
            1 => Step::Sleep(SimDuration::from_millis(10)),
            2 => Step::Sleep(SimDuration::from_millis(50)),
            3 => Step::Compute {
                work,
                profile: WorkProfile::compute_bound(),
            },
            _ => Step::Exit,
        }
    });
    let mut p = 0u32;
    sim.spawn("waker", Affinity::Pinned(CpuId(1)), move |ctx| {
        p += 1;
        match p {
            1 => Step::Sleep(SimDuration::from_millis(2)),
            2 => {
                ctx.wake(sleeper);
                Step::Exit
            }
            _ => Step::Exit,
        }
    });
    sim.run_until(SimTime::from_millis(30));
    // At 30ms the second sleep (2ms + 50ms = ends at 52ms) is still going.
    assert_eq!(
        sim.kernel.task_state(sleeper),
        bl_kernel::task::TaskState::Sleeping,
        "stale timer must be ignored"
    );
    sim.run_until(SimTime::from_millis(80));
    assert!(sim.kernel.all_exited());
}

mod policy_behavior {
    use super::*;
    use bl_kernel::policy::AsymPolicy;
    use bl_platform::perf::WorkProfile;

    fn sim_with_policy(policy: AsymPolicy) -> MiniSim {
        let mut sim = MiniSim::new();
        // Rebuild the kernel with the requested policy.
        sim.kernel = Kernel::new(
            sim.platform.topology.n_cpus(),
            KernelConfig {
                policy,
                ..KernelConfig::default()
            },
            SimTime::ZERO,
        );
        sim
    }

    /// A long-running compute task with a given architectural profile.
    fn hog(work: Work, profile: WorkProfile) -> impl FnMut(&mut BehaviorCtx<'_>) -> Step {
        let mut fired = false;
        move |_ctx| {
            if fired {
                Step::Exit
            } else {
                fired = true;
                Step::Compute { work, profile }
            }
        }
    }

    #[test]
    fn efficiency_policy_gives_big_cores_to_high_speedup_tasks() {
        let mut sim = sim_with_policy(AsymPolicy::EfficiencyBased { min_load: 64.0 });
        let work = sim.little_ms(400);
        // Cache-sensitive profile: huge big-core speedup.
        let sensitive = WorkProfile {
            cpi_little: 2.0,
            cpi_big: 1.1,
            mpki_ref: 42.0,
            cache_beta: 1.0,
            energy_intensity: 0.85,
        };
        // Low-gain profile: the big core barely helps.
        let insensitive = WorkProfile {
            cpi_little: 1.6,
            cpi_big: 1.5,
            mpki_ref: 0.0,
            cache_beta: 0.0,
            energy_intensity: 1.0,
        };
        // Five low-gain hogs + one high-gain hog: with four big cores the
        // high-gain task must be among the big-core owners.
        let mut low = Vec::new();
        for i in 0..5 {
            low.push(sim.spawn(&format!("low{i}"), Affinity::Any, hog(work, insensitive)));
        }
        let high = sim.spawn("high", Affinity::Any, hog(work, sensitive));
        sim.run_until(SimTime::from_millis(300));
        let kind_of = |tid| {
            sim.kernel
                .task_cpu(tid)
                .map(|c| sim.platform.topology.kind_of(c))
        };
        assert_eq!(
            kind_of(high),
            Some(CoreKind::Big),
            "highest-speedup task must own a big core"
        );
        // Exactly four of the six tasks can be on big cores.
        let on_big = std::iter::once(high)
            .chain(low.iter().copied())
            .filter(|t| kind_of(*t) == Some(CoreKind::Big))
            .count();
        assert!(on_big <= 4, "{on_big} tasks on 4 big cores");
    }

    #[test]
    fn parallelism_policy_uses_big_for_serial_phase() {
        let mut sim = sim_with_policy(AsymPolicy::ParallelismAware {
            serial_threshold: 2,
            min_load: 64.0,
        });
        let work = sim.little_ms(600);
        let solo = sim.spawn(
            "solo",
            Affinity::Any,
            hog(work, WorkProfile::compute_bound()),
        );
        sim.run_until(SimTime::from_millis(100));
        // One runnable task = serial phase: it must run on a big core.
        assert_eq!(
            sim.platform
                .topology
                .kind_of(sim.kernel.task_cpu(solo).unwrap()),
            CoreKind::Big
        );
    }

    #[test]
    fn parallelism_policy_spreads_wide_phases_on_little() {
        let mut sim = sim_with_policy(AsymPolicy::ParallelismAware {
            serial_threshold: 2,
            min_load: 64.0,
        });
        let work = sim.little_ms(400);
        let mut tids = Vec::new();
        for i in 0..4 {
            tids.push(sim.spawn(
                &format!("par{i}"),
                Affinity::Any,
                hog(work, WorkProfile::compute_bound()),
            ));
        }
        sim.run_until(SimTime::from_millis(300));
        // Four runnable tasks exceed the serial threshold: all little.
        for t in tids {
            if let Some(cpu) = sim.kernel.task_cpu(t) {
                assert_eq!(
                    sim.platform.topology.kind_of(cpu),
                    CoreKind::Little,
                    "parallel phase must stay on little cores"
                );
            }
        }
    }

    #[test]
    fn disabled_policy_never_migrates() {
        let mut sim = sim_with_policy(AsymPolicy::Disabled);
        let work = sim.little_ms(300);
        let tid = sim.spawn(
            "hog",
            Affinity::Any,
            hog(work, WorkProfile::compute_bound()),
        );
        sim.run_until(SimTime::from_millis(200));
        assert_eq!(
            sim.platform
                .topology
                .kind_of(sim.kernel.task_cpu(tid).unwrap()),
            CoreKind::Little,
            "no policy, no migration"
        );
        assert_eq!(sim.kernel.migration_counts(), (0, 0));
    }
}
