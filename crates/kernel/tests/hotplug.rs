//! Hotplug resilience: draining a dying CPU must rehome every queued task,
//! widen broken pins, keep the one-little-online rule, and never lose work.

use bl_kernel::kernel::{Hw, Kernel, KernelConfig};
use bl_kernel::task::{Affinity, BehaviorCtx, Step, TaskId, TaskState};
use bl_platform::exynos::exynos5422;
use bl_platform::ids::{CoreKind, CpuId};
use bl_platform::perf::{Work, WorkProfile};
use bl_platform::state::PlatformState;
use bl_platform::topology::Platform;
use bl_simcore::time::SimTime;

/// Computes one large chunk, then exits.
struct OneShot {
    work: Work,
    done: bool,
}

impl bl_kernel::task::TaskBehavior for OneShot {
    fn next_step(&mut self, _ctx: &mut BehaviorCtx<'_>) -> Step {
        if self.done {
            return Step::Exit;
        }
        self.done = true;
        Step::Compute {
            work: self.work,
            profile: WorkProfile::compute_bound(),
        }
    }
}

fn setup() -> (Platform, PlatformState, Kernel) {
    let platform = exynos5422();
    let mut state = PlatformState::new(&platform.topology);
    state.set_all_max(&platform.topology);
    let kernel = Kernel::new(
        platform.topology.n_cpus(),
        KernelConfig::default(),
        SimTime::ZERO,
    );
    (platform, state, kernel)
}

fn spawn_one(
    kernel: &mut Kernel,
    platform: &Platform,
    state: &PlatformState,
    name: &str,
    affinity: Affinity,
) -> TaskId {
    let hw = Hw { platform, state };
    kernel.spawn(
        name,
        affinity,
        Box::new(OneShot {
            work: Work::from_instructions(1e9),
            done: false,
        }),
        &hw,
        SimTime::ZERO,
    )
}

#[test]
fn offline_drains_and_rehomes_all_queued_tasks() {
    let (platform, mut state, mut kernel) = setup();
    let victim = CpuId(5);
    // Three tasks pinned to the victim big CPU: one runs, two wait.
    let tids: Vec<TaskId> = (0..3)
        .map(|i| {
            spawn_one(
                &mut kernel,
                &platform,
                &state,
                &format!("pin{i}"),
                Affinity::Pinned(victim),
            )
        })
        .collect();
    for tid in &tids {
        assert_eq!(kernel.task_cpu(*tid), Some(victim));
    }

    state.set_online(&platform.topology, victim, false).unwrap();
    let hw = Hw {
        platform: &platform,
        state: &state,
    };
    let drained = kernel.offline_cpu(victim, &hw);
    assert_eq!(drained.len(), 3);
    for tid in &tids {
        let cpu = kernel.task_cpu(*tid).expect("task must stay placed");
        assert_ne!(cpu, victim);
        assert!(state.is_online(cpu), "rehomed onto an online cpu");
        assert_eq!(kernel.task_state(*tid), TaskState::Runnable);
    }
    kernel.check_no_lost_tasks().unwrap();
}

#[test]
fn pinned_tasks_keep_running_after_their_cpu_dies() {
    let (platform, mut state, mut kernel) = setup();
    let victim = CpuId(2);
    let tid = spawn_one(
        &mut kernel,
        &platform,
        &state,
        "pinned",
        Affinity::Pinned(victim),
    );

    state.set_online(&platform.topology, victim, false).unwrap();
    let hw = Hw {
        platform: &platform,
        state: &state,
    };
    kernel.offline_cpu(victim, &hw);

    // Drive the task to completion: the widened affinity lets it finish
    // elsewhere instead of waiting forever for cpu2 to return.
    let mut now = SimTime::ZERO;
    for _ in 0..1000 {
        if kernel.task_state(tid) == TaskState::Exited {
            break;
        }
        let next = kernel
            .next_completion_time(&hw, now)
            .expect("task still has work queued");
        kernel.advance_to(&hw, next);
        now = next;
        kernel.handle_completions(&hw, now);
    }
    assert_eq!(kernel.task_state(tid), TaskState::Exited);
}

#[test]
fn whole_big_cluster_offline_degrades_to_little_only() {
    let (platform, mut state, mut kernel) = setup();
    let tids: Vec<TaskId> = (0..4)
        .map(|i| {
            spawn_one(
                &mut kernel,
                &platform,
                &state,
                &format!("big{i}"),
                Affinity::Kind(CoreKind::Big),
            )
        })
        .collect();

    for cpu in platform.topology.cpus_of_kind(CoreKind::Big) {
        state.set_online(&platform.topology, cpu, false).unwrap();
        let hw = Hw {
            platform: &platform,
            state: &state,
        };
        kernel.offline_cpu(cpu, &hw);
    }
    // Kind-affine tasks degrade to the surviving little cluster rather
    // than panicking on an empty candidate set.
    for tid in &tids {
        let cpu = kernel.task_cpu(*tid).expect("task must stay placed");
        assert_eq!(platform.topology.kind_of(cpu), CoreKind::Little);
    }
    kernel.check_no_lost_tasks().unwrap();
}

#[test]
fn online_cpu_becomes_usable_again() {
    let (platform, mut state, mut kernel) = setup();
    let victim = CpuId(6);
    state.set_online(&platform.topology, victim, false).unwrap();
    {
        let hw = Hw {
            platform: &platform,
            state: &state,
        };
        assert!(kernel.offline_cpu(victim, &hw).is_empty());
    }
    state.set_online(&platform.topology, victim, true).unwrap();
    let hw = Hw {
        platform: &platform,
        state: &state,
    };
    kernel.online_cpu(victim, &hw);
    // A task pinned to the revived CPU places onto it directly.
    let tid = spawn_one(
        &mut kernel,
        &platform,
        &state,
        "revived",
        Affinity::Pinned(victim),
    );
    assert_eq!(kernel.task_cpu(tid), Some(victim));
}

#[test]
fn sleeping_pinned_task_wakes_onto_surviving_cpu() {
    let (platform, mut state, mut kernel) = setup();
    let victim = CpuId(3);

    // A task that sleeps first, then computes — it is asleep when its CPU
    // dies, so only the affinity rewrite protects its wakeup.
    struct SleepThenWork {
        stage: u8,
    }
    impl bl_kernel::task::TaskBehavior for SleepThenWork {
        fn next_step(&mut self, _ctx: &mut BehaviorCtx<'_>) -> Step {
            self.stage += 1;
            match self.stage {
                1 => Step::Sleep(bl_simcore::time::SimDuration::from_millis(10)),
                2 => Step::Compute {
                    work: Work::from_instructions(1e8),
                    profile: WorkProfile::compute_bound(),
                },
                _ => Step::Exit,
            }
        }
    }

    let tid = {
        let hw = Hw {
            platform: &platform,
            state: &state,
        };
        kernel.spawn(
            "sleeper",
            Affinity::Pinned(victim),
            Box::new(SleepThenWork { stage: 0 }),
            &hw,
            SimTime::ZERO,
        )
    };
    assert_eq!(kernel.task_state(tid), TaskState::Sleeping);
    let wake = kernel.drain_wake_requests();
    assert_eq!(wake.len(), 1);

    state.set_online(&platform.topology, victim, false).unwrap();
    let hw = Hw {
        platform: &platform,
        state: &state,
    };
    kernel.offline_cpu(victim, &hw);

    kernel.timer_wake(wake[0].tid, wake[0].seq, &hw, wake[0].at);
    let cpu = kernel.task_cpu(tid).expect("woke and placed");
    assert_ne!(cpu, victim);
    assert!(state.is_online(cpu));
    kernel.check_no_lost_tasks().unwrap();
}
