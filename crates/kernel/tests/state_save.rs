//! Kernel state save/restore round trip: a warmed scheduler serialized to
//! JSON and rebuilt must be indistinguishable from the original — same
//! reports, same census, and bit-identical future behavior.

use bl_kernel::kernel::{Hw, Kernel, KernelConfig};
use bl_kernel::task::{
    Affinity, BehaviorCtx, BehaviorSaved, RestoreCtx, SaveCtx, Step, TaskBehavior,
};
use bl_platform::exynos::exynos5422;
use bl_platform::perf::{Work, WorkProfile};
use bl_platform::state::PlatformState;
use bl_simcore::error::SimError;
use bl_simcore::time::{SimDuration, SimTime};

/// A savable compute/sleep ping behavior with internal state (the round
/// counter) that must survive the round trip.
#[derive(Clone)]
struct Ping {
    rounds: u32,
}

impl TaskBehavior for Ping {
    fn next_step(&mut self, _ctx: &mut BehaviorCtx<'_>) -> Step {
        if self.rounds == 0 {
            return Step::Exit;
        }
        self.rounds -= 1;
        if self.rounds.is_multiple_of(2) {
            Step::Compute {
                work: Work::from_instructions(2e6),
                profile: WorkProfile::default(),
            }
        } else {
            Step::Sleep(SimDuration::from_millis(3))
        }
    }

    fn save_box(&self, _ctx: &mut SaveCtx) -> Option<BehaviorSaved> {
        Some(BehaviorSaved {
            kind: "ping".to_string(),
            data: serde::Value::UInt(self.rounds as u64),
        })
    }
}

fn restore_ping(
    saved: &BehaviorSaved,
    _ctx: &mut RestoreCtx,
) -> Result<Box<dyn TaskBehavior>, SimError> {
    match (saved.kind.as_str(), &saved.data) {
        ("ping", serde::Value::UInt(rounds)) => Ok(Box::new(Ping {
            rounds: *rounds as u32,
        })),
        _ => Err(SimError::SnapshotUnsupported {
            detail: format!("unknown behavior kind {:?}", saved.kind),
        }),
    }
}

/// Drives both kernels through identical advance/tick/timer sequences and
/// asserts their observable state stays bit-identical.
fn drive_lockstep(a: &mut Kernel, b: &mut Kernel, hw: &Hw<'_>, from: SimTime) {
    let mut now = from;
    for step in 0..60u64 {
        now += SimDuration::from_millis(1);
        a.advance_to(hw, now);
        b.advance_to(hw, now);
        if step % 4 == 3 {
            a.tick(hw, now);
            b.tick(hw, now);
        }
        a.handle_completions(hw, now);
        b.handle_completions(hw, now);
        let wa = a.drain_wake_requests();
        let wb = b.drain_wake_requests();
        assert_eq!(wa, wb, "wake requests diverged at {now}");
        for w in wa {
            if w.at <= now + SimDuration::from_millis(1) {
                a.timer_wake(w.tid, w.seq, hw, w.at.max(now));
                b.timer_wake(w.tid, w.seq, hw, w.at.max(now));
            }
        }
        assert_eq!(a.census(), b.census(), "census diverged at {now}");
        for (la, lb) in a.task_loads().iter().zip(b.task_loads()) {
            assert_eq!(la.to_bits(), lb.to_bits(), "loads diverged at {now}");
        }
    }
}

#[test]
fn save_restore_round_trip_is_bit_identical() {
    let platform = exynos5422();
    let mut state = PlatformState::new(&platform.topology);
    state.set_all_max(&platform.topology);
    let hw = Hw {
        platform: &platform,
        state: &state,
    };

    let mut kernel = Kernel::new(
        platform.topology.n_cpus(),
        KernelConfig::default(),
        SimTime::ZERO,
    );
    for i in 0..5 {
        kernel.spawn(
            format!("ping{i}"),
            Affinity::Any,
            Box::new(Ping { rounds: 40 + i }),
            &hw,
            SimTime::ZERO,
        );
    }
    // Warm the scheduler: advance, tick, deliver some timers.
    let mut now = SimTime::ZERO;
    for _ in 0..20 {
        now += SimDuration::from_millis(2);
        kernel.advance_to(&hw, now);
        kernel.tick(&hw, now);
        kernel.handle_completions(&hw, now);
        for w in kernel.drain_wake_requests() {
            if w.at <= now {
                kernel.timer_wake(w.tid, w.seq, &hw, now);
            }
        }
    }

    let saved = kernel.state_save(&mut SaveCtx::new()).unwrap();
    let json = serde_json::to_string(&saved).unwrap();
    let back = serde_json::from_str(&json).unwrap();
    assert_eq!(saved, back, "JSON round trip must be lossless");

    let mut restored = Kernel::state_restore(&back, &mut RestoreCtx::new(), restore_ping).unwrap();
    assert_eq!(restored.census(), kernel.census());
    assert_eq!(restored.task_report(), kernel.task_report());
    assert_eq!(restored.migration_counts(), kernel.migration_counts());

    drive_lockstep(&mut kernel, &mut restored, &hw, now);
}

#[test]
fn opaque_behavior_blocks_save_with_typed_error() {
    let platform = exynos5422();
    let mut state = PlatformState::new(&platform.topology);
    state.set_all_max(&platform.topology);
    let hw = Hw {
        platform: &platform,
        state: &state,
    };
    let mut kernel = Kernel::new(
        platform.topology.n_cpus(),
        KernelConfig::default(),
        SimTime::ZERO,
    );
    kernel.spawn(
        "closure",
        Affinity::Any,
        Box::new(|_: &mut BehaviorCtx<'_>| Step::Block),
        &hw,
        SimTime::ZERO,
    );
    match kernel.state_save(&mut SaveCtx::new()) {
        Err(SimError::SnapshotUnsupported { detail }) => {
            assert!(detail.contains("closure"), "detail = {detail}");
        }
        other => panic!("expected SnapshotUnsupported, got {other:?}"),
    }
}

#[test]
fn exited_tasks_save_without_behavior() {
    let platform = exynos5422();
    let mut state = PlatformState::new(&platform.topology);
    state.set_all_max(&platform.topology);
    let hw = Hw {
        platform: &platform,
        state: &state,
    };
    let mut kernel = Kernel::new(
        platform.topology.n_cpus(),
        KernelConfig::default(),
        SimTime::ZERO,
    );
    // An already-exhausted ping exits on its first step exchange.
    kernel.spawn(
        "done",
        Affinity::Any,
        Box::new(Ping { rounds: 0 }),
        &hw,
        SimTime::ZERO,
    );
    let saved = kernel.state_save(&mut SaveCtx::new()).unwrap();
    assert!(saved.tasks[0].behavior.is_none());
    let restored = Kernel::state_restore(&saved, &mut RestoreCtx::new(), |b, _| {
        panic!("restorer must not be called for exited tasks: {b:?}")
    })
    .unwrap();
    assert!(restored.all_exited());
}
